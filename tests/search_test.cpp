// Search workload and content-model tests.
#include <gtest/gtest.h>

#include <set>

#include "search/content_model.hpp"
#include "search/keywords.hpp"

namespace dyncdn::search {
namespace {

TEST(Keywords, WordCount) {
  EXPECT_EQ((Keyword{"computer", KeywordClass::kPopular, 1}).word_count(), 1u);
  EXPECT_EQ((Keyword{"a b c", KeywordClass::kComplex, 1}).word_count(), 3u);
  EXPECT_EQ((Keyword{"", KeywordClass::kPopular, 1}).word_count(), 0u);
}

TEST(Keywords, CatalogIsDeterministic) {
  KeywordCatalog a(42), b(42);
  const auto ka = a.generate(KeywordClass::kComplex, 10);
  const auto kb = b.generate(KeywordClass::kComplex, 10);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) {
    EXPECT_EQ(ka[i].text, kb[i].text);
  }
}

TEST(Keywords, DifferentSeedsDifferentCatalogs) {
  KeywordCatalog a(1), b(2);
  const auto ka = a.generate(KeywordClass::kPopular, 20);
  const auto kb = b.generate(KeywordClass::kPopular, 20);
  int same = 0;
  for (std::size_t i = 0; i < ka.size(); ++i) {
    if (ka[i].text == kb[i].text) ++same;
  }
  EXPECT_LT(same, 10);
}

TEST(Keywords, ComplexityClassesHaveExpectedLengths) {
  KeywordCatalog cat(7);
  for (const auto& k : cat.generate(KeywordClass::kPopular, 8)) {
    EXPECT_LE(k.word_count(), 2u);
  }
  for (const auto& k : cat.generate(KeywordClass::kComplex, 8)) {
    EXPECT_GE(k.word_count(), 6u);
  }
}

TEST(Keywords, MixedClassContainsAnd) {
  KeywordCatalog cat(7);
  for (const auto& k : cat.generate(KeywordClass::kMixed, 5)) {
    EXPECT_NE(k.text.find(" and "), std::string::npos) << k.text;
  }
}

TEST(Keywords, Figure3SetHasFourDistinctClasses) {
  KeywordCatalog cat(42);
  const auto kws = cat.figure3_keywords();
  ASSERT_EQ(kws.size(), 4u);
  std::set<KeywordClass> classes;
  for (const auto& k : kws) classes.insert(k.cls);
  EXPECT_EQ(classes.size(), 4u);
}

TEST(Keywords, DistinctCorpusIsDistinct) {
  KeywordCatalog cat(9);
  const auto corpus = cat.distinct_corpus(500);
  std::set<std::string> texts;
  for (const auto& k : corpus) texts.insert(k.text);
  EXPECT_EQ(texts.size(), corpus.size());
}

TEST(Keywords, ZipfSamplingFavorsLowRanks) {
  KeywordCatalog cat(3);
  const auto catalog = cat.generate(KeywordClass::kPopular, 100);
  sim::RngStream rng(11);
  const auto draws = KeywordCatalog::zipf_sample(catalog, 20000, 1.0, rng);
  std::size_t rank1 = 0, rank50 = 0;
  for (const auto& k : draws) {
    if (k.rank == 1) ++rank1;
    if (k.rank == 50) ++rank50;
  }
  EXPECT_GT(rank1, 10 * std::max<std::size_t>(rank50, 1));
}

TEST(Keywords, HigherAlphaSkewsHarder) {
  KeywordCatalog cat(3);
  const auto catalog = cat.generate(KeywordClass::kPopular, 100);
  auto top1_share = [&](double alpha) {
    sim::RngStream rng(11);
    const auto draws = KeywordCatalog::zipf_sample(catalog, 20000, alpha, rng);
    std::size_t rank1 = 0;
    for (const auto& k : draws) {
      if (k.rank == 1) ++rank1;
    }
    return static_cast<double>(rank1) / 20000.0;
  };
  EXPECT_GT(top1_share(1.5), 1.5 * top1_share(0.8));
}

TEST(Keywords, ZipfSampleEmptyCatalogSafe) {
  sim::RngStream rng(1);
  EXPECT_TRUE(KeywordCatalog::zipf_sample({}, 10, 1.0, rng).empty());
}

TEST(ContentModel, StaticPrefixIsStableAndSized) {
  ContentProfile profile;
  profile.static_html_bytes = 9000;
  ContentModel m1(profile, "TestService");
  ContentModel m2(profile, "TestService");
  EXPECT_EQ(m1.static_prefix(), m2.static_prefix());
  EXPECT_NEAR(static_cast<double>(m1.static_prefix().size()), 9000.0, 400.0);
}

TEST(ContentModel, StaticPrefixDiffersAcrossServices) {
  ContentProfile profile;
  ContentModel a(profile, "ServiceA");
  ContentModel b(profile, "ServiceB");
  EXPECT_NE(a.static_prefix(), b.static_prefix());
}

TEST(ContentModel, StaticPrefixContainsMenuBar) {
  ContentModel m(ContentProfile{}, "S");
  EXPECT_NE(m.static_prefix().find("Videos"), std::string::npos);
  EXPECT_NE(m.static_prefix().find("Shopping"), std::string::npos);
  EXPECT_NE(m.static_prefix().find("<!DOCTYPE html>"), std::string::npos);
}

TEST(ContentModel, DynamicBodyEmbedsKeyword) {
  ContentModel m(ContentProfile{}, "S");
  sim::RngStream rng(5);
  const Keyword kw{"galaxy history", KeywordClass::kGranular, 2};
  const std::string body = m.dynamic_body(kw, rng);
  EXPECT_NE(body.find("galaxy history"), std::string::npos);
}

TEST(ContentModel, DynamicBodiesDifferAcrossKeywords) {
  ContentModel m(ContentProfile{}, "S");
  sim::RngStream rng(5);
  const std::string a =
      m.dynamic_body(Keyword{"alpha", KeywordClass::kPopular, 1}, rng);
  const std::string b =
      m.dynamic_body(Keyword{"beta", KeywordClass::kPopular, 1}, rng);
  EXPECT_NE(a, b);
}

TEST(ContentModel, DynamicSizeGrowsWithWordCount) {
  ContentProfile profile;
  profile.dynamic_size_sigma = 0.0;  // deterministic sizes
  ContentModel m(profile, "S");
  sim::RngStream rng(5);
  const std::string small =
      m.dynamic_body(Keyword{"one", KeywordClass::kPopular, 1}, rng);
  const std::string large = m.dynamic_body(
      Keyword{"one two three four five six seven", KeywordClass::kComplex, 1},
      rng);
  EXPECT_GT(large.size(), small.size());
  EXPECT_NEAR(static_cast<double>(large.size()) -
                  static_cast<double>(small.size()),
              6.0 * profile.dynamic_per_word_bytes,
              0.3 * 6.0 * profile.dynamic_per_word_bytes);
}

TEST(ContentModel, ExpectedDynamicBytesFormula) {
  ContentProfile profile;
  profile.dynamic_base_bytes = 1000;
  profile.dynamic_per_word_bytes = 100;
  ContentModel m(profile, "S");
  EXPECT_EQ(m.expected_dynamic_bytes(Keyword{"a b c", {}, 1}), 1300u);
}

TEST(ContentModel, SizeNoiseIsBounded) {
  ContentProfile profile;
  profile.dynamic_size_sigma = 0.05;
  ContentModel m(profile, "S");
  sim::RngStream rng(5);
  const Keyword kw{"noise test", KeywordClass::kPopular, 1};
  const double expected =
      static_cast<double>(m.expected_dynamic_bytes(kw));
  for (int i = 0; i < 50; ++i) {
    const double size = static_cast<double>(m.dynamic_body(kw, rng).size());
    EXPECT_GT(size, expected * 0.75);
    EXPECT_LT(size, expected * 1.35);
  }
}

TEST(ContentModel, DynamicBodiesShareNoLongPrefixAcrossKeywords) {
  // The boundary-discovery invariant: responses to different keywords must
  // diverge almost immediately inside the dynamic portion.
  ContentModel m(ContentProfile{}, "S");
  sim::RngStream rng(5);
  const std::string a =
      m.dynamic_body(Keyword{"alpha", KeywordClass::kPopular, 1}, rng);
  const std::string b =
      m.dynamic_body(Keyword{"beta", KeywordClass::kPopular, 1}, rng);
  std::size_t p = 0;
  while (p < std::min(a.size(), b.size()) && a[p] == b[p]) ++p;
  EXPECT_LT(p, 64u);
}

}  // namespace
}  // namespace dyncdn::search
