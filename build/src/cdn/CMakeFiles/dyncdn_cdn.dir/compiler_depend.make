# Empty compiler generated dependencies file for dyncdn_cdn.
# This may be replaced when dependencies are built.
