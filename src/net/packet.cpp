#include "net/packet.hpp"

#include <algorithm>
#include <cstdio>
#include <new>

namespace dyncdn::net {

namespace {

/// Per-thread free list of fixed-size blocks. Each simulation replica runs
/// single-threaded on its own worker, so no locking; blocks released on a
/// different thread than they were acquired on simply migrate pools.
struct PacketBlockPool {
  std::vector<void*> blocks;
  std::size_t block_size = 0;

  ~PacketBlockPool() {
    for (void* b : blocks) ::operator delete(b);
  }
};

thread_local PacketBlockPool t_packet_pool;

/// Recycling allocator used only via allocate_shared<Packet>: every
/// allocation it ever sees is the single combined (control block + Packet)
/// node type, so one fixed block size serves the whole pool.
template <class T>
struct PacketPoolAllocator {
  using value_type = T;

  PacketPoolAllocator() = default;
  template <class U>
  PacketPoolAllocator(const PacketPoolAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    PacketBlockPool& pool = t_packet_pool;
    if (n == 1 && bytes == pool.block_size && !pool.blocks.empty()) {
      void* block = pool.blocks.back();
      pool.blocks.pop_back();
      return static_cast<T*>(block);
    }
    if (n == 1 && pool.block_size == 0) pool.block_size = bytes;
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) {
    constexpr std::size_t kMaxCachedBlocks = 4096;
    const std::size_t bytes = n * sizeof(T);
    PacketBlockPool& pool = t_packet_pool;
    if (n == 1 && bytes == pool.block_size &&
        pool.blocks.size() < kMaxCachedBlocks) {
      pool.blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const PacketPoolAllocator<U>&) const {
    return true;
  }
};

}  // namespace

PacketPtr acquire_packet() {
  return std::allocate_shared<Packet>(PacketPoolAllocator<Packet>{});
}

std::size_t packet_pool_free_count() { return t_packet_pool.blocks.size(); }

Buffer make_buffer(std::string_view text) {
  return make_buffer(std::vector<std::uint8_t>(text.begin(), text.end()));
}

PayloadRef PayloadRef::slice(std::size_t off, std::size_t len) const {
  PayloadRef out;
  if (off >= length) return out;
  len = std::min(len, length - off);
  if (len == 0) return out;

  const std::size_t first = first_length();
  std::size_t remaining = len;
  auto it = chain.begin();
  if (off < first) {
    out.buffer = buffer;
    out.offset = offset + off;
    const std::size_t take = std::min(remaining, first - off);
    out.length = take;
    remaining -= take;
  } else {
    std::size_t skip = off - first;
    while (skip >= it->length) skip -= (it++)->length;
    out.buffer = it->buffer;
    out.offset = it->offset + skip;
    const std::size_t take = std::min(remaining, it->length - skip);
    out.length = take;
    remaining -= take;
    ++it;
  }
  for (; remaining > 0; ++it) {
    const std::size_t take = std::min(remaining, it->length);
    out.chain.push_back(PayloadSlice{it->buffer, it->offset, take});
    out.length += take;
    remaining -= take;
  }
  return out;
}

void PayloadRef::append(PayloadRef tail) {
  if (tail.length == 0) return;
  if (length == 0) {
    *this = std::move(tail);
    return;
  }
  // Merge physically adjacent views of the same buffer, so contiguous
  // data split across many application writes of one buffer collapses
  // back into a single slice.
  const auto push_slice = [this](const Buffer& b, std::size_t off,
                                 std::size_t len) {
    if (len == 0) return;
    const bool primary = chain.empty();
    const Buffer& last_buf = primary ? buffer : chain.back().buffer;
    const std::size_t last_end =
        primary ? offset + first_length()
                : chain.back().offset + chain.back().length;
    if (b == last_buf && off == last_end) {
      if (!primary) chain.back().length += len;
      length += len;  // growing the primary slice is implicit in `length`
    } else {
      chain.push_back(PayloadSlice{b, off, len});
      length += len;
    }
  };
  push_slice(tail.buffer, tail.offset, tail.first_length());
  for (const PayloadSlice& s : tail.chain) {
    push_slice(s.buffer, s.offset, s.length);
  }
}

std::string PayloadRef::to_text() const {
  std::string out;
  out.reserve(length);
  for_each_slice([&out](std::span<const std::uint8_t> span) {
    out.append(reinterpret_cast<const char*>(span.data()), span.size());
  });
  return out;
}

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += "SYN|";
  if (ack) s += "ACK|";
  if (fin) s += "FIN|";
  if (rst) s += "RST|";
  if (s.empty()) return "-";
  s.pop_back();
  return s;
}

std::string Packet::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u:%u -> %u:%u seq=%llu ack=%llu win=%u [%s] %zuB",
                src.value(), static_cast<unsigned>(tcp.src_port), dst.value(),
                static_cast<unsigned>(tcp.dst_port),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack), tcp.window,
                tcp.flags.to_string().c_str(), payload.length);
  return buf;
}

}  // namespace dyncdn::net
