file(REMOVE_RECURSE
  "libdyncdn_tcp.a"
)
