#include "capture/recorder.hpp"

#include "capture/spill.hpp"

namespace dyncdn::capture {

TraceRecorder::TraceRecorder(net::Node& node, sim::Simulator& simulator,
                             RecorderOptions options)
    : simulator_(simulator), options_(options), trace_(node.id()) {
  node.add_send_tap([this](const net::PacketPtr& p) {
    record(Direction::kSent, p);
  });
  node.add_receive_tap([this](const net::PacketPtr& p) {
    record(Direction::kReceived, p);
  });
}

void TraceRecorder::clear() {
  trace_.clear();
  if (sink_ != nullptr) sink_->on_clear();
  if (spill_ != nullptr && (has_spilled_ || spill_->finished())) {
    spill_->on_clear();
    has_spilled_ = false;
  }
}

void TraceRecorder::set_spill(SpillWriter* spill, std::size_t budget_bytes) {
  spill_ = spill;
  spill_budget_ = spill != nullptr ? budget_bytes : 0;
}

PacketTrace TraceRecorder::full_trace() {
  if (spill_ == nullptr || !has_spilled_) return trace_;
  spill_->finish();
  SpillReader reader(spill_->path());
  PacketTrace full = reader.read_all();
  for (const auto& r : trace_.records()) full.add(r);
  return full;
}

void TraceRecorder::record(Direction direction, const net::PacketPtr& packet) {
  if (!recording_) return;
  PacketRecord r;
  r.timestamp = simulator_.now();
  r.direction = direction;
  r.src = packet->src;
  r.dst = packet->dst;
  r.tcp = packet->tcp;
  r.payload_size = packet->payload.length;
  if (options_.capture_payloads) r.payload = packet->payload;
  if (sink_ != nullptr) sink_->on_packet(r);
  if (options_.retain_packets) {
    trace_.add(std::move(r));
    peak_retained_bytes_ =
        std::max(peak_retained_bytes_, trace_.retained_bytes());
    if (spill_ != nullptr && spill_budget_ > 0 &&
        trace_.retained_bytes() >= spill_budget_) {
      spill_buffer();
    }
  }
}

void TraceRecorder::spill_buffer() {
  // Note the peak before the reset: under a budget the buffer saw-tooths
  // and the true high-water is the moment just before each spill.
  peak_retained_bytes_ =
      std::max(peak_retained_bytes_, trace_.retained_bytes());
  spill_->append_trace(trace_);
  trace_.clear();
  has_spilled_ = true;
}

}  // namespace dyncdn::capture
