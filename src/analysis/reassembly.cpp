#include "analysis/reassembly.hpp"

#include <algorithm>

namespace dyncdn::analysis {

std::optional<sim::SimTime> ReassembledStream::byte_time(
    std::size_t offset) const {
  std::optional<sim::SimTime> best;
  for (const Segment& s : segments_) {
    if (offset >= s.offset && offset < s.offset + s.length) {
      if (!best || s.at < *best) best = s.at;
    }
  }
  return best;
}

std::optional<sim::SimTime> ReassembledStream::prefix_complete_time(
    std::size_t offset) const {
  // Replay capture order; report the time the prefix [0, offset] is fully
  // covered for the first time.
  std::vector<bool> covered(offset + 1, false);
  std::size_t remaining = offset + 1;
  for (const Segment& s : segments_) {
    const std::size_t lo = s.offset;
    const std::size_t hi = std::min(offset + 1, s.offset + s.length);
    for (std::size_t i = lo; i < hi; ++i) {
      if (!covered[i]) {
        covered[i] = true;
        --remaining;
      }
    }
    if (remaining == 0) return s.at;
  }
  return std::nullopt;
}

std::optional<sim::SimTime> ReassembledStream::first_packet_reaching(
    std::size_t offset) const {
  for (const Segment& s : segments_) {
    if (s.offset + s.length > offset) return s.at;
  }
  return std::nullopt;
}

std::optional<sim::SimTime> ReassembledStream::last_packet_time() const {
  if (segments_.empty()) return std::nullopt;
  return segments_.back().at;
}

std::size_t ReassembledStream::snap_to_segment_end(std::size_t offset) const {
  std::size_t best = 0;
  for (const Segment& s : segments_) {
    const std::size_t end = s.offset + s.length;
    if (end <= offset) best = std::max(best, end);
  }
  return best;
}

ReassembledStream ReassembledStream::from_segments(
    std::vector<Segment> segments) {
  ReassembledStream out;
  out.segments_ = std::move(segments);
  for (const Segment& s : out.segments_) {
    out.length_ = std::max(out.length_, s.offset + s.length);
  }
  return out;
}

ReassembledStream reassemble(const capture::PacketTrace& trace,
                             const net::FlowId& flow,
                             capture::Direction direction) {
  ReassembledStream out;

  // Normalizer: the sender's SYN sequence number (data begins at ISS + 1).
  std::optional<std::uint64_t> iss;
  std::optional<std::uint64_t> min_data_seq;
  for (const auto& r : trace.records()) {
    if (r.direction != direction) continue;
    if (r.flow_at_capture_node() != flow) continue;
    if (r.tcp.flags.syn) iss = r.tcp.seq;
    if (r.payload_size > 0 && (!min_data_seq || r.tcp.seq < *min_data_seq)) {
      min_data_seq = r.tcp.seq;
    }
  }
  if (!min_data_seq) return out;  // no data captured
  const std::uint64_t base = iss ? *iss + 1 : *min_data_seq;

  std::string& bytes = out.bytes_;
  for (const auto& r : trace.records()) {
    if (r.direction != direction) continue;
    if (r.payload_size == 0) continue;
    if (r.flow_at_capture_node() != flow) continue;
    if (r.tcp.seq < base) continue;  // pre-data sequence space (SYN)
    const std::size_t offset = static_cast<std::size_t>(r.tcp.seq - base);

    out.segments_.push_back(
        ReassembledStream::Segment{offset, r.payload_size, r.timestamp});
    out.length_ = std::max(out.length_, offset + r.payload_size);

    if (!r.payload.empty()) {
      if (bytes.size() < offset + r.payload.length) {
        bytes.resize(offset + r.payload.length, '\0');
      }
      std::size_t at = offset;
      r.payload.for_each_slice(
          [&bytes, &at](std::span<const std::uint8_t> span) {
            std::copy(span.begin(), span.end(),
                      bytes.begin() + static_cast<std::ptrdiff_t>(at));
            at += span.size();
          });
    }
  }
  return out;
}

}  // namespace dyncdn::analysis
