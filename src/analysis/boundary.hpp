// Static/dynamic content-boundary discovery.
//
// The paper identifies the static portion by application-layer content
// analysis across responses to *different* queries: bytes common to every
// response (HTTP header, HTML head, CSS, menu bar) are static; everything
// after the first divergence is dynamic. It cross-checks with temporal
// clustering of packet events (Fig. 4). Both techniques are implemented
// here, operating only on captured data.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "analysis/reassembly.hpp"
#include "sim/time.hpp"

namespace dyncdn::analysis {

/// Longest common prefix (in bytes) across response bodies of different
/// queries. Returns 0 for fewer than two streams. With responses to
/// distinct keywords, this is the static-portion length (including the
/// HTTP header block).
std::size_t common_prefix_boundary(std::span<const std::string> responses);

/// Convenience overload for reassembled streams.
std::size_t common_prefix_boundary(std::span<const ReassembledStream> streams);

/// A temporal cluster of packet arrivals (Fig. 4's visual groupings).
struct EventCluster {
  sim::SimTime start;
  sim::SimTime end;
  std::size_t packet_count = 0;
  std::size_t first_offset = 0;  // lowest stream offset in the cluster
  std::size_t bytes = 0;
};

/// Group the stream's packet arrivals into clusters separated by gaps of
/// at least `min_gap`. The paper's observation: at low client RTT, the
/// static and dynamic deliveries form two clearly separated clusters; as
/// RTT grows the gap shrinks and the clusters merge.
std::vector<EventCluster> temporal_clusters(const ReassembledStream& stream,
                                            sim::SimTime min_gap);

/// Estimate the static/dynamic boundary from temporal clustering alone:
/// the stream offset at which the second cluster begins (0 if the stream
/// has a single cluster — i.e. RTT beyond the merge threshold).
std::size_t temporal_boundary_estimate(const ReassembledStream& stream,
                                       sim::SimTime min_gap);

}  // namespace dyncdn::analysis
