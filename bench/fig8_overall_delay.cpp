// Figure 8 reproduction (Datasets A): per-node boxplots of the overall
// user-perceived response time (te - tb), Bing-like vs Google-like.
//
// Paper shape: Bing users experience slightly longer and more variable
// overall response times than Google users.
//
// Quick: 40 plotted nodes x 12 reps. DYNCDN_FULL=1: 100 x 30.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "stats/boxplot.hpp"
#include "stats/descriptive.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct Run {
  std::string name;
  // Overall-delay samples per node, node-aligned.
  std::vector<std::pair<std::string, std::vector<double>>> per_node;
  std::vector<double> all;
};

Run run_service(cdn::ServiceProfile profile, std::size_t clients,
                std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = profile;
  opt.client_count = clients;
  opt.seed = 88;

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1100_ms;
  search::KeywordCatalog catalog(8);
  eo.keywords = catalog.figure3_keywords();
  // Sharded one-replica-per-vantage-point; thread-count-invariant results.
  const auto result =
      testbed::run_default_fe_experiment(opt, eo, testbed::ReplicaPlan{});

  Run run;
  run.name = profile.name;
  for (std::size_t i = 0; i < result.per_node_timings.size(); ++i) {
    std::vector<double> overall;
    for (const auto& q : result.per_node_timings[i]) {
      overall.push_back(q.overall_ms);
      run.all.push_back(q.overall_ms);
    }
    if (!overall.empty()) {
      run.per_node.emplace_back(result.per_node[i].node_name,
                                std::move(overall));
    }
  }
  return run;
}

void report(const Run& run, double axis_max) {
  bench::section(run.name + " — per-node overall delay boxplots (ms)");
  for (const auto& [name, samples] : run.per_node) {
    const auto box = stats::boxplot(samples);
    std::printf("%24s %s med=%6.1f\n", name.c_str(),
                stats::ascii_boxplot(box, 0.0, axis_max, 56).c_str(),
                box.median);
  }
}

}  // namespace

int main() {
  const std::size_t clients = bench::full_scale() ? 100 : 40;
  const std::size_t reps = bench::full_scale() ? 30 : 12;
  bench::banner("Figure 8 — overall user-perceived delay per node "
                "(Datasets A)",
                std::to_string(clients) + " vantage points x " +
                    std::to_string(reps) + " reps; axis 0..max");

  Run bing = run_service(cdn::bing_like_profile(), clients, reps);
  Run google = run_service(cdn::google_like_profile(), clients, reps);

  const double axis_max =
      std::max(stats::quantile(bing.all, 0.99), stats::quantile(google.all, 0.99));
  report(google, axis_max);
  report(bing, axis_max);

  bench::section("paper-shape summary");
  const auto b = stats::summarize(bing.all);
  const auto g = stats::summarize(google.all);
  std::printf("%-14s %s\n", bing.name.c_str(), b.to_string().c_str());
  std::printf("%-14s %s\n", google.name.c_str(), g.to_string().c_str());

  // Variability is judged per node (the figure's boxplots are per node):
  // the pooled spread also reflects the across-node RTT distribution,
  // which is not what "queries to queries" variability means.
  auto median_node_iqr = [](const Run& run) {
    std::vector<double> iqrs;
    for (const auto& [name, samples] : run.per_node) {
      iqrs.push_back(stats::iqr(samples));
    }
    return stats::median(iqrs);
  };
  const double b_iqr = median_node_iqr(bing);
  const double g_iqr = median_node_iqr(google);

  std::printf("Bing overall delay longer:        %s (median %.1f vs %.1f)\n",
              b.median > g.median ? "yes" : "no", b.median, g.median);
  std::printf("Bing more variable per node:      %s (median per-node IQR "
              "%.1f vs %.1f)\n",
              b_iqr > g_iqr ? "yes" : "no", b_iqr, g_iqr);
  std::printf("paper shape %s\n",
              (b.median > g.median && b_iqr > g_iqr) ? "HOLDS" : "VIOLATED");
  return 0;
}
