// Conservative parallel discrete-event execution of ONE simulation.
//
// The ReplicaExecutor (replica.hpp) parallelizes across independent
// replicas; this runner parallelizes *inside* a single scenario. The
// topology is partitioned into fixed shards, each with its own Simulator
// kernel (same seed, so named RNG streams are identical everywhere — each
// stream is consumed by exactly one component, which lives in exactly one
// shard). The minimum propagation delay over cross-shard links is the
// lookahead L: an event at time t on one shard can only influence another
// shard at t + L or later, so all shards may safely execute the window
// [tmin, tmin + L) in parallel, where tmin is the global minimum pending
// event time. At the window barrier, packets staged on cross-shard links
// (Network mailboxes) are flushed to their destination kernels in
// deterministic link-creation order, the next window is computed, and the
// cycle repeats.
//
// Scheduling composes with the work-stealing deque (worksteal.hpp): each
// window's shard set is prefilled into one StealDeque; worker 0 pops while
// the others steal, so an expensive shard never serializes the cheap ones
// behind a static assignment. Which worker runs a shard never affects what
// it computes — determinism comes from the fixed shard assignment and the
// ordered mailbox flush, not from scheduling.
//
// Degenerate lookaheads:
//  - one shard              -> literally the serial kernel loop;
//  - L == infinity          -> no cross-shard links: every shard runs to
//                              completion independently (one window);
//  - L == 0 (zero-delay     -> conservative windows cannot make progress;
//    cross-shard link)         fall back to globally-ordered serial
//                              execution, one event at a time, flushing
//                              mailboxes after every event.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dyncdn::net {
class Network;
}  // namespace dyncdn::net

namespace dyncdn::parallel {

struct ShardRunnerConfig {
  /// Worker threads. 0 = DYNCDN_THREADS if set, else hardware concurrency;
  /// always clamped to the shard count.
  std::size_t threads = 0;
};

/// Counters from the most recent run()/run_until() (observability only —
/// never part of the simulation result contract).
struct ShardRunnerStats {
  std::uint64_t windows = 0;
  /// Shard-windows that executed zero events (the shard reached the
  /// barrier having had nothing to do in [tmin, tmin + L)).
  std::uint64_t barrier_stalls = 0;
  /// Wall-clock nanoseconds workers spent blocked in the window barrier,
  /// summed over workers. Wall time, so runtime telemetry only — never
  /// merged into deterministic exports.
  std::uint64_t stall_wall_ns = 0;
  /// Packets staged on cross-shard links and flushed at barriers.
  std::uint64_t cross_shard_packets = 0;
  /// Events executed via the zero-lookahead serial fallback.
  std::uint64_t serial_fallbacks = 0;
  /// The conservative lookahead in force (min cross-shard propagation
  /// delay); infinity when shards are independent.
  sim::SimTime lookahead = sim::SimTime::infinity();
};

class ShardRunner {
 public:
  /// `sims` are the per-shard kernels, index = shard id; `network` must
  /// have been built with Network::set_shards(sims) so cross-shard links
  /// stage into mailboxes. With a single shard every call degenerates to
  /// the serial kernel loop on sims[0].
  ShardRunner(net::Network& network, std::vector<sim::Simulator*> sims,
              ShardRunnerConfig config = {});

  /// Run until every shard's queue (and every mailbox) drains, then align
  /// all shard clocks to the globally last executed event time — the same
  /// final clock the serial kernel would report.
  void run();

  /// Run every event with time <= deadline, then align all shard clocks to
  /// exactly `deadline` (matching Simulator::run_until's force-advance).
  /// Later events stay pending.
  void run_until(sim::SimTime deadline);

  /// Stats accumulate across calls (a scenario warm-up + measurement is
  /// one logical run).
  const ShardRunnerStats& stats() const { return stats_; }

  std::size_t shard_count() const { return sims_.size(); }
  std::size_t threads() const { return threads_; }

 private:
  /// `bound` = latest event time to execute, or SimTime::infinity() to
  /// drain. Returns the global max executed-event clock.
  void run_bounded(sim::SimTime bound);
  void run_windowed(sim::SimTime bound);
  void run_serial_fallback(sim::SimTime bound);
  void align_clocks(sim::SimTime t);

  net::Network& network_;
  std::vector<sim::Simulator*> sims_;
  std::size_t threads_;
  ShardRunnerStats stats_;
};

}  // namespace dyncdn::parallel
