// Simulated packets.
//
// Packets carry a TCP/IP-like header and a zero-copy view into an immutable
// payload buffer. TCP segmentation slices one application buffer into many
// segments without copying; capture taps can retain payload bytes for the
// content analysis the paper performs on full tcpdump payloads.
//
// Allocation discipline (see docs/PERF.md): both the Packet and the payload
// ByteBuf are intrusively refcounted objects served from per-thread slab
// free lists — steady-state per-segment cost is a free-list pop, no heap
// allocation and no shared_ptr control block. Refcounts are deliberately
// NON-atomic: within a shard every reference is touched by one thread, and
// cross-shard handoff only happens through mailbox flushes at window
// barriers (or replica joins), which already synchronize. Blocks released
// on a different thread than they were acquired on migrate to the
// releasing thread's pool.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace dyncdn::net {

/// Immutable shared byte buffer: a slab-allocated header + inline bytes.
/// Always reached through Buffer (below); never constructed directly.
class ByteBuf {
 public:
  const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this) + sizeof(ByteBuf);
  }
  std::size_t size() const { return size_; }

  /// Writable view for the producer filling a freshly allocated buffer.
  /// Must not be used once the buffer is shared (buffers are immutable to
  /// every reader).
  std::uint8_t* mutable_data() {
    return reinterpret_cast<std::uint8_t*>(this) + sizeof(ByteBuf);
  }

 private:
  friend class Buffer;
  friend ByteBuf* allocate_bytebuf(std::size_t size);
  friend void release_bytebuf(ByteBuf* b) noexcept;

  std::uint32_t refs_ = 1;
  std::uint32_t size_ = 0;
  std::uint8_t cls_ = 0;  // size-class index; kHeapClass = plain heap
};

/// Uninitialized buffer of `size` bytes with one reference (Buffer::adopt
/// takes it over). Exposed for producers that serialize straight into the
/// buffer; most callers want make_buffer.
ByteBuf* allocate_bytebuf(std::size_t size);
void release_bytebuf(ByteBuf* b) noexcept;

/// Intrusive handle to an immutable shared ByteBuf. API-compatible with the
/// shared_ptr<const vector> it replaced at the sites that mattered:
/// `buf->data()`, `buf->size()`, truthiness and equality all behave the
/// same; the control block and atomic refcount are gone.
class Buffer {
 public:
  Buffer() = default;
  Buffer(std::nullptr_t) {}  // NOLINT: mirror shared_ptr's null literal
  Buffer(const Buffer& o) : b_(o.b_) {
    if (b_ != nullptr) ++b_->refs_;
  }
  Buffer(Buffer&& o) noexcept : b_(o.b_) { o.b_ = nullptr; }
  Buffer& operator=(const Buffer& o) {
    if (o.b_ != nullptr) ++o.b_->refs_;
    reset();
    b_ = o.b_;
    return *this;
  }
  Buffer& operator=(Buffer&& o) noexcept {
    if (this != &o) {
      reset();
      b_ = o.b_;
      o.b_ = nullptr;
    }
    return *this;
  }
  ~Buffer() { reset(); }

  void reset() {
    if (b_ != nullptr && --b_->refs_ == 0) release_bytebuf(b_);
    b_ = nullptr;
  }

  /// Adopt a reference produced by allocate_bytebuf.
  static Buffer adopt(ByteBuf* b) {
    Buffer out;
    out.b_ = b;
    return out;
  }

  const ByteBuf* operator->() const { return b_; }
  const ByteBuf& operator*() const { return *b_; }
  const ByteBuf* get() const { return b_; }
  explicit operator bool() const { return b_ != nullptr; }
  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.b_ == b.b_;
  }

 private:
  ByteBuf* b_ = nullptr;
};

/// Copy bytes into a fresh slab-backed buffer.
Buffer make_buffer(std::span<const std::uint8_t> bytes);
Buffer make_buffer(std::string_view text);
inline Buffer make_buffer(const std::vector<std::uint8_t>& bytes) {
  return make_buffer(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
}

/// One contiguous (buffer, offset, length) piece of a payload.
struct PayloadSlice {
  Buffer buffer;
  std::size_t offset = 0;
  std::size_t length = 0;

  std::span<const std::uint8_t> bytes() const {
    if (!buffer || length == 0) return {};
    return std::span<const std::uint8_t>(buffer->data() + offset, length);
  }
};

///// A payload view: one primary slice plus an optional chain of
/// continuation slices. A TCP segment gathered across application writes
/// keeps one slice per source buffer instead of copying into a fresh
/// allocation, so cross-chunk segments stay zero-copy through net,
/// capture, and reassembly. `length` is the TOTAL across all slices; the
/// chain is empty in the overwhelmingly common single-buffer case, where
/// this degrades to the plain (buffer, offset, length) view it used to be.
struct PayloadRef {
  Buffer buffer;
  std::size_t offset = 0;
  std::size_t length = 0;
  std::vector<PayloadSlice> chain;  // continuation slices, in stream order

  PayloadRef() = default;
  PayloadRef(Buffer buf, std::size_t off, std::size_t len)
      : buffer(std::move(buf)), offset(off), length(len) {}

  bool chained() const { return !chain.empty(); }
  std::size_t first_length() const {
    std::size_t rest = 0;
    for (const PayloadSlice& s : chain) rest += s.length;
    return length - rest;
  }

  /// Contiguous byte view of the FIRST slice (the whole payload when not
  /// chained). Chained payloads must be walked with for_each_slice.
  std::span<const std::uint8_t> bytes() const {
    if (!buffer || length == 0) return {};
    return std::span<const std::uint8_t>(buffer->data() + offset,
                                         first_length());
  }
  bool empty() const { return length == 0; }

  /// Visit every slice in stream order as a span.
  template <class F>
  void for_each_slice(F&& f) const {
    if (length == 0) return;
    if (buffer) {
      f(std::span<const std::uint8_t>(buffer->data() + offset,
                                      first_length()));
    }
    for (const PayloadSlice& s : chain) f(s.bytes());
  }

  /// Sub-view; clamps to the parent extent. Chain-aware.
  PayloadRef slice(std::size_t off, std::size_t len) const;
  /// Concatenate `tail` after this payload (builds/extends the chain;
  /// physically adjacent views of the same buffer are merged).
  void append(PayloadRef tail);
  std::string to_text() const;
  /// Append every payload byte to `out` (to_text without the temporary).
  void append_to(std::string& out) const;
};

/// TCP header flags.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  std::string to_string() const;
};

/// TCP-like segment header. Sequence/ack numbers are 64-bit byte offsets —
/// the simulator does not model 32-bit wraparound, which never occurs at
/// the transfer sizes of a search response.
struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t window = 0;  // receiver advertised window, bytes
  TcpFlags flags;
};

/// Number of header overhead bytes charged per segment on the wire
/// (IP 20 + TCP 20, options ignored).
inline constexpr std::size_t kHeaderOverheadBytes = 40;

class PacketPtr;

struct Packet {
  NodeId src;
  NodeId dst;
  TcpHeader tcp;
  PayloadRef payload;
  std::uint64_t id = 0;  // globally unique, assigned by the Network

  std::size_t payload_size() const { return payload.length; }
  std::size_t wire_size() const { return payload.length + kHeaderOverheadBytes; }

  FlowId flow_from_sender() const {
    return FlowId{Endpoint{src, tcp.src_port}, Endpoint{dst, tcp.dst_port}};
  }

  /// "5:80 -> 2:40001 seq=1448 ack=89 [ACK] 1448B"
  std::string to_string() const;

 private:
  friend class PacketPtr;
  friend PacketPtr acquire_packet();
  friend void release_packet(Packet* p) noexcept;

  std::uint32_t refs_ = 1;  // non-atomic: see header comment
};

/// Destroy and return the block to the releasing thread's slab.
void release_packet(Packet* p) noexcept;

/// Intrusive shared handle to a slab-allocated Packet. Drop-in for the
/// shared_ptr<Packet> it replaced: capture taps may retain packets
/// arbitrarily long; the storage goes back to the slab of the releasing
/// thread when the last reference drops.
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(std::nullptr_t) {}  // NOLINT: mirror shared_ptr's null literal
  PacketPtr(const PacketPtr& o) : p_(o.p_) {
    if (p_ != nullptr) ++p_->refs_;
  }
  PacketPtr(PacketPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PacketPtr& operator=(const PacketPtr& o) {
    if (o.p_ != nullptr) ++o.p_->refs_;
    reset();
    p_ = o.p_;
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept {
    if (this != &o) {
      reset();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~PacketPtr() { reset(); }

  void reset() {
    if (p_ != nullptr && --p_->refs_ == 0) release_packet(p_);
    p_ = nullptr;
  }

  Packet* operator->() const { return p_; }
  Packet& operator*() const { return *p_; }
  Packet* get() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }
  friend bool operator==(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ == b.p_;
  }

  /// References to the pointee (tests/debugging).
  std::uint32_t use_count() const { return p_ == nullptr ? 0 : p_->refs_; }

 private:
  friend PacketPtr acquire_packet();
  explicit PacketPtr(Packet* adopted) : p_(adopted) {}

  Packet* p_ = nullptr;
};

/// Allocate a zeroed Packet from a thread-local slab free list. The
/// per-segment cost on the TCP hot path is a free-list pop instead of a
/// heap allocation, and the returned PacketPtr bumps a plain (non-atomic)
/// intrusive count instead of a shared_ptr control block.
PacketPtr acquire_packet();

/// Pool introspection (tests): blocks currently cached on this thread.
std::size_t packet_pool_free_count();
/// Pool introspection (tests): cached payload-buffer blocks on this thread.
std::size_t buffer_pool_free_count();

}  // namespace dyncdn::net
