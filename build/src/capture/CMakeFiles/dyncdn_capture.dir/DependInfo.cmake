
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/recorder.cpp" "src/capture/CMakeFiles/dyncdn_capture.dir/recorder.cpp.o" "gcc" "src/capture/CMakeFiles/dyncdn_capture.dir/recorder.cpp.o.d"
  "/root/repo/src/capture/serialize.cpp" "src/capture/CMakeFiles/dyncdn_capture.dir/serialize.cpp.o" "gcc" "src/capture/CMakeFiles/dyncdn_capture.dir/serialize.cpp.o.d"
  "/root/repo/src/capture/trace.cpp" "src/capture/CMakeFiles/dyncdn_capture.dir/trace.cpp.o" "gcc" "src/capture/CMakeFiles/dyncdn_capture.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dyncdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
