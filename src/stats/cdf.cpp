#include "stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dyncdn::stats {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::sample_points(
    std::size_t count) const {
  std::vector<std::pair<double, double>> pts;
  if (sorted_.empty() || count == 0) return pts;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double x =
        (count == 1)
            ? hi
            : lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(count - 1);
    pts.emplace_back(x, at(x));
  }
  return pts;
}

KsResult ks_test(std::span<const double> a, std::span<const double> b) {
  assert(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());

  // Walk the merged order computing the max CDF gap.
  double d = 0.0;
  std::size_t i = 0, j = 0;
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }

  KsResult res;
  res.statistic = d;
  // Asymptotic Kolmogorov distribution: p = 2 * sum (-1)^{k-1} exp(-2 k² λ²)
  const double en = std::sqrt(na * nb / (na + nb));
  const double lambda = (en + 0.12 + 0.11 / en) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  res.p_value = std::clamp(2.0 * p, 0.0, 1.0);
  return res;
}

}  // namespace dyncdn::stats
