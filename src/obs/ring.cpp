#include "obs/ring.hpp"

#include <cstring>

#include "obs/trace.hpp"

namespace dyncdn::obs {

namespace {

constexpr char kMagic[8] = {'D', 'C', 'O', 'B', 'S', 'R', '0', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

class Reader {
 public:
  Reader(const std::string& bytes, std::size_t pos)
      : bytes_(bytes), pos_(pos) {}

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len) || pos_ + len > bytes_.size()) return false;
    s.assign(bytes_, pos_, len);
    pos_ += len;
    return true;
  }

  std::size_t pos() const { return pos_; }
  bool done() const { return pos_ >= bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t pos_;
};

std::optional<SpanRecord> decode_one(Reader& r) {
  SpanRecord span;
  std::uint64_t u = 0;
  std::uint32_t replica = 0;
  if (!r.u64(u)) return std::nullopt;
  span.id = u;
  if (!r.u64(u)) return std::nullopt;
  span.parent = u;
  if (!r.u32(replica)) return std::nullopt;
  span.replica = replica;
  if (!r.u64(u)) return std::nullopt;
  span.start = sim::SimTime::nanoseconds(static_cast<std::int64_t>(u));
  if (!r.u64(u)) return std::nullopt;
  span.end = sim::SimTime::nanoseconds(static_cast<std::int64_t>(u));
  if (!r.str(span.name)) return std::nullopt;
  if (!r.str(span.category)) return std::nullopt;
  span.open = false;
  return span;
}

}  // namespace

std::string RingBuffer::encode(const SpanRecord& span) {
  std::string out;
  out.reserve(44 + span.name.size() + span.category.size());
  put_u64(out, span.id);
  put_u64(out, span.parent);
  put_u32(out, span.replica);
  put_u64(out, static_cast<std::uint64_t>(span.start.ns()));
  put_u64(out, static_cast<std::uint64_t>(span.end.ns()));
  put_str(out, span.name);
  put_str(out, span.category);
  return out;
}

void RingBuffer::append(const SpanRecord& span) {
  std::string encoded = encode(span);
  ++appended_;
  if (encoded.size() > capacity_) {
    ++evicted_;  // cannot fit even alone
    return;
  }
  used_ += encoded.size();
  records_.push_back(std::move(encoded));
  while (used_ > capacity_) {
    used_ -= records_.front().size();
    records_.pop_front();
    ++evicted_;
  }
}

std::vector<SpanRecord> RingBuffer::decode_all() const {
  std::vector<SpanRecord> out;
  out.reserve(records_.size());
  for (const auto& rec : records_) {
    Reader r(rec, 0);
    if (auto span = decode_one(r)) out.push_back(std::move(*span));
  }
  return out;
}

std::string RingBuffer::dump() const {
  std::string out(kMagic, sizeof(kMagic));
  for (const auto& rec : records_) {
    put_u32(out, static_cast<std::uint32_t>(rec.size()));
    out.append(rec);
  }
  return out;
}

std::optional<std::vector<SpanRecord>> RingBuffer::load(
    const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::vector<SpanRecord> out;
  std::size_t pos = sizeof(kMagic);
  while (pos < bytes.size()) {
    Reader header(bytes, pos);
    std::uint32_t len = 0;
    if (!header.u32(len) || header.pos() + len > bytes.size()) {
      return std::nullopt;
    }
    Reader body(bytes, header.pos());
    auto span = decode_one(body);
    if (!span || body.pos() != header.pos() + len) return std::nullopt;
    out.push_back(std::move(*span));
    pos = header.pos() + len;
  }
  return out;
}

}  // namespace dyncdn::obs
