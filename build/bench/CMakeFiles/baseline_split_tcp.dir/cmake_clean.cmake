file(REMOVE_RECURSE
  "CMakeFiles/baseline_split_tcp.dir/baseline_split_tcp.cpp.o"
  "CMakeFiles/baseline_split_tcp.dir/baseline_split_tcp.cpp.o.d"
  "baseline_split_tcp"
  "baseline_split_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_split_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
