// DNS subsystem tests: resolution protocol, CDN-style redirection policy,
// stub caching, and failure modes.
#include <gtest/gtest.h>

#include <memory>

#include "dns/resolver.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::dns {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

struct DnsFixture {
  DnsFixture() : simulator(3), network(simulator) {
    client_node = &network.add_node("client");
    dns_node = &network.add_node("dns");
    net::LinkConfig link;
    link.propagation_delay = 3_ms;
    network.connect(*client_node, *dns_node, link);

    cdn::LoadModel service;
    service.median_ms = 1.0;
    service.sigma = 0.0;
    server = std::make_unique<DnsServer>(*dns_node, service);
    client_stack = std::make_unique<tcp::TcpStack>(*client_node);
    client = std::make_unique<DnsClient>(*client_stack, server->endpoint());
  }

  ResolveResult resolve(const std::string& name) {
    ResolveResult out;
    client->resolve(name, [&](const ResolveResult& r) { out = r; });
    simulator.run();
    return out;
  }

  sim::Simulator simulator;
  net::Network network;
  net::Node* client_node = nullptr;
  net::Node* dns_node = nullptr;
  std::unique_ptr<DnsServer> server;
  std::unique_ptr<tcp::TcpStack> client_stack;
  std::unique_ptr<DnsClient> client;
};

TEST(Dns, ResolvesRegisteredName) {
  DnsFixture f;
  f.server->add_record("search.example", {net::NodeId{42}, 80});
  const ResolveResult r = f.resolve("search.example");
  EXPECT_FALSE(r.failed) << r.error;
  EXPECT_EQ(r.endpoint.node, net::NodeId{42});
  EXPECT_EQ(r.endpoint.port, 80);
  EXPECT_EQ(f.server->queries_served(), 1u);
}

TEST(Dns, ResolutionTimeCoversRttAndService) {
  DnsFixture f;
  f.server->add_record("search.example", {net::NodeId{42}, 80});
  const ResolveResult r = f.resolve("search.example");
  // Handshake (1 RTT) + query (1 RTT) + 1ms service; RTT = 6ms.
  EXPECT_NEAR(r.duration().to_milliseconds(), 13.0, 1.5);
}

TEST(Dns, UnknownNameFails) {
  DnsFixture f;
  const ResolveResult r = f.resolve("missing.example");
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.error, "NXDOMAIN");
}

TEST(Dns, RoundRobinOverCandidates) {
  DnsFixture f;
  f.client->set_cache_ttl(SimTime::zero());  // force fresh lookups
  f.server->add_record("svc", {net::NodeId{1}, 80});
  f.server->add_record("svc", {net::NodeId{2}, 80});
  f.server->add_record("svc", {net::NodeId{3}, 80});
  std::vector<std::uint32_t> answers;
  for (int i = 0; i < 6; ++i) {
    answers.push_back(f.resolve("svc").endpoint.node.value());
  }
  EXPECT_EQ(answers, (std::vector<std::uint32_t>{1, 2, 3, 1, 2, 3}));
}

TEST(Dns, RedirectionPolicySeesQuerier) {
  DnsFixture f;
  f.server->add_record("svc", {net::NodeId{10}, 80});
  f.server->add_record("svc", {net::NodeId{20}, 80});
  net::NodeId seen_querier;
  f.server->set_policy([&](net::NodeId querier,
                           const std::vector<net::Endpoint>& cands) {
    seen_querier = querier;
    return cands.back();  // always the second candidate
  });
  const ResolveResult r = f.resolve("svc");
  EXPECT_EQ(seen_querier, f.client_node->id());
  EXPECT_EQ(r.endpoint.node, net::NodeId{20});
}

TEST(Dns, StubCacheShortCircuitsRepeatLookups) {
  DnsFixture f;
  f.server->add_record("svc", {net::NodeId{5}, 80});
  const ResolveResult first = f.resolve("svc");
  const ResolveResult second = f.resolve("svc");
  EXPECT_FALSE(second.failed);
  EXPECT_EQ(second.endpoint.node, net::NodeId{5});
  EXPECT_EQ(second.duration(), SimTime::zero());  // served from cache
  EXPECT_EQ(f.client->cache_hits(), 1u);
  EXPECT_EQ(f.client->lookups_sent(), 1u);
  EXPECT_EQ(f.server->queries_served(), 1u);
  EXPECT_GT(first.duration(), SimTime::zero());
}

TEST(Dns, CacheExpiresAfterTtl) {
  DnsFixture f;
  f.client->set_cache_ttl(5_s);
  f.server->add_record("svc", {net::NodeId{5}, 80});
  f.resolve("svc");
  f.simulator.run_until(f.simulator.now() + 10_s);
  f.resolve("svc");
  EXPECT_EQ(f.client->lookups_sent(), 2u);
}

TEST(Dns, ResolverFailureReportsError) {
  // No DNS server at all: the connection is reset; the client must report
  // failure rather than hang.
  sim::Simulator simulator(4);
  net::Network network(simulator);
  net::Node& client_node = network.add_node("client");
  net::Node& other = network.add_node("other");
  net::LinkConfig link;
  link.propagation_delay = 3_ms;
  network.connect(client_node, other, link);
  tcp::TcpStack other_stack(other);  // no listener on 53
  tcp::TcpStack stack(client_node);
  DnsClient client(stack, net::Endpoint{other.id(), kDnsPort});

  ResolveResult out;
  bool called = false;
  client.resolve("svc", [&](const ResolveResult& r) {
    out = r;
    called = true;
  });
  simulator.run();
  EXPECT_TRUE(called);
  EXPECT_TRUE(out.failed);
  EXPECT_FALSE(out.error.empty());
}

}  // namespace
}  // namespace dyncdn::dns
