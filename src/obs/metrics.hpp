// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Designed for the sharded replica engine: each replica owns a private
// registry (no locks, no atomics — replicas never share one), and the
// coordinator merges shard registries *in shard-index order* after the
// executor joins. Every merge operation is commutative over equal key
// sets (counters add, gauges take max, histogram bins add), so the merged
// registry is bit-identical at any thread count.
//
// Metric names follow Prometheus conventions (snake_case, `_total` suffix
// for monotonic counters); see docs/OBSERVABILITY.md for the catalog.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dyncdn::obs {

// Log-scale histogram of non-negative double samples (milliseconds in
// practice). Bucket upper bounds form a fixed geometric ladder so that two
// histograms are always merge-compatible without negotiation.
class Histogram {
 public:
  Histogram();

  void observe(double value);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Parallel arrays: upper_bounds()[i] is the inclusive upper bound of
  // bucket i; the final bucket is +Inf. Cumulative counts (Prometheus
  // `le` semantics) are computed by the exporter.
  static const std::vector<double>& upper_bounds();
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

  // Quantile estimate from the bucket counts with log-bucket (geometric)
  // interpolation inside the hit bucket, matching the geometric bound
  // ladder; linear only in bucket 0 (whose lower edge is zero). Clamped
  // to the observed [min, max].
  double quantile(double q) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Counters are monotonic uint64 values; add() creates on first use.
  void add(const std::string& name, std::uint64_t delta);
  std::uint64_t counter(const std::string& name) const;  // 0 if absent

  // Gauges are "high-water mark" values: set() keeps the max seen, which
  // is the only gauge-merge rule that is order-independent across shards.
  void gauge_max(const std::string& name, std::int64_t value);
  std::int64_t gauge(const std::string& name) const;  // 0 if absent

  void observe(const std::string& name, double value);
  const Histogram* histogram(const std::string& name) const;

  // Merge `other` into this registry. Deterministic for any merge order
  // over the same multiset of shard registries.
  void merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Ordered iteration for the exporters (std::map keeps names sorted, so
  // export output is canonical without an extra sort).
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::int64_t>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dyncdn::obs
