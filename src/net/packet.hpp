// Simulated packets.
//
// Packets carry a TCP/IP-like header and a zero-copy view into an immutable
// payload buffer. TCP segmentation slices one application buffer into many
// segments without copying; capture taps can retain payload bytes for the
// content analysis the paper performs on full tcpdump payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace dyncdn::net {

/// Immutable shared byte buffer.
using Buffer = std::shared_ptr<const std::vector<std::uint8_t>>;

inline Buffer make_buffer(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}
Buffer make_buffer(std::string_view text);

/// A (buffer, offset, length) view. Empty view has length 0.
struct PayloadRef {
  Buffer buffer;
  std::size_t offset = 0;
  std::size_t length = 0;

  std::span<const std::uint8_t> bytes() const {
    if (!buffer || length == 0) return {};
    return std::span<const std::uint8_t>(buffer->data() + offset, length);
  }
  bool empty() const { return length == 0; }

  /// Sub-view; clamps to the parent extent.
  PayloadRef slice(std::size_t off, std::size_t len) const;
  std::string to_text() const;
};

/// TCP header flags.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  std::string to_string() const;
};

/// TCP-like segment header. Sequence/ack numbers are 64-bit byte offsets —
/// the simulator does not model 32-bit wraparound, which never occurs at
/// the transfer sizes of a search response.
struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t window = 0;  // receiver advertised window, bytes
  TcpFlags flags;
};

/// Number of header overhead bytes charged per segment on the wire
/// (IP 20 + TCP 20, options ignored).
inline constexpr std::size_t kHeaderOverheadBytes = 40;

struct Packet {
  NodeId src;
  NodeId dst;
  TcpHeader tcp;
  PayloadRef payload;
  std::uint64_t id = 0;  // globally unique, assigned by the Network

  std::size_t payload_size() const { return payload.length; }
  std::size_t wire_size() const { return payload.length + kHeaderOverheadBytes; }

  FlowId flow_from_sender() const {
    return FlowId{Endpoint{src, tcp.src_port}, Endpoint{dst, tcp.dst_port}};
  }

  /// "5:80 -> 2:40001 seq=1448 ack=89 [ACK] 1448B"
  std::string to_string() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/// Allocate a zeroed Packet from a thread-local pool. The shared_ptr control
/// block and the Packet come from one recycled allocation, so the per-segment
/// cost on the TCP hot path is a free-list pop instead of two heap
/// allocations. Returned packets are ordinary PacketPtrs: capture taps may
/// retain them arbitrarily long; the storage goes back to the pool of the
/// releasing thread when the last reference drops.
PacketPtr acquire_packet();

/// Pool introspection (tests): blocks currently cached on this thread.
std::size_t packet_pool_free_count();

}  // namespace dyncdn::net
