// Baseline comparison (the Pathak et al. [9] experiment the paper builds
// on): end-to-end response time with a split-TCP front-end vs connecting
// directly to the back-end data center, across client RTT and last-mile
// loss rates (§6's lossy-wireless discussion).
//
// Shapes to reproduce:
//  - at small client RTT, the two paths are comparable (fetch dominates);
//  - as RTT grows, split TCP wins and the margin widens;
//  - last-mile loss widens the margin further (local retransmissions and
//    the FE's already-open congestion window vs end-to-end recovery).
//
// Quick: 10 reps per cell. DYNCDN_FULL=1: 30.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct Cell {
  double via_fe_ms = 0;
  double direct_ms = 0;
  std::size_t failures = 0;
};

/// Controlled topology: client --(rtt/2, loss)-- FE --(5ms)-- BE, plus a
/// direct client--BE path of the same total propagation delay and loss.
Cell run_cell(double client_rtt_ms, double loss, std::size_t reps,
              std::uint64_t seed) {
  sim::Simulator simulator(seed);
  net::Network network(simulator);
  search::ContentModel content(search::ContentProfile{}, "Baseline");

  net::Node& client_node = network.add_node("client");
  net::Node& fe_node = network.add_node("fe");
  net::Node& be_node = network.add_node("be");

  const auto loss_factory = [loss]() -> std::unique_ptr<net::LossModel> {
    return net::make_bernoulli_loss(loss);
  };

  net::LinkConfig access;
  access.propagation_delay = sim::SimTime::from_milliseconds(client_rtt_ms / 2);
  access.bandwidth_bps = 50e6;
  if (loss > 0) access.loss_factory = loss_factory;
  network.connect(client_node, fe_node, access);

  net::LinkConfig internal;
  internal.propagation_delay = 5_ms;
  internal.bandwidth_bps = 1e9;
  network.connect(fe_node, be_node, internal);

  net::LinkConfig direct;
  direct.propagation_delay =
      sim::SimTime::from_milliseconds(client_rtt_ms / 2) + 5_ms;
  direct.bandwidth_bps = 50e6;
  if (loss > 0) direct.loss_factory = loss_factory;
  network.connect(client_node, be_node, direct);

  const cdn::ServiceProfile profile = cdn::google_like_profile();
  cdn::BackendDataCenter::Config be_cfg;
  be_cfg.name = "baseline-be";
  be_cfg.processing = profile.processing;
  be_cfg.tcp = profile.internal_tcp;
  cdn::BackendDataCenter backend(be_node, content, be_cfg);

  cdn::FrontEndServer::Config fe_cfg;
  fe_cfg.name = "baseline-fe";
  fe_cfg.backend = backend.fetch_endpoint();
  fe_cfg.service.median_ms = 2.0;
  fe_cfg.service.sigma = 0.05;
  fe_cfg.client_tcp = profile.client_tcp;
  fe_cfg.backend_tcp = profile.internal_tcp;
  cdn::FrontEndServer frontend(fe_node, content, fe_cfg);

  cdn::QueryClient client(client_node, profile.client_tcp);
  simulator.run_until(simulator.now() + 3_s);  // warm the FE<->BE path

  const search::Keyword keyword{"baseline comparison",
                                search::KeywordClass::kGranular, 100};

  Cell cell;
  std::vector<double> via_fe, direct_ms;
  for (std::size_t r = 0; r < reps; ++r) {
    cdn::QueryResult rf, rd;
    client.submit(frontend.client_endpoint(), keyword,
                  [&](const cdn::QueryResult& res) { rf = res; });
    simulator.run();
    client.submit(backend.direct_endpoint(), keyword,
                  [&](const cdn::QueryResult& res) { rd = res; });
    simulator.run();
    if (rf.failed || rd.failed) {
      ++cell.failures;
      continue;
    }
    via_fe.push_back(rf.overall_delay().to_milliseconds());
    direct_ms.push_back(rd.overall_delay().to_milliseconds());
  }
  cell.via_fe_ms = stats::median(via_fe);
  cell.direct_ms = stats::median(direct_ms);
  return cell;
}

}  // namespace

int main() {
  const std::size_t reps = bench::full_scale() ? 80 : 24;
  bench::banner("Baseline — split TCP (via FE) vs direct-to-BE",
                "median overall delay (ms), " + std::to_string(reps) +
                    " reps per cell");

  const double rtts[] = {5, 20, 50, 100, 200};
  const double losses[] = {0.0, 0.01, 0.03};

  for (const double loss : losses) {
    bench::section("last-mile loss = " + std::to_string(loss));
    std::printf("%12s %12s %12s %10s\n", "clientRTT", "via FE", "direct",
                "speedup");
    for (const double rtt : rtts) {
      const Cell cell = run_cell(
          rtt, loss, reps,
          1000 + static_cast<std::uint64_t>(rtt) +
              static_cast<std::uint64_t>(loss * 1e4));
      std::printf("%12.0f %12.1f %12.1f %9.2fx%s\n", rtt, cell.via_fe_ms,
                  cell.direct_ms, cell.direct_ms / cell.via_fe_ms,
                  cell.failures > 0
                      ? (" (" + std::to_string(cell.failures) + " failed)")
                            .c_str()
                      : "");
    }
  }

  std::printf(
      "\npaper shapes: split TCP's advantage grows with client RTT and "
      "with\nlast-mile loss; at very small RTT both paths converge to the "
      "fetch time.\n");
  return 0;
}
