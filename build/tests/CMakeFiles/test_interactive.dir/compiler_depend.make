# Empty compiler generated dependencies file for test_interactive.
# This may be replaced when dependencies are built.
