# Empty compiler generated dependencies file for test_tcp_state.
# This may be replaced when dependencies are built.
