# Empty dependencies file for dyncdn_sim.
# This may be replaced when dependencies are built.
