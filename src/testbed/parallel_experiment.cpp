#include "testbed/parallel_experiment.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/inference.hpp"
#include "stats/descriptive.hpp"

namespace dyncdn::testbed {

namespace {

/// Contiguous block partition of [0, clients) into `shards` groups. The
/// partition depends only on (clients, shards) — never on thread count —
/// which is what makes merged results thread-count-invariant.
std::vector<std::vector<std::size_t>> partition_clients(std::size_t clients,
                                                        std::size_t shards) {
  std::vector<std::vector<std::size_t>> groups(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t lo = s * clients / shards;
    const std::size_t hi = (s + 1) * clients / shards;
    for (std::size_t i = lo; i < hi; ++i) groups[s].push_back(i);
  }
  return groups;
}

std::size_t resolve_shards(const ReplicaPlan& plan, std::size_t clients) {
  if (clients == 0) {
    throw std::invalid_argument("sharded experiment: no vantage points");
  }
  const std::size_t requested = plan.shards == 0 ? clients : plan.shards;
  return std::min(requested, clients);
}

ExperimentResult run_sharded(const ScenarioOptions& base,
                             const ExperimentOptions& options,
                             const ReplicaPlan& plan,
                             std::optional<std::size_t> fixed_fe) {
  const std::size_t clients = planned_client_count(base);
  const std::size_t shards = resolve_shards(plan, clients);
  const auto groups = partition_clients(clients, shards);

  parallel::ReplicaExecutor executor(plan.executor);
  auto shard_results =
      executor.run(shards, [&](std::size_t s) -> ExperimentResult {
        Scenario scenario(base);  // same seed -> identical topology everywhere
        scenario.warm_up(plan.warm_up);
        auto& scenario_clients = scenario.clients();
        const auto fe_for_client = [&](std::size_t i) {
          return fixed_fe ? *fixed_fe : scenario_clients[i].default_fe;
        };
        return run_experiment_subset(scenario, options, groups[s],
                                     fe_for_client);
      });

  // Scatter shard results back into fleet order. Metrics and traces merge
  // by shard index — never completion order — so the output is identical
  // at every thread count.
  ExperimentResult merged;
  merged.boundary = shard_results.front().boundary;
  merged.discovery_fetches = shard_results.front().discovery_fetches;
  merged.flight = obs::FlightRecorder(options.flight);
  merged.per_node.resize(clients);
  merged.per_node_timings.resize(clients);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t k = 0; k < groups[s].size(); ++k) {
      merged.per_node[groups[s][k]] = std::move(shard_results[s].per_node[k]);
      merged.per_node_timings[groups[s][k]] =
          std::move(shard_results[s].per_node_timings[k]);
    }
    merged.metrics.merge(shard_results[s].metrics);
    merged.kernel_metrics.merge(shard_results[s].kernel_metrics);
    // Telemetry merges in replica-index order: time-series rows align by
    // absolute tick and sum, attribution histograms add bins, flight
    // entries concatenate — all thread-count invariant.
    merged.timeseries.merge(shard_results[s].timeseries);
    merged.attribution.merge(shard_results[s].attribution);
    merged.flight.merge(shard_results[s].flight);
    if (shard_results[s].trace) {
      if (!merged.trace) {
        merged.trace = std::make_shared<obs::TraceSession>();
      }
      merged.trace->merge_from(std::move(*shard_results[s].trace),
                               static_cast<std::uint32_t>(s));
    }
  }
  merged.executor_stats = executor.last_stats();
  return merged;
}

}  // namespace

std::size_t planned_client_count(const ScenarioOptions& options) {
  if (options.fe_distance_sweep_miles) {
    return options.fe_distance_sweep_miles->size();
  }
  return options.client_count;
}

ExperimentResult run_fixed_fe_experiment(const ScenarioOptions& scenario_options,
                                         std::size_t fe_index,
                                         const ExperimentOptions& options,
                                         const ReplicaPlan& plan) {
  return run_sharded(scenario_options, options, plan, fe_index);
}

ExperimentResult run_default_fe_experiment(
    const ScenarioOptions& scenario_options, const ExperimentOptions& options,
    const ReplicaPlan& plan) {
  return run_sharded(scenario_options, options, plan, std::nullopt);
}

FetchFactoringResult run_fetch_factoring_experiment(
    const ScenarioOptions& scenario_options, const search::Keyword& keyword,
    std::size_t reps, const ReplicaPlan& plan) {
  if (!scenario_options.fe_distance_sweep_miles) {
    throw std::logic_error(
        "fetch-factoring requires fe_distance_sweep_miles in the scenario");
  }
  const std::size_t points = planned_client_count(scenario_options);
  const std::size_t shards = resolve_shards(plan, points);
  const auto groups = partition_clients(points, shards);

  struct ShardSeries {
    std::vector<double> distances_miles;
    std::vector<double> med_t_dynamic_ms;
    obs::MetricsRegistry metrics;
  };

  parallel::ReplicaExecutor executor(plan.executor);
  auto shard_results = executor.run(shards, [&](std::size_t s) -> ShardSeries {
    Scenario scenario(scenario_options);
    scenario.warm_up(plan.warm_up);
    auto& clients = scenario.clients();
    auto& fes = scenario.fes();
    const std::size_t boundary = discover_boundary(scenario, 0, 0);
    scenario.set_stream_boundary(boundary);

    for (const std::size_t i : groups[s]) {
      clients[i].query_client->submit_repeated(
          scenario.fe_endpoint(i), keyword, reps,
          sim::SimTime::milliseconds(1700), [](const cdn::QueryResult&) {});
    }
    scenario.run();

    ShardSeries series;
    for (const std::size_t i : groups[s]) {
      if (!clients[i].recorder) continue;
      const auto timelines = analyze_client_trace(clients[i], boundary);
      if (timelines.empty()) continue;
      series.distances_miles.push_back(fes[i].distance_to_be_miles);
      series.med_t_dynamic_ms.push_back(
          stats::median(core::extract_dynamic(timelines)));
    }
    scenario.collect_metrics(series.metrics);
    return series;
  });

  FetchFactoringResult result;
  for (const ShardSeries& s : shard_results) {
    result.distances_miles.insert(result.distances_miles.end(),
                                  s.distances_miles.begin(),
                                  s.distances_miles.end());
    result.med_t_dynamic_ms.insert(result.med_t_dynamic_ms.end(),
                                   s.med_t_dynamic_ms.begin(),
                                   s.med_t_dynamic_ms.end());
    result.metrics.merge(s.metrics);
  }
  result.factoring = core::factor_fetch_time(result.distances_miles,
                                             result.med_t_dynamic_ms);
  return result;
}

}  // namespace dyncdn::testbed
