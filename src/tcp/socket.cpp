#include "tcp/socket.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "tcp/stack.hpp"

namespace dyncdn::tcp {

std::string to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpSocket::TcpSocket(TcpStack& stack, net::FlowId flow, TcpConfig config,
                     Callbacks callbacks, bool passive)
    : stack_(stack),
      flow_(flow),
      config_(config),
      callbacks_(std::move(callbacks)),
      passive_(passive) {
  // Relative sequence numbers, like tcpdump's default rendering: the SYN
  // occupies sequence 0, application data starts at 1.
  iss_ = 0;
  snd_una_ = iss_;
  snd_nxt_ = iss_;
  buf_seq_base_ = iss_ + 1;
  cwnd_ = config_.initial_cwnd_segments * config_.mss;
  ssthresh_ = config_.initial_ssthresh;
}

// ---------------------------------------------------------------------------
// Application interface
// ---------------------------------------------------------------------------

void TcpSocket::send(net::PayloadRef data) {
  if (fin_queued_) {
    throw std::logic_error("TcpSocket::send after close()");
  }
  if (data.empty()) return;
  buf_bytes_ += data.length;
  send_buf_.push_back(std::move(data));
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    try_send_data();
  }
}

void TcpSocket::send_text(std::string_view text) {
  net::Buffer buf = net::make_buffer(text);
  send(net::PayloadRef{buf, 0, buf->size()});
}

void TcpSocket::close() {
  if (fin_queued_) return;
  fin_queued_ = true;
  if (state_ == TcpState::kEstablished || state_ == TcpState::kCloseWait) {
    send_fin_if_ready();
  }
}

void TcpSocket::abort() {
  net::TcpFlags rst;
  rst.rst = true;
  rst.ack = true;
  emit(rst, snd_nxt_, {});
  finish_close();
}

std::size_t TcpSocket::unacked_bytes() const {
  return static_cast<std::size_t>(snd_nxt_ - snd_una_);
}

void TcpSocket::attach_trace([[maybe_unused]] obs::TraceSession* session,
                             [[maybe_unused]] obs::SpanId span) {
#if DYNCDN_OBS
  trace_ = session;
  trace_span_ = span;
  if (trace_ != nullptr && state_ == TcpState::kSynSent) {
    // connect() emitted the SYN synchronously in this same event, so
    // now() is exactly the SYN's wire timestamp (= the paper's tb).
    trace_->add_event(trace_span_, "syn", stack_.simulator().now());
  }
#endif
}

// ---------------------------------------------------------------------------
// Connection establishment
// ---------------------------------------------------------------------------

void TcpSocket::start_connect() {
  assert(state_ == TcpState::kClosed && !passive_);
  state_ = TcpState::kSynSent;
  net::TcpFlags syn;
  syn.syn = true;
  emit(syn, iss_, {});
  snd_nxt_ = iss_ + 1;
  // Time the handshake for the first RTT sample.
  timing_segment_ = true;
  timed_seq_ = snd_nxt_;
  timed_sent_at_ = stack_.simulator().now();
  arm_rto();
}

void TcpSocket::on_syn(const net::PacketPtr& syn) {
  assert(passive_);
  state_ = TcpState::kSynReceived;
  irs_ = syn->tcp.seq;
  rcv_nxt_ = irs_ + 1;
  peer_window_ = syn->tcp.window;

  net::TcpFlags synack;
  synack.syn = true;
  synack.ack = true;
  emit(synack, iss_, {});
  snd_nxt_ = iss_ + 1;
  timing_segment_ = true;
  timed_seq_ = snd_nxt_;
  timed_sent_at_ = stack_.simulator().now();
  arm_rto();
}

// ---------------------------------------------------------------------------
// Packet arrival
// ---------------------------------------------------------------------------

void TcpSocket::on_packet(const net::PacketPtr& p) {
  if (p->tcp.flags.rst) {
    finish_close();
    return;
  }

  switch (state_) {
    case TcpState::kClosed:
      return;  // stray packet after teardown

    case TcpState::kSynSent: {
      if (p->tcp.flags.syn && p->tcp.flags.ack && p->tcp.ack == snd_nxt_) {
#if DYNCDN_OBS
        if (trace_ != nullptr) {
          trace_->add_event(trace_span_, "synack",
                            stack_.simulator().now());
        }
#endif
        irs_ = p->tcp.seq;
        rcv_nxt_ = irs_ + 1;
        peer_window_ = p->tcp.window;
        snd_una_ = p->tcp.ack;
        if (timing_segment_ && p->tcp.ack >= timed_seq_) {
          take_rtt_sample(stack_.simulator().now() - timed_sent_at_);
          timing_segment_ = false;
        }
        disarm_rto();
        state_ = TcpState::kEstablished;
        send_ack_now();
        if (callbacks_.on_connected) callbacks_.on_connected();
        try_send_data();
        send_fin_if_ready();
      }
      return;
    }

    case TcpState::kSynReceived: {
      if (p->tcp.flags.syn && !p->tcp.flags.ack) {
        // Retransmitted SYN (our SYN-ACK was lost): answer again.
        net::TcpFlags synack;
        synack.syn = true;
        synack.ack = true;
        emit(synack, iss_, {});
        return;
      }
      if (p->tcp.flags.ack && p->tcp.ack >= snd_nxt_) {
        snd_una_ = p->tcp.ack;
        if (timing_segment_ && p->tcp.ack >= timed_seq_) {
          take_rtt_sample(stack_.simulator().now() - timed_sent_at_);
          timing_segment_ = false;
        }
        disarm_rto();
        state_ = TcpState::kEstablished;
        if (callbacks_.on_connected) callbacks_.on_connected();
        // The handshake ACK may carry data (or a FIN) — fall through.
        handle_established_packet(p);
        try_send_data();
        send_fin_if_ready();
      }
      return;
    }

    default:
      handle_established_packet(p);
  }
}

void TcpSocket::handle_established_packet(const net::PacketPtr& p) {
#if DYNCDN_OBS
  if (trace_ != nullptr) {
    // Mirror what a packet capture at this node records, so the span's
    // timeline reconstruction matches analysis/timeline bit-for-bit:
    // the first ACK covering data is t2, and every payload-bearing
    // arrival (duplicates included — capture sees those too) is an "rx"
    // segment keyed by its server-relative stream offset.
    if (!trace_ack_data_ && p->tcp.flags.ack && p->tcp.ack > iss_ + 1) {
      trace_ack_data_ = true;
      trace_->add_event(trace_span_, "ack_data", stack_.simulator().now());
    }
    if (!p->payload.empty() && p->tcp.seq >= irs_ + 1) {
      trace_->add_event(
          trace_span_, "rx", stack_.simulator().now(),
          {obs::Arg{"off", obs::ArgValue::of(static_cast<std::int64_t>(
                               p->tcp.seq - (irs_ + 1)))},
           obs::Arg{"len", obs::ArgValue::of(static_cast<std::int64_t>(
                               p->payload.length))}});
    }
  }
#endif
  if (p->tcp.flags.ack) process_ack(p);
  if (state_ == TcpState::kClosed) return;  // teardown completed in ACK path
  if (!p->payload.empty()) process_payload(p);
  if (p->tcp.flags.fin) process_fin(p);
}

// ---------------------------------------------------------------------------
// ACK processing & congestion control
// ---------------------------------------------------------------------------

void TcpSocket::process_ack(const net::PacketPtr& p) {
  const std::uint64_t ack = p->tcp.ack;
  peer_window_ = p->tcp.window;

  if (ack > snd_nxt_) return;  // acks data we never sent; ignore

  if (ack > snd_una_) {
    const std::uint64_t acked = ack - snd_una_;
    snd_una_ = ack;
    dupack_count_ = 0;
    rto_backoff_ = 0;

    if (timing_segment_ && ack >= timed_seq_) {
      take_rtt_sample(stack_.simulator().now() - timed_sent_at_);
      timing_segment_ = false;
    }

    // Release acked bytes from the send buffer. The buffer holds only data
    // bytes; a FIN consumes sequence space past the buffered range.
    std::uint64_t data_acked_upto = ack;
    if (fin_sent_ && ack > fin_seq_) data_acked_upto = fin_seq_;
    std::size_t popped = 0;
    while (!send_buf_.empty() &&
           buf_seq_base_ + send_buf_.front().length <= data_acked_upto) {
      buf_bytes_ -= send_buf_.front().length;
      buf_seq_base_ += send_buf_.front().length;
      send_buf_.pop_front();
      ++popped;
    }
    if (!send_buf_.empty() && data_acked_upto > buf_seq_base_) {
      const std::size_t cut =
          static_cast<std::size_t>(data_acked_upto - buf_seq_base_);
      net::PayloadRef& front = send_buf_.front();
      front = front.slice(cut, front.length - cut);
      buf_bytes_ -= cut;
      buf_seq_base_ += cut;
    }
    // Shift the gather hint past the trimmed entries; if the hinted entry
    // itself was trimmed (or its front byte moved), re-anchor at the new
    // buffer front.
    if (gather_hint_index_ <= popped) {
      gather_hint_index_ = 0;
      gather_hint_base_ = buf_seq_base_;
    } else {
      gather_hint_index_ -= popped;
    }

    if (in_fast_recovery_) {
      if (ack >= recovery_point_) {
        // Full recovery: deflate to ssthresh.
        cwnd_ = std::max(ssthresh_, 2 * config_.mss);
        in_fast_recovery_ = false;
      } else {
        // NewReno partial ACK: retransmit the next hole immediately.
        cwnd_ = (cwnd_ > static_cast<std::size_t>(acked)
                     ? cwnd_ - static_cast<std::size_t>(acked)
                     : config_.mss) +
                config_.mss;
        retransmit_one(snd_una_);
      }
    } else {
      on_new_ack(acked);
    }

    if (flight_size() == 0) {
      disarm_rto();
    } else {
      arm_rto();  // restart on forward progress
    }

    // Our FIN acked?
    if (fin_sent_ && ack >= fin_seq_ + 1) {
      switch (state_) {
        case TcpState::kFinWait1:
          state_ = TcpState::kFinWait2;
          break;
        case TcpState::kClosing:
          enter_time_wait();
          break;
        case TcpState::kLastAck:
          finish_close();
          return;
        default:
          break;
      }
    }

    try_send_data();
    send_fin_if_ready();
    return;
  }

  // Duplicate ACK: same ack number, no payload, no SYN/FIN, data in flight.
  if (ack == snd_una_ && p->payload.empty() && !p->tcp.flags.syn &&
      !p->tcp.flags.fin && flight_size() > 0) {
    ++dupack_count_;
    ++stats_.dupacks_received;
    if (!in_fast_recovery_ && dupack_count_ == config_.dupack_threshold) {
      enter_fast_retransmit();
    } else if (in_fast_recovery_) {
      cwnd_ += config_.mss;  // window inflation per extra dupack
      try_send_data();
    }
  }
}

void TcpSocket::on_new_ack(std::uint64_t acked_bytes) {
  if (cwnd_ < ssthresh_) {
    // Slow start: grow by one MSS per MSS acked (i.e. exponential per RTT).
    cwnd_ += std::min<std::size_t>(static_cast<std::size_t>(acked_bytes),
                                   config_.mss);
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += std::max<std::size_t>(1, config_.mss * config_.mss / cwnd_);
  }
}

void TcpSocket::enter_fast_retransmit() {
  ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
  cwnd_ = ssthresh_ + 3 * config_.mss;
  in_fast_recovery_ = true;
  recovery_point_ = snd_nxt_;
  timing_segment_ = false;  // Karn: the timed segment may be the lost one
  ++stats_.retransmits_fast;
  retransmit_one(snd_una_);
  arm_rto();
}

void TcpSocket::on_rto() {
  rto_timer_ = {};
  if (flight_size() == 0) return;

  if (rto_backoff_ >= config_.max_retries) {
    // Peer declared dead: give up, as a real stack's tcp_retries2 does.
    finish_close();
    return;
  }

  ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
  cwnd_ = config_.mss;
  in_fast_recovery_ = false;
  dupack_count_ = 0;
  timing_segment_ = false;
  ++rto_backoff_;
  ++stats_.retransmits_rto;

  switch (state_) {
    case TcpState::kSynSent: {
      net::TcpFlags syn;
      syn.syn = true;
      emit(syn, iss_, {});
      break;
    }
    case TcpState::kSynReceived: {
      net::TcpFlags synack;
      synack.syn = true;
      synack.ack = true;
      emit(synack, iss_, {});
      break;
    }
    default:
      retransmit_one(snd_una_);
  }
  arm_rto();
}

void TcpSocket::retransmit_one(std::uint64_t seq) {
  // FIN-only retransmission when every data byte is acked.
  if (fin_sent_ && seq >= fin_seq_) {
    net::TcpFlags fin;
    fin.fin = true;
    fin.ack = true;
    emit(fin, fin_seq_, {});
    return;
  }

  const std::uint64_t data_end = buf_seq_base_ + buf_bytes_;
  if (seq >= data_end) return;  // nothing buffered at this offset

  const std::size_t len = std::min(
      config_.mss, static_cast<std::size_t>(data_end - seq));
  net::PayloadRef payload = gather_payload(seq, len);
  if (payload.empty()) return;
  net::TcpFlags flags;
  flags.ack = true;
  emit(flags, seq, std::move(payload));
  ++stats_.segments_sent;
}

net::PayloadRef TcpSocket::gather_payload(std::uint64_t seq,
                                          std::size_t len) const {
  // Locate the application write containing `seq`. Segmentation walks the
  // stream front to back, so resume from the entry the previous gather
  // ended in (the hint) instead of rescanning from the front — with an
  // application that wrote thousands of small chunks the full scan per
  // segment is quadratic. The hint is invalid after a retransmission
  // rewinds seq or an ACK trims past it; fall back to a front scan then.
  std::uint64_t base = buf_seq_base_;
  std::size_t idx = 0;
  if (gather_hint_index_ <= send_buf_.size() &&
      gather_hint_base_ >= buf_seq_base_ && gather_hint_base_ <= seq) {
    base = gather_hint_base_;
    idx = gather_hint_index_;
  }
  while (idx < send_buf_.size() && seq >= base + send_buf_[idx].length) {
    base += send_buf_[idx].length;
    ++idx;
  }
  if (idx == send_buf_.size()) return {};
  gather_hint_index_ = idx;
  gather_hint_base_ = base;
  const std::size_t off = static_cast<std::size_t>(seq - base);
  const net::PayloadRef& entry = send_buf_[idx];

  if (!entry.chained() && entry.length - off >= len) {
    return entry.slice(off, len);  // common case: one zero-copy slice
  }

#if DYNCDN_TCP_GATHER_COPY
  // Legacy comparison path: gather the spanning segment into a fresh
  // buffer (one allocation + copy per cross-chunk segment).
  std::vector<std::uint8_t> bytes;
  bytes.reserve(len);
  for (std::size_t j = idx; j < send_buf_.size() && bytes.size() < len;
       ++j) {
    const std::size_t start = (j == idx) ? off : 0;
    send_buf_[j]
        .slice(start, len - bytes.size())
        .for_each_slice([&bytes](std::span<const std::uint8_t> span) {
          bytes.insert(bytes.end(), span.begin(), span.end());
        });
  }
  const std::size_t n = bytes.size();
  return net::PayloadRef{net::make_buffer(std::move(bytes)), 0, n};
#else
  // The segment spans application writes: chain slices, zero-copy.
  net::PayloadRef out = entry.slice(off, len);
  for (std::size_t j = idx + 1;
       j < send_buf_.size() && out.length < len; ++j) {
    out.append(send_buf_[j].slice(0, len - out.length));
  }
  return out;
#endif
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void TcpSocket::process_payload(const net::PacketPtr& p) {
  const std::uint64_t seq = p->tcp.seq;
  const std::uint64_t len = p->payload.length;

  if (seq + len <= rcv_nxt_) {
    // Entire segment is old: pure duplicate, re-ack immediately so the
    // sender's dupack machinery sees it.
    send_ack_now();
    return;
  }

  if (seq > rcv_nxt_) {
    // Out of order: buffer (bounded by the advertised window) and emit an
    // immediate duplicate ACK.
    if (!out_of_order_.contains(seq) &&
        ooo_bytes_ + len <= config_.receive_buffer) {
      out_of_order_.emplace(seq, p->payload);
      ooo_bytes_ += len;
    }
    send_ack_now();
    return;
  }

  // In-order (possibly partially duplicate) segment.
  const std::size_t dup = static_cast<std::size_t>(rcv_nxt_ - seq);
  net::PayloadRef fresh = p->payload.slice(dup, p->payload.length - dup);
  rcv_nxt_ += fresh.length;
  stats_.bytes_received += fresh.length;
  if (callbacks_.on_data && !fresh.empty()) callbacks_.on_data(fresh);
  deliver_in_order();

  // Peer FIN may now be consumable.
  if (fin_received_ && rcv_nxt_ == peer_fin_seq_) {
    process_fin(p);  // re-enter with the recorded FIN
    return;          // process_fin acks
  }
  schedule_ack();
}

void TcpSocket::deliver_in_order() {
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first <= rcv_nxt_) {
    const std::uint64_t seq = it->first;
    net::PayloadRef ref = it->second;
    ooo_bytes_ -= ref.length;
    it = out_of_order_.erase(it);
    if (seq + ref.length <= rcv_nxt_) continue;  // fully duplicate
    const std::size_t dup = static_cast<std::size_t>(rcv_nxt_ - seq);
    net::PayloadRef fresh = ref.slice(dup, ref.length - dup);
    rcv_nxt_ += fresh.length;
    stats_.bytes_received += fresh.length;
    if (callbacks_.on_data && !fresh.empty()) callbacks_.on_data(fresh);
    it = out_of_order_.begin();
  }
}

void TcpSocket::process_fin(const net::PacketPtr& p) {
  if (!fin_received_) {
    fin_received_ = true;
    peer_fin_seq_ = p->tcp.flags.fin ? p->tcp.seq + p->payload.length
                                     : peer_fin_seq_;
  }
  if (rcv_nxt_ != peer_fin_seq_) {
    // Data before the FIN is still missing; ack what we have.
    send_ack_now();
    return;
  }

  rcv_nxt_ = peer_fin_seq_ + 1;  // consume the FIN
  send_ack_now();
  if (callbacks_.on_remote_close) callbacks_.on_remote_close();

  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      send_fin_if_ready();  // app may already have called close()
      break;
    case TcpState::kFinWait1:
      // Simultaneous close; our FIN not yet acked.
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    case TcpState::kTimeWait:
      break;  // retransmitted FIN; already re-acked above
    default:
      break;
  }
}

std::uint32_t TcpSocket::advertised_window() const {
  // The application consumes in-order data synchronously, so only
  // out-of-order bytes occupy the receive buffer.
  const std::size_t used = ooo_bytes_;
  const std::size_t free_bytes =
      config_.receive_buffer > used ? config_.receive_buffer - used : 0;
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(free_bytes, 0xFFFFFFFFu));
}

// ---------------------------------------------------------------------------
// Data transmission
// ---------------------------------------------------------------------------

std::size_t TcpSocket::flight_size() const {
  return static_cast<std::size_t>(snd_nxt_ - snd_una_);
}

std::size_t TcpSocket::effective_window() const {
  const std::size_t wnd =
      std::min(cwnd_, static_cast<std::size_t>(peer_window_));
  const std::size_t flight = flight_size();
  return wnd > flight ? wnd - flight : 0;
}

void TcpSocket::maybe_decay_idle_cwnd() {
  if (!config_.cwnd_validation) return;
  if (flight_size() > 0) return;  // not idle: data in flight
  const sim::SimTime now = stack_.simulator().now();
  if (last_data_sent_ == sim::SimTime::zero()) {
    last_data_sent_ = now;
    return;
  }
  const sim::SimTime rto = current_rto();
  sim::SimTime idle = now - last_data_sent_;
  const std::size_t restart_window =
      config_.initial_cwnd_segments * config_.mss;
  // Halve cwnd once per elapsed RTO of idleness, down to the restart window.
  while (idle >= rto && cwnd_ > restart_window) {
    cwnd_ = std::max(cwnd_ / 2, restart_window);
    idle -= rto;
  }
}

void TcpSocket::try_send_data() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing) {
    return;
  }
  maybe_decay_idle_cwnd();
  const std::uint64_t data_end = buf_seq_base_ + buf_bytes_;

  while (snd_nxt_ < data_end) {
    std::size_t usable = effective_window();
    if (usable == 0) {
      // Zero-window (or cwnd-exhausted) stall: if nothing is in flight and
      // the peer advertises zero, arm a persist-style probe so the
      // connection cannot deadlock.
      if (peer_window_ == 0 && flight_size() == 0) {
        usable = 1;  // window probe: force out a single byte
      } else {
        break;  // ACK clocking will resume transmission
      }
    }

    const std::size_t len =
        std::min({config_.mss, usable,
                  static_cast<std::size_t>(data_end - snd_nxt_)});
    if (len == 0) break;
    net::PayloadRef payload = gather_payload(snd_nxt_, len);
    if (payload.empty()) break;  // should not happen

    net::TcpFlags flags;
    flags.ack = true;
    emit(flags, snd_nxt_, std::move(payload));
    ++stats_.segments_sent;
    stats_.bytes_sent += len;
    last_data_sent_ = stack_.simulator().now();
#if DYNCDN_OBS
    if (trace_ != nullptr && !trace_tx_data_) {
      trace_tx_data_ = true;  // first payload transmission = t1
      trace_->add_event(trace_span_, "tx_data", stack_.simulator().now());
    }
#endif

    if (!timing_segment_) {
      timing_segment_ = true;
      timed_seq_ = snd_nxt_ + len;
      timed_sent_at_ = stack_.simulator().now();
    }
    snd_nxt_ += len;
    arm_rto();
  }

  send_fin_if_ready();
}

void TcpSocket::send_fin_if_ready() {
  if (!fin_queued_ || fin_sent_) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  const std::uint64_t data_end = buf_seq_base_ + buf_bytes_;
  if (snd_nxt_ < data_end) return;  // unsent data remains

  net::TcpFlags fin;
  fin.fin = true;
  fin.ack = true;
  emit(fin, snd_nxt_, {});
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;
  fin_sent_ = true;
  state_ = (state_ == TcpState::kEstablished) ? TcpState::kFinWait1
                                              : TcpState::kLastAck;
  arm_rto();
}

// ---------------------------------------------------------------------------
// Segment emission & ACK strategy
// ---------------------------------------------------------------------------

void TcpSocket::emit(net::TcpFlags flags, std::uint64_t seq,
                     net::PayloadRef payload) {
  auto packet = net::acquire_packet();
  packet->dst = flow_.remote.node;
  packet->tcp.src_port = flow_.local.port;
  packet->tcp.dst_port = flow_.remote.port;
  packet->tcp.seq = seq;
  packet->tcp.ack = flags.ack ? rcv_nxt_ : 0;
  packet->tcp.window = advertised_window();
  packet->tcp.flags = flags;
  packet->payload = std::move(payload);
  if (flags.ack) {
    // Any emitted segment carries the latest ack; outstanding delayed ACK
    // obligations are satisfied by piggybacking.
    ack_pending_ = false;
    if (delayed_ack_timer_.valid()) {
      stack_.simulator().cancel(delayed_ack_timer_);
      delayed_ack_timer_ = {};
    }
  }
  stack_.transmit(std::move(packet));
}

void TcpSocket::send_ack_now() {
  net::TcpFlags flags;
  flags.ack = true;
  emit(flags, snd_nxt_, {});
}

void TcpSocket::schedule_ack() {
  if (!config_.delayed_ack) {
    send_ack_now();
    return;
  }
  if (ack_pending_) {
    // Second unacked segment: ack immediately (RFC 1122).
    send_ack_now();
    return;
  }
  ack_pending_ = true;
  delayed_ack_timer_ =
      stack_.simulator().schedule_in(config_.delayed_ack_timeout, [this]() {
        delayed_ack_timer_ = {};
        if (ack_pending_) send_ack_now();
      });
}

// ---------------------------------------------------------------------------
// RTO management
// ---------------------------------------------------------------------------

sim::SimTime TcpSocket::current_rto() const {
  sim::SimTime rto = have_rtt_sample_
                         ? srtt_ + std::max(rttvar_.scaled(4.0),
                                            sim::SimTime::milliseconds(10))
                         : config_.initial_rto;
  for (int i = 0; i < rto_backoff_; ++i) rto = rto * 2;
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

void TcpSocket::arm_rto() {
  disarm_rto();
  rto_timer_ =
      stack_.simulator().schedule_in(current_rto(), [this]() { on_rto(); });
}

void TcpSocket::disarm_rto() {
  if (rto_timer_.valid()) {
    stack_.simulator().cancel(rto_timer_);
    rto_timer_ = {};
  }
}

void TcpSocket::take_rtt_sample(sim::SimTime sample) {
  if (!have_rtt_sample_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_sample_ = true;
    return;
  }
  // Jacobson/Karels EWMA: alpha=1/8, beta=1/4.
  const sim::SimTime err = (sample > srtt_) ? sample - srtt_ : srtt_ - sample;
  rttvar_ = rttvar_.scaled(0.75) + err.scaled(0.25);
  srtt_ = srtt_.scaled(0.875) + sample.scaled(0.125);
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void TcpSocket::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  disarm_rto();
  time_wait_timer_ = stack_.simulator().schedule_in(
      config_.time_wait, [this]() {
        time_wait_timer_ = {};
        finish_close();
      });
}

void TcpSocket::finish_close() {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
#if DYNCDN_OBS
  if (trace_ != nullptr) {
    trace_->add_arg(trace_span_, "bytes_received",
                    obs::ArgValue::of(static_cast<std::int64_t>(
                        stats_.bytes_received)));
    trace_->add_arg(trace_span_, "retransmits",
                    obs::ArgValue::of(static_cast<std::int64_t>(
                        stats_.retransmits_rto + stats_.retransmits_fast)));
    trace_->end_span(trace_span_, stack_.simulator().now());
    trace_ = nullptr;
  }
#endif
  disarm_rto();
  if (delayed_ack_timer_.valid()) {
    stack_.simulator().cancel(delayed_ack_timer_);
    delayed_ack_timer_ = {};
  }
  if (time_wait_timer_.valid()) {
    stack_.simulator().cancel(time_wait_timer_);
    time_wait_timer_ = {};
  }
  if (callbacks_.on_closed) callbacks_.on_closed();
  stack_.destroy(*this);
}

}  // namespace dyncdn::tcp
