// Priority-queue based event scheduler for the discrete-event kernel.
//
// Events are (time, sequence, callback) triples. The sequence number breaks
// ties deterministically: two events scheduled for the same instant fire in
// scheduling order, which makes whole-simulation runs bit-for-bit
// reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dyncdn::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(std::uint64_t v) : value_(v) {}
  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  std::uint64_t value_ = 0;  // 0 = invalid / never scheduled
};

/// Min-heap of timed callbacks with O(1) lazy cancellation.
///
/// Cancelled events stay in the heap but are skipped on pop; the cancelled
/// set is purged as entries surface. This keeps cancel cheap, which matters
/// because TCP re-arms its retransmission timer on every ACK.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `at`. `at` must not precede the
  /// last popped event time (no scheduling into the past).
  EventId schedule(SimTime at, Callback cb);

  /// Cancel a previously scheduled event. Safe to call with an already-fired
  /// or already-cancelled id (no-op). Returns true if the event was pending.
  bool cancel(EventId id);

  bool empty() const;

  /// Time of the earliest pending event; SimTime::infinity() when empty.
  SimTime next_time() const;

  /// Pop and run the earliest event; returns its scheduled time.
  /// Precondition: !empty().
  SimTime pop_and_run();

  std::size_t pending_count() const;

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled entries from the top of the heap.
  void skim();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;    // live (not fired/cancelled)
  std::unordered_set<std::uint64_t> cancelled_;  // cancelled but still heaped
  std::uint64_t next_seq_ = 1;
  SimTime last_popped_ = SimTime::zero();
};

}  // namespace dyncdn::sim
