file(REMOVE_RECURSE
  "libdyncdn_http.a"
)
