// Extension: residential and wireless vantage points.
//
// The paper's reviewers pointed out that PlanetLab's campus bias makes the
// measured RTTs unrealistically low ("often 30 ms is added just by the DSL
// interleaving" — reviewer #5, citing Maier et al., IMC'09), and §6 lists
// heterogeneous testbeds as ongoing work. This bench reruns the Fig. 6/7
// style measurement over a realistic access mix (50% campus, 35% DSL, 15%
// wireless) and contrasts it with the pure-PlanetLab view.
//
// Expected: with a realistic mix, the "80% of users within 20ms of an
// Akamai FE" picture collapses — most of the RTT is the last mile, which
// FE placement cannot remove — yet the FE-vs-BE trade-off conclusions
// (fetch-time bounds, T_delta behaviour) continue to hold.
#include <cstdio>

#include "bench_util.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "stats/cdf.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct MixResult {
  std::vector<double> rtts;
  std::vector<core::NodeAggregate> nodes;
  std::size_t invalid_nodes = 0;
};

MixResult run_mix(double residential, double wireless, std::size_t clients,
                  std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::bing_like_profile();  // closest-FE service: Akamai
  opt.client_count = clients;
  opt.seed = 808;
  opt.residential_fraction = residential;
  opt.wireless_fraction = wireless;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1300_ms;
  search::KeywordCatalog catalog(8);
  eo.keywords = {catalog.figure3_keywords().front()};
  const auto result = testbed::run_default_fe_experiment(scenario, eo);

  MixResult mix;
  for (const auto& n : result.per_node) {
    if (n.samples == 0) {
      ++mix.invalid_nodes;
      continue;
    }
    mix.rtts.push_back(n.rtt_ms);
    mix.nodes.push_back(n);
  }
  return mix;
}

}  // namespace

int main() {
  const std::size_t clients = bench::full_scale() ? 180 : 90;
  const std::size_t reps = bench::full_scale() ? 25 : 10;
  bench::banner("Extension — realistic access mix vs PlanetLab bias",
                "BingLike (Akamai-style) default FEs; " +
                    std::to_string(clients) + " vantage points x " +
                    std::to_string(reps) + " reps");

  const MixResult campus = run_mix(0.0, 0.0, clients, reps);
  const MixResult realistic = run_mix(0.35, 0.15, clients, reps);

  const stats::EmpiricalCdf campus_cdf(campus.rtts);
  const stats::EmpiricalCdf real_cdf(realistic.rtts);

  bench::section("RTT CDF to the default (nearest) FE");
  std::printf("%10s %14s %16s\n", "RTT(ms)", "campus-only", "realistic mix");
  for (double x = 0; x <= 120.0; x += 10.0) {
    std::printf("%10.0f %14.3f %16.3f\n", x, campus_cdf.at(x),
                real_cdf.at(x));
  }
  std::printf("\nnodes with RTT < 20ms: campus-only %.0f%%, realistic mix "
              "%.0f%%\n",
              100.0 * campus_cdf.at(20.0), 100.0 * real_cdf.at(20.0));

  bench::section("does the inference still work on the realistic mix?");
  std::vector<double> deltas, dynamics;
  for (const auto& n : realistic.nodes) {
    deltas.push_back(n.med_delta_ms);
    dynamics.push_back(n.med_dynamic_ms);
  }
  std::printf("valid vantage points: %zu (%zu lost to access loss)\n",
              realistic.nodes.size(), realistic.invalid_nodes);
  std::printf("median T_dynamic %.1fms, median T_delta %.1fms — bounds "
              "remain well-formed (T_delta <= T_dynamic on every node: %s)\n",
              stats::median(dynamics), stats::median(deltas),
              [&] {
                for (const auto& n : realistic.nodes) {
                  if (n.med_delta_ms > n.med_dynamic_ms + 1e-6) return "NO";
                }
                return "yes";
              }());

  bench::section("takeaway");
  std::printf(
      "The campus-only testbed sees most clients within ~20ms of an Akamai\n"
      "FE; with DSL interleaving and wireless hops in the mix, the last\n"
      "mile dominates and FE proximity buys much less — the paper's own\n"
      "caveat (§6 / reviewer #5), quantified. The measurement methodology\n"
      "itself keeps working: timelines stay valid and the fetch-time\n"
      "bounds hold on lossy residential paths.\n");
  return 0;
}
