#include "analysis/streaming.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace dyncdn::analysis {

namespace {

/// A packet that can no longer influence a finished flow's timeline: no
/// payload, no control flags. The teardown's trailing ACK is the common
/// case.
bool is_pure_ack(const capture::PacketRecord& r) {
  return r.payload_size == 0 && !r.tcp.flags.syn && !r.tcp.flags.fin &&
         !r.tcp.flags.rst;
}

}  // namespace

StreamingTimeline::StreamingTimeline(const net::FlowId& flow) {
  tl_.flow = flow;
}

void StreamingTimeline::observe(const capture::PacketRecord& r) {
  const bool sent = r.direction == capture::Direction::kSent;

  // Control-plane events: this chain must stay a verbatim mirror of
  // timeline_from_conn() — same conditions, same else-if exclusivity — or
  // streaming results drift from the post-hoc path.
  if (sent && r.tcp.flags.syn && !saw_syn_) {
    tl_.tb = r.timestamp;
    client_iss_ = r.tcp.seq;
    saw_syn_ = true;
  } else if (!sent && r.tcp.flags.syn && r.tcp.flags.ack && !saw_synack_) {
    tl_.t_synack = r.timestamp;
    saw_synack_ = true;
  } else if (sent && r.payload_size > 0 && !saw_t1_) {
    tl_.t1 = r.timestamp;  // the GET
    saw_t1_ = true;
  } else if (!sent && saw_t1_ && !saw_t2_ && r.tcp.flags.ack && client_iss_ &&
             r.tcp.ack > *client_iss_ + 1) {
    // First packet from the server acknowledging request payload.
    tl_.t2 = r.timestamp;
    saw_t2_ = true;
  }

  // Received-side stream state, mirroring reassemble(): the normalizer is
  // the *last* received SYN seq (+1), falling back to the minimum data
  // seq; segments are kept raw because the base is only final at the end.
  if (!sent) {
    if (r.tcp.flags.syn) rcv_iss_ = r.tcp.seq;
    if (r.payload_size > 0) {
      if (!min_data_seq_ || r.tcp.seq < *min_data_seq_) {
        min_data_seq_ = r.tcp.seq;
      }
      data_.push_back(RawSegment{r.tcp.seq, r.payload_size, r.timestamp});
    }
    if (r.tcp.flags.fin) fin_rcvd_ = true;
  } else {
    if (r.tcp.flags.fin) fin_sent_ = true;
  }
  if (r.tcp.flags.rst) rst_ = true;
}

QueryTimeline StreamingTimeline::finalize(std::size_t boundary) const {
  QueryTimeline tl = tl_;
  tl.boundary = boundary;

  if (!saw_syn_ || !saw_synack_ || !saw_t1_ || !saw_t2_) {
    tl.invalid_reason = "incomplete handshake/request events";
    return tl;
  }

  // Normalize segments exactly as reassemble() would over the full trace.
  std::vector<ReassembledStream::Segment> segments;
  if (min_data_seq_) {
    const std::uint64_t base = rcv_iss_ ? *rcv_iss_ + 1 : *min_data_seq_;
    segments.reserve(data_.size());
    for (const RawSegment& s : data_) {
      if (s.seq < base) continue;  // pre-data sequence space (SYN)
      segments.push_back(ReassembledStream::Segment{
          static_cast<std::size_t>(s.seq - base), s.length, s.at});
    }
  }
  const ReassembledStream stream =
      ReassembledStream::from_segments(std::move(segments));
  finish_timeline_from_stream(tl, stream, boundary);
  return tl;
}

StreamingAnalyzer::StreamingAnalyzer(net::Port server_port)
    : server_port_(server_port),
      timeline_slab_(/*blocks_per_chunk=*/64) {}

StreamingAnalyzer::~StreamingAnalyzer() {
  for (Slot& slot : slots_) {
    if (slot.live != nullptr) timeline_slab_.destroy(slot.live);
  }
}

void StreamingAnalyzer::release_live(Slot& slot) {
  timeline_slab_.destroy(slot.live);
  slot.live = nullptr;
}

void StreamingAnalyzer::on_packet(const capture::PacketRecord& record) {
  if (probing_) {
    // Probe traffic builds clipped response prefixes only; it must never
    // surface as timelines in drain().
    observe_probe(record);
    return;
  }
  const net::FlowId flow = record.flow_at_capture_node();
  if (flow.remote.port != server_port_) return;

  const auto [entry, inserted] = index_.try_emplace(flow, slots_.size());
  if (inserted) {
    slots_.push_back(Slot{flow, timeline_slab_.create(flow), std::nullopt});
    live_bytes_ += slots_.back().live->retained_bytes();
    bump_peak();
  }
  Slot& slot = slots_[*entry];

  if (!slot.live) {
    // Flow already collapsed online. Teardown ACKs are inert by
    // construction; anything else would have changed the post-hoc result.
    if (!is_pure_ack(record)) ++late_packets_;
    return;
  }

  const std::size_t before = slot.live->retained_bytes();
  slot.live->observe(record);
  live_bytes_ += slot.live->retained_bytes() - before;
  bump_peak();

  if (boundary_ && slot.live->complete()) collapse(slot);
}

void StreamingAnalyzer::collapse(Slot& slot) {
  live_bytes_ -= slot.live->retained_bytes();
  slot.done = slot.live->finalize(*boundary_);
  release_live(slot);
  live_bytes_ += sizeof(QueryTimeline);
  bump_peak();
  ++emitted_online_;
}

void StreamingAnalyzer::set_boundary(std::size_t boundary) {
  if (boundary_ && *boundary_ != boundary) {
    throw std::logic_error(
        "StreamingAnalyzer: boundary already set to a different value");
  }
  boundary_ = boundary;
  for (Slot& slot : slots_) {
    if (slot.live && slot.live->complete()) collapse(slot);
  }
}

std::vector<QueryTimeline> StreamingAnalyzer::drain(std::size_t boundary) {
  if (boundary_ && *boundary_ != boundary) {
    throw std::logic_error(
        "StreamingAnalyzer: drain boundary differs from streaming boundary");
  }
  boundary_ = boundary;

  std::vector<QueryTimeline> out;
  out.reserve(slots_.size());
  for (Slot& slot : slots_) {
    if (slot.live != nullptr) {
      out.push_back(slot.live->finalize(boundary));
      release_live(slot);
    } else {
      out.push_back(std::move(*slot.done));
    }
  }
  slots_.clear();
  index_.clear();
  live_bytes_ = 0;
  return out;
}

void StreamingAnalyzer::on_clear() {
  for (Slot& slot : slots_) {
    if (slot.live != nullptr) release_live(slot);
  }
  slots_.clear();
  index_.clear();
  live_bytes_ = 0;
  boundary_.reset();
  reset_probe();
}

// --- Streaming boundary discovery -----------------------------------------

std::size_t StreamingAnalyzer::probe_retained(const ProbeFlow& f) {
  std::size_t n = sizeof(ProbeFlow) + f.bytes.size() +
                  f.covered.size() * sizeof(std::pair<std::size_t, std::size_t>);
  for (const ProbeFlow::PendingSegment& p : f.pending) {
    n += sizeof(ProbeFlow::PendingSegment) + p.bytes.size();
  }
  return n;
}

void StreamingAnalyzer::begin_boundary_probe() {
  if (probing_) {
    throw std::logic_error("StreamingAnalyzer: boundary probe already active");
  }
  reset_probe();
  probing_ = true;
}

std::size_t StreamingAnalyzer::probe_flows() const {
  std::size_t n = 0;
  for (const ProbeFlow& f : probe_flows_) {
    if (f.full_length > 0 || !f.pending.empty()) ++n;
  }
  return n;
}

void StreamingAnalyzer::observe_probe(const capture::PacketRecord& r) {
  if (r.direction != capture::Direction::kReceived) return;
  const net::FlowId flow = r.flow_at_capture_node();
  if (flow.remote.port != server_port_) return;

  const auto [entry, inserted] =
      probe_index_.try_emplace(flow, probe_flows_.size());
  if (inserted) {
    probe_flows_.emplace_back();
    probe_flows_.back().flow = flow;
  }
  ProbeFlow& pf = probe_flows_[*entry];
  const std::size_t before = inserted ? 0 : probe_retained(pf);

  if (r.tcp.flags.syn) {
    // reassemble() keys the stream base off the *last* received SYN. The
    // TCP stack never changes a connection's ISS across retransmissions,
    // so rebasing is a no-op and pending pre-SYN data can be applied the
    // moment the first SYN lands.
    pf.iss = r.tcp.seq;
    for (ProbeFlow::PendingSegment& p : pf.pending) {
      apply_probe_segment(pf, *pf.iss + 1, p.seq, p.length, p.bytes);
    }
    pf.pending.clear();
  }
  if (r.payload_size > 0) {
    // Single-slice payloads (the overwhelming common case) are consumed in
    // place; chained ones are flattened into a reused scratch buffer whose
    // capacity persists across packets.
    std::span<const std::uint8_t> flat;
    if (!r.payload.chained()) {
      flat = r.payload.bytes();
    } else {
      probe_scratch_.clear();
      probe_scratch_.reserve(r.payload.length);
      r.payload.for_each_slice([this](std::span<const std::uint8_t> s) {
        probe_scratch_.insert(probe_scratch_.end(), s.begin(), s.end());
      });
      flat = probe_scratch_;
    }
    if (!pf.iss) {
      // Pre-SYN data must outlive this call: stash a copy in the probe
      // arena (reclaimed wholesale at probe teardown).
      const std::uint8_t* kept = static_cast<const std::uint8_t*>(
          probe_arena_.copy(flat.data(), flat.size()));
      pf.pending.push_back(ProbeFlow::PendingSegment{
          r.tcp.seq, r.payload_size,
          std::span<const std::uint8_t>(kept, flat.size())});
    } else {
      apply_probe_segment(pf, *pf.iss + 1, r.tcp.seq, r.payload_size, flat);
    }
  }

  live_bytes_ = live_bytes_ - before + probe_retained(pf);
  bump_peak();
  advance_probe_compare();
}

void StreamingAnalyzer::apply_probe_segment(
    ProbeFlow& pf, std::uint64_t base, std::uint64_t seq,
    std::size_t payload_size, std::span<const std::uint8_t> payload) {
  if (seq < base) return;  // pre-data sequence space (SYN)
  const std::size_t offset = static_cast<std::size_t>(seq - base);
  pf.full_length = std::max(pf.full_length, offset + payload_size);
  if (payload.empty() || offset >= probe_cap_) return;

  // Mirror reassemble()'s overwrite-copy, clipped to the shared cap: gaps
  // are '\0' filler until (and unless) a retransmission covers them.
  const std::size_t end = std::min(offset + payload.size(), probe_cap_);
  if (pf.bytes.size() < end) pf.bytes.resize(end, '\0');
  std::copy(payload.begin(),
            payload.begin() + static_cast<std::ptrdiff_t>(end - offset),
            pf.bytes.begin() + static_cast<std::ptrdiff_t>(offset));

  // Merge [offset, end) into the covered-interval list and refresh the
  // contiguous-from-zero prefix length.
  pf.covered.emplace_back(offset, end);
  std::sort(pf.covered.begin(), pf.covered.end());
  std::vector<std::pair<std::size_t, std::size_t>> merged;
  for (const auto& iv : pf.covered) {
    if (!merged.empty() && iv.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  pf.covered.swap(merged);
  pf.contig = (!pf.covered.empty() && pf.covered.front().first == 0)
                  ? pf.covered.front().second
                  : 0;
}

void StreamingAnalyzer::advance_probe_compare() {
  // Incremental comparison against flow 0 over *covered* bytes only —
  // '\0' filler under a still-open gap may yet be overwritten, so it is
  // not comparable until the probe settles. If flow 0 never carries data
  // the limits stay 0 and the cap is never tightened (the exact scan at
  // finish then picks the first non-empty flow as reference).
  if (probe_flows_.size() < 2) return;
  const ProbeFlow& ref = probe_flows_[0];
  for (std::size_t i = 1; i < probe_flows_.size(); ++i) {
    ProbeFlow& f = probe_flows_[i];
    if (f.mismatch) continue;
    const std::size_t limit = std::min({ref.contig, f.contig, probe_cap_});
    while (f.cmp < limit && ref.bytes[f.cmp] == f.bytes[f.cmp]) ++f.cmp;
    if (f.cmp < limit) {
      f.mismatch = f.cmp;
      tighten_probe_cap(f.cmp + 1);
    }
  }
}

void StreamingAnalyzer::tighten_probe_cap(std::size_t cap) {
  if (cap >= probe_cap_) return;
  probe_cap_ = cap;
  for (ProbeFlow& f : probe_flows_) {
    const std::size_t before = probe_retained(f);
    if (f.bytes.size() > cap) {
      f.bytes.resize(cap);
      f.bytes.shrink_to_fit();
    }
    while (!f.covered.empty() && f.covered.back().first >= cap) {
      f.covered.pop_back();
    }
    if (!f.covered.empty() && f.covered.back().second > cap) {
      f.covered.back().second = cap;
    }
    f.contig = std::min(f.contig, cap);
    f.cmp = std::min(f.cmp, cap);
    live_bytes_ -= before - probe_retained(f);
  }
}

std::size_t StreamingAnalyzer::finish_boundary_probe() {
  if (!probing_) {
    throw std::logic_error(
        "StreamingAnalyzer: finish_boundary_probe without an active probe");
  }
  probing_ = false;

  // Flows that never saw a SYN: reassemble() falls back to the minimum
  // data seq as the stream base. Only now is that minimum final.
  for (ProbeFlow& f : probe_flows_) {
    if (f.pending.empty()) continue;
    std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
    for (const ProbeFlow::PendingSegment& p : f.pending) {
      base = std::min(base, p.seq);
    }
    const std::size_t before = probe_retained(f);
    std::vector<ProbeFlow::PendingSegment> pending;
    pending.swap(f.pending);
    for (ProbeFlow::PendingSegment& p : pending) {
      apply_probe_segment(f, base, p.seq, p.length, p.bytes);
    }
    live_bytes_ = live_bytes_ - before + probe_retained(f);
    bump_peak();
  }

  // Exact final scan over the settled buffers. Unlike the incremental
  // pass this includes '\0' gap filler, exactly as common_prefix_boundary
  // would see it in a fully reassembled string; and the reference is the
  // first *non-empty* stream, matching the post-hoc responses vector.
  std::vector<const ProbeFlow*> nonempty;
  for (const ProbeFlow& f : probe_flows_) {
    if (f.full_length > 0) nonempty.push_back(&f);
  }
  std::size_t boundary = 0;
  if (nonempty.size() >= 2) {
    const ProbeFlow& ref = *nonempty.front();
    boundary = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 1; i < nonempty.size(); ++i) {
      const ProbeFlow& f = *nonempty[i];
      const std::size_t limit =
          std::min({ref.bytes.size(), f.bytes.size(), probe_cap_});
      std::size_t p = 0;
      while (p < limit && ref.bytes[p] == f.bytes[p]) ++p;
      // No divergence inside the compared window: the pair's prefix runs
      // to the shorter full stream. (If the window was clipped by the cap,
      // some other pair diverged below it and owns the minimum.)
      const std::size_t cand =
          p < limit ? p : std::min(ref.full_length, f.full_length);
      boundary = std::min(boundary, cand);
    }
  }
  reset_probe();
  return boundary == std::numeric_limits<std::size_t>::max() ? 0 : boundary;
}

void StreamingAnalyzer::reset_probe() {
  for (const ProbeFlow& f : probe_flows_) live_bytes_ -= probe_retained(f);
  probe_flows_.clear();
  probe_index_.clear();
  probe_arena_.reset();
  probe_cap_ = std::numeric_limits<std::size_t>::max();
  probing_ = false;
}

}  // namespace dyncdn::analysis
