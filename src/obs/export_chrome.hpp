// Chrome trace_event JSON exporter (chrome://tracing, Perfetto, Speedscope).
//
// Each closed span becomes a "ph":"X" complete event; span events become
// "ph":"i" instant events. Chrome timestamps are microseconds (double), so
// the exact nanosecond stamps are additionally carried in args
// (`start_ns`, `end_ns`, `at_ns`) together with `span_id`/`parent` — the
// `trace_inspect spans` tool reads those back for the tolerance-0 diff
// against analysis/timeline.
#pragma once

#include <string>

namespace dyncdn::obs {

class TraceSession;

// Serialize the whole session as {"traceEvents":[...],"displayTimeUnit":"ms"}.
std::string export_chrome_trace(const TraceSession& session);

// Convenience: write to a file; returns false on I/O error.
bool write_chrome_trace(const TraceSession& session,
                        const std::string& path);

}  // namespace dyncdn::obs
