file(REMOVE_RECURSE
  "CMakeFiles/test_acceptance.dir/acceptance_test.cpp.o"
  "CMakeFiles/test_acceptance.dir/acceptance_test.cpp.o.d"
  "test_acceptance"
  "test_acceptance.pdb"
  "test_acceptance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
