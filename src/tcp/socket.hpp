// A full simulated TCP connection endpoint.
//
// Implements: three-way handshake, MSS segmentation, cumulative ACKs,
// receiver flow control, slow start, congestion avoidance, fast
// retransmit + fast recovery (NewReno-lite), Jacobson/Karn RTO estimation
// with exponential backoff, optional delayed ACKs, FIN teardown and
// TIME_WAIT. Sequence numbers are 64-bit byte offsets (no wraparound).
//
// Applications interact through queued writes (`send`) and callbacks
// (`Callbacks`); the socket never blocks — everything advances through the
// simulator's event queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "net/address.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"

namespace dyncdn::tcp {

class TcpStack;

enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

std::string to_string(TcpState s);

/// Counters for tests/benches.
struct SocketStats {
  std::uint64_t bytes_sent = 0;       // application payload, first transmission
  std::uint64_t bytes_received = 0;   // in-order payload delivered to app
  std::uint64_t segments_sent = 0;    // data segments, incl. retransmits
  std::uint64_t retransmits_rto = 0;
  std::uint64_t retransmits_fast = 0;
  std::uint64_t dupacks_received = 0;
};

class TcpSocket {
 public:
  struct Callbacks {
    /// Connection reached ESTABLISHED (fires on both ends).
    std::function<void()> on_connected;
    /// In-order application data arrived.
    std::function<void(net::PayloadRef)> on_data;
    /// Peer sent FIN and all its data has been delivered.
    std::function<void()> on_remote_close;
    /// Connection fully terminated (either cleanly or by reset).
    std::function<void()> on_closed;
  };

  /// Sockets are created by TcpStack (connect/accept); not user-constructed.
  TcpSocket(TcpStack& stack, net::FlowId flow, TcpConfig config,
            Callbacks callbacks, bool passive);

  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Queue application data for transmission. Accepts any size; the socket
  /// segments to MSS. Data queued before ESTABLISHED is sent afterwards.
  void send(net::PayloadRef data);
  void send_text(std::string_view text);

  /// Graceful close: FIN after all queued data. Further send() calls throw.
  void close();

  /// Abortive close: RST to peer, immediate teardown.
  void abort();

  TcpState state() const { return state_; }
  const net::FlowId& flow() const { return flow_; }
  const SocketStats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }

  /// Sender's current smoothed RTT estimate (zero until first sample).
  sim::SimTime srtt() const { return srtt_; }
  std::size_t cwnd_bytes() const { return cwnd_; }
  std::size_t ssthresh_bytes() const { return ssthresh_; }

  /// Bytes queued but not yet acked (send buffer occupancy).
  std::size_t unacked_bytes() const;

  /// Replace the callback set (used by accept handlers).
  void set_callbacks(Callbacks cb) { callbacks_ = std::move(cb); }

  /// Observability: record wire-level events onto `span` in `session`
  /// (handshake "syn"/"synack", first data "tx_data" = t1, first
  /// data-covering ACK "ack_data" = t2, per-payload "rx" segments, span
  /// closed at teardown). Call immediately after TcpStack::connect — the
  /// SYN emission is synchronous with connect, so the "syn" stamp taken
  /// here equals the wire time. No-op when DYNCDN_OBS=0.
  void attach_trace(obs::TraceSession* session, obs::SpanId span);

  // ---- TcpStack interface -------------------------------------------------

  /// Begin active open (send SYN).
  void start_connect();
  /// Handle incoming SYN for a passive socket (sends SYN-ACK).
  void on_syn(const net::PacketPtr& syn);
  /// Demuxed packet arrival.
  void on_packet(const net::PacketPtr& packet);

 private:
  // --- segment emission ---
  void emit(net::TcpFlags flags, std::uint64_t seq, net::PayloadRef payload);
  void send_ack_now();
  void schedule_ack();
  void try_send_data();
  void send_fin_if_ready();
  std::size_t flight_size() const;
  std::size_t effective_window() const;

  // --- receive path ---
  void handle_established_packet(const net::PacketPtr& p);
  void process_ack(const net::PacketPtr& p);
  void process_payload(const net::PacketPtr& p);
  void deliver_in_order();
  void process_fin(const net::PacketPtr& p);
  std::uint32_t advertised_window() const;

  // --- congestion control ---
  void on_new_ack(std::uint64_t acked_bytes);
  void enter_fast_retransmit();
  void on_rto();
  /// Retransmit the single segment (or FIN) starting at `seq`.
  void retransmit_one(std::uint64_t seq);
  /// RFC 2861 congestion-window validation: decay cwnd after idle.
  void maybe_decay_idle_cwnd();
  /// Assemble up to `len` payload bytes starting at sequence `seq` from the
  /// send buffer. Zero-copy when the range lies inside one application
  /// write; gathers (copies) when it spans writes, so segments fill to MSS
  /// like a real byte-stream sender.
  net::PayloadRef gather_payload(std::uint64_t seq, std::size_t len) const;

  // --- RTT estimation ---
  void arm_rto();
  void disarm_rto();
  void take_rtt_sample(sim::SimTime sample);
  sim::SimTime current_rto() const;

  // --- lifecycle ---
  void enter_time_wait();
  void finish_close();

  TcpStack& stack_;
  net::FlowId flow_;
  TcpConfig config_;
  Callbacks callbacks_;
  TcpState state_ = TcpState::kClosed;
  bool passive_;

  // Sender sequence state (byte offsets; SYN and FIN each consume one).
  std::uint64_t iss_ = 0;        // initial send sequence
  std::uint64_t snd_una_ = 0;    // oldest unacked
  std::uint64_t snd_nxt_ = 0;    // next to send
  std::uint64_t peer_window_ = 0;

  // Send buffer: contiguous queue of app payload starting at buf_seq_base_.
  std::deque<net::PayloadRef> send_buf_;
  std::uint64_t buf_seq_base_ = 0;  // sequence number of send_buf_ front byte
  // gather_payload scan hint: index of the entry the last gather ended in
  // and the stream seq of that entry's first byte (invalidated by ACK
  // trimming past it; see gather_payload).
  mutable std::size_t gather_hint_index_ = 0;
  mutable std::uint64_t gather_hint_base_ = 0;
  std::uint64_t buf_bytes_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::uint64_t fin_seq_ = 0;

  // Receiver state.
  std::uint64_t irs_ = 0;      // initial receive sequence
  std::uint64_t rcv_nxt_ = 0;  // next expected
  std::map<std::uint64_t, net::PayloadRef> out_of_order_;
  std::uint64_t ooo_bytes_ = 0;
  bool fin_received_ = false;
  std::uint64_t peer_fin_seq_ = 0;

  // Congestion control.
  std::size_t cwnd_ = 0;
  std::size_t ssthresh_ = 0;
  int dupack_count_ = 0;
  bool in_fast_recovery_ = false;
  std::uint64_t recovery_point_ = 0;
  /// RFC 2861: time of the last data transmission, for idle detection.
  sim::SimTime last_data_sent_ = sim::SimTime::zero();

  // RTT estimation (Jacobson/Karn).
  sim::SimTime srtt_ = sim::SimTime::zero();
  sim::SimTime rttvar_ = sim::SimTime::zero();
  bool have_rtt_sample_ = false;
  int rto_backoff_ = 0;
  /// Timing of one in-flight segment (Karn's algorithm: at most one timed
  /// segment, never a retransmitted one).
  bool timing_segment_ = false;
  std::uint64_t timed_seq_ = 0;
  sim::SimTime timed_sent_at_ = sim::SimTime::zero();

  // Timers.
  sim::EventId rto_timer_;
  sim::EventId delayed_ack_timer_;
  sim::EventId time_wait_timer_;
  bool ack_pending_ = false;

#if DYNCDN_OBS
  // Observability (see attach_trace). The session outlives the socket:
  // it is owned by the Scenario that owns the whole node graph.
  obs::TraceSession* trace_ = nullptr;
  obs::SpanId trace_span_ = obs::kNoSpan;
  bool trace_tx_data_ = false;   // "tx_data" (t1) recorded
  bool trace_ack_data_ = false;  // "ack_data" (t2) recorded
#endif

  SocketStats stats_;
};

}  // namespace dyncdn::tcp
