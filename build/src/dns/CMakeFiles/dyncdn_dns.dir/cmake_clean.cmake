file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_dns.dir/resolver.cpp.o"
  "CMakeFiles/dyncdn_dns.dir/resolver.cpp.o.d"
  "libdyncdn_dns.a"
  "libdyncdn_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
