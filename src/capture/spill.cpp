#include "capture/spill.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define DYNCDN_SPILL_HAVE_MMAP 1
#endif

namespace dyncdn::capture {

namespace {

constexpr char kMagic[8] = {'D', 'T', 'R', 'C', '0', '0', '0', '1'};
constexpr char kTailMagic[8] = {'D', 'T', 'R', 'C', 'E', 'N', 'D', '1'};
constexpr std::size_t kFileHeaderBytes = 16;  // magic + node u32 + flags u32
constexpr std::size_t kTailBytes = 24;        // footer off + records + magic
constexpr std::size_t kSectionCount = 9;

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked byte cursor over a mapped region; every overrun is a
/// corrupt-file error, never UB.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;
  const char* what;

  [[noreturn]] void fail(const char* detail) const {
    throw std::runtime_error(std::string("dtrc: truncated or corrupt ") +
                             what + " (" + detail + ")");
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (p == end) fail("varint runs past end");
      if (shift >= 64) fail("varint too wide");
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  const std::uint8_t* bytes(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) fail("byte run past end");
    const std::uint8_t* r = p;
    p += n;
    return r;
  }
  bool done() const { return p == end; }
};

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpillWriter
// ---------------------------------------------------------------------------

SpillWriter::SpillWriter(std::string path, net::NodeId node)
    : SpillWriter(std::move(path), node, Options{}) {}

SpillWriter::SpillWriter(std::string path, net::NodeId node, Options options)
    : path_(std::move(path)), node_(node), options_(options) {
  if (options_.block_records == 0) options_.block_records = 4096;
  open_file();
}

SpillWriter::~SpillWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor best-effort: a failing disk at teardown must not
    // terminate; the file is simply left truncated.
  }
  if (file_ != nullptr) std::fclose(file_);
}

void SpillWriter::open_file() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("SpillWriter: cannot open " + path_);
  }
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagic, kMagic + 8);
  put_u32(header, node_.value());
  put_u32(header, 0);  // flags, reserved
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    throw std::runtime_error("SpillWriter: header write failed: " + path_);
  }
  write_offset_ = header.size();
  finished_ = false;
}

void SpillWriter::on_packet(const PacketRecord& r) {
  encode(r.timestamp, r.direction, r.src, r.dst, r.tcp, r.payload_size,
         r.payload);
}

void SpillWriter::append(const PacketRecordView& v) {
  encode(v.timestamp, v.direction, v.src, v.dst, v.tcp, v.payload_size,
         v.payload);
}

void SpillWriter::append_trace(const PacketTrace& trace) {
  for (const auto& v : trace.records()) append(v);
}

void SpillWriter::on_clear() {
  // Restart the file: spilled state resets in lockstep with the
  // recorder's buffer. Stats stay cumulative (they feed monotonic
  // time-series channels), so discarded bytes remain counted as work done.
  for (auto& s : sections_) s.clear();
  payload_region_.clear();
  pair_state_.clear();
  block_pairs_.clear();
  block_records_ = 0;
  prev_timestamp_ = 0;
  endpoints_.clear();
  pairs_.clear();
  endpoint_lookup_.clear();
  pair_lookup_.clear();
  index_.clear();
  open_file();
}

std::uint32_t SpillWriter::intern_endpoint(net::NodeId node, net::Port port) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(node.value()) << 16) | port;
  const auto [it, inserted] = endpoint_lookup_.try_emplace(
      key, static_cast<std::uint32_t>(endpoints_.size()));
  if (inserted) endpoints_.emplace_back(node.value(), port);
  return it->second;
}

std::uint32_t SpillWriter::intern_pair(std::uint32_t a, std::uint32_t b) {
  if (a > b) std::swap(a, b);
  const auto [it, inserted] = pair_lookup_.try_emplace(
      pair_key(a, b), static_cast<std::uint32_t>(pairs_.size()));
  if (inserted) pairs_.emplace_back(a, b);
  return it->second;
}

void SpillWriter::encode(sim::SimTime timestamp, Direction direction,
                         net::NodeId src, net::NodeId dst,
                         const net::TcpHeader& tcp, std::size_t payload_size,
                         const net::PayloadRef& payload) {
  if (finished_) {
    throw std::logic_error(
        "SpillWriter: append after finish() (call on_clear() to reuse)");
  }
  // 0: timestamp, zigzag delta vs previous record in the block.
  put_varint(sections_[0],
             zigzag_encode(timestamp.ns() - prev_timestamp_));
  prev_timestamp_ = timestamp.ns();
  if (block_records_ == 0) block_first_ts_ = timestamp.ns();
  block_last_ts_ = timestamp.ns();

  // 1: direction bitset.
  if (block_records_ % 8 == 0) sections_[1].push_back(0);
  if (direction == Direction::kReceived) {
    sections_[1].back() |= static_cast<std::uint8_t>(1u << (block_records_ % 8));
  }

  // 2: directed flow id — unordered interned pair plus the bit that
  // restores (src,dst) order.
  const std::uint32_t src_ep = intern_endpoint(src, tcp.src_port);
  const std::uint32_t dst_ep = intern_endpoint(dst, tcp.dst_port);
  const std::uint32_t pair = intern_pair(src_ep, dst_ep);
  const std::uint32_t flow_id = (pair << 1) | (src_ep > dst_ep ? 1u : 0u);
  put_varint(sections_[2], flow_id);

  // 3-5: seq/ack/window, zigzag delta vs the previous record of the same
  // *directed* flow (block-local state so every block decodes
  // standalone). seq is predicted from the previous segment's end (prev
  // seq + prev wire payload), so contiguous data runs cost one byte per
  // record instead of a payload-sized delta.
  if (pair_state_.size() <= flow_id) pair_state_.resize(flow_id + 1);
  PairState& ps = pair_state_[flow_id];
  const auto delta = [](std::vector<std::uint8_t>& out, std::int64_t value,
                        std::int64_t& prev) {
    put_varint(out, zigzag_encode(value - prev));
    prev = value;
  };
  const std::int64_t seq = static_cast<std::int64_t>(tcp.seq);
  put_varint(sections_[3],
             zigzag_encode(seq - (ps.prev_seq + ps.prev_psize)));
  ps.prev_seq = seq;
  delta(sections_[4], static_cast<std::int64_t>(tcp.ack), ps.prev_ack);
  delta(sections_[5], static_cast<std::int64_t>(tcp.window), ps.prev_window);
  if (block_pairs_.empty() || !std::binary_search(block_pairs_.begin(),
                                                  block_pairs_.end(), pair)) {
    block_pairs_.insert(
        std::lower_bound(block_pairs_.begin(), block_pairs_.end(), pair),
        pair);
  }

  // 6: flags nibble, two records per byte.
  const std::uint8_t nibble =
      static_cast<std::uint8_t>(tcp.flags.syn ? 1 : 0) |
      static_cast<std::uint8_t>(tcp.flags.ack ? 2 : 0) |
      static_cast<std::uint8_t>(tcp.flags.fin ? 4 : 0) |
      static_cast<std::uint8_t>(tcp.flags.rst ? 8 : 0);
  if (block_records_ % 2 == 0) {
    sections_[6].push_back(nibble);
  } else {
    sections_[6].back() |= static_cast<std::uint8_t>(nibble << 4);
  }

  // 7: wire payload size, per-directed-flow delta (data runs repeat the
  // MSS); 8: retained payload length (0 = headers-only).
  delta(sections_[7], static_cast<std::int64_t>(payload_size),
        ps.prev_psize);
  put_varint(sections_[8], payload.length);
  payload.for_each_slice([this](std::span<const std::uint8_t> span) {
    payload_region_.insert(payload_region_.end(), span.begin(), span.end());
  });

  ++block_records_;
  ++stats_.records;
  stats_.raw_bytes += PacketTrace::kRecordColumnBytes + payload.length;
  if (block_records_ >= options_.block_records) flush_block();
}

void SpillWriter::flush_block() {
  if (block_records_ == 0) return;
  // A block that retains no payload bytes has an all-zero payload_len
  // column; drop it entirely (the reader infers zeros from size 0).
  if (payload_region_.empty()) sections_[8].clear();
  std::vector<std::uint8_t> header;
  put_u32(header, block_records_);
  for (const auto& s : sections_) {
    put_u32(header, static_cast<std::uint32_t>(s.size()));
  }
  put_u32(header, static_cast<std::uint32_t>(payload_region_.size()));

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t written = 0;
  const auto write = [&](const std::vector<std::uint8_t>& buf) {
    if (buf.empty()) return true;
    if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
      return false;
    }
    written += buf.size();
    return true;
  };
  bool ok = write(header);
  for (const auto& s : sections_) ok = ok && write(s);
  ok = ok && write(payload_region_);
  if (!ok) throw std::runtime_error("SpillWriter: block write failed: " + path_);
  stats_.flush_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  BlockEntry entry;
  entry.offset = write_offset_;
  entry.encoded_bytes = written;
  entry.record_count = block_records_;
  entry.payload_bytes = payload_region_.size();
  entry.first_ts = block_first_ts_;
  entry.last_ts = block_last_ts_;
  entry.pair_ids = block_pairs_;
  index_.push_back(std::move(entry));

  write_offset_ += written;
  stats_.bytes_written += written;
  ++stats_.blocks;

  for (auto& s : sections_) s.clear();
  payload_region_.clear();
  block_pairs_.clear();
  pair_state_.assign(pair_state_.size(), PairState{});
  block_records_ = 0;
  prev_timestamp_ = 0;
}

void SpillWriter::write_footer_and_tail() {
  std::vector<std::uint8_t> footer;
  put_varint(footer, endpoints_.size());
  for (const auto& [node, port] : endpoints_) {
    put_varint(footer, node);
    put_varint(footer, port);
  }
  put_varint(footer, pairs_.size());
  for (const auto& [a, b] : pairs_) {
    put_varint(footer, a);
    put_varint(footer, b);
  }
  put_varint(footer, index_.size());
  std::uint64_t total_records = 0;
  for (const BlockEntry& e : index_) {
    put_varint(footer, e.offset);
    put_varint(footer, e.encoded_bytes);
    put_varint(footer, e.record_count);
    put_varint(footer, e.payload_bytes);
    put_varint(footer, zigzag_encode(e.first_ts));
    put_varint(footer, zigzag_encode(e.last_ts - e.first_ts));
    put_varint(footer, e.pair_ids.size());
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < e.pair_ids.size(); ++i) {
      put_varint(footer, e.pair_ids[i] - prev);  // ascending deltas
      prev = e.pair_ids[i];
    }
    total_records += e.record_count;
  }

  std::vector<std::uint8_t> tail;
  put_u64(tail, write_offset_);
  put_u64(tail, total_records);
  tail.insert(tail.end(), kTailMagic, kTailMagic + 8);

  const auto start = std::chrono::steady_clock::now();
  if (std::fwrite(footer.data(), 1, footer.size(), file_) != footer.size() ||
      std::fwrite(tail.data(), 1, tail.size(), file_) != tail.size() ||
      std::fflush(file_) != 0) {
    throw std::runtime_error("SpillWriter: footer write failed: " + path_);
  }
  stats_.flush_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  stats_.bytes_written += footer.size() + tail.size();
  write_offset_ += footer.size() + tail.size();
}

void SpillWriter::finish() {
  if (finished_) return;
  flush_block();
  write_footer_and_tail();
  std::fclose(file_);
  file_ = nullptr;
  finished_ = true;
}

// ---------------------------------------------------------------------------
// SpillReader
// ---------------------------------------------------------------------------

SpillReader::SpillReader(const std::string& path) : path_(path) {
#ifdef DYNCDN_SPILL_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("SpillReader: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("SpillReader: cannot stat " + path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      data_ = static_cast<const std::uint8_t*>(map);
      mapped_ = true;
    }
  }
  if (!mapped_) {
    fallback_.resize(size_);
    std::size_t off = 0;
    while (off < size_) {
      const ssize_t n = ::read(fd, fallback_.data() + off, size_ - off);
      if (n <= 0) {
        ::close(fd);
        throw std::runtime_error("SpillReader: read failed: " + path);
      }
      off += static_cast<std::size_t>(n);
    }
    data_ = fallback_.data();
  }
  ::close(fd);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("SpillReader: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  size_ = static_cast<std::size_t>(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);
  fallback_.resize(size_);
  if (size_ > 0 && std::fread(fallback_.data(), 1, size_, f) != size_) {
    std::fclose(f);
    throw std::runtime_error("SpillReader: read failed: " + path);
  }
  std::fclose(f);
  data_ = fallback_.data();
#endif
  try {
    parse_footer();
  } catch (...) {
#ifdef DYNCDN_SPILL_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<std::uint8_t*>(data_), size_);
    mapped_ = false;
#endif
    throw;
  }
}

SpillReader::~SpillReader() {
#ifdef DYNCDN_SPILL_HAVE_MMAP
  if (mapped_) ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
}

bool SpillReader::is_dtrc_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8] = {};
  const bool ok = std::fread(magic, 1, 8, f) == 8 &&
                  std::memcmp(magic, kMagic, 8) == 0;
  std::fclose(f);
  return ok;
}

void SpillReader::parse_footer() {
  if (size_ < kFileHeaderBytes + kTailBytes) {
    throw std::runtime_error("dtrc: file too short for header + tail: " +
                             path_);
  }
  if (std::memcmp(data_, kMagic, 8) != 0) {
    throw std::runtime_error("dtrc: bad magic (not a .dtrc file): " + path_);
  }
  node_ = net::NodeId{get_u32(data_ + 8)};

  const std::uint8_t* tail = data_ + size_ - kTailBytes;
  if (std::memcmp(tail + 16, kTailMagic, 8) != 0) {
    throw std::runtime_error(
        "dtrc: missing end marker (truncated file or unfinished writer): " +
        path_);
  }
  const std::uint64_t footer_offset = get_u64(tail);
  record_count_ = get_u64(tail + 8);
  if (footer_offset < kFileHeaderBytes ||
      footer_offset > size_ - kTailBytes) {
    throw std::runtime_error("dtrc: footer offset out of range: " + path_);
  }

  Cursor c{data_ + footer_offset, data_ + size_ - kTailBytes, "footer"};
  const std::uint64_t ep_count = c.varint();
  for (std::uint64_t i = 0; i < ep_count; ++i) {
    const std::uint64_t node = c.varint();
    const std::uint64_t port = c.varint();
    if (port > 0xFFFF) c.fail("endpoint port out of range");
    endpoints_.emplace_back(static_cast<std::uint32_t>(node),
                            static_cast<std::uint16_t>(port));
  }
  const std::uint64_t pair_count = c.varint();
  for (std::uint64_t i = 0; i < pair_count; ++i) {
    const std::uint64_t a = c.varint();
    const std::uint64_t b = c.varint();
    if (a >= endpoints_.size() || b >= endpoints_.size()) {
      c.fail("pair references unknown endpoint");
    }
    pairs_.emplace_back(static_cast<std::uint32_t>(a),
                        static_cast<std::uint32_t>(b));
    pair_lookup_.emplace(pair_key(static_cast<std::uint32_t>(a),
                                  static_cast<std::uint32_t>(b)),
                         static_cast<std::uint32_t>(i));
  }
  const std::uint64_t block_count = c.varint();
  std::uint64_t records_seen = 0;
  for (std::uint64_t i = 0; i < block_count; ++i) {
    BlockMeta m;
    m.offset = c.varint();
    m.encoded_bytes = c.varint();
    m.record_count = static_cast<std::uint32_t>(c.varint());
    m.payload_bytes = c.varint();
    m.first_ts = zigzag_decode(c.varint());
    m.last_ts = m.first_ts + zigzag_decode(c.varint());
    if (m.offset < kFileHeaderBytes || m.encoded_bytes == 0 ||
        m.offset + m.encoded_bytes > footer_offset) {
      c.fail("block extent out of range");
    }
    const std::uint64_t n_pairs = c.varint();
    std::uint32_t prev = 0;
    for (std::uint64_t p = 0; p < n_pairs; ++p) {
      prev += static_cast<std::uint32_t>(c.varint());
      if (prev >= pairs_.size()) c.fail("block lists unknown pair");
      m.pair_ids.push_back(prev);
    }
    records_seen += m.record_count;
    blocks_.push_back(std::move(m));
  }
  if (!c.done()) {
    throw std::runtime_error("dtrc: trailing bytes after footer: " + path_);
  }
  if (records_seen != record_count_) {
    throw std::runtime_error("dtrc: block index record count mismatch: " +
                             path_);
  }
}

SpillReader::BlockInfo SpillReader::block_info(std::size_t block) const {
  const BlockMeta& m = blocks_.at(block);
  BlockInfo info;
  info.first_timestamp = sim::SimTime::nanoseconds(m.first_ts);
  info.last_timestamp = sim::SimTime::nanoseconds(m.last_ts);
  info.records = m.record_count;
  info.payload_bytes = m.payload_bytes;
  return info;
}

void SpillReader::decode_block(
    const BlockMeta& meta,
    const std::function<void(PacketRecord&&)>& emit) const {
  Cursor c{data_ + meta.offset, data_ + meta.offset + meta.encoded_bytes,
           "block"};
  const std::uint32_t n = get_u32(c.bytes(4));
  if (n != meta.record_count) c.fail("record count disagrees with index");
  std::uint32_t section_size[kSectionCount];
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    section_size[s] = get_u32(c.bytes(4));
  }
  const std::uint32_t payload_size = get_u32(c.bytes(4));
  Cursor sec[kSectionCount];
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::uint8_t* p = c.bytes(section_size[s]);
    sec[s] = Cursor{p, p + section_size[s], "block column"};
  }
  // The two bit-packed columns are indexed, not cursored: validate their
  // full extent up front.
  if (section_size[1] < (n + 7) / 8) sec[1].fail("direction bitset short");
  if (section_size[6] < (n + 1) / 2) sec[6].fail("flag nibbles short");
  const std::uint8_t* dir_bits = sec[1].p;
  const std::uint8_t* flag_nibbles = sec[6].p;
  const std::uint8_t* payload_base = c.bytes(payload_size);
  Cursor payloads{payload_base, payload_base + payload_size,
                  "block payload region"};
  if (!c.done()) c.fail("block larger than its sections");

  struct PairState {
    std::int64_t prev_seq = 0;
    std::int64_t prev_ack = 0;
    std::int64_t prev_window = 0;
    std::int64_t prev_psize = 0;
  };
  std::vector<PairState> state;  // indexed by directed flow id
  std::int64_t prev_ts = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    PacketRecord r;
    prev_ts += zigzag_decode(sec[0].varint());
    r.timestamp = sim::SimTime::nanoseconds(prev_ts);
    r.direction = (dir_bits[i / 8] >> (i % 8)) & 1 ? Direction::kReceived
                                                   : Direction::kSent;
    const std::uint64_t flow_id = sec[2].varint();
    const std::uint64_t pair = flow_id >> 1;
    if (pair >= pairs_.size()) {
      sec[2].fail("record references unknown pair");
    }
    const auto [a, b] = pairs_[pair];
    const bool swapped = (flow_id & 1) != 0;
    const std::uint32_t src_ep = swapped ? b : a;
    const std::uint32_t dst_ep = swapped ? a : b;
    r.src = net::NodeId{endpoints_[src_ep].first};
    r.tcp.src_port = endpoints_[src_ep].second;
    r.dst = net::NodeId{endpoints_[dst_ep].first};
    r.tcp.dst_port = endpoints_[dst_ep].second;

    if (state.size() <= flow_id) state.resize(flow_id + 1);
    PairState& ps = state[flow_id];
    ps.prev_seq += ps.prev_psize + zigzag_decode(sec[3].varint());
    ps.prev_ack += zigzag_decode(sec[4].varint());
    ps.prev_window += zigzag_decode(sec[5].varint());
    r.tcp.seq = static_cast<std::uint64_t>(ps.prev_seq);
    r.tcp.ack = static_cast<std::uint64_t>(ps.prev_ack);
    r.tcp.window = static_cast<std::uint32_t>(ps.prev_window);

    const std::uint8_t flag_byte = flag_nibbles[i / 2];
    const std::uint8_t nibble = (i % 2 == 0) ? (flag_byte & 0xF)
                                             : (flag_byte >> 4);
    r.tcp.flags.syn = (nibble & 1) != 0;
    r.tcp.flags.ack = (nibble & 2) != 0;
    r.tcp.flags.fin = (nibble & 4) != 0;
    r.tcp.flags.rst = (nibble & 8) != 0;

    ps.prev_psize += zigzag_decode(sec[7].varint());
    if (ps.prev_psize < 0) sec[7].fail("negative payload size");
    r.payload_size = static_cast<std::size_t>(ps.prev_psize);
    const std::uint64_t retained =
        section_size[8] != 0 ? sec[8].varint() : 0;
    if (retained > 0) {
      const std::uint8_t* bytes = payloads.bytes(
          static_cast<std::size_t>(retained));
      r.payload = net::PayloadRef{
          net::make_buffer(std::span<const std::uint8_t>(
              bytes, static_cast<std::size_t>(retained))),
          0, static_cast<std::size_t>(retained)};
    }
    emit(std::move(r));
  }
}

void SpillReader::read_block(std::size_t block, PacketTrace& out) const {
  decode_block(blocks_.at(block),
               [&out](PacketRecord&& r) { out.add(std::move(r)); });
}

PacketTrace SpillReader::read_all() const {
  PacketTrace out(node_);
  for (const BlockMeta& m : blocks_) {
    decode_block(m, [&out](PacketRecord&& r) { out.add(std::move(r)); });
  }
  return out;
}

void SpillReader::for_each_record(
    const std::function<void(const PacketRecord&)>& fn) const {
  for (const BlockMeta& m : blocks_) {
    decode_block(m, [&fn](PacketRecord&& r) { fn(r); });
  }
}

PacketTrace SpillReader::read_flow(const net::FlowId& flow) const {
  PacketTrace out(node_);
  // Map the flow's endpoints back to interned ids; an unknown endpoint
  // means the flow never appears in this file.
  auto find_ep = [this](const net::Endpoint& e) -> std::int64_t {
    for (std::size_t i = 0; i < endpoints_.size(); ++i) {
      if (endpoints_[i].first == e.node.value() &&
          endpoints_[i].second == e.port) {
        return static_cast<std::int64_t>(i);
      }
    }
    return -1;
  };
  const std::int64_t local = find_ep(flow.local);
  const std::int64_t remote = find_ep(flow.remote);
  if (local < 0 || remote < 0) return out;
  std::uint32_t a = static_cast<std::uint32_t>(local);
  std::uint32_t b = static_cast<std::uint32_t>(remote);
  if (a > b) std::swap(a, b);
  const auto it = pair_lookup_.find(pair_key(a, b));
  if (it == pair_lookup_.end()) return out;
  const std::uint32_t pair = it->second;

  for (const BlockMeta& m : blocks_) {
    if (!std::binary_search(m.pair_ids.begin(), m.pair_ids.end(), pair)) {
      continue;  // the seek: skip blocks without this connection
    }
    decode_block(m, [&out, &flow](PacketRecord&& r) {
      const net::FlowId f = r.flow_at_capture_node();
      if (f == flow || f == flow.reversed()) out.add(std::move(r));
    });
  }
  return out;
}

// ---------------------------------------------------------------------------
// Convenience helpers
// ---------------------------------------------------------------------------

void save_trace_dtrc(const PacketTrace& trace, const std::string& path) {
  SpillWriter writer(path, trace.node());
  writer.append_trace(trace);
  writer.finish();
}

PacketTrace load_trace_dtrc(const std::string& path) {
  return SpillReader(path).read_all();
}

}  // namespace dyncdn::capture
