// Shared helpers for the figure-regeneration benches: consistent headers,
// plottable-series printing, and a tiny ASCII scatter plot so the shape of
// each reproduced figure is visible directly in terminal output.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

namespace dyncdn::bench {

/// True when DYNCDN_FULL=1: run paper-scale repetition counts instead of
/// the quick defaults (documented per bench).
inline bool full_scale() {
  const char* v = std::getenv("DYNCDN_FULL");
  return v != nullptr && v[0] == '1';
}

/// When DYNCDN_CSV=<dir> is set, benches additionally write their primary
/// series as CSV files into that directory for external plotting.
/// Returns false (and writes nothing) when the variable is unset.
inline bool write_csv(const std::string& filename,
                      std::span<const std::string> columns,
                      std::span<const std::vector<double>> rows_by_column) {
  const char* dir = std::getenv("DYNCDN_CSV");
  if (dir == nullptr || dir[0] == '\0') return false;
  const std::string path = std::string(dir) + "/" + filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "DYNCDN_CSV: cannot open %s\n", path.c_str());
    return false;
  }
  for (std::size_t c = 0; c < columns.size(); ++c) {
    std::fprintf(f, "%s%s", c ? "," : "", columns[c].c_str());
  }
  std::fprintf(f, "\n");
  std::size_t rows = 0;
  for (const auto& col : rows_by_column) rows = std::max(rows, col.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < rows_by_column.size(); ++c) {
      const auto& col = rows_by_column[c];
      // Ragged columns get *empty* cells: padding with 0.0 would fabricate
      // data points in anything plotting the export.
      if (c) std::fputc(',', f);
      if (r < col.size()) std::fprintf(f, "%.6f", col[r]);
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  std::printf("  [csv written: %s]\n", path.c_str());
  return true;
}

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

/// Print aligned (x, y...) rows for plotting.
inline void print_series(const std::string& x_label,
                         std::span<const std::string> y_labels,
                         std::span<const double> xs,
                         std::span<const std::vector<double>> ys) {
  std::printf("%12s", x_label.c_str());
  for (const auto& l : y_labels) std::printf(" %14s", l.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%12.2f", xs[i]);
    for (const auto& col : ys) {
      std::printf(" %14.2f", i < col.size() ? col[i] : 0.0);
    }
    std::printf("\n");
  }
}

/// Minimal ASCII scatter: y vs x on a width x height grid.
inline void ascii_scatter(std::span<const double> xs,
                          std::span<const double> ys, std::size_t width = 72,
                          std::size_t height = 18, char mark = 'o') {
  if (xs.empty() || xs.size() != ys.size()) return;
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double xmax = *std::max_element(xs.begin(), xs.end());
  const double ymin = std::min(0.0, *std::min_element(ys.begin(), ys.end()));
  const double ymax = *std::max_element(ys.begin(), ys.end());
  if (xmax <= xmin || ymax <= ymin) return;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t col = static_cast<std::size_t>(
        (xs[i] - xmin) / (xmax - xmin) * static_cast<double>(width - 1));
    const std::size_t row = static_cast<std::size_t>(
        (ys[i] - ymin) / (ymax - ymin) * static_cast<double>(height - 1));
    grid[height - 1 - row][col] = mark;
  }
  std::printf("  y: %.1f .. %.1f\n", ymin, ymax);
  for (const auto& line : grid) std::printf("  |%s\n", line.c_str());
  std::printf("  +%s\n", std::string(width, '-').c_str());
  std::printf("   x: %.1f .. %.1f\n", xmin, xmax);
}

/// Overlay scatter of two series sharing axes (marks 'G' and 'B').
inline void ascii_scatter2(std::span<const double> x1,
                           std::span<const double> y1, char m1,
                           std::span<const double> x2,
                           std::span<const double> y2, char m2,
                           std::size_t width = 72, std::size_t height = 18) {
  std::vector<double> xs(x1.begin(), x1.end());
  xs.insert(xs.end(), x2.begin(), x2.end());
  std::vector<double> ys(y1.begin(), y1.end());
  ys.insert(ys.end(), y2.begin(), y2.end());
  if (xs.empty()) return;
  const double xmin = *std::min_element(xs.begin(), xs.end());
  const double xmax = *std::max_element(xs.begin(), xs.end());
  const double ymin = std::min(0.0, *std::min_element(ys.begin(), ys.end()));
  const double ymax = *std::max_element(ys.begin(), ys.end());
  if (xmax <= xmin || ymax <= ymin) return;

  std::vector<std::string> grid(height, std::string(width, ' '));
  auto plot = [&](std::span<const double> px, std::span<const double> py,
                  char mark) {
    for (std::size_t i = 0; i < px.size(); ++i) {
      const std::size_t col = static_cast<std::size_t>(
          (px[i] - xmin) / (xmax - xmin) * static_cast<double>(width - 1));
      const std::size_t row = static_cast<std::size_t>(
          (py[i] - ymin) / (ymax - ymin) * static_cast<double>(height - 1));
      grid[height - 1 - row][col] = mark;
    }
  };
  plot(x1, y1, m1);
  plot(x2, y2, m2);
  std::printf("  y: %.1f .. %.1f   ('%c' vs '%c')\n", ymin, ymax, m1, m2);
  for (const auto& line : grid) std::printf("  |%s\n", line.c_str());
  std::printf("  +%s\n", std::string(width, '-').c_str());
  std::printf("   x: %.1f .. %.1f\n", xmin, xmax);
}

}  // namespace dyncdn::bench
