# Empty dependencies file for dyncdn_experiment.
# This may be replaced when dependencies are built.
