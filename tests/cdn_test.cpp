// CDN layer integration tests: BE processing model, FE split-TCP relay,
// static-immediate delivery, caching knob, warm/cold BE connections.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::cdn {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

struct CdnFixture {
  struct Options {
    SimTime client_fe_delay = 20_ms;
    SimTime fe_be_delay = 5_ms;
    std::optional<FrontEndServer::Config> fe_overrides;
    ProcessingModel processing;
    std::uint64_t seed = 3;
  };

  CdnFixture() : CdnFixture(Options{}) {}

  explicit CdnFixture(Options opt)
      : simulator(opt.seed),
        network(simulator),
        content(search::ContentProfile{}, "TestSearch") {
    client_node = &network.add_node("client");
    fe_node = &network.add_node("fe");
    be_node = &network.add_node("be");

    net::LinkConfig access;
    access.propagation_delay = opt.client_fe_delay;
    network.connect(*client_node, *fe_node, access);
    net::LinkConfig internal;
    internal.propagation_delay = opt.fe_be_delay;
    network.connect(*fe_node, *be_node, internal);
    // Direct client<->BE path for the no-FE baseline.
    net::LinkConfig direct;
    direct.propagation_delay = opt.client_fe_delay + opt.fe_be_delay;
    network.connect(*client_node, *be_node, direct);

    BackendDataCenter::Config be_cfg;
    be_cfg.name = "test-be";
    be_cfg.processing = opt.processing;
    backend = std::make_unique<BackendDataCenter>(*be_node, content, be_cfg);

    FrontEndServer::Config fe_cfg =
        opt.fe_overrides.value_or(FrontEndServer::Config{});
    fe_cfg.backend = backend->fetch_endpoint();
    if (fe_cfg.service.median_ms == LoadModel{}.median_ms) {
      fe_cfg.service.median_ms = 2.0;  // keep FE delay small by default
      fe_cfg.service.sigma = 0.0;
    }
    frontend = std::make_unique<FrontEndServer>(*fe_node, content,
                                                std::move(fe_cfg));
    client = std::make_unique<QueryClient>(*client_node);

    // Let the FE's persistent BE connection establish and warm.
    simulator.run_until(simulator.now() + 3_s);
  }

  QueryResult query(const search::Keyword& kw) {
    QueryResult out;
    client->submit(frontend->client_endpoint(), kw,
                   [&](const QueryResult& r) { out = r; });
    simulator.run();
    return out;
  }

  QueryResult query_direct(const search::Keyword& kw) {
    QueryResult out;
    client->submit(backend->direct_endpoint(), kw,
                   [&](const QueryResult& r) { out = r; });
    simulator.run();
    return out;
  }

  sim::Simulator simulator;
  net::Network network;
  search::ContentModel content;
  net::Node* client_node = nullptr;
  net::Node* fe_node = nullptr;
  net::Node* be_node = nullptr;
  std::unique_ptr<BackendDataCenter> backend;
  std::unique_ptr<FrontEndServer> frontend;
  std::unique_ptr<QueryClient> client;
};

const search::Keyword kKeyword{"cloud computing", search::KeywordClass::kPopular,
                               50};

TEST(Backend, DirectServiceReturnsFullPage) {
  CdnFixture f;
  const QueryResult r = f.query_direct(kKeyword);
  EXPECT_FALSE(r.failed) << r.failure_reason;
  EXPECT_EQ(r.status, 200);
  EXPECT_GT(r.body_bytes, f.content.static_prefix().size());
  EXPECT_EQ(f.backend->queries_served(), 1u);
}

TEST(Backend, ProcessingTimeScalesWithWordCount) {
  ProcessingModel pm;
  pm.base_ms = 30;
  pm.per_word_ms = 20;
  pm.load.sigma = 0.0;
  CdnFixture::Options opt;
  opt.processing = pm;
  CdnFixture f(opt);

  f.query(search::Keyword{"one", search::KeywordClass::kPopular, 99});
  f.query(search::Keyword{"one two three four five",
                          search::KeywordClass::kComplex, 99});
  const auto& log = f.backend->query_log();
  ASSERT_GE(log.size(), 2u);
  const double t1 = log[log.size() - 2].t_proc.to_milliseconds();
  const double t2 = log[log.size() - 1].t_proc.to_milliseconds();
  EXPECT_NEAR(t1, 50.0, 1.0);   // 30 + 1*20
  EXPECT_NEAR(t2, 130.0, 1.0);  // 30 + 5*20
}

TEST(Backend, HotKeywordsHitResultCache) {
  ProcessingModel pm;
  pm.base_ms = 100;
  pm.per_word_ms = 0;
  pm.load.sigma = 0.0;
  pm.result_cache_top_rank = 5;
  pm.cached_factor = 0.3;
  CdnFixture::Options opt;
  opt.processing = pm;
  CdnFixture f(opt);

  f.query(search::Keyword{"hot", search::KeywordClass::kPopular, 2});
  f.query(search::Keyword{"cold", search::KeywordClass::kPopular, 5000});
  const auto& log = f.backend->query_log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_NEAR(log[log.size() - 2].t_proc.to_milliseconds(), 30.0, 1.0);
  EXPECT_NEAR(log[log.size() - 1].t_proc.to_milliseconds(), 100.0, 1.0);
}

TEST(Backend, GroundTruthLogMatchesResponse) {
  CdnFixture f;
  const QueryResult r = f.query(kKeyword);
  ASSERT_FALSE(r.failed);
  const auto& log = f.backend->query_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].keyword, kKeyword.text);
  EXPECT_EQ(log[0].processing_done - log[0].request_received, log[0].t_proc);
  EXPECT_EQ(r.body_bytes,
            f.content.static_prefix().size() + log[0].dynamic_bytes);
}

TEST(Frontend, ResponseContainsStaticPrefixThenDynamic) {
  CdnFixture f;
  const QueryResult r = f.query(kKeyword);
  EXPECT_FALSE(r.failed) << r.failure_reason;
  EXPECT_EQ(r.status, 200);
  EXPECT_GT(r.body_bytes, f.content.static_prefix().size());
  EXPECT_EQ(f.frontend->queries_handled(), 1u);
}

TEST(Frontend, FetchLogBoundsTrueFetchTime) {
  CdnFixture f;
  const QueryResult r = f.query(kKeyword);
  ASSERT_FALSE(r.failed);
  const auto& log = f.frontend->fetch_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(log[0].first_byte, log[0].fetch_start);
  EXPECT_GE(log[0].last_byte, log[0].first_byte);
  // True fetch >= BE processing time, plus at least one FE<->BE RTT.
  const double t_fetch = log[0].true_fetch_time().to_milliseconds();
  const double t_proc =
      f.backend->query_log().front().t_proc.to_milliseconds();
  EXPECT_GE(t_fetch, t_proc + 10.0 - 0.5);  // 2 * 5ms fe<->be one-way
}

TEST(Frontend, StaticArrivesBeforeFetchCompletes) {
  // First response byte must reach the client before the FE has even
  // received the dynamic content (the FE's role-1 head start).
  CdnFixture f;
  const QueryResult r = f.query(kKeyword);
  ASSERT_FALSE(r.failed);
  const auto& fetch = f.frontend->fetch_log().front();
  EXPECT_LT(r.first_byte, fetch.last_byte);
}

TEST(Frontend, DeferredStaticAblationDelaysFirstByte) {
  auto first_byte_delay = [](bool immediate) {
    CdnFixture::Options opt;
    FrontEndServer::Config cfg;
    cfg.serve_static_immediately = immediate;
    cfg.service.median_ms = 2.0;
    cfg.service.sigma = 0.0;
    opt.fe_overrides = cfg;
    CdnFixture f(opt);
    const QueryResult r = f.query(kKeyword);
    EXPECT_FALSE(r.failed);
    return (r.first_byte - r.request_sent).to_milliseconds();
  };
  const double immediate = first_byte_delay(true);
  const double deferred = first_byte_delay(false);
  // Deferred static waits for the whole fetch (>= T_proc ~ 40ms more).
  EXPECT_GT(deferred, immediate + 30.0);
}

TEST(Frontend, StoreAndForwardDelaysCompletionNotCorrectness) {
  auto run = [](FrontEndServer::RelayMode mode) {
    CdnFixture::Options opt;
    FrontEndServer::Config cfg;
    cfg.relay_mode = mode;
    cfg.service.median_ms = 2.0;
    cfg.service.sigma = 0.0;
    opt.fe_overrides = cfg;
    CdnFixture f(opt);
    return f.query(kKeyword);
  };
  const QueryResult streaming = run(FrontEndServer::RelayMode::kStreaming);
  const QueryResult buffered =
      run(FrontEndServer::RelayMode::kStoreAndForward);
  EXPECT_FALSE(streaming.failed);
  EXPECT_FALSE(buffered.failed);
  EXPECT_EQ(streaming.body_bytes, buffered.body_bytes);
}

TEST(Frontend, ResultCacheServesRepeatsLocally) {
  CdnFixture::Options opt;
  FrontEndServer::Config cfg;
  cfg.cache_results = true;
  cfg.service.median_ms = 2.0;
  cfg.service.sigma = 0.0;
  opt.fe_overrides = cfg;
  // Low client RTT: delivery is quick, so the fetch time dominates the
  // overall delay and the cache saving is clearly visible. (At high RTT
  // the fetch hides behind the static delivery — the paper's own point.)
  opt.client_fe_delay = 2_ms;
  CdnFixture f(opt);

  const QueryResult first = f.query(kKeyword);
  const QueryResult second = f.query(kKeyword);
  EXPECT_FALSE(first.failed);
  EXPECT_FALSE(second.failed);
  EXPECT_EQ(f.frontend->cache_hits(), 1u);
  EXPECT_EQ(f.backend->queries_served(), 1u);  // only the miss reached BE
  EXPECT_EQ(first.body_bytes, second.body_bytes);
  // The cached response skips the FE-BE fetch entirely; the saving is the
  // fetch time (~T_proc + RTT_be), while page delivery time is unchanged.
  EXPECT_LT(second.overall_delay().to_milliseconds(),
            first.overall_delay().to_milliseconds() - 25.0);
}

TEST(Frontend, CacheDisabledAlwaysFetches) {
  CdnFixture f;
  f.query(kKeyword);
  f.query(kKeyword);
  EXPECT_EQ(f.frontend->cache_hits(), 0u);
  EXPECT_EQ(f.backend->queries_served(), 2u);
}

// Regression: fe_cache_hits read 0 in every default experiment because only
// the off-by-default result cache was counted. The static-portion cache —
// the paper's core FE mechanism — serves every query; a repeated query from
// the same vantage point must record a hit even with result caching off.
TEST(Frontend, StaticCacheHitsOnRepeatedQuery) {
  CdnFixture f;
  const QueryResult first = f.query(kKeyword);
  EXPECT_FALSE(first.failed);
  EXPECT_EQ(f.frontend->static_cache_hits(), 0u);  // first serve primes
  const QueryResult second = f.query(kKeyword);
  EXPECT_FALSE(second.failed);
  EXPECT_EQ(f.frontend->static_cache_hits(), 1u);
  EXPECT_EQ(f.frontend->cache_hits(), 0u);  // result cache untouched
  EXPECT_EQ(f.backend->queries_served(), 2u);  // both queries still fetched
}

TEST(Frontend, WarmConnectionSpeedsFirstQuery) {
  auto first_query_fetch = [](bool warm) {
    CdnFixture::Options opt;
    FrontEndServer::Config cfg;
    cfg.warm_backend_connection = warm;
    cfg.service.median_ms = 2.0;
    cfg.service.sigma = 0.0;
    // Cold path pays slow-start on the dynamic transfer: shrink the
    // initial window to make the ramp visible.
    cfg.backend_tcp.initial_cwnd_segments = 2;
    cfg.backend_tcp.receive_buffer = 1 << 20;
    opt.fe_overrides = cfg;
    opt.fe_be_delay = 25_ms;  // meaningful internal RTT
    CdnFixture f(opt);
    const QueryResult r = f.query(kKeyword);
    EXPECT_FALSE(r.failed);
    return f.frontend->fetch_log().front().true_fetch_time();
  };
  const SimTime warm = first_query_fetch(true);
  const SimTime cold = first_query_fetch(false);
  // The warmed connection saves at least one slow-start round trip.
  EXPECT_LT(warm + 40_ms, cold);
}

TEST(Frontend, ManyConcurrentClientsAllServed) {
  CdnFixture f;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    f.client->submit(f.frontend->client_endpoint(), kKeyword,
                     [&](const QueryResult& r) {
                       EXPECT_FALSE(r.failed) << r.failure_reason;
                       ++completed;
                     });
  }
  f.simulator.run();
  EXPECT_EQ(completed, 20);
  EXPECT_EQ(f.backend->queries_served(), 20u);
  EXPECT_EQ(f.frontend->queries_handled(), 20u);
}

TEST(Frontend, SplitTcpBeatsDirectAtHighClientRtt) {
  CdnFixture::Options opt;
  opt.client_fe_delay = 60_ms;  // distant client
  opt.fe_be_delay = 5_ms;
  CdnFixture f(opt);
  const QueryResult via_fe = f.query(kKeyword);
  const QueryResult direct = f.query_direct(kKeyword);
  ASSERT_FALSE(via_fe.failed);
  ASSERT_FALSE(direct.failed);
  // The direct path pays cold slow start over the full 65ms one-way RTT
  // for the whole page; split TCP confines ramping to the short hops.
  EXPECT_LT(via_fe.overall_delay(), direct.overall_delay());
}

TEST(Deployment, ProfilesEncodeThePaperContrast) {
  const ServiceProfile google = google_like_profile();
  const ServiceProfile bing = bing_like_profile();
  // Bing: closer FEs (full metro coverage) but slower, more variable BE.
  EXPECT_GT(bing.fe_metro_coverage, google.fe_metro_coverage);
  EXPECT_GT(bing.processing.base_ms, 5.0 * google.processing.base_ms);
  EXPECT_GT(bing.fe_service.median_ms, 2.0 * google.fe_service.median_ms);
  EXPECT_GT(bing.fe_service.sigma, google.fe_service.sigma);
  EXPECT_GT(bing.processing.load.sigma, google.processing.load.sigma);
  // Both use the same internal receive window (same Fig. 9 slope).
  EXPECT_EQ(bing.internal_tcp.receive_buffer,
            google.internal_tcp.receive_buffer);
}

TEST(LoadModelTest, BackgroundSwingIsPeriodic) {
  LoadModel m;
  m.load_mean = 1.0;
  m.load_amplitude = 0.4;
  m.load_period_s = 100.0;
  EXPECT_NEAR(m.background_multiplier(SimTime::seconds(0)), 1.0, 1e-9);
  EXPECT_NEAR(m.background_multiplier(SimTime::seconds(25)), 1.4, 1e-9);
  EXPECT_NEAR(m.background_multiplier(SimTime::seconds(75)), 0.6, 1e-9);
  EXPECT_NEAR(m.background_multiplier(SimTime::seconds(100)), 1.0, 1e-6);
}

TEST(LoadModelTest, CongestionPenaltyGrowsWithActive) {
  LoadModel m;
  m.median_ms = 10.0;
  m.sigma = 0.0;
  m.congestion_per_active = 0.1;
  sim::RngStream rng(1);
  const SimTime t0 = m.draw(rng, SimTime::zero(), 0);
  const SimTime t5 = m.draw(rng, SimTime::zero(), 5);
  EXPECT_NEAR(t0.to_milliseconds(), 10.0, 0.01);
  EXPECT_NEAR(t5.to_milliseconds(), 15.0, 0.01);
}

}  // namespace
}  // namespace dyncdn::cdn
