# Empty dependencies file for dyncdn_core.
# This may be replaced when dependencies are built.
