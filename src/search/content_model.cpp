#include "search/content_model.hpp"

#include <algorithm>

namespace dyncdn::search {

namespace {
/// Deterministic printable filler derived from a tag string, appended in
/// place. The newline cadence runs off a local counter, not out.size(), so
/// the produced bytes are identical whether out starts empty or mid-page.
void append_filler(std::string& out, std::string_view tag, std::size_t bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  std::size_t produced = 0;
  while (produced < bytes) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    out.push_back(static_cast<char>('a' + ((h >> 33) % 26)));
    ++produced;
    if (produced % 73 == 0) {
      out.push_back('\n');
      ++produced;
    }
  }
  // The trailing newline may overshoot by one byte; trim to the request.
  out.resize(out.size() - (produced - bytes));
}

std::string filler(std::string_view tag, std::size_t bytes) {
  std::string out;
  out.reserve(bytes);
  append_filler(out, tag, bytes);
  return out;
}
}  // namespace

ContentModel::ContentModel(ContentProfile profile, std::string service_name)
    : profile_(profile), service_name_(std::move(service_name)) {
  // Build the static prefix once: doctype, head, CSS, menu bar. This is the
  // portion the FE caches; it must be byte-identical across queries.
  std::string s;
  s += "<!DOCTYPE html>\n<html>\n<head>\n<title>";
  s += service_name_;
  s += " Search</title>\n<meta charset=\"utf-8\">\n<style>\n";
  const std::string css_tag = service_name_ + "/css";
  // Reserve space for the closing boilerplate below.
  const std::size_t boilerplate = 220;
  const std::size_t css_bytes =
      profile_.static_html_bytes > s.size() + boilerplate
          ? profile_.static_html_bytes - s.size() - boilerplate
          : 0;
  s += "/*";
  s += filler(css_tag, css_bytes);
  s += "*/\n</style>\n</head>\n<body>\n";
  s += "<div id=\"menubar\">"
       "<a>Web</a><a>Videos</a><a>News</a><a>Shopping</a>"
       "<a>Images</a><a>Maps</a><a>More</a></div>\n";
  s += "<div id=\"results-begin\"></div>\n";
  static_prefix_ = std::move(s);
}

std::size_t ContentModel::expected_dynamic_bytes(const Keyword& keyword) const {
  return profile_.dynamic_base_bytes +
         profile_.dynamic_per_word_bytes * keyword.word_count();
}

std::string ContentModel::dynamic_body(const Keyword& keyword,
                                       sim::RngStream& rng) const {
  const double noise =
      profile_.dynamic_size_sigma > 0.0
          ? rng.lognormal_median(1.0, profile_.dynamic_size_sigma)
          : 1.0;
  const std::size_t target = std::max<std::size_t>(
      256, static_cast<std::size_t>(
               static_cast<double>(expected_dynamic_bytes(keyword)) * noise));

  // Everything is appended straight into `b` (no per-result temporaries):
  // this runs once per query on the backend hot path, and the chained
  // operator+ form cost half a dozen allocations per result entry.
  std::string b;
  b.reserve(target + 256);
  // Keyword-dependent dynamic menu (the paper: "keyword-dependent dynamic
  // menu bar, search results and ads").
  b += "<div id=\"dynmenu\" data-q=\"";
  b += keyword.text;
  b += "\"><a>related:";
  b += keyword.text;
  b += "</a></div>\n";

  const std::size_t per_result =
      (target > b.size())
          ? std::max<std::size_t>(64, (target - b.size() - 64) /
                                          std::max<std::size_t>(
                                              1, profile_.results_per_page))
          : 64;
  std::string tag;  // reused filler seed: "<keyword>/<i>/<service>"
  tag.reserve(keyword.text.size() + service_name_.size() + 8);
  for (std::size_t i = 0; i < profile_.results_per_page; ++i) {
    const std::size_t entry_start = b.size();
    b += "<div class=\"result\" rank=\"";
    b += std::to_string(i + 1);
    b += "\"><h3>";
    b += keyword.text;
    b += " — result ";
    b += std::to_string(i + 1);
    b += "</h3><p>";
    const std::size_t entry_size = b.size() - entry_start;
    if (entry_size + 10 < per_result) {
      tag.clear();
      tag += keyword.text;
      tag += '/';
      tag += std::to_string(i);
      tag += '/';
      tag += service_name_;
      append_filler(b, tag, per_result - entry_size - 10);
    }
    b += "</p></div>\n";
  }
  // The ads filler is sized off the body length *before* the ads div opens
  // (operand evaluation order of the old chained-+ expression).
  const std::size_t before_ads = b.size();
  b += "<div id=\"ads\">";
  tag.clear();
  tag += keyword.text;
  tag += "/ads";
  append_filler(b, tag,
                target > before_ads + 32 ? target - before_ads - 32 : 16);
  b += "</div>\n</body>\n</html>\n";
  return b;
}

}  // namespace dyncdn::search
