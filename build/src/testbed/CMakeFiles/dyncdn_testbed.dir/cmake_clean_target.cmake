file(REMOVE_RECURSE
  "libdyncdn_testbed.a"
)
