#include "obs/trace.hpp"

#include <cstdio>
#include <unordered_map>
#include <utility>

#include "obs/ring.hpp"

namespace dyncdn::obs {

TraceSession::TraceSession(std::size_t ring_capacity_bytes) {
  if (ring_capacity_bytes > 0) {
    ring_ = std::make_unique<RingBuffer>(ring_capacity_bytes);
  }
}

TraceSession::~TraceSession() = default;

SpanId TraceSession::begin_span(sim::SimTime at, std::string_view name,
                                std::string_view category, SpanId parent) {
  if (!enabled_) return kNoSpan;
  SpanRecord record;
  record.id = next_id_++;
  record.parent = parent;
  record.name.assign(name);
  record.category.assign(category);
  record.start = at;
  record.end = at;
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void TraceSession::end_span(SpanId id, sim::SimTime at) {
  SpanRecord* span = find_mutable(id);
  if (span == nullptr || !span->open) return;
  span->end = at;
  span->open = false;
  if (ring_) ring_->append(*span);
}

void TraceSession::add_arg(SpanId id, std::string_view key,
                           ArgValue value) {
  SpanRecord* span = find_mutable(id);
  if (span == nullptr) return;
  span->args.push_back(Arg{std::string(key), std::move(value)});
}

void TraceSession::add_event(SpanId id, std::string_view name,
                             sim::SimTime at, std::vector<Arg> args) {
  SpanRecord* span = find_mutable(id);
  if (span == nullptr) return;
  span->events.push_back(SpanEvent{std::string(name), at, std::move(args)});
  if (at > span->end && span->open) span->end = at;
}

const SpanRecord* TraceSession::find(SpanId id) const {
  // Ids are handed out sequentially from id_base_ + 1 and spans are never
  // removed before a merge, so direct indexing covers the pre-merge case;
  // after a merge (remapped or absorbed ids) fall back to a scan. Lookups
  // are rare — the instrumentation hot path only appends.
  if (id == kNoSpan || spans_.empty()) return nullptr;
  if (id > id_base_ && id - id_base_ <= spans_.size() &&
      spans_[id - id_base_ - 1].id == id) {
    return &spans_[id - id_base_ - 1];
  }
  for (const auto& span : spans_) {
    if (span.id == id) return &span;
  }
  return nullptr;
}

SpanRecord* TraceSession::find_mutable(SpanId id) {
  if (!enabled_) return nullptr;
  return const_cast<SpanRecord*>(find(id));
}

std::size_t TraceSession::open_span_count() const {
  std::size_t open = 0;
  for (const auto& span : spans_) {
    if (span.open) ++open;
  }
  return open;
}

void TraceSession::merge_from(TraceSession&& other,
                              std::uint32_t replica_id) {
  std::unordered_map<SpanId, SpanId> remap;
  remap.reserve(other.spans_.size());
  spans_.reserve(spans_.size() + other.spans_.size());
  for (auto& span : other.spans_) {
    const SpanId new_id = next_id_++;
    remap.emplace(span.id, new_id);
    span.id = new_id;
    span.replica = replica_id;
    spans_.push_back(std::move(span));
  }
  // Second pass: rewire parents (a child can precede its parent only
  // across sessions, never within one, but remap handles both).
  for (std::size_t i = spans_.size() - remap.size(); i < spans_.size();
       ++i) {
    auto& span = spans_[i];
    if (span.parent == kNoSpan) continue;
    const auto it = remap.find(span.parent);
    span.parent = it == remap.end() ? kNoSpan : it->second;
  }
  other.spans_.clear();
}

void TraceSession::absorb_shard(TraceSession& other) {
  spans_.reserve(spans_.size() + other.spans_.size());
  for (auto& span : other.spans_) spans_.push_back(std::move(span));
  other.spans_.clear();
}

std::string span_id_header(SpanId id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

}  // namespace dyncdn::obs
