// Search-query workload: keyword catalogs with the three axes the paper
// varies — popularity (Zipf-ranked "suggestion box" keywords), granularity
// (concatenated refinements) and complexity (long, weakly correlated
// mixtures) — plus a generator for the 40,000-keyword caching experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace dyncdn::search {

/// The paper's keyword taxonomy (§3 "Choice and Effect of Search Queries").
enum class KeywordClass : std::uint8_t {
  kPopular,   // trending keywords from the suggestion box
  kGranular,  // concatenated refinements ("computer science department at…")
  kComplex,   // long queries with many terms
  kMixed,     // weakly correlated word mixtures ("computer and potato")
};

const char* to_string(KeywordClass c);

struct Keyword {
  std::string text;
  KeywordClass cls = KeywordClass::kPopular;
  /// Popularity rank (1 = most popular) within its class; drives Zipf draws.
  std::size_t rank = 1;

  std::size_t word_count() const;
};

/// Deterministic keyword catalog. All text is synthesized from word lists,
/// so runs are reproducible and keyword properties (length, word count)
/// are controlled.
class KeywordCatalog {
 public:
  /// `seed` controls synthesis; same seed -> identical catalog.
  explicit KeywordCatalog(std::uint64_t seed = 1);

  /// `count` keywords of one class.
  std::vector<Keyword> generate(KeywordClass cls, std::size_t count) const;

  /// The paper's Fig. 3 uses 4 keywords of different types.
  std::vector<Keyword> figure3_keywords() const;

  /// Large distinct-keyword corpus (the caching experiment uses 40,000).
  std::vector<Keyword> distinct_corpus(std::size_t count) const;

  /// Draw keywords by Zipf(alpha) popularity from a catalog.
  static std::vector<Keyword> zipf_sample(const std::vector<Keyword>& catalog,
                                          std::size_t draws, double alpha,
                                          sim::RngStream& rng);

 private:
  std::string make_text(KeywordClass cls, std::size_t index) const;

  std::uint64_t seed_;
  std::vector<std::string> base_words_;
};

}  // namespace dyncdn::search
