#include "core/cache_detector.hpp"

#include <cstdio>

#include "stats/descriptive.hpp"

namespace dyncdn::core {

std::string CacheDetectionResult::verdict() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%s (KS D=%.3f p=%.4f; median same=%.1fms distinct=%.1fms)",
                caching_detected
                    ? "FE result caching DETECTED"
                    : "no FE result caching (distributions consistent)",
                ks.statistic, ks.p_value, median_same_ms, median_distinct_ms);
  return buf;
}

CacheDetectionResult detect_fe_caching(
    std::span<const double> t_dynamic_same,
    std::span<const double> t_dynamic_distinct) {
  CacheDetectionResult r;
  r.median_same_ms = stats::median(t_dynamic_same);
  r.median_distinct_ms = stats::median(t_dynamic_distinct);
  r.ks = stats::ks_test(t_dynamic_same, t_dynamic_distinct);

  // Caching shows up as *both* a strong distributional divergence and a
  // substantial median drop for the repeated query. The drop is bounded
  // from below by FE service time + static-delivery time (which a cache
  // hit still pays), so the ratio threshold is 0.75 rather than "near
  // zero"; a mild difference alone could stem from keyword-dependent
  // processing cost and must not trigger.
  r.caching_detected = r.ks.distributions_differ() &&
                       r.ks.statistic >= 0.5 &&
                       r.median_same_ms < 0.75 * r.median_distinct_ms;
  return r;
}

}  // namespace dyncdn::core
