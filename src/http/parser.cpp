#include "http/parser.hpp"

#include <charconv>
#include <stdexcept>

namespace dyncdn::http {

namespace {

/// Split "Name: value" lines of a header block into `out`.
void parse_header_lines(std::string_view block, HeaderList& out) {
  while (!block.empty()) {
    const std::size_t eol = block.find("\r\n");
    const std::string_view line =
        (eol == std::string_view::npos) ? block : block.substr(0, eol);
    if (!line.empty()) {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        throw std::runtime_error("http: malformed header line: " +
                                 std::string(line));
      }
      std::string_view name = line.substr(0, colon);
      std::string_view value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
      out.emplace_back(std::string(name), std::string(value));
    }
    if (eol == std::string_view::npos) break;
    block.remove_prefix(eol + 2);
  }
}

std::optional<std::size_t> parse_content_length(const HeaderList& headers) {
  const auto cl = find_header(headers, "Content-Length");
  if (!cl) return std::nullopt;
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(cl->data(), cl->data() + cl->size(), value);
  if (ec != std::errc{} || ptr != cl->data() + cl->size()) {
    throw std::runtime_error("http: bad Content-Length: " + std::string(*cl));
  }
  return value;
}

}  // namespace

std::optional<HttpRequest> parse_request_head(std::string_view block,
                                              std::size_t* consumed) {
  const std::size_t end = block.find("\r\n\r\n");
  if (end == std::string_view::npos) return std::nullopt;
  if (consumed != nullptr) *consumed = end + 4;

  const std::string_view head = block.substr(0, end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      (line_end == std::string_view::npos) ? head : head.substr(0, line_end);

  HttpRequest req;
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      (sp1 == std::string_view::npos) ? std::string_view::npos
                                      : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    throw std::runtime_error("http: malformed request line: " +
                             std::string(request_line));
  }
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(request_line.substr(sp2 + 1));
  if (!req.version.starts_with("HTTP/") || req.target.empty() ||
      req.target.front() != '/') {
    throw std::runtime_error("http: malformed request line: " +
                             std::string(request_line));
  }

  if (line_end != std::string_view::npos) {
    parse_header_lines(head.substr(line_end + 2), req.headers);
  }
  return req;
}

void RequestParser::feed(std::string_view bytes) {
  buffer_.append(bytes);
  try_parse();
}

void RequestParser::try_parse() {
  while (true) {
    std::size_t head_len = 0;
    auto req = parse_request_head(buffer_, &head_len);
    if (!req) return;

    const std::size_t body_len = parse_content_length(req->headers).value_or(0);
    if (buffer_.size() < head_len + body_len) return;  // body incomplete

    req->body = buffer_.substr(head_len, body_len);
    buffer_.erase(0, head_len + body_len);
    on_request_(std::move(*req));
  }
}

void ResponseParser::feed(std::string_view bytes) {
  // Body fast path. Mid-body the parser buffer is always empty at feed
  // entry (a kBody iteration either drains the buffer or completes the
  // response), so body bytes can stream straight from the caller's view to
  // the callbacks without the append/erase round trip through buffer_ —
  // payload bytes dominate a response, so this skips nearly all of the
  // parser's buffering work.
  while (state_ == State::kBody && buffer_.empty()) {
    const std::size_t want =
        body_expected_ ? *body_expected_ - body_received_ : bytes.size();
    const std::size_t take = std::min(want, bytes.size());
    if (take > 0) {
      if (callbacks_.on_body_data) callbacks_.on_body_data(bytes.substr(0, take));
      current_.body.append(bytes.data(), take);
      bytes.remove_prefix(take);
      body_received_ += take;
    }
    if (!body_expected_ || body_received_ < *body_expected_) {
      return;  // need more bytes (or the peer's FIN)
    }
    complete_current();
    if (bytes.empty()) return;
  }

  buffer_.append(bytes);

  while (!buffer_.empty()) {
    if (state_ == State::kHeaders) {
      const std::size_t end = buffer_.find("\r\n\r\n");
      if (end == std::string::npos) return;
      parse_headers();
      // parse_headers consumed the head and switched to kBody.
    }

    // Body streaming. Read-until-close framing consumes everything.
    const std::size_t want =
        body_expected_ ? *body_expected_ - body_received_ : buffer_.size();
    const std::size_t take = std::min(want, buffer_.size());
    if (take > 0) {
      if (callbacks_.on_body_data) {
        callbacks_.on_body_data(std::string_view(buffer_).substr(0, take));
      }
      current_.body.append(buffer_, 0, take);
      buffer_.erase(0, take);
      body_received_ += take;
    }
    if (!body_expected_ || body_received_ < *body_expected_) {
      return;  // need more bytes (or the peer's FIN)
    }
    complete_current();
    if (buffer_.empty()) return;
  }
}

void ResponseParser::complete_current() {
  if (callbacks_.on_complete) callbacks_.on_complete(current_);
  state_ = State::kHeaders;
  current_ = HttpResponse{};
  body_expected_ = std::nullopt;
  // body_received_ stays readable until the next response's headers parse.
}

void ResponseParser::finish_stream() {
  if (state_ == State::kHeaders) {
    if (!buffer_.empty()) {
      throw std::runtime_error("http: connection closed mid-headers");
    }
    return;  // idle between responses: clean close
  }
  if (body_expected_ && body_received_ < *body_expected_) {
    throw std::runtime_error("http: connection closed mid-body (got " +
                             std::to_string(body_received_) + " of " +
                             std::to_string(*body_expected_) + ")");
  }
  complete_current();
}

void ResponseParser::parse_headers() {
  const std::size_t end = buffer_.find("\r\n\r\n");
  const std::string_view head = std::string_view(buffer_).substr(0, end);

  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      (line_end == std::string_view::npos) ? head : head.substr(0, line_end);

  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos) {
    throw std::runtime_error("http: malformed status line: " +
                             std::string(status_line));
  }
  HttpResponse resp;
  resp.version = std::string(status_line.substr(0, sp1));
  const std::size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string_view code =
      status_line.substr(sp1 + 1, (sp2 == std::string_view::npos)
                                      ? std::string_view::npos
                                      : sp2 - sp1 - 1);
  resp.status = 0;
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), resp.status);
  if (ec != std::errc{} || ptr != code.data() + code.size()) {
    throw std::runtime_error("http: bad status code: " + std::string(code));
  }
  if (sp2 != std::string_view::npos) {
    resp.reason = std::string(status_line.substr(sp2 + 1));
  }
  if (line_end != std::string_view::npos) {
    parse_header_lines(head.substr(line_end + 2), resp.headers);
  }

  current_ = std::move(resp);
  body_expected_ = parse_content_length(current_.headers);
  if (body_expected_) current_.body.reserve(*body_expected_);
  body_received_ = 0;
  state_ = State::kBody;
  buffer_.erase(0, end + 4);

  if (callbacks_.on_headers) callbacks_.on_headers(current_, body_expected_);
}

}  // namespace dyncdn::http
