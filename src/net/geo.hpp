// Geographic placement: nodes get latitude/longitude, and link propagation
// delays derive from great-circle distance at fiber propagation speed. The
// paper's Fig. 9 regresses T_dynamic against FE↔BE distance in miles.
#pragma once

#include <string>

#include "sim/time.hpp"

namespace dyncdn::net {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  std::string to_string() const;
};

/// Great-circle (haversine) distance in statute miles.
double haversine_miles(const GeoPoint& a, const GeoPoint& b);

/// Same distance in kilometers.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// One-way propagation delay of a fiber path between two points. Real paths
/// are not great circles; `path_stretch` (default 1.4, a common measured
/// inflation factor) scales the geometric distance. Light in fiber travels
/// at ~2/3 c ≈ 124 miles/ms.
sim::SimTime propagation_delay(const GeoPoint& a, const GeoPoint& b,
                               double path_stretch = 1.4);

/// Propagation delay for a given path length in miles.
sim::SimTime propagation_delay_miles(double miles);

/// Miles of one-way fiber corresponding to a given one-way delay: the
/// inverse of propagation_delay_miles. Used to place synthetic sites at a
/// target RTT.
double miles_for_delay(sim::SimTime one_way);

/// Speed of light in fiber, miles per millisecond (~124).
inline constexpr double kFiberMilesPerMs = 124.0;

}  // namespace dyncdn::net
