// Minimal DNS subsystem.
//
// Two places in the paper rest on DNS: the "default FE server is whatever
// server IP address the DNS resolution returns" (CDNs steer clients to
// nearby front-ends through resolver-aware answers), and footnote 1's
// claim that "DNS resolution time is not included, as it is negligible as
// compared to the overall user-perceived response time". This module
// implements both so they can be exercised and the footnote quantified.
//
// Protocol (DNS-over-TCP, one exchange per connection):
//   client -> "Q <name>\n"
//   server -> "A <node-id> <port>\n"   or   "NX\n"
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/load_model.hpp"
#include "net/address.hpp"
#include "net/node.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::dns {

inline constexpr net::Port kDnsPort = 53;

/// Authoritative resolver with CDN-style redirection: the answer for a
/// name may depend on who asks (real CDNs answer based on the resolver's
/// location; we use the querying node, the ideal case).
class DnsServer {
 public:
  /// Picks one of the candidate endpoints for a given querier.
  using SelectionPolicy = std::function<net::Endpoint(
      net::NodeId querier, const std::vector<net::Endpoint>& candidates)>;

  /// Installs a TCP stack on `node` listening on port 53.
  /// `service` models the resolver's lookup latency.
  DnsServer(net::Node& node, cdn::LoadModel service = {});

  /// Register (or extend) a name's candidate endpoints.
  void add_record(const std::string& name, net::Endpoint endpoint);

  /// Replace the selection policy (default: round-robin over candidates).
  void set_policy(SelectionPolicy policy) { policy_ = std::move(policy); }

  net::Endpoint endpoint() const { return {node_.id(), kDnsPort}; }
  std::size_t queries_served() const { return queries_served_; }

 private:
  void serve(tcp::TcpSocket& socket);

  net::Node& node_;
  tcp::TcpStack stack_;
  cdn::LoadModel service_;
  sim::RngStream service_rng_;
  SelectionPolicy policy_;
  std::unordered_map<std::string, std::vector<net::Endpoint>> records_;
  std::unordered_map<std::string, std::size_t> rr_cursor_;
  std::size_t queries_served_ = 0;
};

/// Result of one resolution as observed by the client.
struct ResolveResult {
  bool failed = true;
  std::string error;
  net::Endpoint endpoint;
  sim::SimTime started;
  sim::SimTime completed;

  sim::SimTime duration() const { return completed - started; }
};

/// Stub resolver client with a simple positive cache (like an OS stub +
/// local cache; the paper's emulator resolved once per node).
class DnsClient {
 public:
  using Handler = std::function<void(const ResolveResult&)>;

  /// Uses an existing stack (e.g. QueryClient::stack()) for its lookups.
  DnsClient(tcp::TcpStack& stack, net::Endpoint server);

  /// Resolve `name`; hits the cache when possible (cache_ttl > 0).
  void resolve(const std::string& name, Handler handler);

  void set_cache_ttl(sim::SimTime ttl) { cache_ttl_ = ttl; }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t lookups_sent() const { return lookups_sent_; }

 private:
  struct CacheEntry {
    net::Endpoint endpoint;
    sim::SimTime expires;
  };

  tcp::TcpStack& stack_;
  net::Endpoint server_;
  sim::SimTime cache_ttl_ = sim::SimTime::seconds(60);
  std::unordered_map<std::string, CacheEntry> cache_;
  std::size_t cache_hits_ = 0;
  std::size_t lookups_sent_ = 0;
};

}  // namespace dyncdn::dns
