// dyncdn_experiment — command-line driver for the measurement campaigns.
//
// Runs one of the paper's experiment types against a chosen deployment
// profile and prints per-node results as TSV (easily plotted or piped into
// further analysis). Optionally saves each vantage point's packet trace.
//
//   dyncdn_experiment --experiment=fixed-fe --service=bing --clients=80
//       --reps=20 --seed=7 --save-traces=/tmp/traces    (one command line)
//
// Experiments:
//   fixed-fe    Datasets B: every client queries FE #0.
//   default-fe  Datasets A: every client queries its DNS-nearest FE.
//   caching     §3 same-vs-distinct caching probe.
//   factoring   Fig. 9 fetch-time factoring over an FE distance sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capture/serialize.hpp"
#include "core/inference.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_prometheus.hpp"
#include "obs/memory.hpp"
#include "search/keywords.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct CliOptions {
  std::string experiment = "fixed-fe";
  std::string service = "google";
  std::size_t clients = 60;
  std::size_t reps = 15;
  std::uint64_t seed = 1;
  std::string save_traces;  // directory; empty = off
  std::size_t threads = 0;  // 0 = DYNCDN_THREADS / hardware concurrency
  std::size_t shards = 0;   // 0 = one replica per vantage point
  std::size_t sim_shards = 0;  // per-scenario kernels (0 = DYNCDN_SIM_SHARDS)
  std::string trace_out;    // Chrome trace_event JSON; empty = off
  std::string metrics_out;  // Prometheus text dump; empty = off
  bool stream = true;       // online timeline analysis (--capture = off)
  std::size_t capture_budget = 0;  // bytes/client before spill-to-disk; 0=off
  double ts_interval_ms = 0.0;  // 0 = default 100ms when a ts output is set
  std::string ts_out;           // time series (.csv -> CSV, else JSON)
  std::string ts_runtime_out;   // runtime channels + executor JSON
  std::string attribution_out;  // per-component latency JSON
  std::string slow_log;         // flight-recorder slow-query JSON
  double slow_threshold_ms = 0.0;  // explicit trigger; 0 = adaptive
};

void usage() {
  std::fprintf(
      stderr,
      "usage: dyncdn_experiment [--experiment=fixed-fe|default-fe|caching|"
      "factoring]\n"
      "                         [--service=google|bing] [--clients=N]\n"
      "                         [--reps=N] [--seed=S] [--save-traces=DIR]\n"
      "                         [--threads=N] [--shards=N]\n"
      "                         [--shards-per-scenario=N]\n"
      "                         [--trace-out=FILE] [--metrics-out=FILE]\n"
      "                         [--ts-interval=MS] [--ts-out=FILE]\n"
      "                         [--ts-runtime-out=FILE]\n"
      "                         [--attribution-out=FILE] [--slow-log=FILE]\n"
      "                         [--slow-threshold=MS]\n"
      "                         [--stream | --capture] "
      "[--capture-budget=BYTES]\n"
      "  --threads  worker threads for sharded experiments "
      "(0 = DYNCDN_THREADS or all cores)\n"
      "  --shards   replica count (0 = one per vantage point; "
      "1 = legacy serial semantics)\n"
      "  --shards-per-scenario  conservative-parallel kernels inside each\n"
      "             scenario (0 = DYNCDN_SIM_SHARDS or 1; results are\n"
      "             identical at any value)\n"
      "  --stream   reduce flows to timelines online (default): campaign "
      "memory is O(in-flight flows)\n"
      "  --capture  retain full packet traces and analyze post-hoc "
      "(results are byte-identical; --save-traces implies this)\n"
      "  --capture-budget  per-client capture memory budget (accepts k/m/g\n"
      "                 suffixes, e.g. 64k). Once a client's retained bytes\n"
      "                 reach the budget the buffer spills to a binary\n"
      "                 .dtrc trace file and resets; analysis reloads the\n"
      "                 spilled prefix, so results stay byte-identical to\n"
      "                 unbudgeted --capture. 0 = DYNCDN_CAPTURE_BUDGET or\n"
      "                 unlimited. Implies --capture\n"
      "  --trace-out    write per-query span timelines as Chrome "
      "trace_event JSON (chrome://tracing, Perfetto)\n"
      "  --metrics-out  write the run's metrics registry in Prometheus "
      "text format\n"
      "  --ts-interval  sim-time sampling tick in ms (default 100 once any\n"
      "                 time-series output is requested)\n"
      "  --ts-out       write the sampled metric series; a .csv suffix\n"
      "                 selects CSV, anything else JSON. Application\n"
      "                 channels only: byte-identical at any --threads /\n"
      "                 --shards-per-scenario value\n"
      "  --ts-runtime-out  write runtime-health JSON (PDES barrier stalls,\n"
      "                 per-worker run/steal counts); layout-dependent by\n"
      "                 nature, so kept out of --ts-out\n"
      "  --attribution-out  write per-component latency attribution JSON\n"
      "                 (dns/connect/uplink/fe wait/fetch/delivery "
      "percentiles);\n"
      "                 implies tracing\n"
      "  --slow-log     write the slow-query flight recorder dump (span\n"
      "                 trees of promoted queries); implies tracing\n"
      "  --slow-threshold  promote queries with T_dynamic above this many\n"
      "                 ms (0 = adaptive: p90 of the running distribution "
      "x 3)\n");
}

std::optional<CliOptions> parse_args(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&](std::string_view prefix)
        -> std::optional<std::string> {
      if (arg.starts_with(prefix)) {
        return std::string(arg.substr(prefix.size()));
      }
      return std::nullopt;
    };
    if (auto v = value("--experiment=")) {
      opt.experiment = *v;
    } else if (auto v = value("--service=")) {
      opt.service = *v;
    } else if (auto v = value("--clients=")) {
      opt.clients = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                           nullptr, 10));
    } else if (auto v = value("--reps=")) {
      opt.reps = static_cast<std::size_t>(std::strtoull(v->c_str(), nullptr,
                                                        10));
    } else if (auto v = value("--seed=")) {
      opt.seed = std::strtoull(v->c_str(), nullptr, 10);
    } else if (auto v = value("--save-traces=")) {
      opt.save_traces = *v;
    } else if (auto v = value("--threads=")) {
      opt.threads = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                           nullptr, 10));
    } else if (auto v = value("--shards-per-scenario=")) {
      opt.sim_shards = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                              nullptr, 10));
    } else if (auto v = value("--shards=")) {
      opt.shards = static_cast<std::size_t>(std::strtoull(v->c_str(),
                                                          nullptr, 10));
    } else if (auto v = value("--trace-out=")) {
      opt.trace_out = *v;
    } else if (auto v = value("--metrics-out=")) {
      opt.metrics_out = *v;
    } else if (auto v = value("--ts-interval=")) {
      opt.ts_interval_ms = std::strtod(v->c_str(), nullptr);
    } else if (auto v = value("--ts-out=")) {
      opt.ts_out = *v;
    } else if (auto v = value("--ts-runtime-out=")) {
      opt.ts_runtime_out = *v;
    } else if (auto v = value("--attribution-out=")) {
      opt.attribution_out = *v;
    } else if (auto v = value("--slow-log=")) {
      opt.slow_log = *v;
    } else if (auto v = value("--slow-threshold=")) {
      opt.slow_threshold_ms = std::strtod(v->c_str(), nullptr);
    } else if (auto v = value("--capture-budget=")) {
      const auto bytes = testbed::parse_byte_size(*v);
      if (!bytes) {
        std::fprintf(stderr, "bad --capture-budget value: %s\n", v->c_str());
        return std::nullopt;
      }
      opt.capture_budget = *bytes;
      opt.stream = false;  // budgeted spill needs the retained-capture path
    } else if (arg == "--stream") {
      opt.stream = true;
    } else if (arg == "--capture") {
      opt.stream = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return std::nullopt;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      usage();
      return std::nullopt;
    }
  }
  if (opt.experiment != "fixed-fe" && opt.experiment != "default-fe" &&
      opt.experiment != "caching" && opt.experiment != "factoring") {
    std::fprintf(stderr, "bad --experiment value\n");
    return std::nullopt;
  }
  if (opt.service != "google" && opt.service != "bing") {
    std::fprintf(stderr, "bad --service value\n");
    return std::nullopt;
  }
  if (opt.clients == 0 || opt.reps == 0) {
    std::fprintf(stderr, "--clients and --reps must be positive\n");
    return std::nullopt;
  }
  if (opt.ts_interval_ms < 0.0 || opt.slow_threshold_ms < 0.0) {
    std::fprintf(stderr,
                 "--ts-interval and --slow-threshold must be >= 0\n");
    return std::nullopt;
  }
  // A requested time-series output without an interval gets the default
  // 100ms tick.
  if (opt.ts_interval_ms == 0.0 &&
      (!opt.ts_out.empty() || !opt.ts_runtime_out.empty())) {
    opt.ts_interval_ms = 100.0;
  }
  return opt;
}

// Sampling tick as sim time (zero = sampling off).
sim::SimTime ts_interval(const CliOptions& cli) {
  return sim::SimTime::nanoseconds(
      static_cast<std::int64_t>(cli.ts_interval_ms * 1e6));
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

void write_timeseries_outputs(const CliOptions& cli,
                              const obs::TimeSeriesSampler& ts,
                              const parallel::ExecutorStats* exec) {
  if (!cli.ts_out.empty()) {
    const bool csv = cli.ts_out.size() >= 4 &&
                     cli.ts_out.compare(cli.ts_out.size() - 4, 4, ".csv") == 0;
    if (write_text_file(cli.ts_out, csv ? ts.to_csv() : ts.to_json(false))) {
      std::fprintf(stderr, "time series (%zu ticks) written to %s\n",
                   ts.sample_count(), cli.ts_out.c_str());
    }
  }
  if (!cli.ts_runtime_out.empty()) {
    // Runtime view: the full series including runtime channels, plus the
    // executor's per-worker breakdown when a replica campaign supplied one.
    std::string out = "{\"timeseries\":";
    out += ts.to_json(true);
    if (exec != nullptr) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), ",\"executor\":{\"workers\":%zu",
                    exec->workers);
      out += buf;
      std::snprintf(buf, sizeof(buf), ",\"tasks\":%llu,\"steals\":%llu",
                    static_cast<unsigned long long>(exec->tasks),
                    static_cast<unsigned long long>(exec->steals));
      out += buf;
      out += ",\"tasks_by_worker\":[";
      for (std::size_t i = 0; i < exec->tasks_by_worker.size(); ++i) {
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          exec->tasks_by_worker[i]));
        out += buf;
      }
      out += "],\"steals_by_worker\":[";
      for (std::size_t i = 0; i < exec->steals_by_worker.size(); ++i) {
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(
                          exec->steals_by_worker[i]));
        out += buf;
      }
      out += "]}";
    }
    out += "}";
    if (write_text_file(cli.ts_runtime_out, out)) {
      std::fprintf(stderr, "runtime telemetry written to %s\n",
                   cli.ts_runtime_out.c_str());
    }
  }
}

void write_attribution_outputs(const CliOptions& cli,
                               const obs::QueryAttribution& attribution,
                               const obs::FlightRecorder& flight) {
  if (!cli.attribution_out.empty()) {
    if (write_text_file(cli.attribution_out, attribution.to_json())) {
      std::fprintf(stderr,
                   "attribution (%llu queries, %llu reconcile failures) "
                   "written to %s\n",
                   static_cast<unsigned long long>(attribution.queries()),
                   static_cast<unsigned long long>(
                       attribution.reconcile_failures()),
                   cli.attribution_out.c_str());
    }
  }
  if (!cli.slow_log.empty()) {
    if (write_text_file(cli.slow_log, flight.to_json())) {
      std::fprintf(stderr, "slow-query log (%zu entries) written to %s\n",
                   flight.slow().size(), cli.slow_log.c_str());
    }
  }
}

/// Attach a streaming SpillWriter sink to every client recorder: packets
/// encode straight into per-client binary .dtrc files (capture/spill.hpp)
/// and nothing accumulates in memory. trace_inspect and load_trace read
/// .dtrc transparently; `trace_inspect convert` produces the text form
/// when grep-ability matters.
std::vector<std::unique_ptr<capture::SpillWriter>> attach_trace_writers(
    testbed::Scenario& scenario, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::vector<std::unique_ptr<capture::SpillWriter>> writers;
  for (auto& client : scenario.clients()) {
    if (!client.recorder) continue;
    writers.push_back(std::make_unique<capture::SpillWriter>(
        dir + "/" + client.vantage.name + ".dtrc", client.node->id()));
    client.recorder->set_retain_packets(false);
    client.recorder->set_sink(writers.back().get());
  }
  return writers;
}

void finish_trace_writers(
    std::vector<std::unique_ptr<capture::SpillWriter>>& writers,
    const std::string& dir) {
  std::uint64_t bytes = 0, records = 0;
  for (auto& w : writers) {
    w->finish();
    bytes += w->stats().bytes_written;
    records += w->stats().records;
  }
  std::fprintf(stderr,
               "traces saved under %s (%zu files, %llu records, %llu "
               "encoded bytes)\n",
               dir.c_str(), writers.size(),
               static_cast<unsigned long long>(records),
               static_cast<unsigned long long>(bytes));
}

void print_memory_summary(bool streaming) {
  const obs::MemorySnapshot snap = obs::memory_snapshot();
  std::fprintf(stderr, "# mode=%s peak_rss=%.1fMB",
               streaming ? "stream" : "capture",
               static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0));
  if (obs::memory_tracking_enabled()) {
    std::fprintf(stderr, " peak_live=%.1fMB allocations=%llu",
                 static_cast<double>(snap.peak_live_bytes) / (1024.0 * 1024.0),
                 static_cast<unsigned long long>(snap.allocations));
  }
  std::fprintf(stderr, "\n");
}

void write_obs_outputs(const CliOptions& cli, const obs::TraceSession* trace,
                       const obs::MetricsRegistry& metrics) {
  if (!cli.trace_out.empty()) {
    if (trace) {
      obs::write_chrome_trace(*trace, cli.trace_out);
      std::fprintf(stderr, "chrome trace written to %s\n",
                   cli.trace_out.c_str());
    } else {
      std::fprintf(stderr, "--trace-out: no trace session (tracing off)\n");
    }
  }
  if (!cli.metrics_out.empty()) {
    obs::write_prometheus(metrics, cli.metrics_out);
    std::fprintf(stderr, "metrics written to %s\n", cli.metrics_out.c_str());
  }
}

int run_measurement(const CliOptions& cli, bool fixed_fe) {
  testbed::ScenarioOptions so;
  so.profile = cli.service == "google" ? cdn::google_like_profile()
                                       : cdn::bing_like_profile();
  so.client_count = cli.clients;
  so.seed = cli.seed;
  so.sim_shards = cli.sim_shards;
  // Attribution and the flight recorder reduce the span forest, so they
  // imply tracing just like --trace-out.
  so.enable_tracing = !cli.trace_out.empty() || !cli.attribution_out.empty() ||
                      !cli.slow_log.empty();
  so.ts_interval = ts_interval(cli);
  // --save-traces needs the raw PacketRecords on disk, so it implies the
  // retained-capture path regardless of --stream.
  so.stream_analysis = cli.stream && cli.save_traces.empty();
  so.capture_budget = cli.capture_budget;

  testbed::ExperimentOptions eo;
  eo.reps_per_node = cli.reps;
  eo.interval = 1200_ms;
  eo.flight.threshold_ms = cli.slow_threshold_ms;
  search::KeywordCatalog catalog(cli.seed);
  eo.keywords = catalog.figure3_keywords();

  if (!cli.save_traces.empty()) {
    testbed::Scenario scenario(so);
    scenario.warm_up();
    // Capture-only mode: run the query schedule ourselves, stream raw
    // records to binary .dtrc files as they are captured, and skip the
    // built-in analysis (memory stays O(one spill block) per client).
    // trace_inspect analyzes the files offline.
    auto writers = attach_trace_writers(scenario, cli.save_traces);
    for (std::size_t i = 0; i < scenario.clients().size(); ++i) {
      const std::size_t fe = fixed_fe ? 0 : scenario.clients()[i].default_fe;
      scenario.connect_client_to_fe(i, fe);
      scenario.clients()[i].recorder->set_capture_payloads(true);
      const net::Endpoint endpoint = scenario.fe_endpoint(fe);
      auto* client = scenario.clients()[i].query_client.get();
      for (std::size_t r = 0; r < cli.reps; ++r) {
        // Cycle keyword classes so offline content analysis on the saved
        // trace can find the static/dynamic boundary.
        const search::Keyword kw = eo.keywords[r % eo.keywords.size()];
        scenario.clients()[i].node->simulator().schedule_in(
            eo.interval * static_cast<std::int64_t>(r),
            [client, endpoint, kw]() {
              client->submit(endpoint, kw, [](const cdn::QueryResult&) {});
            });
      }
    }
    scenario.run();
    finish_trace_writers(writers, cli.save_traces);
    obs::MetricsRegistry metrics;
    scenario.collect_metrics(metrics);
    // Spill/writer accounting rides along in the Prometheus dump: these
    // metrics exist precisely to observe the durable-trace path, and this
    // mode's output is not part of any byte-identity contract.
    std::uint64_t spill_bytes = 0, spill_blocks = 0, spill_records = 0;
    std::uint64_t spill_raw = 0, spill_flush = 0;
    for (const auto& w : writers) {
      spill_bytes += w->stats().bytes_written;
      spill_blocks += w->stats().blocks;
      spill_records += w->stats().records;
      spill_raw += w->stats().raw_bytes;
      spill_flush += w->stats().flush_ns;
    }
    metrics.add("spill_bytes_written", spill_bytes);
    metrics.add("spill_blocks", spill_blocks);
    metrics.add("spill_records", spill_records);
    metrics.add("spill_raw_bytes", spill_raw);
    metrics.add("spill_flush_ns", spill_flush);
    if (spill_bytes > 0) {
      metrics.gauge_max("spill_compression_x",
                        static_cast<std::int64_t>(spill_raw / spill_bytes));
    }
    write_obs_outputs(cli, scenario.trace(), metrics);
    if (scenario.timeseries() != nullptr) {
      write_timeseries_outputs(cli, *scenario.timeseries(), nullptr);
    }
    if (!cli.attribution_out.empty() || !cli.slow_log.empty()) {
      std::fprintf(stderr,
                   "--attribution-out/--slow-log are unavailable with "
                   "--save-traces; analyze the saved traces with "
                   "trace_inspect instead\n");
    }
    return 0;
  }

  testbed::ReplicaPlan plan;
  plan.shards = cli.shards;
  plan.executor.threads = cli.threads;
  const testbed::ExperimentResult result =
      fixed_fe ? testbed::run_fixed_fe_experiment(so, 0, eo, plan)
               : testbed::run_default_fe_experiment(so, eo, plan);

  std::printf("# experiment=%s service=%s clients=%zu reps=%zu seed=%llu "
              "boundary=%zu\n",
              fixed_fe ? "fixed-fe" : "default-fe", cli.service.c_str(),
              cli.clients, cli.reps,
              static_cast<unsigned long long>(cli.seed), result.boundary);
  std::printf("node\trtt_ms\tt_static_ms\tt_dynamic_ms\tt_delta_ms\t"
              "overall_ms\tsamples\n");
  for (const auto& n : result.per_node) {
    std::printf("%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%zu\n",
                n.node_name.c_str(), n.rtt_ms, n.med_static_ms,
                n.med_dynamic_ms, n.med_delta_ms, n.med_overall_ms,
                n.samples);
  }

  const auto threshold = core::estimate_delta_threshold(result.per_node);
  std::printf("# %s\n", threshold.to_string().c_str());
  write_obs_outputs(cli, result.trace.get(), result.metrics);
  write_timeseries_outputs(cli, result.timeseries, &result.executor_stats);
  write_attribution_outputs(cli, result.attribution, result.flight);
  print_memory_summary(so.stream_analysis);
  return 0;
}

int run_caching(const CliOptions& cli) {
  testbed::ScenarioOptions so;
  so.profile = cli.service == "google" ? cdn::google_like_profile()
                                       : cdn::bing_like_profile();
  so.client_count = std::max<std::size_t>(cli.clients, 4);
  so.seed = cli.seed;
  so.sim_shards = cli.sim_shards;
  so.enable_tracing = !cli.trace_out.empty();
  so.ts_interval = ts_interval(cli);
  so.stream_analysis = cli.stream;
  testbed::Scenario scenario(so);
  scenario.warm_up();

  // Probe from the lowest-RTT vantage point (see EXPERIMENTS.md).
  std::size_t probe = 0;
  sim::SimTime best = sim::SimTime::infinity();
  for (std::size_t i = 0; i < scenario.clients().size(); ++i) {
    if (scenario.client_fe_rtt(i, 0) < best) {
      best = scenario.client_fe_rtt(i, 0);
      probe = i;
    }
  }
  const auto r =
      testbed::run_caching_experiment(scenario, probe, 0, cli.reps);
  std::printf("# experiment=caching service=%s reps=%zu seed=%llu\n",
              cli.service.c_str(), cli.reps,
              static_cast<unsigned long long>(cli.seed));
  std::printf("same_median_ms\t%.2f\ndistinct_median_ms\t%.2f\n"
              "ks_statistic\t%.4f\nks_p_value\t%.6f\ncaching_detected\t%s\n",
              r.detection.median_same_ms, r.detection.median_distinct_ms,
              r.detection.ks.statistic, r.detection.ks.p_value,
              r.detection.caching_detected ? "yes" : "no");
  obs::MetricsRegistry metrics;
  scenario.collect_metrics(metrics);
  write_obs_outputs(cli, scenario.trace(), metrics);
  if (scenario.timeseries() != nullptr) {
    write_timeseries_outputs(cli, *scenario.timeseries(), nullptr);
  }
  print_memory_summary(so.stream_analysis);
  return 0;
}

int run_factoring(const CliOptions& cli) {
  testbed::ScenarioOptions so;
  so.profile = cli.service == "google" ? cdn::google_like_profile()
                                       : cdn::bing_like_profile();
  so.seed = cli.seed;
  so.sim_shards = cli.sim_shards;
  so.stream_analysis = cli.stream;
  std::vector<double> distances;
  for (std::size_t i = 0; i < std::max<std::size_t>(cli.clients / 5, 6);
       ++i) {
    distances.push_back(30.0 + 470.0 * static_cast<double>(i) /
                                   std::max<std::size_t>(
                                       cli.clients / 5 - 1, 5));
  }
  so.fe_distance_sweep_miles = distances;

  const search::Keyword keyword{"command line factoring probe",
                                search::KeywordClass::kGranular, 5000};
  testbed::ReplicaPlan plan;
  plan.shards = cli.shards;
  plan.executor.threads = cli.threads;
  const auto r =
      testbed::run_fetch_factoring_experiment(so, keyword, cli.reps, plan);
  std::printf("# experiment=factoring service=%s reps=%zu seed=%llu\n",
              cli.service.c_str(), cli.reps,
              static_cast<unsigned long long>(cli.seed));
  std::printf("distance_miles\tmed_t_dynamic_ms\n");
  for (std::size_t i = 0; i < r.distances_miles.size(); ++i) {
    std::printf("%.1f\t%.2f\n", r.distances_miles[i],
                r.med_t_dynamic_ms[i]);
  }
  std::printf("# %s\n", r.factoring.to_string().c_str());
  // Factoring merges only series + metrics across shards; span traces are
  // a measurement-experiment feature.
  write_obs_outputs(cli, nullptr, r.metrics);
  print_memory_summary(so.stream_analysis);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = parse_args(argc, argv);
  if (!cli) return 2;
  if (cli->experiment == "fixed-fe") return run_measurement(*cli, true);
  if (cli->experiment == "default-fe") return run_measurement(*cli, false);
  if (cli->experiment == "caching") return run_caching(*cli);
  return run_factoring(*cli);
}
