// Open-addressing hash map for per-flow hot-path state.
//
// std::unordered_map allocates one node per entry and chases a pointer per
// lookup; FlatMap keeps (key, value) pairs inline in one power-of-two slot
// array with linear probing, so the per-flow tables on the TCP and
// streaming-analysis hot paths cost zero allocations per insert at steady
// state and one cache line per lookup. Determinism: probing uses only the
// key hash and the insertion history — no per-process salt — so any two
// runs that perform the same operations in the same order see identical
// tables. Iteration order is slot order, NOT insertion order; callers that
// need a deterministic traversal independent of hash layout must keep
// their own ordering (as StreamingAnalyzer does with its slot vector) or
// only fold order-independent aggregates (as TcpStack::aggregate_stats
// does).
//
// Values must be default-constructible and movable; erased slots hold a
// moved-from/default value until reused (fine for the pointer and index
// payloads this is meant for).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace dyncdn::mem {

template <class K, class V, class Hash = std::hash<K>>
class FlatMap {
 public:
  FlatMap() = default;

  /// Find the value for `key`, or null.
  V* find(const K& key) {
    if (size_ == 0) return nullptr;
    std::size_t i = probe_start(key);
    while (true) {
      switch (state_[i]) {
        case State::kEmpty:
          return nullptr;
        case State::kFull:
          if (slots_[i].key == key) return &slots_[i].value;
          break;
        case State::kTombstone:
          break;
      }
      i = (i + 1) & mask();
    }
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert `key` if absent. Returns (value slot, inserted).
  std::pair<V*, bool> try_emplace(const K& key, V value = V{}) {
    if (slots_.empty() || (size_ + tombstones_ + 1) * 4 >= capacity() * 3) {
      rehash(capacity() == 0 ? 16 : capacity() * 2);
    }
    std::size_t i = probe_start(key);
    std::size_t insert_at = capacity();  // first tombstone on the probe path
    while (true) {
      if (state_[i] == State::kEmpty) {
        if (insert_at == capacity()) {
          insert_at = i;
        } else {
          --tombstones_;  // reusing a tombstone slot
        }
        state_[insert_at] = State::kFull;
        slots_[insert_at].key = key;
        slots_[insert_at].value = std::move(value);
        ++size_;
        return {&slots_[insert_at].value, true};
      }
      if (state_[i] == State::kFull && slots_[i].key == key) {
        return {&slots_[i].value, false};
      }
      if (state_[i] == State::kTombstone && insert_at == capacity()) {
        insert_at = i;
      }
      i = (i + 1) & mask();
    }
  }

  /// Remove `key`. Returns true if it was present. The value is reset to a
  /// default-constructed V immediately (releasing what it owned).
  bool erase(const K& key) {
    if (size_ == 0) return false;
    std::size_t i = probe_start(key);
    while (true) {
      if (state_[i] == State::kEmpty) return false;
      if (state_[i] == State::kFull && slots_[i].key == key) {
        state_[i] = State::kTombstone;
        slots_[i].key = K{};
        slots_[i].value = V{};
        --size_;
        ++tombstones_;
        return true;
      }
      i = (i + 1) & mask();
    }
  }

  void clear() {
    state_.assign(state_.size(), State::kEmpty);
    for (Slot& s : slots_) {
      s.key = K{};
      s.value = V{};
    }
    size_ = 0;
    tombstones_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Visit every (key, value) in slot order (see header note on ordering).
  template <class F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == State::kFull) f(slots_[i].key, slots_[i].value);
    }
  }
  template <class F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (state_[i] == State::kFull) f(slots_[i].key, slots_[i].value);
    }
  }

 private:
  enum class State : std::uint8_t { kEmpty, kFull, kTombstone };

  struct Slot {
    K key{};
    V value{};
  };

  std::size_t mask() const { return slots_.size() - 1; }
  std::size_t probe_start(const K& key) const {
    // Multiplicative mix: std::hash for ints/pointers is often identity,
    // which probes terribly under power-of-two masking.
    const std::uint64_t h = Hash{}(key) * 0x9E3779B97F4A7C15ULL;
    return static_cast<std::size_t>(h >> 32) & mask();
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots;
    std::vector<State> old_state;
    old_slots.swap(slots_);
    old_state.swap(state_);
    slots_.resize(new_capacity);
    state_.assign(new_capacity, State::kEmpty);
    size_ = 0;
    tombstones_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_state[i] != State::kFull) continue;
      std::size_t j = probe_start(old_slots[i].key);
      while (state_[j] == State::kFull) j = (j + 1) & mask();
      state_[j] = State::kFull;
      slots_[j].key = std::move(old_slots[i].key);
      slots_[j].value = std::move(old_slots[i].value);
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::vector<State> state_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace dyncdn::mem
