# Empty compiler generated dependencies file for fig7_default_fe.
# This may be replaced when dependencies are built.
