// Scenario: wires a full measurement testbed for one service profile —
// back-end data center, front-end fleet, vantage-point clients, capture
// taps — on top of the simulator. Experiment runners (experiment.hpp)
// drive queries through it and hand traces to the analysis pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/streaming.hpp"
#include "capture/recorder.hpp"
#include "capture/spill.hpp"
#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "parallel/pdes.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"
#include "testbed/planetlab.hpp"

namespace dyncdn::testbed {

/// Parse a byte count with an optional k/m/g (or K/M/G) binary suffix,
/// e.g. "65536", "64k", "2M". Used by --capture-budget and the
/// DYNCDN_CAPTURE_BUDGET environment variable. nullopt on malformed input.
std::optional<std::size_t> parse_byte_size(std::string_view text);

struct ScenarioOptions {
  cdn::ServiceProfile profile;
  std::size_t client_count = 60;
  std::uint64_t seed = 1;

  /// Capture packets at client nodes. Payload retention is needed only for
  /// content-boundary discovery; large sweeps keep it off to bound memory.
  bool capture_clients = true;
  bool capture_payloads = false;

  /// Per-client capture byte budget (capture/spill.hpp). When > 0 and the
  /// scenario retains packets, each client recorder gets a SpillWriter;
  /// once its buffer's retained_bytes reaches the budget the buffer
  /// streams to a .dtrc file and resets, so capture memory stays bounded
  /// while analysis still sees the complete trace (recorder full_trace()).
  /// 0 = DYNCDN_CAPTURE_BUDGET if set, else unlimited (no spilling).
  std::size_t capture_budget = 0;
  /// Directory for the per-client spill files. Empty = a scenario-owned
  /// temp directory, removed on destruction. Non-empty directories are
  /// created if needed and left in place (the durable-trace workflow).
  std::string spill_dir;

  /// Streaming analysis: attach a StreamingAnalyzer to every client
  /// recorder and stop retaining PacketRecords — flows are reduced to
  /// QueryTimelines online, so campaign memory is O(in-flight flows)
  /// instead of O(total packets). Experiment results (TSVs, metrics,
  /// timelines) are byte-identical to the retained-capture path; boundary
  /// discovery transparently re-enables retention for its probe phase.
  bool stream_analysis = false;

  /// Instead of metro-based FE placement, place FE sites at these exact
  /// distances (miles) from the BE, each with one co-located client
  /// (used by the Fig. 9 fetch-factoring bench).
  std::optional<std::vector<double>> fe_distance_sweep_miles;

  /// Per-packet loss on client access links (both directions): the §6
  /// lossy-last-hop (wireless) regime. 0 = clean, like the paper's wired
  /// PlanetLab measurements.
  double client_link_loss = 0.0;

  /// Per-packet probability that a client access link delays a packet by
  /// net::LinkConfig::reorder_extra_delay so later packets overtake it —
  /// multipath-style reordering on the last mile (both directions).
  double client_link_reorder = 0.0;

  /// Conservative parallel execution of THIS scenario (parallel/pdes.hpp):
  /// vantage points and their FE attachments are partitioned into
  /// `sim_shards` event kernels that run concurrently between lookahead
  /// barriers. Results (timelines, TSVs, metrics exports) are identical at
  /// any shard count; only the kernel counters in collect_kernel_metrics
  /// legitimately differ. 0 = DYNCDN_SIM_SHARDS if set, else 1 (serial).
  std::size_t sim_shards = 0;

  /// Fractions of vantage points on residential-DSL and wireless access
  /// (reviewer #5's critique: PlanetLab's campus bias understates real
  /// last-mile latency). Remainder are campus nodes. Residential nodes add
  /// DSL-interleaving latency; wireless nodes add latency plus loss.
  double residential_fraction = 0.0;
  double wireless_fraction = 0.0;

  /// Query-timeline tracing (obs::TraceSession attached to the simulator).
  /// Off by default: tracing adds an X-Trace-Span header to requests, so a
  /// traced run is internally consistent but not byte-identical with an
  /// untraced one.
  bool enable_tracing = false;
  /// When >0, completed spans also feed a bounded binary flight recorder
  /// of this many bytes (obs::RingBuffer).
  std::size_t trace_ring_bytes = 0;

  /// Sim-time metric sampling (obs::TimeSeriesSampler). When > 0, run()
  /// advances in `ts_interval` steps and snapshots queue depths /
  /// in-flight work at every tick boundary. Tick advances are
  /// horizon-bounded (run_window semantics), so the application channels
  /// are byte-identical at any thread or shard count; a sampled run's
  /// final clock is rounded up to a tick boundary, so — like tracing — a
  /// sampled run is deterministic but not byte-identical to an unsampled
  /// one. zero() = off.
  sim::SimTime ts_interval = sim::SimTime::zero();
  /// Bound on retained ticks (oldest evicted first).
  std::size_t ts_max_samples = 4096;

  /// Batch contiguous link deliveries behind single kernel events
  /// (net::LinkConfig::coalesce_deliveries) on every link. Results are
  /// byte-identical either way — the switch exists so the coalescing
  /// equivalence test can compare both paths on a full scenario.
  bool link_coalescing = true;

  /// FrontEnd config overrides applied to every FE (ablations).
  std::optional<cdn::FrontEndServer::RelayMode> relay_mode;
  std::optional<bool> warm_backend_connection;
  std::optional<bool> serve_static_immediately;
  std::optional<bool> fe_cache_results;
  std::optional<std::size_t> client_initial_cwnd;  // client<->FE IW ablation
};

class Scenario {
 public:
  explicit Scenario(ScenarioOptions options);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  struct Client {
    VantagePoint vantage;
    net::Node* node = nullptr;
    std::unique_ptr<cdn::QueryClient> query_client;
    std::unique_ptr<capture::TraceRecorder> recorder;
    /// Online timeline reduction (ScenarioOptions::stream_analysis); wired
    /// as the recorder's PacketSink.
    std::unique_ptr<analysis::StreamingAnalyzer> analyzer;
    /// Durable overflow target (ScenarioOptions::capture_budget); wired as
    /// the recorder's spill writer.
    std::unique_ptr<capture::SpillWriter> spill;
    std::size_t default_fe = 0;  // index into fes()
  };

  struct FrontEnd {
    std::string site_name;
    net::GeoPoint location;
    net::Node* node = nullptr;
    std::unique_ptr<cdn::FrontEndServer> server;
    double distance_to_be_miles = 0;
  };

  sim::Simulator& simulator() { return *simulator_; }
  net::Network& network() { return *network_; }
  const cdn::ServiceProfile& profile() const { return options_.profile; }
  const search::ContentModel& content() const { return *content_; }

  std::vector<Client>& clients() { return clients_; }
  std::vector<FrontEnd>& fes() { return fes_; }
  cdn::BackendDataCenter& backend() { return *backend_; }

  /// DNS emulation: the endpoint of client i's default (nearest) FE.
  net::Endpoint default_fe_endpoint(std::size_t client_index) const;
  net::Endpoint fe_endpoint(std::size_t fe_index) const;
  /// One-way client<->FE propagation path RTT estimate (for sanity checks;
  /// analysis derives RTT from handshakes, not from here).
  sim::SimTime client_fe_rtt(std::size_t client_index,
                             std::size_t fe_index) const;

  /// Ensure a direct link exists between client i and FE j (Datasets B:
  /// querying a fixed, possibly non-default FE).
  void connect_client_to_fe(std::size_t client_index, std::size_t fe_index);

  /// Ensure a direct client<->BE link (the no-FE baseline).
  void connect_client_to_be(std::size_t client_index);

  /// Run the simulation until the FE fleet's persistent BE connections are
  /// established and warmed. Call before submitting measured queries.
  void warm_up(sim::SimTime duration = sim::SimTime::seconds(5));

  /// Execute pending events on every shard (serial kernel loop when
  /// sim_shards == 1) until the queues drain / until `deadline`. All shard
  /// clocks agree with the serial kernel's final clock afterwards, so
  /// host-side schedule_in() on any shard stays shard-count invariant.
  void run();
  void run_until(sim::SimTime deadline);

  std::size_t shard_count() const { return sims_.size(); }
  /// Window/barrier counters from the shard runner (accumulated across
  /// run() calls; all zero for a serial scenario).
  const parallel::ShardRunnerStats& shard_stats() const {
    return runner_->stats();
  }

  /// Tracing session (null unless ScenarioOptions::enable_tracing). In a
  /// sharded scenario each shard records spans in its own session with a
  /// disjoint id range; these accessors fold them into the main session in
  /// shard-index order, so call only after runs, not mid-simulation. The
  /// folded span *content* (names, stamps, args, parent links) matches the
  /// serial run; span ids and list order are shard-layout dependent.
  obs::TraceSession* trace() {
    merge_shard_traces();
    return trace_.get();
  }
  std::shared_ptr<obs::TraceSession> shared_trace() {
    merge_shard_traces();
    return trace_;
  }

  /// Snapshot the testbed's operational counters into `out` (network, TCP
  /// stacks, FE/BE servers). Purely additive: callers can merge registries
  /// across replicas. Every counter here is shard-count invariant; the
  /// kernel-level counters that legitimately depend on the shard layout
  /// live in collect_kernel_metrics.
  void collect_metrics(obs::MetricsRegistry& out);

  /// Event-kernel + shard-runner introspection (events executed/scheduled,
  /// heap peaks, windows, barrier stalls, cross-shard packets). Kept out
  /// of collect_metrics because event counts genuinely differ between
  /// serial and sharded runs (cross-shard links bypass delivery
  /// coalescing), and experiment exports must stay byte-identical at any
  /// shard count.
  void collect_kernel_metrics(obs::MetricsRegistry& out);

  /// Time-series sampler (null unless ScenarioOptions::ts_interval > 0).
  obs::TimeSeriesSampler* timeseries() { return sampler_.get(); }
  /// Move the sampled series out (empty sampler when sampling is off).
  /// Call after the final run; the scenario's sampler is left drained.
  obs::TimeSeriesSampler take_timeseries();

  /// True when clients reduce flows online (ScenarioOptions::stream_analysis).
  bool streaming() const { return options_.stream_analysis; }

  /// Resolved per-client capture budget (0 = unlimited / spilling off).
  std::size_t capture_budget() const { return capture_budget_; }
  /// True when budgeted spill-to-disk capture is wired (budget > 0 and the
  /// scenario retains packets at clients).
  bool spilling_active() const;
  /// Directory holding the per-client spill files ("" when spilling is off).
  const std::string& spill_dir() const { return spill_dir_; }

  /// Propagate a discovered static/dynamic boundary to every client
  /// analyzer, enabling online timeline emission (flows collapse at
  /// teardown instead of buffering until drain). No-op when the scenario
  /// is not streaming.
  void set_stream_boundary(std::size_t boundary);

  /// Deterministic memory accounting (capture retention and analyzer
  /// live-state peaks, online-emission counters). Kept separate from
  /// collect_metrics so experiment exports stay byte-identical between
  /// streaming and capture modes — these gauges intentionally differ.
  void collect_memory_metrics(obs::MetricsRegistry& out);

  /// Deterministic durable-trace counters (spill_bytes_written /
  /// spill_blocks / spill_records / spill_raw_bytes). Each client spills
  /// off its own deterministic packet stream, so — unlike the rest of
  /// collect_memory_metrics — these merge byte-identically at any
  /// thread/shard count; budgeted experiment runs fold them into the main
  /// metrics registry (and thus the Prometheus export). `client_indices`
  /// restricts the sum to the listed vantage points (empty = all):
  /// sharded campaigns pass their subset so boundary discovery — which
  /// every replica re-runs from client 0 — is counted exactly once
  /// fleet-wide, by the replica that owns client 0.
  void collect_spill_metrics(obs::MetricsRegistry& out,
                             std::span<const std::size_t> client_indices = {});

 private:
  void build_backend();
  void build_frontends();
  void build_clients();
  void merge_shard_traces();
  /// Execute all events at or before `target` with a bounded horizon (so
  /// coalesced delivery trains park at the tick instead of riding past
  /// it) and align every shard clock to `target`.
  void run_to_tick(sim::SimTime target);
  void take_sample(std::uint64_t tick);
  net::LinkConfig client_access_link(const VantagePoint& vp,
                                     const net::GeoPoint& fe_location) const;

  ScenarioOptions options_;
  std::size_t capture_budget_ = 0;
  std::string spill_dir_;
  bool owns_spill_dir_ = false;
  std::shared_ptr<obs::TraceSession> trace_;
  std::unique_ptr<sim::Simulator> simulator_;
  /// Shard kernels 1..S-1 (shard 0 is simulator_), same seed everywhere.
  std::vector<std::unique_ptr<sim::Simulator>> extra_sims_;
  /// All shard kernels by shard index; sims_[0] == simulator_.get().
  std::vector<sim::Simulator*> sims_;
  /// Per-shard trace sessions for shards 1..S-1 ([0] is null — shard 0
  /// records straight into trace_). Disjoint id ranges via set_id_base.
  std::vector<std::unique_ptr<obs::TraceSession>> shard_traces_;
  std::unique_ptr<parallel::ShardRunner> runner_;
  std::unique_ptr<obs::TimeSeriesSampler> sampler_;
  /// Interned sampler channels, resolved once at construction so the
  /// per-tick hot path never touches the string-keyed channel map.
  struct TsChannels {
    obs::TimeSeriesSampler::ChannelRef fe_fetch_queue;
    obs::TimeSeriesSampler::ChannelRef fe_active_requests;
    obs::TimeSeriesSampler::ChannelRef fe_backend_pool;
    obs::TimeSeriesSampler::ChannelRef be_queue_depth;
    obs::TimeSeriesSampler::ChannelRef net_packets_in_flight;
    obs::TimeSeriesSampler::ChannelRef link_packets_delivered;
    obs::TimeSeriesSampler::ChannelRef link_bytes_delivered;
    obs::TimeSeriesSampler::ChannelRef pdes_windows;
    obs::TimeSeriesSampler::ChannelRef pdes_barrier_stalls;
    obs::TimeSeriesSampler::ChannelRef pdes_stall_wall_ms;
    obs::TimeSeriesSampler::ChannelRef pdes_cross_shard_packets;
    obs::TimeSeriesSampler::ChannelRef capture_spill_bytes;
    obs::TimeSeriesSampler::ChannelRef capture_spill_blocks;
  } ts_channels_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<search::ContentModel> content_;
  std::unique_ptr<cdn::BackendDataCenter> backend_;
  net::Node* be_node_ = nullptr;
  std::vector<FrontEnd> fes_;
  std::vector<Client> clients_;
  /// (client, fe) pairs already linked.
  std::vector<std::pair<std::size_t, std::size_t>> client_fe_links_;
  std::vector<std::size_t> client_be_links_;
};

}  // namespace dyncdn::testbed
