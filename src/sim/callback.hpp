// Small-buffer-optimized move-only callable for the event kernel.
//
// Every TCP ACK re-arms the retransmission timer, so the event queue
// constructs and destroys one callback per segment. std::function heap
// allocates for captures beyond ~16 bytes and pays for copyability we never
// use; this type stores any callable up to kInlineBytes inline (timer
// lambdas capture a pointer or two) and only falls back to the heap for
// oversized captures.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dyncdn::sim {

/// Move-only `void()` callable with inline storage.
class Callback {
 public:
  /// Inline capacity: large enough for a lambda capturing a handful of
  /// pointers/shared_ptrs or a std::function, small enough to keep heap
  /// entries cache-friendly.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() = default;

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule() call site.
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::ops;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops_->invoke(*this); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(Callback&);
    /// Move-construct src's callable into dst's (empty) storage, then
    /// destroy src's. dst.ops_ is set by the caller.
    void (*relocate)(Callback& dst, Callback& src);
    void (*destroy)(Callback&);
  };

  template <class D>
  struct InlineModel {
    static D& target(Callback& c) {
      return *std::launder(reinterpret_cast<D*>(c.storage_));
    }
    static void invoke(Callback& c) { target(c)(); }
    static void relocate(Callback& dst, Callback& src) {
      ::new (static_cast<void*>(dst.storage_)) D(std::move(target(src)));
      target(src).~D();
    }
    static void destroy(Callback& c) { target(c).~D(); }
    static constexpr Ops ops{invoke, relocate, destroy};
  };

  template <class D>
  struct HeapModel {
    static D*& target(Callback& c) {
      return *std::launder(reinterpret_cast<D**>(c.storage_));
    }
    static void invoke(Callback& c) { (*target(c))(); }
    static void relocate(Callback& dst, Callback& src) {
      ::new (static_cast<void*>(dst.storage_)) D*(target(src));
    }
    static void destroy(Callback& c) { delete target(c); }
    static constexpr Ops ops{invoke, relocate, destroy};
  };

  void move_from(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(*this, other);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace dyncdn::sim
