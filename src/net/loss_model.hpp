// Per-link packet loss models.
//
// The paper's measurements saw negligible loss on PlanetLab paths but its
// §6 discussion calls out lossy (wireless) last hops as the regime where FE
// placement matters most; the split-TCP baseline bench sweeps these models.
#pragma once

#include <memory>
#include <string>

#include "sim/random.hpp"

namespace dyncdn::net {

/// Decides, per packet, whether the link drops it.
class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if the packet should be dropped.
  virtual bool should_drop(sim::RngStream& rng) = 0;
  virtual std::string describe() const = 0;
};

/// Never drops. The default for wired core paths.
class NoLoss final : public LossModel {
 public:
  bool should_drop(sim::RngStream&) override { return false; }
  std::string describe() const override { return "none"; }
};

/// Independent (Bernoulli) loss with probability p per packet.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  bool should_drop(sim::RngStream& rng) override;
  std::string describe() const override;
  double probability() const { return p_; }

 private:
  double p_;
};

/// Two-state Gilbert–Elliott bursty loss: a Markov chain alternates between
/// a Good state (loss prob `loss_good`, usually 0) and a Bad state (loss
/// prob `loss_bad`). Captures WiFi-style correlated losses.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_good, double loss_bad);
  bool should_drop(sim::RngStream& rng) override;
  std::string describe() const override;

  bool in_bad_state() const { return bad_; }
  /// Stationary average loss rate of the chain.
  double average_loss_rate() const;

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool bad_ = false;
};

std::unique_ptr<LossModel> make_no_loss();
std::unique_ptr<LossModel> make_bernoulli_loss(double p);
std::unique_ptr<LossModel> make_gilbert_elliott_loss(double p_gb, double p_bg,
                                                     double loss_good,
                                                     double loss_bad);

}  // namespace dyncdn::net
