// Perf-regression gate over BENCH.json files.
//
//   bench_diff <baseline.json> <candidate.json> [--tolerance=0.10]
//
// Walks both documents, collects every gated throughput metric — scalars
// named `events_per_sec`, `queries_per_sec_serial`, `packets_per_sec` or
// `bytes_per_sec`, addressed by dotted path — and fails (exit 1) when the
// candidate is more than `tolerance` below the baseline on any of them.
// Metrics present on only one side are reported but not fatal, so the
// bench can grow sections without breaking older baselines. Exit 2 on
// usage/parse errors.
//
// Wired into ctest as `bench_diff` (label: bench), comparing the run's
// fresh BENCH.json against the committed bench/BASELINE_quick.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using dyncdn::obs::json::Value;

bool is_gated_metric(const std::string& key) {
  return key == "events_per_sec" || key == "queries_per_sec_serial" ||
         key == "packets_per_sec" || key == "bytes_per_sec";
}

struct Metric {
  std::string path;
  double value = 0.0;
};

void collect(const Value& v, const std::string& prefix,
             std::vector<Metric>& out) {
  if (!v.is_object()) return;
  for (const auto& [key, child] : v.object) {
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    if (child.type == Value::Type::kNumber && is_gated_metric(key)) {
      out.push_back(Metric{path, child.as_double()});
    } else {
      collect(child, path, out);
    }
  }
}

std::vector<Metric> load_metrics(const char* file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", file);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = dyncdn::obs::json::parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", file);
    std::exit(2);
  }
  std::vector<Metric> out;
  collect(*doc, "", out);
  return out;
}

const Metric* find(const std::vector<Metric>& metrics,
                   const std::string& path) {
  for (const Metric& m : metrics) {
    if (m.path == path) return &m;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.10;
  const char* base_path = nullptr;
  const char* cand_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::atof(argv[i] + 12);
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cand_path == nullptr) {
      cand_path = argv[i];
    } else {
      base_path = nullptr;
      break;
    }
  }
  if (base_path == nullptr || cand_path == nullptr || tolerance < 0.0) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--tolerance=0.10]\n");
    return 2;
  }

  const std::vector<Metric> base = load_metrics(base_path);
  const std::vector<Metric> cand = load_metrics(cand_path);
  if (base.empty()) {
    std::fprintf(stderr, "bench_diff: no gated metrics in %s\n", base_path);
    return 2;
  }

  int regressions = 0;
  for (const Metric& b : base) {
    const Metric* c = find(cand, b.path);
    if (c == nullptr) {
      std::printf("MISSING  %-45s baseline=%.0f (not in candidate)\n",
                  b.path.c_str(), b.value);
      continue;
    }
    const double ratio = b.value > 0.0 ? c->value / b.value : 1.0;
    const bool regressed = ratio < 1.0 - tolerance;
    std::printf("%s %-45s %12.0f -> %12.0f  (%+.1f%%)\n",
                regressed ? "REGRESS " : "ok      ", b.path.c_str(), b.value,
                c->value, (ratio - 1.0) * 100.0);
    if (regressed) ++regressions;
  }
  for (const Metric& c : cand) {
    if (find(base, c.path) == nullptr) {
      std::printf("NEW      %-45s candidate=%.0f (not in baseline)\n",
                  c.path.c_str(), c.value);
    }
  }

  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d metric(s) regressed more than %.0f%%\n",
                 regressions, tolerance * 100.0);
    return 1;
  }
  std::printf("bench_diff: all gated metrics within %.0f%% of baseline\n",
              tolerance * 100.0);
  return 0;
}
