// FE result-caching detector (the paper's §3 experiment "Do FE Servers
// Cache Search Results?").
//
// Protocol: submit (a) the same query repeatedly and (b) distinct queries
// to a fixed FE server, and compare the T_dynamic distributions. If the FE
// cached results, repeats would be answered locally — T_dynamic for (a)
// would collapse toward T_static scale and its distribution would diverge
// sharply from (b). The paper found the distributions indistinguishable
// and concluded FEs do not cache dynamic results.
#pragma once

#include <span>
#include <string>

#include "stats/cdf.hpp"

namespace dyncdn::core {

struct CacheDetectionResult {
  stats::KsResult ks;        // same-query vs distinct-query comparison
  double median_same_ms = 0;
  double median_distinct_ms = 0;
  /// True when the evidence indicates FE-side result caching: the repeated
  /// queries' T_dynamic is both statistically distinguishable and
  /// substantially smaller.
  bool caching_detected = false;

  std::string verdict() const;
};

/// `t_dynamic_same`: T_dynamic samples (ms) for one query repeated against
/// a fixed FE; `t_dynamic_distinct`: samples for distinct queries against
/// the same FE. Requires both non-empty.
CacheDetectionResult detect_fe_caching(
    std::span<const double> t_dynamic_same,
    std::span<const double> t_dynamic_distinct);

}  // namespace dyncdn::core
