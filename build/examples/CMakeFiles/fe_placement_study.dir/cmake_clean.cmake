file(REMOVE_RECURSE
  "CMakeFiles/fe_placement_study.dir/fe_placement_study.cpp.o"
  "CMakeFiles/fe_placement_study.dir/fe_placement_study.cpp.o.d"
  "fe_placement_study"
  "fe_placement_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fe_placement_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
