
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/backend.cpp" "src/cdn/CMakeFiles/dyncdn_cdn.dir/backend.cpp.o" "gcc" "src/cdn/CMakeFiles/dyncdn_cdn.dir/backend.cpp.o.d"
  "/root/repo/src/cdn/client.cpp" "src/cdn/CMakeFiles/dyncdn_cdn.dir/client.cpp.o" "gcc" "src/cdn/CMakeFiles/dyncdn_cdn.dir/client.cpp.o.d"
  "/root/repo/src/cdn/deployment.cpp" "src/cdn/CMakeFiles/dyncdn_cdn.dir/deployment.cpp.o" "gcc" "src/cdn/CMakeFiles/dyncdn_cdn.dir/deployment.cpp.o.d"
  "/root/repo/src/cdn/frontend.cpp" "src/cdn/CMakeFiles/dyncdn_cdn.dir/frontend.cpp.o" "gcc" "src/cdn/CMakeFiles/dyncdn_cdn.dir/frontend.cpp.o.d"
  "/root/repo/src/cdn/interactive.cpp" "src/cdn/CMakeFiles/dyncdn_cdn.dir/interactive.cpp.o" "gcc" "src/cdn/CMakeFiles/dyncdn_cdn.dir/interactive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/dyncdn_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dyncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/dyncdn_search.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyncdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
