#include "search/keywords.hpp"

#include <cmath>

namespace dyncdn::search {

const char* to_string(KeywordClass c) {
  switch (c) {
    case KeywordClass::kPopular: return "popular";
    case KeywordClass::kGranular: return "granular";
    case KeywordClass::kComplex: return "complex";
    case KeywordClass::kMixed: return "mixed";
  }
  return "?";
}

std::size_t Keyword::word_count() const {
  if (text.empty()) return 0;
  std::size_t n = 1;
  for (const char c : text) {
    if (c == ' ') ++n;
  }
  return n;
}

KeywordCatalog::KeywordCatalog(std::uint64_t seed) : seed_(seed) {
  // A compact vocabulary; combinations of these synthesize all keywords.
  base_words_ = {
      "computer", "science",  "cloud",    "mobile",   "network", "search",
      "weather",  "music",    "video",    "travel",   "finance", "health",
      "recipe",   "football", "election", "movie",    "phone",   "camera",
      "hotel",    "flight",   "potato",   "guitar",   "museum",  "garden",
      "history",  "physics",  "biology",  "economy",  "climate", "energy",
      "robot",    "galaxy",   "harbor",   "festival", "library", "market",
  };
}

std::string KeywordCatalog::make_text(KeywordClass cls,
                                      std::size_t index) const {
  // Deterministic word picking: hash of (seed, class, index, position).
  auto pick = [&](std::size_t pos) -> const std::string& {
    std::uint64_t h = seed_ * 0x9E3779B97F4A7C15ULL;
    h ^= (static_cast<std::uint64_t>(cls) + 1) * 0xBF58476D1CE4E5B9ULL;
    h ^= (index + 1) * 0x94D049BB133111EBULL;
    h ^= (pos + 1) * 0xD6E8FEB86659FD93ULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return base_words_[h % base_words_.size()];
  };

  std::size_t words = 1;
  switch (cls) {
    case KeywordClass::kPopular:
      words = 1 + index % 2;  // short, punchy queries
      break;
    case KeywordClass::kGranular:
      // Increasingly refined: "computer science", "computer science
      // department", … depth grows with the index.
      words = 2 + index % 4;
      break;
    case KeywordClass::kComplex:
      words = 6 + index % 5;  // long queries
      break;
    case KeywordClass::kMixed:
      words = 2 + index % 3;  // "computer and potato" style
      break;
  }

  std::string text;
  for (std::size_t w = 0; w < words; ++w) {
    if (w > 0) text += (cls == KeywordClass::kMixed && w == 1) ? " and " : " ";
    text += pick(w);
  }
  return text;
}

std::vector<Keyword> KeywordCatalog::generate(KeywordClass cls,
                                              std::size_t count) const {
  std::vector<Keyword> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(Keyword{make_text(cls, i), cls, i + 1});
  }
  return out;
}

std::vector<Keyword> KeywordCatalog::figure3_keywords() const {
  // Four keywords of different types AND popularity, like the paper's key1
  // to key4: a trending suggestion-box keyword (hot at the BE), a refined
  // query, a long complex query and a weakly correlated mixture.
  return {
      Keyword{make_text(KeywordClass::kPopular, 0), KeywordClass::kPopular, 1},
      Keyword{make_text(KeywordClass::kGranular, 2), KeywordClass::kGranular,
              60},
      Keyword{make_text(KeywordClass::kComplex, 0), KeywordClass::kComplex,
              8000},
      Keyword{make_text(KeywordClass::kMixed, 0), KeywordClass::kMixed,
              30000},
  };
}

std::vector<Keyword> KeywordCatalog::distinct_corpus(std::size_t count) const {
  std::vector<Keyword> out;
  out.reserve(count);
  const KeywordClass classes[] = {KeywordClass::kPopular,
                                  KeywordClass::kGranular,
                                  KeywordClass::kComplex, KeywordClass::kMixed};
  for (std::size_t i = 0; i < count; ++i) {
    const KeywordClass cls = classes[i % 4];
    Keyword k{make_text(cls, i / 4), cls, i / 4 + 1};
    // Guarantee distinctness even when the synthesized words collide.
    k.text += " #" + std::to_string(i);
    out.push_back(std::move(k));
  }
  return out;
}

std::vector<Keyword> KeywordCatalog::zipf_sample(
    const std::vector<Keyword>& catalog, std::size_t draws, double alpha,
    sim::RngStream& rng) {
  std::vector<Keyword> out;
  if (catalog.empty() || draws == 0) return out;

  // Precompute the Zipf CDF over ranks 1..N.
  std::vector<double> cdf(catalog.size());
  double total = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf[i] = total;
  }
  out.reserve(draws);
  for (std::size_t d = 0; d < draws; ++d) {
    const double u = rng.uniform01() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t idx =
        static_cast<std::size_t>(std::distance(cdf.begin(), it));
    out.push_back(catalog[std::min(idx, catalog.size() - 1)]);
  }
  return out;
}

}  // namespace dyncdn::search
