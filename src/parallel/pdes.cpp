#include "parallel/pdes.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstddef>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/network.hpp"
#include "parallel/replica.hpp"
#include "parallel/worksteal.hpp"

namespace dyncdn::parallel {

ShardRunner::ShardRunner(net::Network& network,
                         std::vector<sim::Simulator*> sims,
                         ShardRunnerConfig config)
    : network_(network), sims_(std::move(sims)) {
  if (sims_.empty()) {
    throw std::invalid_argument("ShardRunner: no shard simulators");
  }
  threads_ = std::min(resolve_threads(ExecutorConfig{config.threads, 1}),
                      sims_.size());
}

void ShardRunner::run() { run_bounded(sim::SimTime::infinity()); }

void ShardRunner::run_until(sim::SimTime deadline) { run_bounded(deadline); }

void ShardRunner::run_bounded(sim::SimTime bound) {
  if (sims_.size() == 1) {
    // Single shard: literally the serial kernel loop.
    if (bound == sim::SimTime::infinity()) {
      sims_[0]->run();
    } else {
      sims_[0]->run_until(bound);
    }
    return;
  }

  // Routes must exist before workers touch the network concurrently.
  network_.prepare_run();
  // Packets transmitted outside any window — scenario construction, host
  // code running between runs — are staged in the mailboxes. Surface them
  // before the first window so their arrivals count toward tmin (all shard
  // clocks agree here, so every staged arrival is still in the future).
  stats_.cross_shard_packets += network_.flush_mailboxes();
  stats_.lookahead = network_.cross_shard_lookahead();
  if (stats_.lookahead == sim::SimTime::zero()) {
    run_serial_fallback(bound);
  } else {
    run_windowed(bound);
  }

  if (bound == sim::SimTime::infinity()) {
    // Match serial run(): final clock = time of the last executed event.
    sim::SimTime last = sim::SimTime::zero();
    for (sim::Simulator* s : sims_) last = std::max(last, s->now());
    align_clocks(last);
  } else {
    // Match serial run_until(): force-advance to the deadline.
    align_clocks(bound);
  }
}

void ShardRunner::align_clocks(sim::SimTime t) {
  for (sim::Simulator* s : sims_) {
    if (s->now() < t) s->align_clock(t);
  }
}

void ShardRunner::run_windowed(sim::SimTime bound) {
  const std::size_t n = sims_.size();
  const sim::SimTime lookahead = stats_.lookahead;
  // Exclusive upper bound on executable event times: events at exactly the
  // run_until deadline must still run.
  const sim::SimTime limit =
      bound == sim::SimTime::infinity()
          ? bound
          : bound + sim::SimTime::nanoseconds(1);
  const auto window_after = [&](sim::SimTime tmin) {
    // Infinite lookahead = independent shards: one window to the limit.
    if (lookahead == sim::SimTime::infinity()) return limit;
    return std::min(limit, tmin + lookahead);
  };

  sim::SimTime tmin = sim::SimTime::infinity();
  for (sim::Simulator* s : sims_) tmin = std::min(tmin, s->next_event_time());
  if (tmin >= limit) return;

  struct Shared {
    sim::SimTime window_end = sim::SimTime::zero();
    bool done = false;
  } shared;
  shared.window_end = window_after(tmin);

  // One deque per window holds each shard id exactly once; worker 0 owns
  // it, the others steal. Refilled in the exclusive completion step.
  StealDeque deque(n);
  const auto refill = [&]() {
    deque.reset();
    for (std::size_t s = n; s > 0; --s) deque.prefill(s - 1);
  };
  refill();

  std::vector<std::uint64_t> executed(n, 0);
  std::vector<std::exception_ptr> errors(n);
  std::atomic<bool> abort{false};

  // Runs exclusively while every worker is blocked in the barrier; the
  // barrier release publishes all writes to the workers.
  const auto on_completion = [&]() noexcept {
    ++stats_.windows;
    for (std::size_t s = 0; s < n; ++s) {
      if (executed[s] == 0) ++stats_.barrier_stalls;
      executed[s] = 0;
    }
    // Flush before computing the next window: a staged packet may be the
    // globally earliest pending event.
    stats_.cross_shard_packets += network_.flush_mailboxes();
    if (abort.load(std::memory_order_relaxed)) {
      shared.done = true;
      return;
    }
    sim::SimTime next = sim::SimTime::infinity();
    for (sim::Simulator* s : sims_) {
      next = std::min(next, s->next_event_time());
    }
    if (next >= limit) {
      shared.done = true;
      return;
    }
    shared.window_end = window_after(next);
    refill();
  };

  const std::size_t workers = std::max<std::size_t>(1, threads_);
  std::barrier barrier(static_cast<std::ptrdiff_t>(workers), on_completion);
  std::atomic<std::uint64_t> stall_wall_ns{0};

  const auto worker = [&](std::size_t w) {
    std::uint64_t my_stall_ns = 0;
    while (true) {
      std::size_t s = 0;
      while (true) {
        bool got = false;
        if (w == 0) {
          got = deque.pop(s);
        } else {
          const StealDeque::Steal r = deque.steal(s);
          if (r == StealDeque::Steal::kLost) continue;  // retry the sweep
          got = r == StealDeque::Steal::kItem;
        }
        if (!got) break;
        try {
          executed[s] = sims_[s]->run_window(shared.window_end);
        } catch (...) {
          errors[s] = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
        }
      }
      const auto wait_begin = std::chrono::steady_clock::now();
      barrier.arrive_and_wait();
      my_stall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - wait_begin)
              .count());
      if (shared.done) {
        stall_wall_ns.fetch_add(my_stall_ns, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker, w);
  worker(0);  // the caller is worker 0 (the deque owner)
  for (std::thread& t : pool) t.join();
  stats_.stall_wall_ns += stall_wall_ns.load(std::memory_order_relaxed);

  // Lowest-shard exception wins, matching ReplicaExecutor's convention.
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardRunner::run_serial_fallback(sim::SimTime bound) {
  // Zero lookahead: a cross-shard packet could arrive "now", so no window
  // has positive width. Execute one globally-minimal event at a time
  // (ties broken by lowest shard index) and flush mailboxes after each, so
  // cross-shard effects become visible immediately — the serial kernel's
  // order, at serial speed, but still correct.
  while (true) {
    sim::SimTime tmin = sim::SimTime::infinity();
    std::size_t which = sims_.size();
    for (std::size_t s = 0; s < sims_.size(); ++s) {
      const sim::SimTime t = sims_[s]->next_event_time();
      if (t < tmin) {
        tmin = t;
        which = s;
      }
    }
    if (which == sims_.size() || tmin > bound) return;
    sims_[which]->run_steps(1);
    ++stats_.serial_fallbacks;
    stats_.cross_shard_packets += network_.flush_mailboxes();
  }
}

}  // namespace dyncdn::parallel
