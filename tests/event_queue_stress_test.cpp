// EventQueue stress: interleaved schedule/cancel/re-arm churn. Verifies
// (a) determinism — the same seed produces the same pop order — and
// (b) that the generation-counter design keeps memory bounded: cancelled
// entries cannot accumulate in the heap or grow the slot table without
// bound, no matter how hard timers churn.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace dyncdn::sim {
namespace {

using namespace dyncdn::sim::literals;

/// One churn run: schedule/cancel/re-arm/pop mix driven by `seed`; returns
/// the (time, tag) sequence of every fired event.
std::vector<std::pair<std::int64_t, std::uint64_t>> churn(std::uint64_t seed,
                                                          std::size_t steps) {
  EventQueue q;
  RngStream rng(seed);
  std::vector<std::pair<std::int64_t, std::uint64_t>> fired;
  std::vector<EventId> live;
  std::int64_t clock_ms = 0;
  std::uint64_t tag = 0;

  for (std::size_t step = 0; step < steps; ++step) {
    const double action = rng.uniform01();
    if (action < 0.45 || live.empty()) {
      // Schedule a fresh event somewhere ahead of the popped clock.
      const std::int64_t at = clock_ms + rng.uniform_int(0, 50);
      const std::uint64_t t = tag++;
      live.push_back(q.schedule(SimTime::milliseconds(at),
                                [&fired, at, t] { fired.emplace_back(at, t); }));
    } else if (action < 0.70) {
      // Cancel a random live event (may already have fired — that's the
      // point: stale ids must stay safe).
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      q.cancel(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (action < 0.85) {
      // TCP-style re-arm: cancel + schedule later, the RTO pattern.
      if (!live.empty()) {
        q.cancel(live.back());
        live.pop_back();
      }
      const std::int64_t at = clock_ms + rng.uniform_int(10, 80);
      const std::uint64_t t = tag++;
      live.push_back(q.schedule(SimTime::milliseconds(at),
                                [&fired, at, t] { fired.emplace_back(at, t); }));
    } else if (!q.empty()) {
      clock_ms = q.pop_and_run().to_milliseconds();
    }
  }
  while (!q.empty()) q.pop_and_run();
  return fired;
}

TEST(EventQueueStress, SameSeedSamePopOrder) {
  const auto a = churn(2024, 20000);
  const auto b = churn(2024, 20000);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 1000u);  // the mix actually fires events

  const auto c = churn(2025, 20000);
  EXPECT_NE(a, c);  // different seed, different history
}

TEST(EventQueueStress, PopOrderIsGloballyTimeSorted) {
  const auto fired = churn(7, 20000);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first);
  }
}

TEST(EventQueueStress, CancelChurnKeepsHeapAndSlotsBounded) {
  // The RTO pattern: one live timer, re-armed N times without the clock
  // ever advancing. Lazy cancellation alone would leave N dead entries in
  // the heap; the compaction pass must keep the structure O(live).
  EventQueue q;
  EventId pending;
  constexpr std::size_t kChurn = 200000;
  std::size_t max_stored = 0;
  std::size_t max_slots = 0;
  for (std::size_t i = 0; i < kChurn; ++i) {
    if (pending.valid()) q.cancel(pending);
    pending = q.schedule(SimTime::milliseconds(1000 + static_cast<int>(i)),
                         [] {});
    max_stored =
        std::max(max_stored, q.heaped_entries() + q.wheel_entries());
    max_slots = std::max(max_slots, q.slot_count());
  }
  EXPECT_EQ(q.pending_count(), 1u);
  // Bound: 2x live + compaction slack, nowhere near kChurn.
  EXPECT_LE(max_stored, 2u * 1u + EventQueue::kCompactSlack + 2u);
  EXPECT_LE(max_slots, 4u);  // slots are recycled through the free list

  // The surviving timer is the last one armed.
  bool last_fired = false;
  q.cancel(pending);
  pending = q.schedule(SimTime::milliseconds(1000 + kChurn),
                       [&last_fired] { last_fired = true; });
  while (!q.empty()) q.pop_and_run();
  EXPECT_TRUE(last_fired);
}

TEST(EventQueueStress, BoundedUnderManyLiveTimers) {
  // 1000 live timers all re-arming: heap must stay O(live), not O(churn).
  EventQueue q;
  constexpr std::size_t kTimers = 1000;
  std::vector<EventId> ids(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    ids[i] = q.schedule(SimTime::milliseconds(static_cast<int>(1000 + i)),
                        [] {});
  }
  std::size_t max_stored = 0;
  for (std::size_t round = 0; round < 100; ++round) {
    for (std::size_t i = 0; i < kTimers; ++i) {
      q.cancel(ids[i]);
      ids[i] = q.schedule(
          SimTime::milliseconds(static_cast<int>(1000 + round + i)), [] {});
    }
    max_stored =
        std::max(max_stored, q.heaped_entries() + q.wheel_entries());
  }
  EXPECT_EQ(q.pending_count(), kTimers);
  EXPECT_LE(max_stored, 2 * kTimers + EventQueue::kCompactSlack + 2);
  EXPECT_LE(q.slot_count(), kTimers + 1);

  std::size_t fired = 0;
  while (!q.empty()) {
    q.pop_and_run();
    ++fired;
  }
  EXPECT_EQ(fired, kTimers);
}

TEST(EventQueueStress, CancelDuringCallbackOfSameSlotGeneration) {
  // A callback cancelling its own (already-fired) id must be a no-op even
  // though the slot may have been reused by a later schedule.
  EventQueue q;
  EventId self;
  bool reused_fired = false;
  self = q.schedule(1_ms, [&] {
    EXPECT_FALSE(q.cancel(self));  // own id: already fired
    // This schedule probably reuses the just-freed slot; the stale `self`
    // id must not be able to cancel it.
    q.schedule(2_ms, [&] { reused_fired = true; });
    EXPECT_FALSE(q.cancel(self));
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_TRUE(reused_fired);
}

}  // namespace
}  // namespace dyncdn::sim
