// Unit tests for descriptive statistics, CDF/KS, boxplots and regression.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/boxplot.hpp"
#include "stats/cdf.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace dyncdn::stats {
namespace {

TEST(Descriptive, MeanAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Descriptive, EmptyInputsAreSafe) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(stddev(xs), 0.0);
  EXPECT_EQ(median(xs), 0.0);
  EXPECT_EQ(quantile(xs, 0.5), 0.0);
  EXPECT_EQ(summarize(xs).n, 0u);
}

TEST(Descriptive, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7}), 7.0);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 17.5);
}

TEST(Descriptive, QuantileClampsOutOfRangeQ) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 2.0), 3.0);
}

TEST(Descriptive, MovingMedianSmoothsSpike) {
  // A single spike at index 5 should be erased by a window-3 moving median.
  std::vector<double> xs(11, 10.0);
  xs[5] = 1000.0;
  const auto mm = moving_median(xs, 3);
  ASSERT_EQ(mm.size(), xs.size());
  for (const double v : mm) EXPECT_DOUBLE_EQ(v, 10.0);
}

TEST(Descriptive, MovingMedianWindowOneIsIdentity) {
  const std::vector<double> xs{5, 2, 9, 1};
  EXPECT_EQ(moving_median(xs, 1), xs);
}

TEST(Descriptive, MovingMedianZeroWindowTreatedAsOne) {
  const std::vector<double> xs{5, 2};
  EXPECT_EQ(moving_median(xs, 0), xs);
}

TEST(Descriptive, MovingMeanTrailingWindow) {
  const std::vector<double> xs{1, 2, 3, 4};
  const auto mm = moving_mean(xs, 2);
  ASSERT_EQ(mm.size(), 4u);
  EXPECT_DOUBLE_EQ(mm[0], 1.0);
  EXPECT_DOUBLE_EQ(mm[1], 1.5);
  EXPECT_DOUBLE_EQ(mm[2], 2.5);
  EXPECT_DOUBLE_EQ(mm[3], 3.5);
}

TEST(Descriptive, SummaryFiveNumbers) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 9u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.q1, 3.0);
  EXPECT_DOUBLE_EQ(s.q3, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(Descriptive, CoefficientOfVariation) {
  const std::vector<double> xs{10, 10, 10};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
  const std::vector<double> ys{5, 15};
  EXPECT_NEAR(coefficient_of_variation(ys), stddev(ys) / 10.0, 1e-12);
}

TEST(Cdf, StepFunctionValues) {
  EmpiricalCdf cdf(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, QuantileInverse) {
  EmpiricalCdf cdf(std::vector<double>{10, 20, 30});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 30.0);
}

TEST(Cdf, SamplePointsAreMonotone) {
  std::mt19937 gen(1);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(std::normal_distribution<>(50, 10)(gen));
  }
  EmpiricalCdf cdf(xs);
  const auto pts = cdf.sample_points(50);
  ASSERT_EQ(pts.size(), 50u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(Cdf, EmptyCdfIsSafe) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.sample_points(10).empty());
}

TEST(KsTest, IdenticalSamplesDoNotDiffer) {
  std::mt19937 gen(2);
  std::vector<double> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(std::normal_distribution<>(100, 15)(gen));
    b.push_back(std::normal_distribution<>(100, 15)(gen));
  }
  const KsResult r = ks_test(a, b);
  EXPECT_FALSE(r.distributions_differ());
  EXPECT_LT(r.statistic, 0.15);
}

TEST(KsTest, ShiftedSamplesDiffer) {
  std::mt19937 gen(3);
  std::vector<double> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back(std::normal_distribution<>(100, 15)(gen));
    b.push_back(std::normal_distribution<>(140, 15)(gen));
  }
  const KsResult r = ks_test(a, b);
  EXPECT_TRUE(r.distributions_differ());
  EXPECT_GT(r.statistic, 0.5);
}

TEST(KsTest, StatisticIsSymmetric) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{2, 4, 6, 8};
  EXPECT_DOUBLE_EQ(ks_test(a, b).statistic, ks_test(b, a).statistic);
}

TEST(Boxplot, QuartilesAndWhiskers) {
  // 1..100 plus one far outlier.
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  xs.push_back(1000.0);
  const BoxplotStats b = boxplot(xs);
  EXPECT_NEAR(b.median, 51.0, 1.0);
  EXPECT_EQ(b.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(b.outliers[0], 1000.0);
  EXPECT_LE(b.whisker_high, 100.0);
  EXPECT_GE(b.whisker_low, 1.0);
  EXPECT_FALSE(b.to_string().empty());
}

TEST(Boxplot, EmptyInputSafe) {
  const BoxplotStats b = boxplot(std::vector<double>{});
  EXPECT_EQ(b.n, 0u);
}

TEST(Boxplot, AsciiRenderingContainsMedianMarker) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  const BoxplotStats b = boxplot(xs);
  const std::string row = ascii_boxplot(b, 0, 60, 61);
  EXPECT_NE(row.find('#'), std::string::npos);
  EXPECT_NE(row.find('['), std::string::npos);
  EXPECT_NE(row.find(']'), std::string::npos);
  EXPECT_EQ(row.size(), 61u);
}

TEST(Regression, ExactLineIsRecovered) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 7.0, 1e-9);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(f.predict(100.0), 307.0, 1e-6);
}

TEST(Regression, NoisyLineApproximatelyRecovered) {
  std::mt19937 gen(4);
  std::normal_distribution<> noise(0, 5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    const double x = i * 0.5;
    xs.push_back(x);
    ys.push_back(0.08 * x + 260.0 + noise(gen));
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.08, 0.01);
  EXPECT_NEAR(f.intercept, 260.0, 2.0);
  EXPECT_GT(f.slope_stderr, 0.0);
  EXPECT_FALSE(f.to_string().empty());
}

TEST(Regression, DegenerateInputsFallBackToMean) {
  const std::vector<double> xs{5, 5, 5};
  const std::vector<double> ys{1, 2, 3};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
  EXPECT_EQ(linear_fit({}, {}).n, 0u);
}

TEST(Regression, TheilSenResistsOutliers) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 10.0);
  }
  // Corrupt 15% of points badly.
  ys[3] = 500;
  ys[17] = -400;
  ys[29] = 900;
  const LinearFit robust = theil_sen_fit(xs, ys);
  EXPECT_NEAR(robust.slope, 2.0, 0.1);
  EXPECT_NEAR(robust.intercept, 10.0, 3.0);
  // OLS by contrast is pulled around by the corruption.
  const LinearFit ols = linear_fit(xs, ys);
  EXPECT_GT(std::fabs(ols.intercept - 10.0) + std::fabs(ols.slope - 2.0),
            std::fabs(robust.intercept - 10.0) + std::fabs(robust.slope - 2.0));
}

TEST(Regression, PearsonCorrelation) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> up{2, 4, 6, 8, 10};
  std::vector<double> down{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
  std::vector<double> flat{3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}


TEST(Bootstrap, MedianCiCoversTruth) {
  std::mt19937 gen(9);
  std::normal_distribution<> d(100.0, 10.0);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(d(gen));
  sim::RngStream rng(1);
  const BootstrapInterval ci = bootstrap_interval(
      xs, [](std::span<const double> s) { return median(s); }, 500, 0.95,
      rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_TRUE(ci.contains(100.0));
  EXPECT_LT(ci.hi - ci.lo, 8.0);  // n=200: a reasonably tight interval
  EXPECT_FALSE(ci.to_string().empty());
}

TEST(Bootstrap, InterceptCiCoversTrueIntercept) {
  std::mt19937 gen(10);
  std::normal_distribution<> noise(0.0, 5.0);
  std::vector<double> xs, ys;
  for (int i = 0; i < 60; ++i) {
    xs.push_back(i * 8.0);
    ys.push_back(0.09 * xs.back() + 260.0 + noise(gen));
  }
  sim::RngStream rng(2);
  const BootstrapInterval intercept = bootstrap_intercept_ci(xs, ys, rng);
  const BootstrapInterval slope = bootstrap_slope_ci(xs, ys, rng);
  EXPECT_TRUE(intercept.contains(260.0)) << intercept.to_string();
  EXPECT_TRUE(slope.contains(0.09)) << slope.to_string();
  EXPECT_LT(intercept.hi - intercept.lo, 20.0);
}

TEST(Bootstrap, WiderNoiseWidensInterval) {
  auto interval_width = [](double sigma) {
    std::mt19937 gen(11);
    std::normal_distribution<> noise(0.0, sigma);
    std::vector<double> xs, ys;
    for (int i = 0; i < 40; ++i) {
      xs.push_back(i * 10.0);
      ys.push_back(50.0 + 0.1 * xs.back() + noise(gen));
    }
    sim::RngStream rng(3);
    const BootstrapInterval ci = bootstrap_intercept_ci(xs, ys, rng, 400);
    return ci.hi - ci.lo;
  };
  EXPECT_LT(interval_width(1.0), interval_width(15.0));
}

TEST(Bootstrap, DegenerateInputsAreSafe) {
  sim::RngStream rng(4);
  const std::vector<double> one{5.0};
  const BootstrapInterval ci = bootstrap_interval(
      one, [](std::span<const double> s) { return mean(s); }, 100, 0.95,
      rng);
  EXPECT_DOUBLE_EQ(ci.point, 5.0);
  EXPECT_DOUBLE_EQ(ci.lo, 5.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0);
}

TEST(Bootstrap, DeterministicGivenSameStream) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 3.0 + (i % 7));
  }
  sim::RngStream a(7), b(7);
  const auto ca = bootstrap_slope_ci(xs, ys, a, 200);
  const auto cb = bootstrap_slope_ci(xs, ys, b, 200);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

}  // namespace
}  // namespace dyncdn::stats
