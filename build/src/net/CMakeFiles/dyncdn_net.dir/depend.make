# Empty dependencies file for dyncdn_net.
# This may be replaced when dependencies are built.
