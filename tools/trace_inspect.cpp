// trace_inspect — offline analyzer for saved dyncdn traces.
//
// Packet mode (default):
//   trace_inspect <trace-file> [boundary]
//
// Prints the connections found in a packet capture, reassembles each
// response stream, discovers the static/dynamic boundary by cross-query
// content analysis (when payloads were retained and at least two responses
// exist; otherwise pass the boundary explicitly) and prints the paper's
// timing parameters for every query.
//
// Span mode:
//   trace_inspect spans <trace.json> [--diff=<capture.trace>]
//       [--boundary=N] [--node=NAME] [--tree]
//
// Reads a Chrome trace_event file written by --trace-out, prints the span
// tree (per-query Fig. 2 timelines), and — with --diff — reconstructs each
// query's tb/t_synack/t1..te from the tcp.flow span events and compares
// them against the packet-capture analysis pipeline at tolerance 0: the
// two observation paths (in-process spans vs. offline tcpdump-style
// analysis) must agree on every timestamp, bit for bit.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/timeline.hpp"
#include "capture/serialize.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "obs/json.hpp"

using namespace dyncdn;

namespace {

// ---------------------------------------------------------------------------
// Span mode
// ---------------------------------------------------------------------------

struct SpanNode {
  std::int64_t id = 0;
  std::int64_t parent = 0;
  std::string name;
  std::string cat;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  /// Pretty-printable args (export order), minus the structural ones.
  std::vector<std::pair<std::string, std::string>> args;

  struct Event {
    std::string name;
    std::int64_t at_ns = 0;
    std::int64_t off = -1;  // rx events: stream offset
    std::int64_t len = -1;  // rx events: payload length
  };
  std::vector<Event> events;
  std::vector<std::size_t> children;
};

std::string arg_to_string(const obs::json::Value& v) {
  using Type = obs::json::Value::Type;
  switch (v.type) {
    case Type::kString:
      return "\"" + v.string + "\"";
    case Type::kNumber: {
      if (v.is_integer) return std::to_string(v.integer);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v.number);
      return buf;
    }
    case Type::kBool:
      return v.boolean ? "true" : "false";
    default:
      return "?";
  }
}

/// Parse the traceEvents array into a span forest. Returns false on
/// malformed input.
bool load_spans(const std::string& path, std::vector<SpanNode>& nodes,
                std::vector<std::size_t>& roots) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json::parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return false;
  }
  const obs::json::Value* events = doc->get("traceEvents");
  if (!events || !events->is_array()) {
    std::fprintf(stderr, "error: no traceEvents array in %s\n", path.c_str());
    return false;
  }

  std::map<std::int64_t, std::size_t> by_id;
  for (const obs::json::Value& ev : events->array) {
    const obs::json::Value* ph = ev.get("ph");
    const obs::json::Value* jargs = ev.get("args");
    if (!ph || !jargs) continue;
    if (ph->as_string() == "X") {
      SpanNode n;
      if (const auto* v = ev.get("name")) n.name = v->as_string();
      if (const auto* v = ev.get("cat")) n.cat = v->as_string();
      if (const auto* v = jargs->get("span_id")) n.id = v->as_int();
      if (const auto* v = jargs->get("parent")) n.parent = v->as_int();
      if (const auto* v = jargs->get("start_ns")) n.start_ns = v->as_int();
      if (const auto* v = jargs->get("end_ns")) n.end_ns = v->as_int();
      for (const auto& [key, val] : jargs->object) {
        if (key == "span_id" || key == "parent" || key == "start_ns" ||
            key == "end_ns" || key == "open") {
          continue;
        }
        n.args.emplace_back(key, arg_to_string(val));
      }
      by_id[n.id] = nodes.size();
      nodes.push_back(std::move(n));
    } else if (ph->as_string() == "i") {
      SpanNode::Event e;
      if (const auto* v = ev.get("name")) e.name = v->as_string();
      if (const auto* v = jargs->get("at_ns")) e.at_ns = v->as_int();
      if (const auto* v = jargs->get("off")) e.off = v->as_int();
      if (const auto* v = jargs->get("len")) e.len = v->as_int();
      const obs::json::Value* sid = jargs->get("span_id");
      if (!sid) continue;
      const auto it = by_id.find(sid->as_int());
      if (it != by_id.end()) nodes[it->second].events.push_back(std::move(e));
    }
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto it = by_id.find(nodes[i].parent);
    if (nodes[i].parent != 0 && it != by_id.end()) {
      nodes[it->second].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  return true;
}

void print_span(const std::vector<SpanNode>& nodes, std::size_t idx,
                int depth) {
  const SpanNode& n = nodes[idx];
  std::printf("%*s[%s] %s  %.6f ms  +%.6f ms", depth * 2, "", n.cat.c_str(),
              n.name.c_str(), static_cast<double>(n.start_ns) / 1e6,
              static_cast<double>(n.end_ns - n.start_ns) / 1e6);
  for (const auto& [key, val] : n.args) {
    std::printf("  %s=%s", key.c_str(), val.c_str());
  }
  std::printf("\n");
  for (const SpanNode::Event& e : n.events) {
    std::printf("%*s. %s @%.6f ms", depth * 2 + 2, "", e.name.c_str(),
                static_cast<double>(e.at_ns) / 1e6);
    if (e.off >= 0) {
      std::printf(" off=%" PRId64 " len=%" PRId64, e.off, e.len);
    }
    std::printf("\n");
  }
  for (const std::size_t c : n.children) print_span(nodes, c, depth + 1);
}

/// Timeline reconstructed from one tcp.flow span, for the --diff check.
struct SpanTimeline {
  std::string node_name;  // from the parent query span
  std::uint64_t local_port = 0;
  analysis::QueryTimeline tl;
};

std::vector<SpanTimeline> reconstruct_timelines(
    const std::vector<SpanNode>& nodes, std::size_t boundary) {
  std::map<std::int64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < nodes.size(); ++i) by_id[nodes[i].id] = i;

  std::vector<SpanTimeline> out;
  for (const SpanNode& n : nodes) {
    if (n.name != "tcp.flow") continue;
    SpanTimeline st;
    for (const auto& [key, val] : n.args) {
      if (key == "local_port") {
        st.local_port = std::strtoull(val.c_str(), nullptr, 10);
      }
    }
    const auto pit = by_id.find(n.parent);
    if (pit != by_id.end()) {
      for (const auto& [key, val] : nodes[pit->second].args) {
        // Strip the quotes arg_to_string added around the string value.
        if (key == "node" && val.size() >= 2) {
          st.node_name = val.substr(1, val.size() - 2);
        }
      }
    }

    bool saw_syn = false, saw_synack = false, saw_t1 = false, saw_t2 = false;
    std::vector<analysis::ReassembledStream::Segment> segments;
    for (const SpanNode::Event& e : n.events) {
      const sim::SimTime at = sim::SimTime::nanoseconds(e.at_ns);
      if (e.name == "syn" && !saw_syn) {
        st.tl.tb = at;
        saw_syn = true;
      } else if (e.name == "synack" && !saw_synack) {
        st.tl.t_synack = at;
        saw_synack = true;
      } else if (e.name == "tx_data" && !saw_t1) {
        st.tl.t1 = at;
        saw_t1 = true;
      } else if (e.name == "ack_data" && !saw_t2) {
        st.tl.t2 = at;
        saw_t2 = true;
      } else if (e.name == "rx" && e.off >= 0 && e.len > 0) {
        segments.push_back(analysis::ReassembledStream::Segment{
            static_cast<std::size_t>(e.off), static_cast<std::size_t>(e.len),
            at});
      }
    }
    if (!saw_syn || !saw_synack || !saw_t1 || !saw_t2) {
      st.tl.invalid_reason = "incomplete handshake/request events";
      out.push_back(std::move(st));
      continue;
    }
    // The exact same data-plane analysis the packet pipeline runs.
    const auto stream =
        analysis::ReassembledStream::from_segments(std::move(segments));
    analysis::finish_timeline_from_stream(st.tl, stream, boundary);
    out.push_back(std::move(st));
  }
  return out;
}

int diff_against_capture(const std::vector<SpanNode>& nodes,
                         const std::string& capture_path,
                         std::size_t boundary, const std::string& node_name) {
  capture::PacketTrace trace;
  try {
    trace = capture::load_trace(capture_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const capture::PacketTrace web = trace.filter_remote_port(80);

  if (boundary == 0) {
    std::vector<std::string> responses;
    for (const auto& flow : web.flows()) {
      auto stream =
          analysis::reassemble(web, flow, capture::Direction::kReceived);
      if (!stream.bytes().empty()) responses.push_back(stream.bytes());
    }
    if (responses.size() >= 2) {
      boundary = analysis::common_prefix_boundary(responses);
    }
  }
  if (boundary == 0) {
    std::fprintf(stderr,
                 "diff: no boundary available (trace lacks payloads); pass "
                 "--boundary=N\n");
    return 1;
  }

  std::vector<SpanTimeline> span_tls = reconstruct_timelines(nodes, boundary);
  const auto capture_tls = analysis::extract_all_timelines(web, 80, boundary);

  std::size_t compared = 0, mismatches = 0, unmatched = 0;
  for (const auto& ct : capture_tls) {
    if (!ct.valid) continue;
    const SpanTimeline* match = nullptr;
    bool ambiguous = false;
    for (const SpanTimeline& st : span_tls) {
      if (st.local_port != ct.flow.local.port) continue;
      if (!node_name.empty() && st.node_name != node_name) continue;
      if (st.tl.tb != ct.tb) continue;  // same port on another vantage point
      if (match) ambiguous = true;
      match = &st;
    }
    if (!match || ambiguous) {
      std::printf("port %u: %s\n", ct.flow.local.port,
                  ambiguous ? "AMBIGUOUS (pass --node=NAME)" : "NO SPAN");
      ++unmatched;
      continue;
    }
    ++compared;
    const analysis::QueryTimeline& st = match->tl;
    const struct {
      const char* name;
      sim::SimTime span, capture;
    } checks[] = {
        {"tb", st.tb, ct.tb},       {"t_synack", st.t_synack, ct.t_synack},
        {"t1", st.t1, ct.t1},       {"t2", st.t2, ct.t2},
        {"t3", st.t3, ct.t3},       {"t4", st.t4, ct.t4},
        {"t5", st.t5, ct.t5},       {"te", st.te, ct.te},
    };
    bool ok = st.valid == ct.valid;
    for (const auto& c : checks) ok = ok && c.span == c.capture;
    if (ok) {
      std::printf("port %u: OK  %s\n", ct.flow.local.port,
                  ct.to_string().c_str());
      continue;
    }
    ++mismatches;
    std::printf("port %u: MISMATCH\n", ct.flow.local.port);
    for (const auto& c : checks) {
      if (c.span != c.capture) {
        std::printf("  %-9s span=%" PRId64 "ns capture=%" PRId64 "ns\n",
                    c.name, c.span.ns(), c.capture.ns());
      }
    }
  }
  std::printf("diff: %zu compared, %zu mismatched, %zu unmatched "
              "(boundary=%zu, tolerance=0)\n",
              compared, mismatches, unmatched, boundary);
  if (compared == 0) {
    std::fprintf(stderr, "diff: nothing compared\n");
    return 1;
  }
  return (mismatches == 0 && unmatched == 0) ? 0 : 1;
}

int inspect_spans(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_inspect spans <trace.json> "
                 "[--diff=<capture.trace>] [--boundary=N] [--node=NAME] "
                 "[--tree]\n");
    return 2;
  }
  const std::string json_path = argv[2];
  std::string diff_path, node_name;
  std::size_t boundary = 0;
  bool tree = false;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--diff=")) {
      diff_path = arg.substr(7);
    } else if (arg.starts_with("--boundary=")) {
      boundary = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (arg.starts_with("--node=")) {
      node_name = arg.substr(7);
    } else if (arg == "--tree") {
      tree = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<SpanNode> nodes;
  std::vector<std::size_t> roots;
  if (!load_spans(json_path, nodes, roots)) return 1;
  std::printf("spans: %zu total, %zu roots\n", nodes.size(), roots.size());

  if (tree || diff_path.empty()) {
    for (const std::size_t r : roots) print_span(nodes, r, 0);
  }
  if (!diff_path.empty()) {
    return diff_against_capture(nodes, diff_path, boundary, node_name);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Packet mode (the original tool)
// ---------------------------------------------------------------------------

int inspect_packets(int argc, char** argv) {
  capture::PacketTrace trace;
  try {
    trace = capture::load_trace(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("trace: %zu packets captured at node %u\n", trace.size(),
              trace.node().value());

  const capture::PacketTrace web = trace.filter_remote_port(80);
  const auto flows = web.flows();
  std::printf("web connections: %zu\n", flows.size());

  // Boundary: explicit argument, or content analysis over the responses.
  std::size_t boundary =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
  if (boundary == 0) {
    std::vector<std::string> responses;
    for (const auto& flow : flows) {
      auto stream =
          analysis::reassemble(web, flow, capture::Direction::kReceived);
      if (!stream.bytes().empty()) responses.push_back(stream.bytes());
    }
    if (responses.size() >= 2) {
      boundary = analysis::common_prefix_boundary(responses);
      std::printf("content analysis: static portion = %zu bytes "
                  "(from %zu responses)\n",
                  boundary, responses.size());
    }
  }
  if (boundary == 0) {
    std::fprintf(stderr,
                 "no boundary available: trace lacks payloads or enough "
                 "responses; pass one explicitly.\n");
    return 1;
  }

  std::printf("\nquery\trtt_ms\tt_static_ms\tt_dynamic_ms\tt_delta_ms\t"
              "overall_ms\tfetch_lower\tfetch_upper\n");
  const auto timelines = analysis::extract_all_timelines(web, 80, boundary);
  std::size_t idx = 0;
  for (const auto& tl : timelines) {
    ++idx;
    const auto q = core::timings_from_timeline(tl);
    if (!q) {
      std::printf("%zu\tinvalid: %s\n", idx, tl.invalid_reason.c_str());
      continue;
    }
    const auto bounds = core::fetch_bounds(*q);
    std::printf("%zu\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", idx,
                q->rtt_ms, q->t_static_ms, q->t_dynamic_ms, q->t_delta_ms,
                q->overall_ms, bounds.lower_ms, bounds.upper_ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_inspect <trace-file> [boundary]\n"
                 "       trace_inspect spans <trace.json> "
                 "[--diff=<capture.trace>] [--boundary=N] [--node=NAME] "
                 "[--tree]\n");
    return 2;
  }
  if (std::strcmp(argv[1], "spans") == 0) return inspect_spans(argc, argv);
  return inspect_packets(argc, argv);
}
