#include "testbed/experiment.hpp"

#include <stdexcept>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/span_attribution.hpp"
#include "analysis/timeline.hpp"

namespace dyncdn::testbed {

namespace {
constexpr net::Port kServicePort = 80;
}  // namespace

std::vector<core::QueryTimings> analyze_client_trace(Scenario::Client& client,
                                                     std::size_t boundary) {
  if (!client.recorder) {
    throw std::logic_error("experiment requires capture_clients=true");
  }
  if (client.analyzer) {
    // Streaming path: flows were reduced online; drain returns the same
    // timelines extract_all_timelines would produce, in the same order.
    // No recorder->clear() here — the trace buffer is empty (retention is
    // off) and clearing would also reset the analyzer's boundary, which
    // multi-phase experiments reuse.
    return core::timings_from_timelines(client.analyzer->drain(boundary));
  }
  // Budgeted capture may have spilled the trace prefix to disk;
  // full_trace() reloads it and appends the in-memory tail, so the
  // analysis input is identical to an unbudgeted capture.
  const auto timelines = [&] {
    if (client.recorder->has_spilled()) {
      const capture::PacketTrace full = client.recorder->full_trace();
      return analysis::extract_all_timelines(full, kServicePort, boundary);
    }
    return analysis::extract_all_timelines(client.recorder->trace(),
                                           kServicePort, boundary);
  }();
  client.recorder->clear();
  return core::timings_from_timelines(timelines);
}

std::size_t discover_boundary(Scenario& scenario, std::size_t client_index,
                              std::size_t fe_index,
                              std::size_t num_keywords) {
  Scenario::Client& client = scenario.clients().at(client_index);
  if (!client.recorder) {
    throw std::logic_error("discover_boundary requires capture_clients=true");
  }
  scenario.connect_client_to_fe(client_index, fe_index);

  // Discovery reads response *content*, so payload capture must be on in
  // either mode. In streaming mode the analyzer's boundary probe
  // reassembles only a clipped prefix of each response (O(boundary)
  // memory) and retention stays off; the post-hoc path retains the full
  // payload trace. All toggles are restored afterwards.
  const bool streaming = client.analyzer != nullptr;
  const bool prior_payloads = client.recorder->capture_payloads();
  const bool prior_retain = client.recorder->retain_packets();
  client.recorder->set_capture_payloads(true);
  if (!streaming) client.recorder->set_retain_packets(true);
  client.recorder->clear();
  if (streaming) client.analyzer->begin_boundary_probe();

  // Distinct keywords: the paper's content analysis relies on responses to
  // *different* queries so the common prefix stops at the static portion.
  const search::KeywordCatalog catalog(scenario.simulator().rng().seed());
  const auto keywords = catalog.distinct_corpus(num_keywords);
  const net::Endpoint fe = scenario.fe_endpoint(fe_index);
  for (const search::Keyword& kw : keywords) {
    client.query_client->submit(fe, kw, [](const cdn::QueryResult&) {});
  }
  scenario.run();

  std::size_t response_count = 0;
  std::size_t boundary = 0;
  if (streaming) {
    response_count = client.analyzer->probe_flows();
    boundary = client.analyzer->finish_boundary_probe();
  } else {
    // Reassemble each connection's response stream. The probe phase can
    // itself cross a spill budget (payload capture is forced on), so read
    // the reassembled full trace when it did.
    const capture::PacketTrace spilled = client.recorder->has_spilled()
                                             ? client.recorder->full_trace()
                                             : capture::PacketTrace{};
    const capture::PacketTrace& probe_trace =
        client.recorder->has_spilled() ? spilled : client.recorder->trace();
    std::vector<std::string> responses;
    for (const auto& [flow, conn] : probe_trace.split_by_flow(kServicePort)) {
      analysis::ReassembledStream stream =
          analysis::reassemble(conn, flow, capture::Direction::kReceived);
      if (!stream.empty()) responses.push_back(stream.bytes());
    }
    response_count = responses.size();
    boundary = analysis::common_prefix_boundary(responses);
  }
  client.recorder->clear();
  client.recorder->set_capture_payloads(prior_payloads);
  client.recorder->set_retain_packets(prior_retain);

  if (response_count < 2) {
    throw std::runtime_error("discover_boundary: not enough responses");
  }
  if (boundary == 0) {
    throw std::runtime_error("discover_boundary: no common prefix found");
  }
  return boundary;
}

ExperimentResult run_experiment_subset(
    Scenario& scenario, const ExperimentOptions& options,
    std::span<const std::size_t> client_indices,
    const std::function<std::size_t(std::size_t)>& fe_for_client) {
  if (options.keywords.empty() && !options.zipf) {
    throw std::invalid_argument("ExperimentOptions.keywords is empty");
  }

  // Boundary discovery always probes from client 0 so every shard of a
  // sharded campaign derives the same boundary the serial run would.
  const std::size_t boundary =
      discover_boundary(scenario, 0, fe_for_client(0));
  const std::size_t discovery_fetches =
      scenario.fes()[fe_for_client(0)].server->fetch_log().size();
  // Streaming mode: once the boundary is known, flows collapse to
  // timelines the moment their teardown is captured.
  scenario.set_stream_boundary(boundary);

  // Launch the query schedule for the selected vantage points.
  sim::Simulator& simulator = scenario.simulator();
  auto& clients = scenario.clients();
  for (const std::size_t i : client_indices) {
    const std::size_t fe = fe_for_client(i);
    scenario.connect_client_to_fe(i, fe);
    const net::Endpoint endpoint = scenario.fe_endpoint(fe);

    // Per-client query sequence: the configured rotation, or fresh Zipf
    // popularity draws (each client gets an independent stream).
    std::vector<search::Keyword> sequence;
    if (options.zipf) {
      const search::KeywordCatalog catalog(simulator.rng().seed());
      const auto universe = catalog.generate(search::KeywordClass::kPopular,
                                             options.zipf->catalog_size);
      sim::RngStream draw_rng = simulator.rng().stream(
          "experiment/zipf/" + clients[i].vantage.name);
      sequence = search::KeywordCatalog::zipf_sample(
          universe, options.reps_per_node, options.zipf->alpha, draw_rng);
    }

    for (std::size_t r = 0; r < options.reps_per_node; ++r) {
      const search::Keyword kw =
          options.zipf ? sequence[r]
                       : options.keywords[r % options.keywords.size()];
      // Stagger by the client's *global* index: a vantage point keeps the
      // same submission schedule whether it runs in the full fleet or in a
      // single-client replica.
      const sim::SimTime at =
          options.stagger * static_cast<std::int64_t>(i) +
          options.interval * static_cast<std::int64_t>(r);
      // Submissions are scheduled on the submitting client's own shard
      // kernel (identical to `simulator` in a serial scenario — all shard
      // clocks agree between runs).
      clients[i].node->simulator().schedule_in(
          at, [&clients, i, endpoint, kw]() {
            clients[i].query_client->submit(endpoint, kw,
                                            [](const cdn::QueryResult&) {});
          });
    }
  }
  scenario.run();

  // Offline analysis per selected vantage point (result aligns with
  // client_indices).
  ExperimentResult result;
  result.boundary = boundary;
  result.discovery_fetches = discovery_fetches;
  result.per_node_timings.reserve(client_indices.size());
  for (const std::size_t i : client_indices) {
    auto timings = analyze_client_trace(clients[i], boundary);
    for (const core::QueryTimings& t : timings) {
      result.metrics.add("queries_analyzed", 1);
      result.metrics.observe("query_rtt_ms", t.rtt_ms);
      result.metrics.observe("query_t_static_ms", t.t_static_ms);
      result.metrics.observe("query_t_dynamic_ms", t.t_dynamic_ms);
      result.metrics.observe("query_t_delta_ms", t.t_delta_ms);
      result.metrics.observe("query_overall_ms", t.overall_ms);
    }
    result.per_node.push_back(
        core::aggregate_node(clients[i].vantage.name, timings));
    result.per_node_timings.push_back(std::move(timings));
  }
  scenario.collect_metrics(result.metrics);
  // Budgeted capture opts its spill counters into the main registry: they
  // are layout-invariant (see collect_spill_metrics — the subset makes
  // every replica count only its own clients), and runs without a budget
  // keep the exact export of previous releases.
  if (scenario.spilling_active()) {
    scenario.collect_spill_metrics(result.metrics, client_indices);
  }
  scenario.collect_kernel_metrics(result.kernel_metrics);
  result.trace = scenario.shared_trace();
  result.timeseries = scenario.take_timeseries();

  // Telemetry reducers over the span forest: per-component latency
  // attribution plus the slow-query flight recorder, fed in deterministic
  // completion order. The walker reuses the capture pipeline's timeline
  // code, so attribution sums reconcile with packet-derived T_dynamic at
  // tolerance 0.
  result.flight = obs::FlightRecorder(options.flight);
  if (result.trace != nullptr && !result.trace->spans().empty()) {
    analysis::reduce_attribution(result.trace->spans(), boundary,
                                 result.attribution, &result.flight);
  }
  return result;
}

namespace {
ExperimentResult run_experiment(Scenario& scenario,
                                const ExperimentOptions& options,
                                const std::function<std::size_t(std::size_t)>&
                                    fe_for_client) {
  std::vector<std::size_t> all(scenario.clients().size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return run_experiment_subset(scenario, options, all, fe_for_client);
}
}  // namespace

std::vector<core::QueryTimings> ExperimentResult::all() const {
  std::vector<core::QueryTimings> out;
  for (const auto& v : per_node_timings) out.insert(out.end(), v.begin(), v.end());
  return out;
}

ExperimentResult run_fixed_fe_experiment(Scenario& scenario,
                                         std::size_t fe_index,
                                         const ExperimentOptions& options) {
  return run_experiment(scenario, options,
                        [fe_index](std::size_t) { return fe_index; });
}

ExperimentResult run_default_fe_experiment(Scenario& scenario,
                                           const ExperimentOptions& options) {
  auto& clients = scenario.clients();
  return run_experiment(scenario, options, [&clients](std::size_t i) {
    return clients[i].default_fe;
  });
}

CachingExperimentResult run_caching_experiment(Scenario& scenario,
                                               std::size_t client_index,
                                               std::size_t fe_index,
                                               std::size_t reps) {
  CachingExperimentResult result;
  const std::size_t boundary =
      discover_boundary(scenario, client_index, fe_index);
  scenario.set_stream_boundary(boundary);

  Scenario::Client& client = scenario.clients().at(client_index);
  const net::Endpoint fe = scenario.fe_endpoint(fe_index);
  sim::Simulator& simulator = scenario.simulator();

  const search::KeywordCatalog catalog(simulator.rng().seed() + 17);
  const auto corpus = catalog.distinct_corpus(reps + 1);

  // Phase 1: the same keyword, repeated sequentially.
  client.query_client->submit_repeated(fe, corpus.front(), reps,
                                       sim::SimTime::milliseconds(1500),
                                       [](const cdn::QueryResult&) {});
  scenario.run();
  {
    auto timings = analyze_client_trace(client, boundary);
    for (const auto& q : timings) {
      result.t_dynamic_same_ms.push_back(q.t_dynamic_ms);
    }
  }

  // Phase 2: distinct keywords, one each (scheduled on the probing
  // client's shard kernel).
  for (std::size_t r = 0; r < reps; ++r) {
    client.node->simulator().schedule_in(
        sim::SimTime::milliseconds(1500) * static_cast<std::int64_t>(r),
        [&client, fe, kw = corpus[r + 1]]() {
          client.query_client->submit(fe, kw, [](const cdn::QueryResult&) {});
        });
  }
  scenario.run();
  {
    auto timings = analyze_client_trace(client, boundary);
    for (const auto& q : timings) {
      result.t_dynamic_distinct_ms.push_back(q.t_dynamic_ms);
    }
  }

  result.detection = core::detect_fe_caching(result.t_dynamic_same_ms,
                                             result.t_dynamic_distinct_ms);
  result.fe_cache_hits = scenario.fes().at(fe_index).server->cache_hits();
  return result;
}

FetchFactoringResult run_fetch_factoring_experiment(
    Scenario& scenario, const search::Keyword& keyword, std::size_t reps) {
  auto& clients = scenario.clients();
  auto& fes = scenario.fes();
  if (clients.size() != fes.size()) {
    throw std::logic_error(
        "fetch-factoring requires a distance-sweep scenario "
        "(one probe client per FE)");
  }
  const std::size_t boundary = discover_boundary(scenario, 0, 0);
  scenario.set_stream_boundary(boundary);

  for (std::size_t i = 0; i < clients.size(); ++i) {
    clients[i].query_client->submit_repeated(
        scenario.fe_endpoint(i), keyword, reps,
        sim::SimTime::milliseconds(1700), [](const cdn::QueryResult&) {});
  }
  scenario.run();

  FetchFactoringResult result;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    auto timings = analyze_client_trace(clients[i], boundary);
    if (timings.empty()) continue;
    result.distances_miles.push_back(fes[i].distance_to_be_miles);
    result.med_t_dynamic_ms.push_back(
        stats::median(core::extract_dynamic(timings)));
  }
  result.factoring = core::factor_fetch_time(result.distances_miles,
                                             result.med_t_dynamic_ms);
  scenario.collect_metrics(result.metrics);
  return result;
}

}  // namespace dyncdn::testbed
