# Empty dependencies file for fig4_packet_timelines.
# This may be replaced when dependencies are built.
