// tcpdump-like packet traces.
//
// The paper collects "detailed TCPdump with full application-layer
// payloads" at each measurement node and performs all analysis offline on
// those traces. We mirror that: a TraceRecorder taps a node, producing a
// PacketTrace of timestamped records (optionally retaining payload bytes);
// the analysis module consumes *only* these traces — never simulator
// internals — so the inference pipeline has no oracle access.
//
// Storage is struct-of-arrays: the trace keeps one column per record field
// (timestamp / direction / src / dst / TCP header / payload size / payload
// ref) instead of a vector of fat records. Retained captures of long
// campaigns dominate experiment memory, and the analysis passes each touch
// only a few fields per record, so columns keep the scanned bytes dense.
// Consumers iterate views: records() yields lightweight PacketRecordViews
// assembled from the columns on the fly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace dyncdn::capture {

enum class Direction : std::uint8_t { kSent, kReceived };

inline const char* to_string(Direction d) {
  return d == Direction::kSent ? "snd" : "rcv";
}

/// The flow as seen by the capturing node (local endpoint first).
net::FlowId flow_at_capture(Direction direction, net::NodeId src,
                            net::NodeId dst, const net::TcpHeader& tcp);

/// tcpdump-ish one-liner: "12.345ms rcv 5:80 -> 2:40001 seq=.. ...".
std::string record_to_string(sim::SimTime timestamp, Direction direction,
                             net::NodeId src, net::NodeId dst,
                             const net::TcpHeader& tcp,
                             std::size_t payload_size);

/// One captured packet event at a node, as a standalone value. This is the
/// transport type between recorder and sinks (and the parse target for
/// serialized traces); retained storage decomposes it into columns.
struct PacketRecord {
  sim::SimTime timestamp;
  Direction direction = Direction::kSent;
  net::NodeId src;
  net::NodeId dst;
  net::TcpHeader tcp;
  std::size_t payload_size = 0;
  /// Retained payload bytes (empty when the recorder captures headers only).
  net::PayloadRef payload;

  net::FlowId flow_at_capture_node() const {
    return flow_at_capture(direction, src, dst, tcp);
  }
  std::string to_string() const {
    return record_to_string(timestamp, direction, src, dst, tcp,
                            payload_size);
  }
};

/// A non-owning view of one record, assembled from a trace's columns.
/// Field-compatible with PacketRecord so analysis code reads either.
struct PacketRecordView {
  sim::SimTime timestamp;
  Direction direction;
  net::NodeId src;
  net::NodeId dst;
  const net::TcpHeader& tcp;
  std::size_t payload_size;
  const net::PayloadRef& payload;

  net::FlowId flow_at_capture_node() const {
    return flow_at_capture(direction, src, dst, tcp);
  }
  std::string to_string() const {
    return record_to_string(timestamp, direction, src, dst, tcp,
                            payload_size);
  }
};

/// An ordered sequence of packet records captured at one node (SoA).
class PacketTrace {
 public:
  explicit PacketTrace(net::NodeId node = {}) : node_(node) {}

  void add(PacketRecord record) {
    add(record.timestamp, record.direction, record.src, record.dst,
        record.tcp, record.payload_size, std::move(record.payload));
  }
  void add(const PacketRecordView& v) {
    add(v.timestamp, v.direction, v.src, v.dst, v.tcp, v.payload_size,
        v.payload);
  }
  void add(sim::SimTime timestamp, Direction direction, net::NodeId src,
           net::NodeId dst, const net::TcpHeader& tcp,
           std::size_t payload_size, net::PayloadRef payload) {
    retained_bytes_ += kRecordColumnBytes + payload.length;
    timestamps_.push_back(timestamp);
    directions_.push_back(direction);
    srcs_.push_back(src);
    dsts_.push_back(dst);
    tcps_.push_back(tcp);
    payload_sizes_.push_back(payload_size);
    payloads_.push_back(std::move(payload));
  }

  net::NodeId node() const { return node_; }
  std::size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }
  void clear() {
    timestamps_.clear();
    directions_.clear();
    srcs_.clear();
    dsts_.clear();
    tcps_.clear();
    payload_sizes_.clear();
    payloads_.clear();
    retained_bytes_ = 0;
  }

  PacketRecordView view(std::size_t i) const {
    return PacketRecordView{timestamps_[i], directions_[i],  srcs_[i],
                            dsts_[i],       tcps_[i],        payload_sizes_[i],
                            payloads_[i]};
  }

  class ConstIterator {
   public:
    using value_type = PacketRecordView;
    using difference_type = std::ptrdiff_t;

    ConstIterator(const PacketTrace* trace, std::size_t i)
        : trace_(trace), i_(i) {}
    PacketRecordView operator*() const { return trace_->view(i_); }
    ConstIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const ConstIterator& o) const { return i_ == o.i_; }
    bool operator!=(const ConstIterator& o) const { return i_ != o.i_; }

   private:
    const PacketTrace* trace_;
    std::size_t i_;
  };

  /// Indexable range of record views over the columns.
  class Records {
   public:
    explicit Records(const PacketTrace* trace) : trace_(trace) {}
    ConstIterator begin() const { return ConstIterator(trace_, 0); }
    ConstIterator end() const { return ConstIterator(trace_, trace_->size()); }
    PacketRecordView operator[](std::size_t i) const { return trace_->view(i); }
    std::size_t size() const { return trace_->size(); }
    bool empty() const { return trace_->empty(); }

   private:
    const PacketTrace* trace_;
  };

  Records records() const { return Records(this); }

  /// Direct column access for analysis passes that scan one field.
  const std::vector<sim::SimTime>& timestamps() const { return timestamps_; }
  const std::vector<Direction>& directions() const { return directions_; }
  const std::vector<net::TcpHeader>& tcp_headers() const { return tcps_; }
  const std::vector<std::size_t>& payload_sizes() const {
    return payload_sizes_;
  }

  /// Deterministic accounting of what this trace holds: per-record column
  /// bookkeeping plus retained payload bytes. Independent of allocator or
  /// thread count, unlike the obs/memory.hpp tracker, so it is safe to
  /// surface through merged experiment metrics.
  std::size_t retained_bytes() const { return retained_bytes_; }

  /// Bytes one record occupies across the columns (excluding payload data).
  static constexpr std::size_t kRecordColumnBytes =
      sizeof(sim::SimTime) + sizeof(Direction) + 2 * sizeof(net::NodeId) +
      sizeof(net::TcpHeader) + sizeof(std::size_t) + sizeof(net::PayloadRef);

  static std::size_t record_bytes(const PacketRecord& r) {
    return kRecordColumnBytes + r.payload.length;
  }

  /// Records matching a predicate, preserving order.
  PacketTrace filter(
      const std::function<bool(const PacketRecordView&)>& pred) const;

  /// Records belonging to one TCP connection (either direction).
  PacketTrace filter_flow(const net::FlowId& flow) const;

  /// Records whose remote endpoint uses the given port (e.g. 80 selects
  /// all web traffic regardless of ephemeral client port).
  PacketTrace filter_remote_port(net::Port port) const;

  /// All records grouped by connection (flow keyed from the capture node's
  /// perspective), in order of first appearance, built in one pass.
  /// Optionally keeps only flows whose remote endpoint uses `remote_port`.
  /// Per-connection analysis over a long trace should prefer this to
  /// filter_flow() per flow, which rescans the whole trace each time.
  std::vector<std::pair<net::FlowId, PacketTrace>> split_by_flow(
      std::optional<net::Port> remote_port = std::nullopt) const;

  /// Distinct flows present, keyed from the capture node's perspective,
  /// in order of first appearance.
  std::vector<net::FlowId> flows() const;

  /// Multi-line human-readable dump.
  std::string to_text() const;

 private:
  net::NodeId node_;
  // One column per record field, index-aligned.
  std::vector<sim::SimTime> timestamps_;
  std::vector<Direction> directions_;
  std::vector<net::NodeId> srcs_;
  std::vector<net::NodeId> dsts_;
  std::vector<net::TcpHeader> tcps_;
  std::vector<std::size_t> payload_sizes_;
  std::vector<net::PayloadRef> payloads_;
  std::size_t retained_bytes_ = 0;
};

}  // namespace dyncdn::capture
