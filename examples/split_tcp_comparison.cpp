// Split-TCP comparison — why front-end servers help at all.
//
// The same search query is issued two ways from the same client:
//   (a) through a nearby FE that splits the TCP connection and holds a
//       persistent, window-warmed connection to the BE, and
//   (b) directly to the BE data center over one long cold connection.
//
// Prints per-attempt app-level numbers so the mechanics are visible —
// for the full parameter sweep see bench/baseline_split_tcp.
#include <cstdio>

#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

int main() {
  sim::Simulator simulator(11);
  net::Network network(simulator);
  search::ContentModel content(search::ContentProfile{}, "SplitDemo");

  // Client is 45ms (one way) from the data center; the FE sits 5ms from
  // the client.
  net::Node& client_node = network.add_node("client");
  net::Node& fe_node = network.add_node("fe");
  net::Node& be_node = network.add_node("be");

  net::LinkConfig access;
  access.propagation_delay = 5_ms;
  access.bandwidth_bps = 50e6;
  network.connect(client_node, fe_node, access);

  net::LinkConfig internal;
  internal.propagation_delay = 40_ms;
  internal.bandwidth_bps = 1e9;
  network.connect(fe_node, be_node, internal);

  net::LinkConfig direct;
  direct.propagation_delay = 45_ms;
  direct.bandwidth_bps = 50e6;
  network.connect(client_node, be_node, direct);

  const cdn::ServiceProfile profile = cdn::google_like_profile();
  cdn::BackendDataCenter::Config be_cfg;
  be_cfg.processing = profile.processing;
  be_cfg.tcp = profile.internal_tcp;
  cdn::BackendDataCenter backend(be_node, content, be_cfg);

  cdn::FrontEndServer::Config fe_cfg;
  fe_cfg.backend = backend.fetch_endpoint();
  fe_cfg.service.median_ms = 2.0;
  fe_cfg.client_tcp = profile.client_tcp;
  fe_cfg.backend_tcp = profile.internal_tcp;
  cdn::FrontEndServer frontend(fe_node, content, fe_cfg);

  cdn::QueryClient client(client_node, profile.client_tcp);
  simulator.run_until(simulator.now() + 3_s);

  const search::Keyword keyword{"split tcp demo",
                                search::KeywordClass::kGranular, 777};

  std::printf("%-10s %10s %12s %12s %12s\n", "path", "handshake",
              "first byte", "complete", "bytes");
  for (int round = 0; round < 3; ++round) {
    for (const bool via_fe : {true, false}) {
      cdn::QueryResult result;
      client.submit(via_fe ? frontend.client_endpoint()
                           : backend.direct_endpoint(),
                    keyword,
                    [&](const cdn::QueryResult& r) { result = r; });
      simulator.run();
      std::printf("%-10s %8.1fms %10.1fms %10.1fms %11zuB%s\n",
                  via_fe ? "via FE" : "direct",
                  (result.connected - result.start).to_milliseconds(),
                  (result.first_byte - result.start).to_milliseconds(),
                  result.overall_delay().to_milliseconds(),
                  result.body_bytes, result.failed ? " FAILED" : "");
    }
  }

  std::printf(
      "\nvia FE: the handshake completes in one short RTT, the cached "
      "static\nportion arrives immediately, and the dynamic fetch rides a "
      "persistent,\nalready-open FE-BE connection. direct: every round trip "
      "(handshake,\nslow-start ramp, loss recovery) pays the full path "
      "RTT.\n");
  return 0;
}
