file(REMOVE_RECURSE
  "libdyncdn_cdn.a"
)
