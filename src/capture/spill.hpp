// Durable traces: spill-to-disk columnar trace format (.dtrc).
//
// The paper's methodology is capture-then-analyze: every vantage point
// keeps a full tcpdump and all decomposition happens offline. The text
// serialization (serialize.hpp) makes that workflow portable but costs
// ~50 bytes per headers-only record and 2x the payload bytes in hex — at
// the 10^5..10^6-client scale the PDES work targets, neither the trace
// buffer nor the text file fits. This module adds the durable tier:
//
//   SpillWriter  a capture::PacketSink that streams PacketRecords into a
//                compact block-columnar binary file. Memory is O(one
//                block); a TraceRecorder with a spill budget dumps its
//                buffer here whenever retained_bytes crosses the budget.
//   SpillReader  mmap-based consumer that can iterate blocks, decode the
//                whole file, or seek per-flow via the block index without
//                materializing anything it skips.
//
// On-disk layout (all integers little-endian; "varint" = LEB128,
// "zigzag" = signed-to-unsigned fold before varint):
//
//   [file header]  magic "DTRC0001" | node u32 | flags u32
//   [block]*       each block is independently decodable:
//                    record_count u32
//                    section_size u32 x 9   (column sections, in order)
//                    payload_size u32       (separate payload region)
//                    sections:
//                      0 timestamps     zigzag delta vs previous record
//                      1 directions     1 bit per record, packed
//                      2 flow ids       varint (pair_id << 1) | orient:
//                                       pair_id indexes the footer's
//                                       endpoint-pair table, the low bit
//                                       restores (src,dst) order
//                      3 seq            zigzag delta vs the *predicted*
//                                       next seq of the same directed
//                                       flow (prev seq + prev wire
//                                       payload size) — contiguous data
//                                       runs encode as zeros
//                      4 ack            zigzag delta vs the directed
//                                       flow's previous record
//                      5 window         same per-directed-flow deltas
//                      6 flags          4 bits (S|A|F|R), 2 records/byte
//                      7 payload_size   zigzag delta per directed flow
//                                       (wire bytes)
//                      8 payload_len    varint (retained bytes); section
//                                       omitted (size 0) when the block
//                                       retains no payload bytes at all
//                    payload region: retained payload bytes, record order
//   [footer]       endpoint table (varint node/port pairs), endpoint-pair
//                  table, block index: per block {offset, encoded size,
//                  record count, payload bytes, first/last timestamp,
//                  ascending delta-coded list of pair ids present} — the
//                  per-flow seek structure.
//   [tail]         footer offset u64 | total records u64 | "DTRCEND1"
//
// Pair interning and per-directed-flow deltas are what make the format
// small: a headers-only record costs ~9 bytes (vs ~50 text), and payload
// bytes are stored raw (vs 2x hex). The tail-anchored footer lets the
// reader open a file without scanning it, and lets the writer restart a
// file cheaply (truncate to header) when the recorder clears.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/recorder.hpp"
#include "capture/trace.hpp"
#include "net/address.hpp"

namespace dyncdn::capture {

/// Cumulative writer-side accounting, surfaced through the metrics
/// registry (spill_* counters) and the spill-progress time-series
/// channels. All byte counts are deterministic functions of the captured
/// records; flush_ns is wall clock and stays out of deterministic exports.
struct SpillStats {
  std::uint64_t bytes_written = 0;  ///< encoded bytes flushed to disk
  std::uint64_t blocks = 0;         ///< blocks flushed
  std::uint64_t records = 0;        ///< records appended
  std::uint64_t raw_bytes = 0;      ///< PacketTrace::record_bytes accounting
  std::uint64_t flush_ns = 0;       ///< wall time inside disk flushes
};

/// Streams PacketRecords to a .dtrc file. Usable directly as a recorder
/// sink (--save-traces: every packet goes straight to disk) or as the
/// overflow target of a budgeted TraceRecorder (capture_budget: the
/// buffered prefix spills here, the in-memory tail stays analyzable).
class SpillWriter final : public PacketSink {
 public:
  struct Options {
    /// Records per block. Larger blocks amortize section framing; smaller
    /// blocks tighten the per-flow seek granularity.
    std::size_t block_records = 4096;
  };

  /// Opens (truncates) `path` and writes the file header. Throws
  /// std::runtime_error when the file cannot be created.
  SpillWriter(std::string path, net::NodeId node);
  SpillWriter(std::string path, net::NodeId node, Options options);
  ~SpillWriter() override;

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// PacketSink: append one record. Flushes a block once block_records
  /// accumulate. Throws std::logic_error after finish() (call on_clear()
  /// to restart the file).
  void on_packet(const PacketRecord& record) override;
  /// PacketSink: the recorder discarded its buffer (warm-up, phase
  /// boundary) — restart the file so spilled state resets in lockstep.
  void on_clear() override;

  /// Append one record / a whole trace (same encoding path as on_packet).
  void append(const PacketRecordView& view);
  void append_trace(const PacketTrace& trace);

  /// Flush the partial block and write footer + tail; the file is now a
  /// complete .dtrc that SpillReader can open. Idempotent. The writer
  /// stays reusable via on_clear().
  void finish();
  bool finished() const { return finished_; }

  const std::string& path() const { return path_; }
  net::NodeId node() const { return node_; }
  const SpillStats& stats() const { return stats_; }

 private:
  /// Delta state per *directed* flow (pair id + orientation bit), so the
  /// two sequence-number spaces of a connection never mix.
  struct PairState {
    std::int64_t prev_seq = 0;
    std::int64_t prev_ack = 0;
    std::int64_t prev_window = 0;
    std::int64_t prev_psize = 0;
  };

  void open_file();
  void encode(sim::SimTime timestamp, Direction direction, net::NodeId src,
              net::NodeId dst, const net::TcpHeader& tcp,
              std::size_t payload_size, const net::PayloadRef& payload);
  std::uint32_t intern_endpoint(net::NodeId node, net::Port port);
  std::uint32_t intern_pair(std::uint32_t a, std::uint32_t b);
  void flush_block();
  void write_footer_and_tail();

  std::string path_;
  net::NodeId node_;
  Options options_;
  std::FILE* file_ = nullptr;
  bool finished_ = false;
  SpillStats stats_;

  // Global (whole-file) intern tables; written in the footer.
  std::vector<std::pair<std::uint32_t, std::uint16_t>> endpoints_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
  std::unordered_map<std::uint64_t, std::uint32_t> endpoint_lookup_;
  std::unordered_map<std::uint64_t, std::uint32_t> pair_lookup_;

  // Current block under construction: one byte stream per column section,
  // plus block-local delta state (reset per block so blocks decode
  // independently).
  std::vector<std::uint8_t> sections_[9];
  std::vector<std::uint8_t> payload_region_;
  std::vector<PairState> pair_state_;  // indexed by directed flow id
  std::vector<std::uint32_t> block_pairs_;  // sorted unique pair ids
  std::uint32_t block_records_ = 0;
  std::int64_t prev_timestamp_ = 0;
  std::int64_t block_first_ts_ = 0;
  std::int64_t block_last_ts_ = 0;

  struct BlockEntry {
    std::uint64_t offset = 0;
    std::uint64_t encoded_bytes = 0;
    std::uint32_t record_count = 0;
    std::uint64_t payload_bytes = 0;
    std::int64_t first_ts = 0;
    std::int64_t last_ts = 0;
    std::vector<std::uint32_t> pair_ids;
  };
  std::vector<BlockEntry> index_;
  std::uint64_t write_offset_ = 0;
};

/// mmap-backed .dtrc consumer. The constructor maps the file and parses
/// only the tail + footer; blocks decode lazily on demand. Throws
/// std::runtime_error with a specific message on truncated or corrupt
/// input. Falls back to a heap copy of the file if mmap is unavailable.
class SpillReader {
 public:
  explicit SpillReader(const std::string& path);
  ~SpillReader();

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  net::NodeId node() const { return node_; }
  std::uint64_t record_count() const { return record_count_; }
  std::size_t block_count() const { return blocks_.size(); }

  struct BlockInfo {
    sim::SimTime first_timestamp;
    sim::SimTime last_timestamp;
    std::uint32_t records = 0;
    std::uint64_t payload_bytes = 0;
  };
  BlockInfo block_info(std::size_t block) const;

  /// Decode block `block` into `out` (records appended in capture order).
  void read_block(std::size_t block, PacketTrace& out) const;

  /// Decode every block, in order, into one trace.
  PacketTrace read_all() const;

  /// Visit every record without materializing a trace.
  void for_each_record(
      const std::function<void(const PacketRecord&)>& fn) const;

  /// Per-flow seek: decode only the blocks whose index entry lists the
  /// flow's endpoint pair, then filter to the connection. Equivalent to
  /// read_all().filter_flow(flow) but skips unrelated blocks entirely.
  PacketTrace read_flow(const net::FlowId& flow) const;

  /// True when `path` starts with the .dtrc magic (cheap format sniff).
  static bool is_dtrc_file(const std::string& path);

 private:
  struct BlockMeta {
    std::uint64_t offset = 0;
    std::uint64_t encoded_bytes = 0;
    std::uint32_t record_count = 0;
    std::uint64_t payload_bytes = 0;
    std::int64_t first_ts = 0;
    std::int64_t last_ts = 0;
    std::vector<std::uint32_t> pair_ids;
  };

  void parse_footer();
  void decode_block(const BlockMeta& meta,
                    const std::function<void(PacketRecord&&)>& emit) const;

  std::string path_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;                 // data_ came from mmap
  std::vector<std::uint8_t> fallback_;  // heap copy when mmap failed
  net::NodeId node_;
  std::uint64_t record_count_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint16_t>> endpoints_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
  std::unordered_map<std::uint64_t, std::uint32_t> pair_lookup_;
  std::vector<BlockMeta> blocks_;
};

/// Write `trace` as a complete .dtrc file (convenience over SpillWriter).
void save_trace_dtrc(const PacketTrace& trace, const std::string& path);

/// Load a complete .dtrc file into memory (convenience over SpillReader).
PacketTrace load_trace_dtrc(const std::string& path);

}  // namespace dyncdn::capture
