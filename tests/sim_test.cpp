// Unit tests for the discrete-event kernel: SimTime arithmetic, event
// ordering and cancellation, run loops, and RNG determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace dyncdn::sim {
namespace {

using namespace dyncdn::sim::literals;

TEST(SimTime, FactoryUnitsAgree) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::milliseconds(1000));
  EXPECT_EQ(SimTime::milliseconds(1), SimTime::microseconds(1000));
  EXPECT_EQ(SimTime::microseconds(1), SimTime::nanoseconds(1000));
  EXPECT_EQ((5_ms).ns(), 5'000'000);
}

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime a = 10_ms, b = 4_ms;
  EXPECT_EQ(a + b, 14_ms);
  EXPECT_EQ(a - b, 6_ms);
  EXPECT_EQ(a * 3, 30_ms);
  EXPECT_EQ(a / 2, 5_ms);
  EXPECT_LT(b, a);
  EXPECT_GE(a, a);
}

TEST(SimTime, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_milliseconds(0.0000005).ns(), 1);  // 0.5ns -> 1
  EXPECT_EQ(SimTime::from_seconds(0.0).ns(), 0);
}

TEST(SimTime, ConversionsRoundTrip) {
  const SimTime t = SimTime::from_milliseconds(123.456);
  EXPECT_NEAR(t.to_milliseconds(), 123.456, 1e-6);
  EXPECT_NEAR(t.to_seconds(), 0.123456, 1e-9);
}

TEST(SimTime, ScaledAppliesFactor) {
  EXPECT_EQ((100_ms).scaled(0.5), 50_ms);
  EXPECT_EQ((100_ms).scaled(4.0), 400_ms);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ((2_s).to_string(), "2.000s");
  EXPECT_EQ((15_ms).to_string(), "15.000ms");
  EXPECT_EQ((7_us).to_string(), "7.000us");
  EXPECT_EQ((3_ns).to_string(), "3ns");
  EXPECT_EQ(SimTime::infinity().to_string(), "inf");
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_ms, [&] { order.push_back(3); });
  q.schedule(10_ms, [&] { order.push_back(1); });
  q.schedule(20_ms, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_ms, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10_ms, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(10_ms, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredEventReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1_ms, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, CancelInvalidIdIsSafe) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, PendingCountTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1_ms, [] {});
  q.schedule(2_ms, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
  q.pop_and_run();
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueue, SchedulingIntoThePastThrows) {
  EventQueue q;
  q.schedule(10_ms, [] {});
  q.pop_and_run();
  EXPECT_THROW(q.schedule(5_ms, [] {}), std::logic_error);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(1_ms, [] {});
  q.schedule(2_ms, [] {});
  q.cancel(a);
  EXPECT_EQ(q.next_time(), 2_ms);
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator simulator;
  std::vector<SimTime> seen;
  simulator.schedule_in(5_ms, [&] { seen.push_back(simulator.now()); });
  simulator.schedule_in(9_ms, [&] { seen.push_back(simulator.now()); });
  simulator.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 5_ms);
  EXPECT_EQ(seen[1], 9_ms);
  EXPECT_EQ(simulator.now(), 9_ms);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) simulator.schedule_in(1_ms, recurse);
  };
  simulator.schedule_in(1_ms, recurse);
  simulator.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(simulator.now(), 5_ms);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    simulator.schedule_at(SimTime::milliseconds(i), [&] { ++count; });
  }
  simulator.run_until(5_ms);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(simulator.pending_events(), 5u);
  simulator.run();
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineWhenQuiet) {
  Simulator simulator;
  simulator.schedule_at(100_ms, [] {});
  simulator.run_until(50_ms);
  EXPECT_EQ(simulator.now(), 50_ms);
}

TEST(Simulator, RunStepsExecutesExactly) {
  Simulator simulator;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    simulator.schedule_at(SimTime::milliseconds(i), [&] { ++count; });
  }
  EXPECT_EQ(simulator.run_steps(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(simulator.run_steps(99), 2u);
}

TEST(EventQueue, RandomScheduleFiresInGlobalTimeOrder) {
  // Property: regardless of insertion order and cancellations, events fire
  // in nondecreasing time, with scheduling order breaking ties.
  EventQueue q;
  RngStream rng(99);
  struct Fired {
    std::int64_t at;
    std::uint64_t seq;
  };
  std::vector<Fired> fired;
  std::vector<EventId> ids;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const std::int64_t at = rng.uniform_int(0, 500);
    ids.push_back(q.schedule(SimTime::milliseconds(at), [&fired, at, i] {
      fired.push_back({at, i});
    }));
  }
  // Cancel a random third.
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.chance(0.33) && q.cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired.size(), 3000u - cancelled);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].at, fired[i].at);
    if (fired[i - 1].at == fired[i].at) {
      ASSERT_LT(fired[i - 1].seq, fired[i].seq);
    }
  }
}

TEST(Rng, SameSeedSameStreamIsDeterministic) {
  RngFactory f1(42), f2(42);
  RngStream a = f1.stream("x");
  RngStream b = f2.stream("x");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentNamesGiveDifferentStreams) {
  RngFactory f(42);
  RngStream a = f.stream("alpha");
  RngStream b = f.stream("beta");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DifferentSeedsGiveDifferentStreams) {
  RngStream a = RngFactory(1).stream("x");
  RngStream b = RngFactory(2).stream("x");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DeriveCreatesIndependentFactory) {
  RngFactory f(7);
  RngFactory d1 = f.derive("rep1");
  RngFactory d2 = f.derive("rep2");
  EXPECT_NE(d1.seed(), d2.seed());
  EXPECT_EQ(f.derive("rep1").seed(), d1.seed());
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  RngStream s = RngFactory(3).stream("u");
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = s.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    saw_lo |= (v == 0);
    saw_hi |= (v == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  RngStream s = RngFactory(4).stream("c");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.chance(0.0));
    EXPECT_TRUE(s.chance(1.0));
  }
}

TEST(Rng, LognormalMedianIsApproximatelyMedian) {
  RngStream s = RngFactory(5).stream("ln");
  std::vector<double> draws;
  for (int i = 0; i < 20000; ++i) draws.push_back(s.lognormal_median(50.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], 50.0, 2.0);
}

TEST(Rng, NormalMsClampsAtFloor) {
  RngStream s = RngFactory(6).stream("n");
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(s.normal_ms(1.0, 10.0, 0.5), SimTime::from_milliseconds(0.5));
  }
}

}  // namespace
}  // namespace dyncdn::sim
