# Empty compiler generated dependencies file for sec3_caching_experiment.
# This may be replaced when dependencies are built.
