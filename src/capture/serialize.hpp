// Trace (de)serialization.
//
// The paper's workflow is offline: capture on the vantage points, analyze
// later. These helpers persist a PacketTrace to a line-oriented text format
// and parse it back, so captures can be written to disk by one process and
// analyzed by another (see examples/offline_analysis).
//
// Format (one record per line, '#' comments, header line first):
//   # dyncdn-trace v1 node=<id>
//   <ns> <snd|rcv> <src> <sport> <dst> <dport> <seq> <ack> <win>
//       <flags> <paylen> [<hex payload>]      (one line per record)
// Flags is a subset of "SAFR" ('.' when none). Payload hex is present only
// when the record retained bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "capture/trace.hpp"

namespace dyncdn::capture {

/// Serialize to the text format. `with_payloads` controls whether retained
/// payload bytes are written (they dominate file size).
std::string serialize_trace(const PacketTrace& trace,
                            bool with_payloads = true);

/// Parse a serialized trace. Throws std::runtime_error on malformed input.
PacketTrace parse_trace(std::string_view text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_trace(const PacketTrace& trace, const std::string& path,
                bool with_payloads = true);
PacketTrace load_trace(const std::string& path);

}  // namespace dyncdn::capture
