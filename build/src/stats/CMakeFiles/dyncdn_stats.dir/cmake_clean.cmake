file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/dyncdn_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/dyncdn_stats.dir/boxplot.cpp.o"
  "CMakeFiles/dyncdn_stats.dir/boxplot.cpp.o.d"
  "CMakeFiles/dyncdn_stats.dir/cdf.cpp.o"
  "CMakeFiles/dyncdn_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/dyncdn_stats.dir/descriptive.cpp.o"
  "CMakeFiles/dyncdn_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/dyncdn_stats.dir/regression.cpp.o"
  "CMakeFiles/dyncdn_stats.dir/regression.cpp.o.d"
  "libdyncdn_stats.a"
  "libdyncdn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
