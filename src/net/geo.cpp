#include "net/geo.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>

namespace dyncdn::net {

namespace {
constexpr double kEarthRadiusMiles = 3958.8;
constexpr double kMilesPerKm = 0.621371;

double deg2rad(double d) { return d * std::numbers::pi / 180.0; }
}  // namespace

std::string GeoPoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f)", lat_deg, lon_deg);
  return buf;
}

double haversine_miles(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg2rad(a.lat_deg), lat2 = deg2rad(b.lat_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusMiles * std::asin(std::min(1.0, std::sqrt(s)));
}

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  return haversine_miles(a, b) / kMilesPerKm;
}

sim::SimTime propagation_delay(const GeoPoint& a, const GeoPoint& b,
                               double path_stretch) {
  return propagation_delay_miles(haversine_miles(a, b) * path_stretch);
}

sim::SimTime propagation_delay_miles(double miles) {
  return sim::SimTime::from_milliseconds(miles / kFiberMilesPerMs);
}

double miles_for_delay(sim::SimTime one_way) {
  return one_way.to_milliseconds() * kFiberMilesPerMs;
}

}  // namespace dyncdn::net
