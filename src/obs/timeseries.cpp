#include "obs/timeseries.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace dyncdn::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(std::uint64_t interval_ns,
                                     std::size_t max_samples)
    : interval_ns_(interval_ns),
      max_samples_(max_samples == 0 ? 1 : max_samples) {}

void TimeSeriesSampler::begin_tick(std::uint64_t tick) {
  if (!ticks_.empty() && tick <= ticks_.back()) return;  // monotonic only
  ticks_.push_back(tick);
  in_tick_ = true;
}

void TimeSeriesSampler::record_channel(Channel& ch, double value) {
  // Pad up to the row before this tick, then append this tick's value.
  if (ch.values.size() < ticks_.size() - 1) {
    ch.values.resize(ticks_.size() - 1, 0.0);
  }
  if (ch.values.size() == ticks_.size() - 1) {
    ch.values.push_back(value);
  } else {
    ch.values.back() += value;  // second record in one tick accumulates
  }
}

void TimeSeriesSampler::record(const std::string& channel, double value,
                               bool runtime) {
  if (!in_tick_) return;
  Channel& ch = channels_[channel];
  ch.runtime = ch.runtime || runtime;
  record_channel(ch, value);
}

void TimeSeriesSampler::record_cumulative(const std::string& channel,
                                          double cumulative, bool runtime) {
  if (!in_tick_) return;
  Channel& ch = channels_[channel];
  ch.runtime = ch.runtime || runtime;
  const double delta = ch.has_prev ? cumulative - ch.prev_cumulative
                                   : cumulative;
  ch.prev_cumulative = cumulative;
  ch.has_prev = true;
  record_channel(ch, delta);
}

TimeSeriesSampler::ChannelRef TimeSeriesSampler::channel(
    const std::string& name, bool runtime) {
  Channel& ch = channels_[name];
  ch.runtime = ch.runtime || runtime;
  ChannelRef ref;
  ref.ch = &ch;  // map nodes are pointer-stable until merge() rebuilds
  return ref;
}

void TimeSeriesSampler::record(ChannelRef ref, double value) {
  if (!in_tick_ || ref.ch == nullptr) return;
  record_channel(*ref.ch, value);
}

void TimeSeriesSampler::record_cumulative(ChannelRef ref, double cumulative) {
  if (!in_tick_ || ref.ch == nullptr) return;
  Channel& ch = *ref.ch;
  const double delta = ch.has_prev ? cumulative - ch.prev_cumulative
                                   : cumulative;
  ch.prev_cumulative = cumulative;
  ch.has_prev = true;
  record_channel(ch, delta);
}

void TimeSeriesSampler::end_tick() {
  if (!in_tick_) return;
  in_tick_ = false;
  for (auto& [name, ch] : channels_) pad_channel(ch);
  evict_to_bound();
}

void TimeSeriesSampler::evict_to_bound() {
  if (ticks_.size() <= max_samples_) return;
  const std::size_t drop = ticks_.size() - max_samples_;
  ticks_.erase(ticks_.begin(),
               ticks_.begin() + static_cast<std::ptrdiff_t>(drop));
  for (auto& [name, ch] : channels_) {
    const std::size_t d = std::min(drop, ch.values.size());
    ch.values.erase(ch.values.begin(),
                    ch.values.begin() + static_cast<std::ptrdiff_t>(d));
  }
}

void TimeSeriesSampler::merge(const TimeSeriesSampler& other) {
  if (other.ticks_.empty() && other.channels_.empty()) return;
  if (interval_ns_ == 0) interval_ns_ = other.interval_ns_;
  // Union of tick indexes, both sides sorted ascending already.
  std::vector<std::uint64_t> merged_ticks;
  merged_ticks.reserve(ticks_.size() + other.ticks_.size());
  std::set_union(ticks_.begin(), ticks_.end(), other.ticks_.begin(),
                 other.ticks_.end(), std::back_inserter(merged_ticks));

  const auto realign = [&](const std::vector<std::uint64_t>& from_ticks,
                           const std::vector<double>& from_values,
                           std::vector<double>& into) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < merged_ticks.size(); ++i) {
      if (j < from_ticks.size() && from_ticks[j] == merged_ticks[i] &&
          j < from_values.size()) {
        into[i] += from_values[j];
      }
      if (j < from_ticks.size() && from_ticks[j] == merged_ticks[i]) ++j;
    }
  };

  std::map<std::string, Channel> merged;
  const auto fold = [&](const std::map<std::string, Channel>& src,
                        const std::vector<std::uint64_t>& src_ticks) {
    for (const auto& [name, ch] : src) {
      Channel& out = merged[name];
      out.runtime = out.runtime || ch.runtime;
      if (out.values.size() != merged_ticks.size()) {
        out.values.assign(merged_ticks.size(), 0.0);
      }
      realign(src_ticks, ch.values, out.values);
    }
  };
  fold(channels_, ticks_);
  fold(other.channels_, other.ticks_);

  ticks_ = std::move(merged_ticks);
  channels_ = std::move(merged);
  // The merged series is an export artifact: cumulative-delta state does
  // not survive a merge.
  for (auto& [name, ch] : channels_) ch.has_prev = false;
  evict_to_bound();
}

std::vector<std::string> TimeSeriesSampler::channel_names(
    bool include_runtime) const {
  std::vector<std::string> names;
  for (const auto& [name, ch] : channels_) {
    if (ch.runtime && !include_runtime) continue;
    names.push_back(name);
  }
  return names;
}

std::string TimeSeriesSampler::to_csv() const {
  std::string out = "tick,time_ms";
  const std::vector<std::string> names = channel_names(false);
  for (const std::string& n : names) {
    out.push_back(',');
    out += n;
  }
  out.push_back('\n');
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    append_u64(out, ticks_[i]);
    out.push_back(',');
    append_double(out, static_cast<double>(ticks_[i]) *
                           static_cast<double>(interval_ns_) / 1e6);
    for (const std::string& n : names) {
      out.push_back(',');
      const auto& values = channels_.at(n).values;
      append_double(out, i < values.size() ? values[i] : 0.0);
    }
    out.push_back('\n');
  }
  return out;
}

std::string TimeSeriesSampler::to_json(bool include_runtime) const {
  std::string out = "{\"interval_ns\":";
  append_u64(out, interval_ns_);
  out += ",\"ticks\":[";
  for (std::size_t i = 0; i < ticks_.size(); ++i) {
    if (i != 0) out.push_back(',');
    append_u64(out, ticks_[i]);
  }
  out += "],\"channels\":{";
  bool first = true;
  for (const std::string& n : channel_names(include_runtime)) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += n;  // channel names are code-chosen identifiers, no escaping
    out += "\":[";
    const auto& values = channels_.at(n).values;
    for (std::size_t i = 0; i < ticks_.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_double(out, i < values.size() ? values[i] : 0.0);
    }
    out += "]";
  }
  out += "}}";
  return out;
}

}  // namespace dyncdn::obs
