// Incremental HTTP/1.1 parsers.
//
// TCP delivers a byte stream in arbitrary segment-sized pieces; these
// parsers consume those pieces and surface complete messages (requests) or
// streaming events (responses). The response parser reports body bytes as
// they arrive — the client emulator needs per-packet body progress to build
// the paper's t3/t4/t5 timeline, not just the completed message.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.hpp"

namespace dyncdn::http {

/// Parses a stream of HTTP requests (persistent connections carry several
/// back to back). Feed bytes; completed requests surface via callback.
class RequestParser {
 public:
  using RequestHandler = std::function<void(HttpRequest)>;

  explicit RequestParser(RequestHandler on_request)
      : on_request_(std::move(on_request)) {}

  /// Consume a chunk of stream bytes. Throws std::runtime_error on
  /// malformed input.
  void feed(std::string_view bytes);

  /// True while a partially received message is pending.
  bool mid_message() const { return !buffer_.empty(); }

 private:
  void try_parse();

  RequestHandler on_request_;
  std::string buffer_;
};

/// Streaming parser for HTTP responses on a connection.
///
/// Two framing modes, chosen per response from its headers:
///  - Content-Length present: the body ends after that many bytes; the
///    parser then resets for the next response (persistent connections).
///  - No Content-Length: read-until-close ("Connection: close" framing, as
///    search front-ends used in the measurement era) — the caller signals
///    the peer's FIN via finish_stream(), which completes the response.
class ResponseParser {
 public:
  struct Callbacks {
    /// Status line + headers complete. `body_length` is the declared
    /// Content-Length, or nullopt for read-until-close framing.
    std::function<void(const HttpResponse&,
                       std::optional<std::size_t> body_length)>
        on_headers;
    /// A chunk of body bytes arrived (already de-framed).
    std::function<void(std::string_view)> on_body_data;
    /// Full response received.
    std::function<void(const HttpResponse&)> on_complete;
  };

  explicit ResponseParser(Callbacks callbacks)
      : callbacks_(std::move(callbacks)) {}

  /// Consume a chunk of stream bytes. Throws std::runtime_error on
  /// malformed input (bad status line / Content-Length).
  void feed(std::string_view bytes);

  /// The peer closed its half of the connection: completes an in-progress
  /// read-until-close response. Throws if a length-framed body is cut short.
  void finish_stream();

  bool mid_message() const {
    return state_ != State::kHeaders || !buffer_.empty();
  }

  /// Total body bytes received for the in-progress (or last) response.
  std::size_t body_received() const { return body_received_; }

 private:
  enum class State { kHeaders, kBody };

  void parse_headers();
  void complete_current();

  Callbacks callbacks_;
  State state_ = State::kHeaders;
  std::string buffer_;
  HttpResponse current_;
  std::optional<std::size_t> body_expected_;  // nullopt = until close
  std::size_t body_received_ = 0;
};

/// Parse the header block of a request (first line + headers). Returns
/// nullopt if the block is incomplete (no CRLFCRLF yet); throws on garbage.
std::optional<HttpRequest> parse_request_head(std::string_view block,
                                              std::size_t* consumed);

}  // namespace dyncdn::http
