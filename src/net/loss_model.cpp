#include "net/loss_model.hpp"

#include <cstdio>
#include <stdexcept>

namespace dyncdn::net {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("BernoulliLoss: p must be in [0,1]");
  }
}

bool BernoulliLoss::should_drop(sim::RngStream& rng) {
  return rng.chance(p_);
}

std::string BernoulliLoss::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "bernoulli(p=%.4f)", p_);
  return buf;
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double p_bad_to_good, double loss_good,
                                       double loss_bad)
    : p_gb_(p_good_to_bad),
      p_bg_(p_bad_to_good),
      loss_good_(loss_good),
      loss_bad_(loss_bad) {
  for (const double v : {p_gb_, p_bg_, loss_good_, loss_bad_}) {
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument(
          "GilbertElliottLoss: probabilities must be in [0,1]");
    }
  }
}

bool GilbertElliottLoss::should_drop(sim::RngStream& rng) {
  // State transition first, then a loss draw in the new state.
  if (bad_) {
    if (rng.chance(p_bg_)) bad_ = false;
  } else {
    if (rng.chance(p_gb_)) bad_ = true;
  }
  return rng.chance(bad_ ? loss_bad_ : loss_good_);
}

double GilbertElliottLoss::average_loss_rate() const {
  const double denom = p_gb_ + p_bg_;
  if (denom == 0.0) return loss_good_;
  const double pi_bad = p_gb_ / denom;
  return pi_bad * loss_bad_ + (1.0 - pi_bad) * loss_good_;
}

std::string GilbertElliottLoss::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "gilbert-elliott(gb=%.3f, bg=%.3f, lg=%.3f, lb=%.3f)", p_gb_,
                p_bg_, loss_good_, loss_bad_);
  return buf;
}

std::unique_ptr<LossModel> make_no_loss() { return std::make_unique<NoLoss>(); }

std::unique_ptr<LossModel> make_bernoulli_loss(double p) {
  return std::make_unique<BernoulliLoss>(p);
}

std::unique_ptr<LossModel> make_gilbert_elliott_loss(double p_gb, double p_bg,
                                                     double loss_good,
                                                     double loss_bad) {
  return std::make_unique<GilbertElliottLoss>(p_gb, p_bg, loss_good, loss_bad);
}

}  // namespace dyncdn::net
