// Testbed + end-to-end integration tests: scenario construction, the full
// measurement pipeline, and validation of the paper's inference claims
// against simulator ground truth (which the analysis pipeline never sees).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "stats/descriptive.hpp"

#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/planetlab.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::testbed {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

ScenarioOptions small_options(cdn::ServiceProfile profile,
                              std::size_t clients = 12,
                              std::uint64_t seed = 11) {
  ScenarioOptions opt;
  opt.profile = std::move(profile);
  opt.client_count = clients;
  opt.seed = seed;
  opt.capture_clients = true;
  opt.capture_payloads = false;
  return opt;
}

ExperimentOptions small_experiment(std::size_t reps = 6) {
  ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

TEST(Planetlab, VantagePointsAreDeterministicAndJittered) {
  const auto a = make_vantage_points(50, 9);
  const auto b = make_vantage_points(50, 9);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].location.lat_deg, b[i].location.lat_deg);
  }
  const auto c = make_vantage_points(50, 10);
  int same_metro = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metro_index == c[i].metro_index) ++same_metro;
  }
  EXPECT_LT(same_metro, 40);
}

TEST(Planetlab, LastMileWithinBounds) {
  for (const auto& vp : make_vantage_points(100, 3, 1.0, 3.0)) {
    EXPECT_GE(vp.last_mile_one_way, SimTime::from_milliseconds(1.0));
    EXPECT_LE(vp.last_mile_one_way, SimTime::from_milliseconds(3.0));
    EXPECT_LT(vp.metro_index, world_metros().size());
  }
}

TEST(Planetlab, MetroWeightingBiasesTowardsCampusHeavyCities) {
  const auto vps = make_vantage_points(2000, 4);
  std::vector<int> counts(world_metros().size(), 0);
  for (const auto& vp : vps) ++counts[vp.metro_index];
  // Heaviest metro (weight 2.5) should clearly beat the lightest (0.4).
  int heavy = 0, light = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (world_metros()[i].weight >= 2.5) heavy += counts[i];
    if (world_metros()[i].weight <= 0.4) light += counts[i];
  }
  EXPECT_GT(heavy, 2 * light);
}

TEST(Planetlab, AccessMixFractionsApproximatelyRespected) {
  VantagePointOptions opt;
  opt.count = 2000;
  opt.seed = 12;
  opt.residential_fraction = 0.3;
  opt.wireless_fraction = 0.2;
  const auto vps = make_vantage_points(opt);
  std::size_t res = 0, wifi = 0;
  for (const auto& vp : vps) {
    if (vp.access == AccessType::kResidential) ++res;
    if (vp.access == AccessType::kWireless) ++wifi;
  }
  EXPECT_NEAR(static_cast<double>(res) / 2000.0, 0.3, 0.04);
  EXPECT_NEAR(static_cast<double>(wifi) / 2000.0, 0.2, 0.04);
}

TEST(Planetlab, ResidentialNodesHaveDslLatency) {
  VantagePointOptions opt;
  opt.count = 300;
  opt.seed = 13;
  opt.residential_fraction = 1.0;
  opt.dsl_extra_min_ms = 15.0;
  opt.dsl_extra_max_ms = 40.0;
  for (const auto& vp : make_vantage_points(opt)) {
    EXPECT_EQ(vp.access, AccessType::kResidential);
    // base 1-3ms + DSL 15-40ms
    EXPECT_GE(vp.last_mile_one_way, SimTime::from_milliseconds(16.0));
    EXPECT_LE(vp.last_mile_one_way, SimTime::from_milliseconds(43.0));
    EXPECT_EQ(vp.access_loss, 0.0);
  }
}

TEST(Planetlab, WirelessNodesHaveLoss) {
  VantagePointOptions opt;
  opt.count = 300;
  opt.seed = 14;
  opt.wireless_fraction = 1.0;
  for (const auto& vp : make_vantage_points(opt)) {
    EXPECT_EQ(vp.access, AccessType::kWireless);
    EXPECT_GT(vp.access_loss, 0.0);
    EXPECT_LE(vp.access_loss, 0.02 + 1e-9);
    EXPECT_NE(vp.name.find("wi-"), std::string::npos);
  }
}

TEST(Planetlab, CampusDefaultHasNoLossOrExtraLatency) {
  for (const auto& vp : make_vantage_points(100, 15)) {
    EXPECT_EQ(vp.access, AccessType::kCampus);
    EXPECT_EQ(vp.access_loss, 0.0);
    EXPECT_LE(vp.last_mile_one_way, SimTime::from_milliseconds(3.0));
  }
}

TEST(Scenario, WirelessVantagePointsGetLossyAccessLinks) {
  ScenarioOptions opt = small_options(cdn::bing_like_profile(), 30, 16);
  opt.wireless_fraction = 1.0;
  Scenario s(opt);
  s.warm_up();
  // A query from a wireless node must still complete (TCP recovers).
  auto& c = s.clients().front();
  cdn::QueryResult result;
  c.query_client->submit(s.default_fe_endpoint(0),
                         search::Keyword{"wifi probe", {}, 100},
                         [&](const cdn::QueryResult& r) { result = r; });
  s.run();
  EXPECT_FALSE(result.failed) << result.failure_reason;
}

TEST(Scenario, BuildsFullTopology) {
  Scenario s(small_options(cdn::google_like_profile()));
  EXPECT_EQ(s.clients().size(), 12u);
  EXPECT_GT(s.fes().size(), 0u);
  EXPECT_LT(s.fes().size(), world_metros().size());  // sparse coverage
  for (const auto& c : s.clients()) {
    EXPECT_LT(c.default_fe, s.fes().size());
    EXPECT_NE(c.node, nullptr);
  }
}

TEST(Scenario, BingCoverageYieldsMoreFesAndLowerRtt) {
  Scenario google(small_options(cdn::google_like_profile(), 30, 2));
  Scenario bing(small_options(cdn::bing_like_profile(), 30, 2));
  EXPECT_GT(bing.fes().size(), google.fes().size());

  auto median_default_rtt = [](Scenario& s) {
    std::vector<double> rtts;
    for (std::size_t i = 0; i < s.clients().size(); ++i) {
      rtts.push_back(
          s.client_fe_rtt(i, s.clients()[i].default_fe).to_milliseconds());
    }
    std::nth_element(rtts.begin(), rtts.begin() + rtts.size() / 2,
                     rtts.end());
    return rtts[rtts.size() / 2];
  };
  EXPECT_LT(median_default_rtt(bing), median_default_rtt(google));
}

TEST(Scenario, DefaultFeIsNearest) {
  Scenario s(small_options(cdn::google_like_profile(), 20, 6));
  for (std::size_t i = 0; i < s.clients().size(); ++i) {
    const auto& c = s.clients()[i];
    const double chosen = net::haversine_miles(
        c.vantage.location, s.fes()[c.default_fe].location);
    for (const auto& fe : s.fes()) {
      EXPECT_LE(chosen,
                net::haversine_miles(c.vantage.location, fe.location) + 1e-6);
    }
  }
}

TEST(Scenario, WarmUpEstablishesBackendConnections) {
  Scenario s(small_options(cdn::google_like_profile(), 4, 3));
  s.warm_up();
  for (const auto& fe : s.fes()) {
    EXPECT_TRUE(fe.server->backend_connected());
  }
  for (const auto& c : s.clients()) {
    EXPECT_TRUE(c.recorder->trace().empty());  // warm-up traffic cleared
  }
}

TEST(Scenario, DistanceSweepPlacesFesAtRequestedDistances) {
  ScenarioOptions opt = small_options(cdn::google_like_profile());
  opt.fe_distance_sweep_miles = std::vector<double>{50, 150, 300};
  Scenario s(opt);
  ASSERT_EQ(s.fes().size(), 3u);
  ASSERT_EQ(s.clients().size(), 3u);
  EXPECT_NEAR(s.fes()[0].distance_to_be_miles, 50, 5);
  EXPECT_NEAR(s.fes()[1].distance_to_be_miles, 150, 10);
  EXPECT_NEAR(s.fes()[2].distance_to_be_miles, 300, 15);
}

TEST(Experiment, BoundaryDiscoveryFindsStaticPortion) {
  Scenario s(small_options(cdn::google_like_profile(), 4, 8));
  s.warm_up();
  const std::size_t boundary = discover_boundary(s, 0, 0);
  // The boundary must cover the HTTP head + full static prefix and stop
  // before keyword-dependent content.
  const std::size_t static_html = s.content().static_prefix().size();
  EXPECT_GE(boundary, static_html);
  EXPECT_LE(boundary, static_html + 256);  // head block is small
}

TEST(Experiment, FixedFeProducesValidTimingsForAllNodes) {
  Scenario s(small_options(cdn::google_like_profile(), 10, 21));
  s.warm_up();
  const ExperimentResult r =
      run_fixed_fe_experiment(s, 0, small_experiment(5));
  ASSERT_EQ(r.per_node.size(), 10u);
  for (const auto& node : r.per_node) {
    EXPECT_EQ(node.samples, 5u) << node.node_name;
    EXPECT_GT(node.rtt_ms, 0.0);
    EXPECT_GT(node.med_dynamic_ms, 0.0);
    EXPECT_GE(node.med_dynamic_ms, node.med_static_ms - 1e-6);
  }
}

TEST(Experiment, InferenceBoundsHoldAgainstGroundTruth) {
  // The paper's central claim, checked against the simulator's hidden
  // truth: for every query, T_delta <= true T_fetch <= T_dynamic.
  Scenario s(small_options(cdn::google_like_profile(), 8, 31));
  s.warm_up();
  const ExperimentResult r =
      run_fixed_fe_experiment(s, 0, small_experiment(4));

  const auto& fetch_log = s.fes()[0].server->fetch_log();
  ASSERT_GT(fetch_log.size(), r.discovery_fetches);

  // With a single FE and interleaved per-node queries we can't match 1:1,
  // so check the aggregate envelope instead: every true fetch must lie
  // within [min T_delta, max T_dynamic], and medians must be ordered.
  // Skip the boundary-discovery fetches — their timings were discarded.
  std::vector<double> deltas, dynamics, truths;
  for (const auto& q : r.all()) {
    deltas.push_back(q.t_delta_ms);
    dynamics.push_back(q.t_dynamic_ms);
  }
  for (std::size_t i = r.discovery_fetches; i < fetch_log.size(); ++i) {
    truths.push_back(fetch_log[i].true_fetch_time().to_milliseconds());
  }
  ASSERT_FALSE(deltas.empty());
  const double max_dynamic = *std::max_element(dynamics.begin(), dynamics.end());
  const double min_delta = *std::min_element(deltas.begin(), deltas.end());
  for (const double t : truths) {
    EXPECT_LE(t, max_dynamic + 1e-6);
    EXPECT_GE(t, min_delta - 1e-6);
  }
  EXPECT_LE(stats::median(deltas), stats::median(truths) + 1e-6);
  EXPECT_GE(stats::median(dynamics), stats::median(truths) - 1e-6);
}

TEST(Experiment, PerQueryBoundsHoldOnSingleClient) {
  // With exactly one client and sequential queries, fetch-log entries map
  // 1:1 onto extracted timings: check the bound per query.
  Scenario s(small_options(cdn::google_like_profile(), 1, 13));
  s.warm_up();
  const ExperimentResult r =
      run_fixed_fe_experiment(s, 0, small_experiment(8));
  const auto timings = r.per_node_timings.at(0);
  const auto& fetch_log = s.fes()[0].server->fetch_log();
  ASSERT_EQ(timings.size(), 8u);
  ASSERT_EQ(fetch_log.size(), r.discovery_fetches + 8u);
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const double truth = fetch_log[r.discovery_fetches + i]
                             .true_fetch_time()
                             .to_milliseconds();
    const core::FetchBounds bounds = core::fetch_bounds(timings[i]);
    EXPECT_LE(bounds.lower_ms, truth + 0.5) << "query " << i;
    EXPECT_GE(bounds.upper_ms, truth - 0.5) << "query " << i;
  }
}

TEST(Experiment, DefaultFeExperimentUsesPerClientFes) {
  Scenario s(small_options(cdn::bing_like_profile(), 10, 17));
  s.warm_up();
  const ExperimentResult r = run_default_fe_experiment(s, small_experiment(3));
  ASSERT_EQ(r.per_node.size(), 10u);
  std::size_t with_samples = 0;
  for (const auto& n : r.per_node) {
    if (n.samples > 0) ++with_samples;
  }
  EXPECT_EQ(with_samples, 10u);
  // Akamai-style coverage: most nodes see low RTT to their default FE.
  std::vector<double> rtts;
  for (const auto& n : r.per_node) rtts.push_back(n.rtt_ms);
  EXPECT_LT(stats::median(rtts), 25.0);
}

/// The caching probe must sit close to the FE: at high client RTT the
/// fetch time hides behind the static-portion delivery, so T_dynamic no
/// longer reflects whether a fetch happened at all.
std::size_t nearest_client(Scenario& s, std::size_t fe_index) {
  std::size_t best = 0;
  sim::SimTime best_rtt = sim::SimTime::infinity();
  for (std::size_t i = 0; i < s.clients().size(); ++i) {
    const sim::SimTime rtt = s.client_fe_rtt(i, fe_index);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = i;
    }
  }
  return best;
}

TEST(Experiment, ZipfWorkloadRunsAndHitsHotKeywords) {
  Scenario s(small_options(cdn::google_like_profile(), 6, 19));
  s.warm_up();
  ExperimentOptions eo;
  eo.reps_per_node = 10;
  eo.interval = 700_ms;
  eo.zipf = ExperimentOptions::ZipfWorkload{200, 1.1};
  const ExperimentResult r = run_fixed_fe_experiment(s, 0, eo);
  std::size_t total = 0;
  for (const auto& n : r.per_node) total += n.samples;
  EXPECT_EQ(total, 60u);
  // Hot (rank <= 3) keywords hit the BE result cache and process at a
  // fraction of the base cost; with Zipf draws a substantial share of
  // queries is hot, so the minimum observed T_proc sits well below the
  // median.
  EXPECT_GT(s.backend().query_log().size(), 60u);  // incl. discovery
  std::vector<double> procs;
  for (const auto& rec : s.backend().query_log()) {
    procs.push_back(rec.t_proc.to_milliseconds());
  }
  EXPECT_LT(stats::min_of(procs), 0.7 * stats::median(procs));
}

TEST(Experiment, ZipfSequencesDifferAcrossClients) {
  Scenario s(small_options(cdn::google_like_profile(), 2, 19));
  s.warm_up();
  ExperimentOptions eo;
  eo.reps_per_node = 12;
  eo.interval = 700_ms;
  eo.zipf = ExperimentOptions::ZipfWorkload{200, 1.0};
  run_fixed_fe_experiment(s, 0, eo);
  // The BE saw both clients' queries; if the two streams were identical
  // the keyword multiset would have every count even.
  std::map<std::string, int> counts;
  for (const auto& rec : s.backend().query_log()) ++counts[rec.keyword];
  bool any_odd = false;
  for (const auto& [kw, n] : counts) {
    if (n % 2 == 1) any_odd = true;
  }
  EXPECT_TRUE(any_odd);
}

TEST(Experiment, CachingExperimentFindsNoCachingByDefault) {
  Scenario s(small_options(cdn::google_like_profile(), 8, 23));
  s.warm_up();
  const CachingExperimentResult r =
      run_caching_experiment(s, nearest_client(s, 0), 0, 25);
  EXPECT_FALSE(r.detection.caching_detected) << r.detection.verdict();
  EXPECT_EQ(r.fe_cache_hits, 0u);
  EXPECT_EQ(r.t_dynamic_same_ms.size(), 25u);
  EXPECT_EQ(r.t_dynamic_distinct_ms.size(), 25u);
}

TEST(Experiment, CachingExperimentDetectsCounterfactualCache) {
  ScenarioOptions opt = small_options(cdn::google_like_profile(), 8, 23);
  opt.fe_cache_results = true;  // the counterfactual FE
  Scenario s(opt);
  s.warm_up();
  const CachingExperimentResult r =
      run_caching_experiment(s, nearest_client(s, 0), 0, 25);
  EXPECT_TRUE(r.detection.caching_detected) << r.detection.verdict();
  EXPECT_GT(r.fe_cache_hits, 0u);
}

TEST(Experiment, CachingInvisibleFromHighRttVantagePoint) {
  // Methodological corollary: run the same counterfactual-cache probe from
  // the *farthest* client — the fetch hides behind delivery and the
  // detector (correctly, given its inputs) cannot see the cache.
  ScenarioOptions opt = small_options(cdn::google_like_profile(), 8, 23);
  opt.fe_cache_results = true;
  Scenario s(opt);
  s.warm_up();
  std::size_t farthest = 0;
  sim::SimTime worst = sim::SimTime::zero();
  for (std::size_t i = 0; i < s.clients().size(); ++i) {
    if (s.client_fe_rtt(i, 0) > worst) {
      worst = s.client_fe_rtt(i, 0);
      farthest = i;
    }
  }
  if (worst < sim::SimTime::milliseconds(120)) {
    GTEST_SKIP() << "no sufficiently distant vantage point in this draw";
  }
  const CachingExperimentResult r =
      run_caching_experiment(s, farthest, 0, 25);
  EXPECT_GT(r.fe_cache_hits, 0u);  // the cache *is* operating...
  EXPECT_FALSE(r.detection.caching_detected)
      << r.detection.verdict();  // ...but is invisible at this RTT
}

TEST(Experiment, FetchFactoringRecoversProcessingTime) {
  ScenarioOptions opt = small_options(cdn::google_like_profile());
  opt.fe_distance_sweep_miles =
      std::vector<double>{40, 100, 180, 260, 340, 420, 500};
  // Deterministic processing so the intercept is sharp.
  opt.profile.processing.load.sigma = 0.02;
  opt.profile.processing.load.load_amplitude = 0.0;
  opt.profile.fe_service.sigma = 0.02;
  opt.profile.fe_service.load_amplitude = 0.0;
  Scenario s(opt);
  s.warm_up();

  search::KeywordCatalog catalog(5);
  const auto keyword = catalog.figure3_keywords().front();
  const FetchFactoringResult r =
      run_fetch_factoring_experiment(s, keyword, 7);

  ASSERT_EQ(r.distances_miles.size(), 7u);
  EXPECT_GT(r.factoring.fit.r_squared, 0.9);
  EXPECT_GT(r.factoring.slope_ms_per_mile(), 0.0);

  // The intercept estimates the distance-independent cost: the true BE
  // processing time plus the FE's own service time (which the paper's
  // reading of the intercept silently absorbs — T_dynamic is measured
  // from t2, so FE request handling is part of it).
  const double expected_intercept =
      opt.profile.processing.base_for(keyword) +
      opt.profile.fe_service.median_ms;
  EXPECT_NEAR(r.factoring.t_proc_ms(), expected_intercept,
              0.35 * expected_intercept);
  // Implied round-trip count must be physically sensible.
  EXPECT_GT(r.factoring.implied_round_trips(), 0.5);
  EXPECT_LT(r.factoring.implied_round_trips(), 12.0);
}

TEST(Experiment, LossyLastMileStillMeasurable) {
  ScenarioOptions opt = small_options(cdn::google_like_profile(), 4, 29);
  opt.client_link_loss = 0.01;
  Scenario s(opt);
  s.warm_up();
  const ExperimentResult r =
      run_fixed_fe_experiment(s, 0, small_experiment(4));
  std::size_t total = 0;
  for (const auto& n : r.per_node) total += n.samples;
  // Loss may invalidate occasional timelines, but most must survive.
  EXPECT_GE(total, 12u);
}

TEST(Experiment, DeterministicAcrossRuns) {
  auto run_once = [] {
    Scenario s(small_options(cdn::google_like_profile(), 4, 77));
    s.warm_up();
    const ExperimentResult r =
        run_fixed_fe_experiment(s, 0, small_experiment(3));
    std::vector<double> meds;
    for (const auto& n : r.per_node) meds.push_back(n.med_dynamic_ms);
    return meds;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dyncdn::testbed
