file(REMOVE_RECURSE
  "CMakeFiles/ext_window_sweep.dir/ext_window_sweep.cpp.o"
  "CMakeFiles/ext_window_sweep.dir/ext_window_sweep.cpp.o.d"
  "ext_window_sweep"
  "ext_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
