file(REMOVE_RECURSE
  "libdyncdn_capture.a"
)
