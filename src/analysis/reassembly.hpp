// TCP stream reassembly from captured packet traces.
//
// Reconstructs the application byte stream a node received on one flow,
// together with per-byte first-arrival times. Works purely from the
// capture records (like the paper's offline tcpdump analysis): duplicate
// and out-of-order segments are handled, retransmitted bytes take their
// earliest successful arrival time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "capture/trace.hpp"
#include "net/address.hpp"

namespace dyncdn::analysis {

/// One reassembled direction of a TCP connection.
class ReassembledStream {
 public:
  /// Segment as captured: stream offset (0 = first app byte), length,
  /// arrival (or send) timestamp.
  struct Segment {
    std::size_t offset;
    std::size_t length;
    sim::SimTime at;
  };

  /// Build a stream directly from capture-order segments (offsets already
  /// normalized so 0 = first application byte). The observability layer
  /// uses this to reconstruct a receive stream from span "rx" events and
  /// run the exact same timeline analysis a packet trace would get.
  static ReassembledStream from_segments(std::vector<Segment> segments);

  /// The reconstructed byte stream *content*. Only populated when the
  /// trace retained payload bytes (content analysis); headers-only traces
  /// still produce correct lengths and timings.
  const std::string& bytes() const { return bytes_; }

  /// Total stream length implied by the captured segments (max extent);
  /// valid even without payload retention.
  std::size_t length() const { return length_; }

  /// Earliest capture time of a packet carrying the byte at `offset`;
  /// nullopt when the offset was never captured.
  std::optional<sim::SimTime> byte_time(std::size_t offset) const;

  /// Earliest capture time of the packet that *completes* delivery of the
  /// prefix [0, offset]: i.e. the time at which all bytes up to `offset`
  /// had arrived. This is what "last packet containing static content"
  /// measures when segments arrive out of order.
  std::optional<sim::SimTime> prefix_complete_time(std::size_t offset) const;

  /// Capture time of the first packet whose payload includes any byte at
  /// or beyond `offset` (the paper's t5 for offset = boundary).
  std::optional<sim::SimTime> first_packet_reaching(std::size_t offset) const;

  /// Capture time of the final data packet of the stream (te).
  std::optional<sim::SimTime> last_packet_time() const;

  /// Largest segment-end offset that is <= `offset` (0 if none). Used to
  /// snap a content-analysis boundary to packet granularity: the common
  /// prefix across responses can overhang a few bytes into the
  /// BE-generated portion (keyword-independent dynamic boilerplate), but
  /// the packet-level events — which is what tcpdump analysis classifies —
  /// split exactly at a segment edge.
  std::size_t snap_to_segment_end(std::size_t offset) const;

  /// Raw segment list (offset-sorted by arrival order preserved), for
  /// temporal clustering.
  const std::vector<Segment>& segments() const { return segments_; }

  bool empty() const { return segments_.empty(); }

 private:
  friend ReassembledStream reassemble(const capture::PacketTrace& trace,
                                      const net::FlowId& flow,
                                      capture::Direction direction);

  std::string bytes_;
  std::size_t length_ = 0;
  std::vector<Segment> segments_;  // in capture order
};

/// Reassemble the bytes the capture node received (direction = kReceived)
/// or sent (kSent) on `flow`. `flow` is from the capture node's
/// perspective (its endpoint first). Sequence numbers are normalized
/// against the SYN of the corresponding sender.
ReassembledStream reassemble(
    const capture::PacketTrace& trace, const net::FlowId& flow,
    capture::Direction direction = capture::Direction::kReceived);

}  // namespace dyncdn::analysis
