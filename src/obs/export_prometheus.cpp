#include "obs/export_prometheus.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"

namespace dyncdn::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string export_prometheus(const MetricsRegistry& registry,
                              const std::string& prefix) {
  std::string out;
  for (const auto& [name, value] : registry.counters()) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " counter\n" + full + " ";
    append_u64(out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " gauge\n" + full + " ";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += buf;
    out.push_back('\n');
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " histogram\n";
    const auto& bounds = Histogram::upper_bounds();
    const auto& buckets = histogram.bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      cumulative += buckets[i];
      // Skip interior empty prefixes? No — Prometheus wants every bucket,
      // but 65 lines x N histograms is noisy; emit only buckets that
      // change the cumulative count, plus the mandatory +Inf line.
      const bool is_inf = i == buckets.size() - 1;
      if (buckets[i] == 0 && !is_inf) continue;
      out += full + "_bucket{le=\"";
      if (is_inf) {
        out += "+Inf";
      } else {
        append_double(out, bounds[i]);
      }
      out += "\"} ";
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += full + "_sum ";
    append_double(out, histogram.sum());
    out.push_back('\n');
    out += full + "_count ";
    append_u64(out, histogram.count());
    out.push_back('\n');
  }
  return out;
}

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path,
                      const std::string& prefix) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = export_prometheus(registry, prefix);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                  body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dyncdn::obs
