#include "core/inference.hpp"

#include <algorithm>
#include <cstdio>

#include "net/geo.hpp"

namespace dyncdn::core {

FetchBounds fetch_bounds(const QueryTimings& q) {
  return FetchBounds{q.t_delta_ms, q.t_dynamic_ms};
}

NodeAggregate aggregate_node(std::string node_name,
                             std::span<const QueryTimings> qs) {
  NodeAggregate a;
  a.node_name = std::move(node_name);
  a.samples = qs.size();
  if (qs.empty()) return a;
  a.rtt_ms = stats::median(extract_rtt(qs));
  a.med_static_ms = stats::median(extract_static(qs));
  a.med_dynamic_ms = stats::median(extract_dynamic(qs));
  a.med_delta_ms = stats::median(extract_delta(qs));
  a.med_overall_ms = stats::median(extract_overall(qs));
  return a;
}

std::string ThresholdEstimate::to_string() const {
  char buf[160];
  if (!found) return "threshold not found (T_delta never collapses)";
  std::snprintf(buf, sizeof(buf),
                "T_delta -> 0 at RTT ~%.0fms; pre-threshold %s",
                threshold_rtt_ms, pre_threshold_fit.to_string().c_str());
  return buf;
}

ThresholdEstimate estimate_delta_threshold(
    std::span<const NodeAggregate> nodes, double zero_eps_ms) {
  ThresholdEstimate est;
  if (nodes.empty()) return est;

  std::vector<const NodeAggregate*> sorted;
  sorted.reserve(nodes.size());
  for (const auto& n : nodes) sorted.push_back(&n);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->rtt_ms < b->rtt_ms; });

  // Threshold: smallest RTT from which onwards T_delta stays collapsed.
  // Scan from the high-RTT end; stop at the first node whose T_delta is
  // clearly nonzero.
  std::size_t first_collapsed = sorted.size();
  for (std::size_t i = sorted.size(); i-- > 0;) {
    if (sorted[i]->med_delta_ms > zero_eps_ms) break;
    first_collapsed = i;
  }
  if (first_collapsed < sorted.size()) {
    est.found = true;
    est.threshold_rtt_ms = sorted[first_collapsed]->rtt_ms;
  }

  // Fit the declining region (all nodes before the collapse).
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < first_collapsed; ++i) {
    xs.push_back(sorted[i]->rtt_ms);
    ys.push_back(sorted[i]->med_delta_ms);
  }
  if (xs.size() >= 2) est.pre_threshold_fit = stats::linear_fit(xs, ys);
  return est;
}

double FetchFactoring::implied_round_trips() const {
  // One mile of separation adds 2/kFiberMilesPerMs ms per round trip.
  const double rtt_per_mile_ms = 2.0 / net::kFiberMilesPerMs;
  return fit.slope / rtt_per_mile_ms;
}

std::string FetchFactoring::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "T_proc ~= %.1fms, slope %.4f ms/mile (C ~= %.1f RTTs), %s",
                t_proc_ms(), slope_ms_per_mile(), implied_round_trips(),
                fit.to_string().c_str());
  return buf;
}

FetchFactoring factor_fetch_time(std::span<const double> distances_miles,
                                 std::span<const double> t_dynamic_ms) {
  FetchFactoring f;
  f.fit = stats::linear_fit(distances_miles, t_dynamic_ms);
  return f;
}

}  // namespace dyncdn::core
