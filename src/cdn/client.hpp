// User search-query emulator.
//
// "We develop an in-house user search query emulator, which performs
// exactly the same functionality as the web-based search box." Each
// submitted query opens a fresh TCP connection (matching the paper's Fig. 2
// timeline, which starts with the three-way handshake), sends a GET,
// consumes the close-framed response and reports application-level
// timestamps. Packet-level timestamps (t3/t4/t5) come from the capture +
// analysis pipeline, not from this class.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/address.hpp"
#include "net/node.hpp"
#include "search/keywords.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::cdn {

/// Application-level observation of one query.
struct QueryResult {
  search::Keyword keyword;
  sim::SimTime start;          // connect() issued (SYN, the paper's tb)
  sim::SimTime connected;      // handshake complete at client
  sim::SimTime request_sent;   // GET written (t1; same instant as connected)
  sim::SimTime first_byte;     // first response byte delivered
  sim::SimTime complete;       // response fully received (te)
  std::size_t body_bytes = 0;  // response body size (static + dynamic)
  int status = 0;
  bool failed = false;         // reset / truncated response / protocol error
  std::string failure_reason;

  /// Overall user-perceived delay including the handshake (te - tb).
  sim::SimTime overall_delay() const { return complete - start; }
};

class QueryClient {
 public:
  using Handler = std::function<void(const QueryResult&)>;

  /// The client owns its node's TCP stack.
  QueryClient(net::Node& node, tcp::TcpConfig tcp_config = {});

  /// Issue one search query to `server`. `handler` fires when the response
  /// completes or the connection fails.
  void submit(net::Endpoint server, const search::Keyword& keyword,
              Handler handler);

  /// Issue `count` repetitions of the same query, `interval` apart
  /// (the paper launches queries every 10 seconds). Handler fires per query.
  void submit_repeated(net::Endpoint server, const search::Keyword& keyword,
                       std::size_t count, sim::SimTime interval,
                       Handler handler);

  net::Node& node() { return node_; }
  tcp::TcpStack& stack() { return stack_; }

  /// Build the GET target for a keyword (q, rank, cls params).
  static std::string target_for(const search::Keyword& keyword);

 private:
  net::Node& node_;
  tcp::TcpStack stack_;
};

}  // namespace dyncdn::cdn
