// FE placement study — the paper's headline trade-off, as a runnable
// example.
//
// A client and a BE data center sit a fixed (one-way) 60ms apart. We slide
// a front-end server along the path: placement fraction f=0 puts the FE at
// the client's doorstep, f=1 at the data center. For each placement the
// client runs repeated queries and we report the measured T_static,
// T_dynamic, T_delta and overall delay.
//
// What to look for: moving the FE closer to the client (smaller f) helps
// only until T_delta hits zero; past that point the end-to-end time is
// ruled by the FE-BE fetch time, which *worsens* as the FE moves away
// from the data center.
#include <cstdio>
#include <memory>
#include <vector>

#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "core/timings.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"
#include "analysis/timeline.hpp"
#include "capture/recorder.hpp"
#include "http/message.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct PlacementResult {
  double t_static_ms, t_dynamic_ms, t_delta_ms, overall_ms;
};

PlacementResult run_placement(double fraction, std::size_t reps) {
  const double total_one_way_ms = 60.0;
  sim::Simulator simulator(7);
  net::Network network(simulator);
  search::ContentModel content(search::ContentProfile{}, "Placement");

  net::Node& client_node = network.add_node("client");
  net::Node& fe_node = network.add_node("fe");
  net::Node& be_node = network.add_node("be");

  net::LinkConfig access;
  access.propagation_delay =
      sim::SimTime::from_milliseconds(total_one_way_ms * fraction + 0.5);
  access.bandwidth_bps = 50e6;
  network.connect(client_node, fe_node, access);

  net::LinkConfig internal;
  internal.propagation_delay = sim::SimTime::from_milliseconds(
      total_one_way_ms * (1.0 - fraction) + 0.5);
  internal.bandwidth_bps = 1e9;
  network.connect(fe_node, be_node, internal);

  const cdn::ServiceProfile profile = cdn::google_like_profile();
  cdn::BackendDataCenter::Config be_cfg;
  be_cfg.processing = profile.processing;
  be_cfg.processing.load.sigma = 0.02;
  be_cfg.tcp = profile.internal_tcp;
  cdn::BackendDataCenter backend(be_node, content, be_cfg);

  cdn::FrontEndServer::Config fe_cfg;
  fe_cfg.backend = backend.fetch_endpoint();
  fe_cfg.service.median_ms = 3.0;
  fe_cfg.service.sigma = 0.02;
  fe_cfg.client_tcp = profile.client_tcp;
  fe_cfg.backend_tcp = profile.internal_tcp;
  cdn::FrontEndServer frontend(fe_node, content, fe_cfg);

  capture::RecorderOptions ro;
  ro.capture_payloads = true;
  capture::TraceRecorder recorder(client_node, simulator, ro);

  cdn::QueryClient client(client_node, profile.client_tcp);
  simulator.run_until(simulator.now() + 3_s);
  recorder.clear();

  const search::Keyword keyword{"placement study example",
                                search::KeywordClass::kGranular, 4000};
  client.submit_repeated(frontend.client_endpoint(), keyword, reps, 1200_ms,
                         [](const cdn::QueryResult&) {});
  simulator.run();

  // Boundary: HTTP head block + static prefix. Known exactly in this
  // self-contained example (the testbed experiments discover it from
  // cross-query content analysis instead).
  http::HttpResponse head;
  head.set_header("Server", content.service_name());
  head.set_header("Connection", "close");
  const std::size_t boundary =
      head.serialize_head().size() + content.static_prefix().size();

  const auto timelines =
      analysis::extract_all_timelines(recorder.trace(), 80, boundary);
  const auto timings = core::timings_from_timelines(timelines);

  PlacementResult r{};
  r.t_static_ms = stats::median(core::extract_static(timings));
  r.t_dynamic_ms = stats::median(core::extract_dynamic(timings));
  r.t_delta_ms = stats::median(core::extract_delta(timings));
  r.overall_ms = stats::median(core::extract_overall(timings));
  return r;
}

}  // namespace

int main() {
  std::printf("FE placement study: client ---60ms--- BE, FE slides along "
              "the path\n\n");
  std::printf("%12s %12s %10s %11s %9s %10s\n", "placement f", "clientRTT",
              "Tstatic", "Tdynamic", "Tdelta", "overall");
  for (const double f : {0.02, 0.2, 0.4, 0.6, 0.8, 0.98}) {
    const PlacementResult r = run_placement(f, 9);
    std::printf("%12.2f %11.0fms %10.1f %11.1f %9.1f %10.1f\n", f,
                2 * (60.0 * f + 0.5), r.t_static_ms, r.t_dynamic_ms,
                r.t_delta_ms, r.overall_ms);
  }
  std::printf(
      "\nReading: pushing the FE toward the client (small f) inflates the\n"
      "FE-BE fetch time (T_delta grows: the fetch no longer hides behind\n"
      "the static delivery) and the overall delay *worsens* — placing FE\n"
      "servers ever closer to users is not helpful below the threshold.\n"
      "Pushing the FE all the way to the data center (f~1) wastes the\n"
      "split-TCP benefit on the client path. The optimum is the placement\n"
      "where T_delta has just reached zero: close enough to the data center\n"
      "that fetching hides behind delivery, and no closer to the user than\n"
      "that — the paper's central trade-off.\n");
  return 0;
}
