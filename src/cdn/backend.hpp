// Back-end data center: generates the dynamic portion of search responses.
//
// Serves two protocols:
//  - the internal fetch protocol on `fetch_port` (persistent connections
//    from FE servers; HTTP requests tagged X-Query-Id, length-framed
//    responses), and
//  - a direct client-facing service on `direct_port` (full static+dynamic
//    page, connection-close framing) used by the no-FE baseline from
//    Pathak et al. [9].
//
// The BE records per-query ground truth (arrival, processing completion,
// bytes) that tests use to validate the paper's inference bounds — the
// analysis pipeline itself never reads these records.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cdn/load_model.hpp"
#include "net/node.hpp"
#include "search/content_model.hpp"
#include "search/keywords.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::cdn {

/// BE query-processing time model: T_proc = per-query cost drawn from a
/// LoadModel whose base scales with query word count, with an optional
/// "hot result cache" discount for very popular keywords.
struct ProcessingModel {
  double base_ms = 30.0;
  double per_word_ms = 8.0;
  LoadModel load;  // load.median_ms unused; base comes from the fields above

  /// Keywords with popularity rank <= this hit the BE's internal result
  /// cache and cost `cached_factor` of the normal time. 0 disables.
  std::size_t result_cache_top_rank = 0;
  double cached_factor = 0.3;

  /// §6 "search as you type": a query whose text strictly extends a
  /// recently processed query costs `correlated_factor` of the normal
  /// time — "the subsequent queries are highly correlated with previous
  /// queries". Off (0) by default: this models the interactive-search
  /// extension, not the paper's baseline measurement target.
  std::size_t correlation_history = 0;
  double correlated_factor = 0.45;

  double base_for(const search::Keyword& k) const {
    double ms = base_ms + per_word_ms * static_cast<double>(k.word_count());
    if (result_cache_top_rank > 0 && k.rank <= result_cache_top_rank) {
      ms *= cached_factor;
    }
    return ms;
  }
};

/// Ground-truth record of one query processed by the BE.
struct BackendQueryRecord {
  std::uint64_t query_id = 0;
  std::string keyword;
  sim::SimTime request_received;
  sim::SimTime processing_done;  // request_received + T_proc
  sim::SimTime t_proc;           // the drawn processing time
  std::size_t dynamic_bytes = 0;
  bool correlated = false;  // benefited from the §6 prefix-correlation path
};

class BackendDataCenter {
 public:
  struct Config {
    std::string name = "be";
    net::Port fetch_port = 9000;
    net::Port direct_port = 8080;
    ProcessingModel processing;
    tcp::TcpConfig tcp;  // stack config (internal links: large windows)
  };

  BackendDataCenter(net::Node& node, const search::ContentModel& content,
                    Config config);

  net::Node& node() { return node_; }
  const Config& config() const { return config_; }
  net::Endpoint fetch_endpoint() const {
    return {node_.id(), config_.fetch_port};
  }
  net::Endpoint direct_endpoint() const {
    return {node_.id(), config_.direct_port};
  }

  const std::vector<BackendQueryRecord>& query_log() const {
    return query_log_;
  }
  std::size_t queries_served() const { return query_log_.size(); }
  std::size_t active_queries() const { return active_; }
  std::size_t active_queries_peak() const { return active_peak_; }
  tcp::TcpStack& stack() { return stack_; }

 private:
  void serve_fetch(tcp::TcpSocket& socket);
  void serve_direct(tcp::TcpSocket& socket);
  /// `trace_parent` is the caller's span id (from X-Trace-Span; 0 = none):
  /// the be.process span nests under the FE's fe.fetch across nodes.
  void process_query(const search::Keyword& keyword, std::uint64_t query_id,
                     std::uint64_t trace_parent,
                     std::function<void(std::string dynamic_body)> done);

  /// True when `text` extends (or repeats) a recently processed query.
  bool is_correlated(const std::string& text) const;
  void remember_query(const std::string& text);

  net::Node& node_;
  const search::ContentModel& content_;
  /// Static portion as a wire buffer for direct-connection serves,
  /// primed on first use and sent zero-copy afterwards.
  net::Buffer static_prefix_buf_;
  Config config_;
  tcp::TcpStack stack_;
  sim::RngStream proc_rng_;
  sim::RngStream content_rng_;
  std::size_t active_ = 0;
  std::size_t active_peak_ = 0;
  std::vector<BackendQueryRecord> query_log_;
  std::deque<std::string> recent_queries_;  // newest at the back
};

}  // namespace dyncdn::cdn
