// Empirical CDFs and two-sample Kolmogorov–Smirnov comparison.
//
// Fig. 6 of the paper plots the RTT CDF per service; the §3 caching
// experiment compares T_dynamic distributions between "same query repeated"
// and "distinct queries" runs — we formalize that comparison with a KS test.
#pragma once

#include <span>
#include <utility>
#include <vector>

namespace dyncdn::stats {

/// Empirical cumulative distribution function over a fixed sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::span<const double> samples);

  /// Fraction of samples <= x (right-continuous step function).
  double at(double x) const;

  /// Inverse CDF (linear-interpolated quantile), q in [0,1].
  double quantile(double q) const;

  /// Evaluate at evenly spaced points between min and max; returns (x, F(x))
  /// pairs suitable for printing a plottable series.
  std::vector<std::pair<double, double>> sample_points(std::size_t count) const;

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Result of a two-sample KS test.
struct KsResult {
  double statistic = 0.0;  // sup |F1 - F2|
  double p_value = 1.0;    // asymptotic Kolmogorov distribution approximation
  /// Conventional alpha=0.05 decision.
  bool distributions_differ() const { return p_value < 0.05; }
};

/// Two-sample Kolmogorov–Smirnov test. Requires both samples non-empty.
KsResult ks_test(std::span<const double> a, std::span<const double> b);

}  // namespace dyncdn::stats
