file(REMOVE_RECURSE
  "CMakeFiles/lossy_wireless_client.dir/lossy_wireless_client.cpp.o"
  "CMakeFiles/lossy_wireless_client.dir/lossy_wireless_client.cpp.o.d"
  "lossy_wireless_client"
  "lossy_wireless_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_wireless_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
