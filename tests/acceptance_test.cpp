// Acceptance suite: the paper's headline claims, each as one assertion-
// backed miniature of the corresponding experiment. `ctest -R acceptance`
// is the one-shot check that the reproduction still reproduces.
//
// Scales are kept small (minutes of simulated time, seconds of wall time);
// the bench binaries run the full-size versions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache_detector.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "stats/cdf.hpp"
#include "stats/descriptive.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn {
namespace {

using namespace dyncdn::sim::literals;

testbed::ExperimentOptions quick_experiment(std::size_t reps) {
  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1100_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

/// Claim 1 (§3, Fig. 3): responses contain a static portion, identical
/// across queries, and a keyword-dependent dynamic portion whose delivery
/// time varies with query type while the static portion's does not.
TEST(Acceptance, StaticPortionExistsAndKeywordEffectIsDynamicOnly) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::bing_like_profile();
  opt.client_count = 1;
  opt.seed = 42;
  testbed::Scenario s(opt);
  s.warm_up();

  const std::size_t boundary = testbed::discover_boundary(s, 0, 0);
  EXPECT_GE(boundary, s.content().static_prefix().size());

  search::KeywordCatalog catalog(42);
  std::vector<double> static_meds, dynamic_meds;
  for (const auto& kw : catalog.figure3_keywords()) {
    auto& client = s.clients().front();
    client.query_client->submit_repeated(s.fe_endpoint(0), kw, 10, 900_ms,
                                         [](const cdn::QueryResult&) {});
    s.run();
    const auto timelines = analysis::extract_all_timelines(
        client.recorder->trace(), 80, boundary);
    client.recorder->clear();
    const auto timings = core::timings_from_timelines(timelines);
    static_meds.push_back(stats::median(core::extract_static(timings)));
    dynamic_meds.push_back(stats::median(core::extract_dynamic(timings)));
  }
  const double static_spread =
      stats::max_of(static_meds) - stats::min_of(static_meds);
  const double dynamic_spread =
      stats::max_of(dynamic_meds) - stats::min_of(dynamic_meds);
  EXPECT_GT(dynamic_spread, 2.0 * static_spread);
}

/// Claim 2 (Eq. 1, the core contribution): the externally measured
/// T_delta/T_dynamic bracket the unobservable FE-BE fetch time.
TEST(Acceptance, FetchTimeBoundsHold) {
  for (const bool bing : {false, true}) {
    testbed::ScenarioOptions opt;
    opt.profile = bing ? cdn::bing_like_profile() : cdn::google_like_profile();
    opt.client_count = 1;
    opt.seed = 7;
    testbed::Scenario s(opt);
    s.warm_up();
    const auto r = testbed::run_fixed_fe_experiment(s, 0, quick_experiment(8));
    const auto& timings = r.per_node_timings.at(0);
    const auto& log = s.fes()[0].server->fetch_log();
    ASSERT_EQ(timings.size(), 8u);
    for (std::size_t i = 0; i < timings.size(); ++i) {
      const double truth = log[r.discovery_fetches + i]
                               .true_fetch_time()
                               .to_milliseconds();
      EXPECT_LE(timings[i].t_delta_ms, truth + 0.5);
      EXPECT_GE(timings[i].t_dynamic_ms, truth - 0.5);
    }
  }
}

/// Claim 3 (Fig. 5 / §4.1): T_delta declines with RTT and collapses beyond
/// a threshold that is larger for the slower-fetch (Bing-like) service.
TEST(Acceptance, DeltaThresholdOrderedAcrossServices) {
  auto threshold = [](cdn::ServiceProfile profile) {
    testbed::ScenarioOptions opt;
    opt.profile = std::move(profile);
    opt.profile.fe_service.sigma = 0.05;
    opt.profile.fe_service.load_amplitude = 0.0;
    opt.profile.processing.load.sigma = 0.05;
    opt.profile.processing.load.load_amplitude = 0.0;
    opt.client_count = 45;
    opt.seed = 55;
    testbed::Scenario s(opt);
    s.warm_up();
    const auto r = testbed::run_fixed_fe_experiment(s, 0, quick_experiment(5));
    return core::estimate_delta_threshold(r.per_node);
  };
  const auto google = threshold(cdn::google_like_profile());
  const auto bing = threshold(cdn::bing_like_profile());
  ASSERT_TRUE(google.found);
  EXPECT_LT(google.threshold_rtt_ms, 120.0);
  // Bing's fetch is so large that within our RTT range its T_delta may
  // never collapse — which *is* the ordering claim; when found it must
  // exceed Google's.
  if (bing.found) {
    EXPECT_GT(bing.threshold_rtt_ms, google.threshold_rtt_ms);
  }
}

/// Claim 4 (Figs. 6-8): the Bing-like FEs are closer to clients, yet the
/// service delivers higher and more variable times.
TEST(Acceptance, ProximityDoesNotImplyPerformance) {
  auto run = [](cdn::ServiceProfile profile) {
    testbed::ScenarioOptions opt;
    opt.profile = std::move(profile);
    opt.client_count = 35;
    opt.seed = 77;
    testbed::Scenario s(opt);
    s.warm_up();
    return testbed::run_default_fe_experiment(s, quick_experiment(4));
  };
  const auto bing = run(cdn::bing_like_profile());
  const auto google = run(cdn::google_like_profile());

  auto column = [](const testbed::ExperimentResult& r,
                   double core::NodeAggregate::* field) {
    std::vector<double> out;
    for (const auto& n : r.per_node) {
      if (n.samples > 0) out.push_back(n.*field);
    }
    return out;
  };
  const double bing_rtt =
      stats::median(column(bing, &core::NodeAggregate::rtt_ms));
  const double google_rtt =
      stats::median(column(google, &core::NodeAggregate::rtt_ms));
  EXPECT_LT(bing_rtt, google_rtt);  // closer...

  const double bing_dyn =
      stats::median(column(bing, &core::NodeAggregate::med_dynamic_ms));
  const double google_dyn =
      stats::median(column(google, &core::NodeAggregate::med_dynamic_ms));
  EXPECT_GT(bing_dyn, google_dyn);  // ...yet slower

  const double bing_overall =
      stats::median(column(bing, &core::NodeAggregate::med_overall_ms));
  const double google_overall =
      stats::median(column(google, &core::NodeAggregate::med_overall_ms));
  EXPECT_GT(bing_overall, google_overall);
}

/// Claim 5 (Fig. 9 / §5): T_dynamic grows linearly with FE-BE distance;
/// the intercept (processing cost) is far larger for the Bing-like
/// service while the slopes are comparable.
TEST(Acceptance, FetchFactoringRecoversTheContrast) {
  auto factor = [](cdn::ServiceProfile profile) {
    testbed::ScenarioOptions opt;
    opt.profile = std::move(profile);
    opt.profile.fe_service.sigma = 0.05;
    opt.profile.fe_service.load_amplitude = 0.0;
    opt.profile.processing.load.sigma = 0.05;
    opt.profile.processing.load.load_amplitude = 0.0;
    opt.seed = 99;
    opt.fe_distance_sweep_miles =
        std::vector<double>{60, 170, 280, 390, 500};
    testbed::Scenario s(opt);
    s.warm_up();
    const search::Keyword kw{"acceptance factoring probe",
                             search::KeywordClass::kGranular, 5000};
    return testbed::run_fetch_factoring_experiment(s, kw, 10).factoring;
  };
  const auto bing = factor(cdn::bing_like_profile());
  const auto google = factor(cdn::google_like_profile());
  EXPECT_GT(bing.fit.r_squared, 0.85);
  EXPECT_GT(google.fit.r_squared, 0.85);
  EXPECT_GT(bing.t_proc_ms(), 3.0 * google.t_proc_ms());
  const double ratio = bing.slope_ms_per_mile() / google.slope_ms_per_mile();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

/// Claim 6 (§3): FE servers do not cache dynamically generated results —
/// and the detector has the power to catch them if they did.
TEST(Acceptance, NoFeCachingAndDetectorHasPower) {
  for (const bool counterfactual : {false, true}) {
    testbed::ScenarioOptions opt;
    opt.profile = cdn::google_like_profile();
    opt.client_count = 10;
    opt.seed = 23;
    opt.fe_cache_results = counterfactual;
    testbed::Scenario s(opt);
    s.warm_up();
    std::size_t probe = 0;
    sim::SimTime best = sim::SimTime::infinity();
    for (std::size_t i = 0; i < s.clients().size(); ++i) {
      if (s.client_fe_rtt(i, 0) < best) {
        best = s.client_fe_rtt(i, 0);
        probe = i;
      }
    }
    const auto r = testbed::run_caching_experiment(s, probe, 0, 20);
    EXPECT_EQ(r.detection.caching_detected, counterfactual)
        << r.detection.verdict();
  }
}

}  // namespace
}  // namespace dyncdn
