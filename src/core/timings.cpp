#include "core/timings.hpp"

#include <algorithm>
#include <cstdio>

namespace dyncdn::core {

std::string QueryTimings::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "rtt=%.2fms Tstatic=%.2fms Tdynamic=%.2fms Tdelta=%.2fms "
                "overall=%.2fms (%zu+%zuB)",
                rtt_ms, t_static_ms, t_dynamic_ms, t_delta_ms, overall_ms,
                static_bytes, dynamic_bytes);
  return buf;
}

std::optional<QueryTimings> timings_from_timeline(
    const analysis::QueryTimeline& tl) {
  if (!tl.valid) return std::nullopt;
  QueryTimings q;
  q.rtt_ms = tl.rtt().to_milliseconds();
  q.t_static_ms = (tl.t4 - tl.t2).to_milliseconds();
  q.t_dynamic_ms = (tl.t5 - tl.t2).to_milliseconds();
  q.t_delta_ms = std::max(0.0, (tl.t5 - tl.t4).to_milliseconds());
  q.overall_ms = (tl.te - tl.tb).to_milliseconds();
  q.static_bytes = tl.boundary;
  q.dynamic_bytes =
      tl.response_bytes > tl.boundary ? tl.response_bytes - tl.boundary : 0;
  return q;
}

std::vector<QueryTimings> timings_from_timelines(
    std::span<const analysis::QueryTimeline> timelines) {
  std::vector<QueryTimings> out;
  out.reserve(timelines.size());
  for (const auto& tl : timelines) {
    if (auto q = timings_from_timeline(tl)) out.push_back(*q);
  }
  return out;
}

namespace {
std::vector<double> extract_field(std::span<const QueryTimings> xs,
                                  double QueryTimings::* field) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(x.*field);
  return out;
}
}  // namespace

std::vector<double> extract_rtt(std::span<const QueryTimings> xs) {
  return extract_field(xs, &QueryTimings::rtt_ms);
}
std::vector<double> extract_static(std::span<const QueryTimings> xs) {
  return extract_field(xs, &QueryTimings::t_static_ms);
}
std::vector<double> extract_dynamic(std::span<const QueryTimings> xs) {
  return extract_field(xs, &QueryTimings::t_dynamic_ms);
}
std::vector<double> extract_delta(std::span<const QueryTimings> xs) {
  return extract_field(xs, &QueryTimings::t_delta_ms);
}
std::vector<double> extract_overall(std::span<const QueryTimings> xs) {
  return extract_field(xs, &QueryTimings::overall_ms);
}

}  // namespace dyncdn::core
