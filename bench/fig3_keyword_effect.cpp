// Figure 3 reproduction: T_static and T_dynamic over 500 repeated samples
// for 4 keywords of different types (popular / granular / complex / mixed)
// against a fixed BingLike FE, smoothed with a window-10 moving median.
//
// Paper shape to reproduce: T_dynamic varies significantly across keyword
// types; T_static is insensitive to the keyword.
//
// Quick mode: 160 samples per keyword. DYNCDN_FULL=1: 500 (paper scale).
#include <cstdio>

#include "bench_util.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "stats/descriptive.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

int main() {
  const std::size_t samples = bench::full_scale() ? 500 : 160;
  bench::banner(
      "Figure 3 — effect of keyword type on T_static / T_dynamic (Bing-like)",
      "4 keyword classes x " + std::to_string(samples) +
          " samples, fixed FE, moving median w=10");

  testbed::ScenarioOptions opt;
  opt.profile = cdn::bing_like_profile();
  opt.client_count = 1;
  opt.seed = 42;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  const std::size_t boundary = testbed::discover_boundary(scenario, 0, 0);
  std::printf("static/dynamic boundary (content analysis): %zu bytes\n",
              boundary);

  search::KeywordCatalog catalog(42);
  const auto keywords = catalog.figure3_keywords();

  struct Series {
    std::string label;
    std::vector<double> t_static, t_dynamic;
  };
  std::vector<Series> series;

  auto& client = scenario.clients().front();
  const net::Endpoint fe = scenario.fe_endpoint(0);
  for (const auto& kw : keywords) {
    client.query_client->submit_repeated(fe, kw, samples, 700_ms,
                                         [](const cdn::QueryResult&) {});
    scenario.run();

    const auto timelines = analysis::extract_all_timelines(
        client.recorder->trace(), 80, boundary);
    client.recorder->clear();
    const auto timings = core::timings_from_timelines(timelines);

    Series s;
    s.label = std::string(search::to_string(kw.cls)) + " (\"" + kw.text +
              "\", " + std::to_string(kw.word_count()) + " words)";
    s.t_static = stats::moving_median(core::extract_static(timings), 10);
    s.t_dynamic = stats::moving_median(core::extract_dynamic(timings), 10);
    series.push_back(std::move(s));
  }

  bench::section("per-keyword summaries (moving-median series)");
  std::printf("%-44s %12s %12s %13s %13s\n", "keyword", "Tstatic med",
              "Tstatic sd", "Tdynamic med", "Tdynamic sd");
  for (const auto& s : series) {
    std::printf("%-44s %12.1f %12.1f %13.1f %13.1f\n", s.label.c_str(),
                stats::median(s.t_static), stats::stddev(s.t_static),
                stats::median(s.t_dynamic), stats::stddev(s.t_dynamic));
  }

  bench::section("sampled series (every 10th sample, ms)");
  std::printf("%8s", "sample");
  for (std::size_t k = 0; k < series.size(); ++k) {
    std::printf("  Tsta[%zu] Tdyn[%zu]", k, k);
  }
  std::printf("\n");
  for (std::size_t i = 0; i < series[0].t_static.size(); i += 10) {
    std::printf("%8zu", i);
    for (const auto& s : series) {
      std::printf(" %8.1f %8.1f", s.t_static[i], s.t_dynamic[i]);
    }
    std::printf("\n");
  }

  // Shape checks mirrored from the paper's text.
  bench::section("shape checks");
  std::vector<double> static_meds, dynamic_meds;
  for (const auto& s : series) {
    static_meds.push_back(stats::median(s.t_static));
    dynamic_meds.push_back(stats::median(s.t_dynamic));
  }
  const double static_spread =
      stats::max_of(static_meds) - stats::min_of(static_meds);
  const double dynamic_spread =
      stats::max_of(dynamic_meds) - stats::min_of(dynamic_meds);
  std::printf("T_static spread across keywords:  %6.1f ms (expect small)\n",
              static_spread);
  std::printf("T_dynamic spread across keywords: %6.1f ms (expect large)\n",
              dynamic_spread);
  std::printf("paper shape %s: T_dynamic keyword-sensitive, T_static not\n",
              dynamic_spread > 2.0 * static_spread ? "HOLDS" : "VIOLATED");
  return 0;
}
