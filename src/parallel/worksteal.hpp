// Chase-Lev work-stealing deque, specialized for a fixed task set.
//
// Each worker owns one deque, pre-filled with a contiguous block of task
// ids before any thread starts (plain writes — publication happens via the
// thread fork). The owner pops from the bottom; idle workers steal from
// the top. Because the campaign's task set is fixed up front there are no
// pushes after the threads start, so the classic dynamic-resize machinery
// is unnecessary: the buffer never wraps and a stolen slot is never
// overwritten. All cross-thread transitions use seq_cst, the textbook
// (conservative) ordering for this algorithm.
//
// Pre-fill convention: push tasks highest-first so the owner pops its block
// in ascending order while thieves take from the opposite (highest) end —
// the two never contend except on the final element, which the CAS on
// `top` arbitrates.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace dyncdn::parallel {

class StealDeque {
 public:
  enum class Steal : std::uint8_t {
    kItem,   // stole a task
    kEmpty,  // deque observed empty
    kLost,   // lost the CAS race; caller may retry
  };

  explicit StealDeque(std::size_t capacity) : buffer_(capacity) {}

  /// Exclusive-only (no concurrent pop/steal): empty the deque so it can be
  /// refilled for another round. The shard runner calls this from a barrier
  /// completion step, which runs while every worker is blocked; the barrier
  /// release publishes the new contents.
  void reset() {
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
  }

  /// Owner-only, before worker threads start.
  void prefill(std::size_t task) {
    buffer_[static_cast<std::size_t>(bottom_.load(std::memory_order_relaxed))] =
        task;
    bottom_.store(bottom_.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
  }

  /// Owner-only: take the most recently pushed task (the low end of the
  /// block under the highest-first pre-fill convention).
  bool pop(std::size_t& out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buffer_[static_cast<std::size_t>(b)];
    if (t == b) {
      // Last element: win it against concurrent thieves via top's CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Thief: take the oldest task (the high end of the block).
  Steal steal(std::size_t& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return Steal::kEmpty;
    // Safe to read before the CAS: no pushes happen after threads start,
    // so this slot can never be overwritten.
    const std::size_t task = buffer_[static_cast<std::size_t>(t)];
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      return Steal::kLost;
    }
    out = task;
    return Steal::kItem;
  }

 private:
  std::vector<std::size_t> buffer_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace dyncdn::parallel
