file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_net.dir/address.cpp.o"
  "CMakeFiles/dyncdn_net.dir/address.cpp.o.d"
  "CMakeFiles/dyncdn_net.dir/geo.cpp.o"
  "CMakeFiles/dyncdn_net.dir/geo.cpp.o.d"
  "CMakeFiles/dyncdn_net.dir/link.cpp.o"
  "CMakeFiles/dyncdn_net.dir/link.cpp.o.d"
  "CMakeFiles/dyncdn_net.dir/loss_model.cpp.o"
  "CMakeFiles/dyncdn_net.dir/loss_model.cpp.o.d"
  "CMakeFiles/dyncdn_net.dir/network.cpp.o"
  "CMakeFiles/dyncdn_net.dir/network.cpp.o.d"
  "CMakeFiles/dyncdn_net.dir/node.cpp.o"
  "CMakeFiles/dyncdn_net.dir/node.cpp.o.d"
  "CMakeFiles/dyncdn_net.dir/packet.cpp.o"
  "CMakeFiles/dyncdn_net.dir/packet.cpp.o.d"
  "libdyncdn_net.a"
  "libdyncdn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
