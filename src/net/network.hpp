// The Network owns nodes and links, computes static shortest-path routes,
// and moves packets hop by hop. Topologies here are small (star/tree), but
// routing is a full Dijkstra so arbitrary graphs work.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : simulator_(simulator) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind shard kernels for conservative parallel simulation. `sims[0]`
  /// must be the base simulator the Network was constructed with, and the
  /// call must precede any add_node(). Every simulator must share the base
  /// seed so named RNG streams are identical in every shard (each stream
  /// is consumed by exactly one component, which lives in exactly one
  /// shard). Serial topologies never call this.
  void set_shards(std::vector<sim::Simulator*> sims);
  std::size_t shard_count() const {
    return shard_sims_.empty() ? 1 : shard_sims_.size();
  }
  sim::Simulator& shard_simulator(std::size_t shard) {
    return shard_sims_.empty() ? simulator_ : *shard_sims_.at(shard);
  }

  /// Create a node. Names must be unique; they name RNG streams and traces.
  /// `shard` selects the kernel the node's components schedule on (always
  /// 0 — the base simulator — unless set_shards() was called first).
  Node& add_node(const std::string& name, GeoPoint location = {},
                 std::uint32_t shard = 0);

  /// Connect two nodes with a bidirectional link (two unidirectional links
  /// sharing `config` but with independent loss-model instances).
  void connect(Node& a, Node& b, const LinkConfig& config);

  /// Connect with asymmetric per-direction configs (a->b, b->a).
  void connect(Node& a, Node& b, const LinkConfig& a_to_b,
               const LinkConfig& b_to_a);

  /// Recompute routing tables. Called automatically on first send after a
  /// topology change; exposed for tests.
  void compute_routes();

  /// Route a packet from `from` towards packet->dst. Drops (with a counter)
  /// if no route exists.
  void route(NodeId from, PacketPtr packet);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Node* find_node(const std::string& name);

  sim::Simulator& simulator() { return simulator_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::uint64_t no_route_drops() const;

  /// Packets that entered the network (route() calls, local delivery
  /// included) and distinct packet ids issued, for the metrics layer.
  /// Both counters are kept per shard / per node so parallel shards never
  /// contend on a shared word; the totals are shard-layout invariant.
  std::uint64_t packets_routed() const;
  std::uint64_t packets_created() const;

  /// Minimum propagation delay over links whose endpoints live in
  /// different shards — the conservative lookahead. SimTime::infinity()
  /// when no such link exists (shards are fully independent); zero means
  /// windows degenerate and the runner must fall back to serial order.
  sim::SimTime cross_shard_lookahead() const { return min_cross_delay_; }

  /// Refresh routing tables if the topology changed. The shard runner
  /// calls this before spawning workers: route() must never recompute
  /// lazily while shards execute in parallel.
  void prepare_run() {
    if (routes_dirty_) compute_routes();
  }

  /// Window-barrier drain: schedule every staged cross-shard packet on its
  /// destination shard at its recorded arrival time. Packets drain sorted
  /// by (arrival, source post time) — the order the serial kernel would
  /// have inserted the delivery events — with (link creation order, FIFO)
  /// as the stable tie-break, so same-timestamp arrivals from different
  /// shards are processed exactly as in a serial run. Runs on the
  /// coordinating thread only. Returns the number of packets flushed.
  std::size_t flush_mailboxes();
  bool mailboxes_empty() const;

  /// Element-wise sum of every directed link's counters.
  LinkStats aggregate_link_stats() const;

  /// aggregate_link_stats() with delivery re-expressed at ARRIVAL time for
  /// every link. Cross-shard links count packets_delivered/bytes_delivered
  /// at transmit (the destination shard must never touch the source link's
  /// state), so the raw aggregate depends on which links straddle the
  /// shard cut while packets are in flight. This view subtracts the
  /// transmit-time cross-shard counts and adds back arrivals that have
  /// actually executed, making mid-run snapshots (the time-series sampler)
  /// identical at every shard layout. At quiescence the two views agree.
  /// Call only while no shard worker is running (e.g. at a tick barrier).
  LinkStats sampled_link_stats() const;

  /// One-way shortest-path propagation delay between two nodes (sum of link
  /// propagation delays; ignores bandwidth). Infinity if unreachable.
  sim::SimTime path_delay(NodeId a, NodeId b) const;

  /// Link carrying traffic from `a` on the first hop toward `b`, or null.
  Link* first_hop_link(NodeId a, NodeId b);

 private:
  struct Edge {
    NodeId to;
    std::unique_ptr<Link> link;
  };

  /// Staged cross-shard packets for one directed link, in transmit order.
  struct Mailbox {
    struct Staged {
      sim::SimTime arrival;  // delivery time on the destination clock
      sim::SimTime posted;   // source-shard clock when the link posted it
      PacketPtr packet;
    };
    Node* dst = nullptr;
    sim::Simulator* dst_sim = nullptr;
    std::vector<Staged> staged;
    /// Transmit-time delivery counts for this directed link (the amounts
    /// its Link::stats() recorded early). Written only by the source
    /// shard's thread via the post closure.
    std::uint64_t posted_packets = 0;
    std::uint64_t posted_bytes = 0;
  };

  /// Cross-shard arrivals that have executed, indexed by destination
  /// shard: each slot is written only by that shard's worker thread.
  /// Padded so neighbouring shards never share a cache line.
  struct alignas(64) ShardArrivals {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  sim::Simulator& simulator_;
  std::vector<sim::Simulator*> shard_sims_;  // empty = serial (base only)
  std::vector<std::unique_ptr<Node>> nodes_;  // index = id - 1
  std::unordered_map<std::string, NodeId> by_name_;
  /// Outgoing edges indexed by node id value (ids are 1-based; slot 0 is
  /// unused). Dense: node ids are issued contiguously by add_node().
  std::vector<std::vector<Edge>> adjacency_;
  /// Every directed link in creation order — the flat iteration order for
  /// aggregate_link_stats(), which runs on the per-tick sampling path.
  std::vector<const Link*> all_links_;
  /// Flat next-hop matrix: next_hop_[src * stride + dst] is the link that
  /// carries traffic from src toward dst (null = no route), with
  /// stride = nodes_.size() + 1. Rebuilt wholesale by compute_routes();
  /// route() is then one multiply-add and a load.
  std::vector<Link*> next_hop_;
  std::size_t next_hop_stride_ = 0;
  /// Dijkstra scratch reused across sources and recomputes, so a route
  /// rebuild allocates nothing at steady state. compute_routes() never
  /// runs concurrently with itself (prepare_run() precedes shard workers).
  std::vector<std::int64_t> dijkstra_dist_;
  std::vector<std::pair<std::int64_t, std::uint32_t>> dijkstra_heap_;
  /// One mailbox per cross-shard directed link, in creation order.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<ShardArrivals> arrivals_by_shard_;
  sim::SimTime min_cross_delay_ = sim::SimTime::infinity();
  bool routes_dirty_ = true;
  /// Indexed by the source node's shard: parallel route() calls from
  /// different shards each mutate their own slot, never a shared word.
  std::vector<std::uint64_t> no_route_by_shard_ = {0};
  std::vector<std::uint64_t> routed_by_shard_ = {0};

  friend class Node;
};

}  // namespace dyncdn::net
