#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace dyncdn::sim {

std::string SimTime::to_string() const {
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(ns_));
  if (is_infinite()) {
    return "inf";
  }
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_milliseconds());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_microseconds());
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace dyncdn::sim
