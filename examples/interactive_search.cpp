// Interactive search example (§6): watch a user type a query and see one
// connection per keystroke, the per-keystroke response time, and the BE's
// prefix-correlation speedup kick in.
//
//   $ ./examples/interactive_search "computer science department"
#include <cstdio>
#include <string>

#include "cdn/interactive.hpp"
#include "search/keywords.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;

int main(int argc, char** argv) {
  const std::string text =
      argc > 1 ? argv[1] : "computer science department";

  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.profile.processing.correlation_history = 64;
  opt.profile.last_mile_min_ms = 2.0;
  opt.profile.last_mile_max_ms = 2.0;
  opt.seed = 12;
  opt.fe_distance_sweep_miles = std::vector<double>{250.0};
  opt.capture_clients = false;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  auto& client = scenario.clients().front();
  cdn::InteractiveTyper typer(*client.query_client, cdn::TypingOptions{}, 3);

  std::printf("typing \"%s\" — one query per keystroke:\n\n", text.c_str());
  cdn::TypingSessionResult session;
  typer.type(scenario.fe_endpoint(0),
             search::Keyword{text, search::KeywordClass::kGranular, 1200},
             [&](const cdn::TypingSessionResult& s) { session = s; });
  scenario.run();

  const auto& be_log = scenario.backend().query_log();
  std::printf("%-32s %10s %10s %12s\n", "prefix", "response", "T_proc",
              "correlated");
  for (std::size_t i = 0; i < session.keystrokes.size(); ++i) {
    const auto& ks = session.keystrokes[i];
    const bool have_be = i < be_log.size();
    std::printf("%-32s %8.1fms %8.1fms %12s\n",
                ("\"" + ks.prefix + "\"").c_str(),
                ks.result.overall_delay().to_milliseconds(),
                have_be ? be_log[i].t_proc.to_milliseconds() : 0.0,
                have_be && be_log[i].correlated ? "yes" : "no");
  }
  std::printf("\n%zu keystrokes -> %zu TCP connections; after the first "
              "query, every\nextension reuses the BE's previous work "
              "(lower T_proc), as §6 observes.\n",
              session.keystrokes.size(), session.connections);
  return 0;
}
