file(REMOVE_RECURSE
  "CMakeFiles/fig8_overall_delay.dir/fig8_overall_delay.cpp.o"
  "CMakeFiles/fig8_overall_delay.dir/fig8_overall_delay.cpp.o.d"
  "fig8_overall_delay"
  "fig8_overall_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overall_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
