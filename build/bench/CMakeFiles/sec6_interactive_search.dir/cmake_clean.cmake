file(REMOVE_RECURSE
  "CMakeFiles/sec6_interactive_search.dir/sec6_interactive_search.cpp.o"
  "CMakeFiles/sec6_interactive_search.dir/sec6_interactive_search.cpp.o.d"
  "sec6_interactive_search"
  "sec6_interactive_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6_interactive_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
