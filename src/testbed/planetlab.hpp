// Synthetic PlanetLab-like measurement testbed.
//
// The paper ran its emulator on 200-250 globally distributed PlanetLab
// nodes, mostly on university campus networks. We synthesize an equivalent
// vantage-point catalog: ~40 world metros (weighted toward North America
// and Europe, like PlanetLab), with per-node geographic jitter and a
// last-mile latency draw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geo.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace dyncdn::testbed {

struct Metro {
  std::string name;
  net::GeoPoint location;
  /// Relative likelihood of hosting PlanetLab nodes (campus density).
  double weight = 1.0;
};

/// The built-in world metro list (~40 entries).
const std::vector<Metro>& world_metros();

/// Access-network class of a vantage point. PlanetLab nodes sit on campus
/// networks; the paper's reviewers (and its §6) note that residential DSL
/// (interleaving adds ~30 ms) and wireless users see very different last
/// miles. Residential/wireless vantage points let experiments answer that
/// critique.
enum class AccessType : std::uint8_t {
  kCampus,      // PlanetLab-like: low, clean
  kResidential, // DSL: +15-40ms one-way, clean
  kWireless,    // WiFi/3G-ish: moderate extra latency, bursty loss
};

const char* to_string(AccessType a);

struct VantagePoint {
  std::string name;        // "pl-node-17.minneapolis"
  std::size_t metro_index; // into world_metros()
  net::GeoPoint location;  // metro location + jitter
  AccessType access = AccessType::kCampus;
  /// One-way access-network latency of this node.
  sim::SimTime last_mile_one_way;
  /// Per-packet loss on the access link (wireless nodes).
  double access_loss = 0.0;
};

struct VantagePointOptions {
  std::size_t count = 60;
  std::uint64_t seed = 1;
  /// Campus access latency bounds (one-way ms).
  double last_mile_min_ms = 1.0;
  double last_mile_max_ms = 3.0;
  /// Fractions of non-campus vantage points (rest is campus).
  double residential_fraction = 0.0;
  double wireless_fraction = 0.0;
  /// Residential DSL adds this much one-way latency (uniform range).
  double dsl_extra_min_ms = 15.0;
  double dsl_extra_max_ms = 40.0;
  /// Wireless adds latency and loss.
  double wireless_extra_min_ms = 5.0;
  double wireless_extra_max_ms = 25.0;
  double wireless_loss_min = 0.002;
  double wireless_loss_max = 0.02;
};

/// Synthesize vantage points. Deterministic in `options.seed`.
std::vector<VantagePoint> make_vantage_points(const VantagePointOptions& options);

/// Backwards-compatible campus-only helper.
std::vector<VantagePoint> make_vantage_points(std::size_t count,
                                              std::uint64_t seed,
                                              double last_mile_min_ms = 1.0,
                                              double last_mile_max_ms = 3.0);

}  // namespace dyncdn::testbed
