# Empty compiler generated dependencies file for interactive_search.
# This may be replaced when dependencies are built.
