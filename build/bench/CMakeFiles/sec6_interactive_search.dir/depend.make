# Empty dependencies file for sec6_interactive_search.
# This may be replaced when dependencies are built.
