// Per-query span tracing on the simulation clock.
//
// A TraceSession collects SpanRecords: named intervals with parent/child
// links, a replica id, typed args, and point-in-time events. Timestamps
// are sim::SimTime values passed in explicitly by the instrumentation
// site — the session never reads a clock, so it works identically inside
// any replica's Simulator and in unit tests.
//
// The span taxonomy maps onto the paper's Fig. 2 query timeline: a root
// `query` span per submitted query, a child `tcp.flow` span whose events
// carry the wire-level stamps (syn=tb, synack, tx_data=t1, ack_data=t2,
// rx segments for t3..te), and server-side `fe.*`/`be.*` spans linked
// across nodes via the X-Trace-Span request header. See
// docs/OBSERVABILITY.md for the full mapping.
//
// Cost model: when disabled(), begin_span returns the null id and every
// other call is a cheap early-out; instrumentation sites additionally gate
// on obs::active_trace() so a disabled session costs one pointer test per
// site. Compile with -DDYNCDN_OBS=0 to remove the sites entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace dyncdn::obs {

class RingBuffer;

using SpanId = std::uint64_t;  // 0 = "no span"
inline constexpr SpanId kNoSpan = 0;

// Typed argument value: int, double, or string.
struct ArgValue {
  enum class Type : std::uint8_t { kInt, kDouble, kString };
  Type type = Type::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;

  static ArgValue of(std::int64_t v) {
    ArgValue a;
    a.type = Type::kInt;
    a.i = v;
    return a;
  }
  static ArgValue of(double v) {
    ArgValue a;
    a.type = Type::kDouble;
    a.d = v;
    return a;
  }
  static ArgValue of(std::string v) {
    ArgValue a;
    a.type = Type::kString;
    a.s = std::move(v);
    return a;
  }
};

struct Arg {
  std::string key;
  ArgValue value;
};

// A point-in-time marker inside a span (e.g. "synack", "rx").
struct SpanEvent {
  std::string name;
  sim::SimTime at;
  std::vector<Arg> args;
};

struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::uint32_t replica = 0;
  std::string name;
  std::string category;
  sim::SimTime start = sim::SimTime::zero();
  sim::SimTime end = sim::SimTime::zero();
  bool open = true;  // end_span not yet called
  std::vector<Arg> args;
  std::vector<SpanEvent> events;
};

class TraceSession {
 public:
  // ring_capacity_bytes > 0 additionally feeds every closed span into a
  // bounded binary flight recorder (see ring.hpp).
  explicit TraceSession(std::size_t ring_capacity_bytes = 0);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // All mutators are no-ops (returning kNoSpan) while disabled, and
  // no-ops when given kNoSpan, so call sites can stay unconditional.
  SpanId begin_span(sim::SimTime at, std::string_view name,
                    std::string_view category, SpanId parent = kNoSpan);
  void end_span(SpanId id, sim::SimTime at);
  void add_arg(SpanId id, std::string_view key, ArgValue value);
  void add_event(SpanId id, std::string_view name, sim::SimTime at,
                 std::vector<Arg> args = {});

  const std::vector<SpanRecord>& spans() const { return spans_; }
  const SpanRecord* find(SpanId id) const;
  std::size_t open_span_count() const;

  // Absorb another session's spans (consuming it), remapping ids so they
  // stay unique and stamping `replica_id` on the absorbed records. Called
  // by the experiment merge step in shard-index order, which makes the
  // merged span list deterministic at any thread count.
  void merge_from(TraceSession&& other, std::uint32_t replica_id);

  // Start issuing ids from `base + 1`. Parallel shard sessions within ONE
  // scenario carve disjoint ranges (shard s gets base s << 40) so spans
  // created on different shards can cross-reference (X-Trace-Span headers)
  // without remapping. Must be called before any begin_span.
  void set_id_base(SpanId base) {
    id_base_ = base;
    next_id_ = base + 1;
  }

  // Append a same-run shard session's spans WITHOUT remapping — ids are
  // already unique thanks to disjoint bases, so cross-shard parent links
  // stay valid — and without stamping replica (the shards are one
  // simulation, not replicas). `other` stays usable and keeps its id
  // counter; its span list is emptied. Absorbing in shard-index order
  // keeps the merged list deterministic at any thread count.
  void absorb_shard(TraceSession& other);

  RingBuffer* ring() const { return ring_.get(); }

 private:
  SpanRecord* find_mutable(SpanId id);

  bool enabled_ = true;
  SpanId id_base_ = 0;
  SpanId next_id_ = 1;
  std::vector<SpanRecord> spans_;
  std::unique_ptr<RingBuffer> ring_;
};

/// Fixed-width (20-digit zero-padded) decimal encoding of a span id for
/// on-wire headers: request byte counts — and therefore simulated TCP
/// timing — stay identical no matter how ids are numbered (serial sessions
/// count from 1; shard sessions carve huge disjoint ranges).
std::string span_id_header(SpanId id);

}  // namespace dyncdn::obs
