// Trace (de)serialization — the text debug/interop format.
//
// The paper's workflow is offline: capture on the vantage points, analyze
// later. These helpers persist a PacketTrace to a line-oriented text format
// and parse it back, so captures can be written to disk by one process and
// analyzed by another (see examples/offline_analysis). The text form is
// grep-able and diff-able but ~4-5x larger than the binary .dtrc format
// (capture/spill.hpp), which is the production path; `trace_inspect
// convert` translates between the two, and load_trace transparently reads
// either (it sniffs the .dtrc magic).
//
// Format (one record per line, '#' comments, header line first):
//   # dyncdn-trace v1 node=<id>
//   <ns> <snd|rcv> <src> <sport> <dst> <dport> <seq> <ack> <win>
//       <flags> <paylen> [<hex payload>]      (one line per record)
// Flags is a subset of "SAFR" ('.' when none). Payload hex is present only
// when the record retained bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "capture/trace.hpp"

namespace dyncdn::capture {

/// Serialize to the text format. `with_payloads` controls whether retained
/// payload bytes are written (they dominate file size).
std::string serialize_trace(const PacketTrace& trace,
                            bool with_payloads = true);

/// Parse a serialized text trace. Throws std::runtime_error with the
/// 1-based line number and offending token on any malformed input
/// (ragged fields, bad numbers/flags/direction, negative timestamps,
/// truncated or mismatched hex payloads, duplicate headers).
PacketTrace parse_trace(std::string_view text);

/// File convenience wrappers (throw std::runtime_error on I/O failure).
void save_trace(const PacketTrace& trace, const std::string& path,
                bool with_payloads = true);
/// Loads either format: .dtrc files (sniffed by magic) are decoded via
/// capture/spill.hpp, anything else is parsed as the text format.
PacketTrace load_trace(const std::string& path);

}  // namespace dyncdn::capture
