file(REMOVE_RECURSE
  "CMakeFiles/ext_load_sweep.dir/ext_load_sweep.cpp.o"
  "CMakeFiles/ext_load_sweep.dir/ext_load_sweep.cpp.o.d"
  "ext_load_sweep"
  "ext_load_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
