file(REMOVE_RECURSE
  "CMakeFiles/fig7_default_fe.dir/fig7_default_fe.cpp.o"
  "CMakeFiles/fig7_default_fe.dir/fig7_default_fe.cpp.o.d"
  "fig7_default_fe"
  "fig7_default_fe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_default_fe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
