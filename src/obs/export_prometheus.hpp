// Prometheus text exposition format (version 0.0.4) for MetricsRegistry.
//
// Counters export as `<name> <value>`, gauges likewise, histograms as the
// canonical `<name>_bucket{le="..."}` / `_sum` / `_count` triple. Output
// is fully deterministic: names iterate in sorted order and numbers are
// printed with a fixed format, so two registries with identical contents
// produce byte-identical dumps (the thread-count determinism test relies
// on this).
#pragma once

#include <string>

namespace dyncdn::obs {

class MetricsRegistry;

std::string export_prometheus(const MetricsRegistry& registry,
                              const std::string& prefix = "dyncdn_");

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path,
                      const std::string& prefix = "dyncdn_");

}  // namespace dyncdn::obs
