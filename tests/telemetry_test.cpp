// Time-resolved telemetry suite: the sim-time metric series must export
// byte-identically at any replica-thread × sim-shard layout, per-query
// attribution must satisfy the exact telescoping identity against the
// capture-derived timings, the flight recorder's triggers must be
// reproducible, and the supporting pieces (log-bucket quantile
// interpolation, Prometheus HELP lines) behave as documented.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/span_attribution.hpp"
#include "cdn/deployment.hpp"
#include "obs/attribution.hpp"
#include "obs/export_prometheus.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/timeseries.hpp"
#include "search/keywords.hpp"
#include "sim/time.hpp"
#include "testbed/experiment.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn {
namespace {

using namespace dyncdn::sim::literals;

// ---------------------------------------------------------------------------
// Histogram::quantile — log-bucket (geometric) interpolation.
// ---------------------------------------------------------------------------

TEST(HistogramQuantile, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.observe(7.25);
  // Every quantile of a single observation clamps to that observation.
  EXPECT_EQ(h.quantile(0.0), 7.25);
  EXPECT_EQ(h.quantile(0.5), 7.25);
  EXPECT_EQ(h.quantile(0.999), 7.25);
}

TEST(HistogramQuantile, GeometricInterpolationInsideOneBucket) {
  // Pick a bucket with a positive lower edge and drop two samples just
  // inside it; the median then interpolates geometrically between the
  // edges: lo * (hi/lo)^0.5 = sqrt(lo*hi).
  const auto& bounds = obs::Histogram::upper_bounds();
  ASSERT_GT(bounds.size(), 12u);
  const double lo = bounds[10];
  const double hi = bounds[11];
  ASSERT_GT(lo, 0.0);
  ASSERT_GT(hi, lo);
  obs::Histogram h;
  h.observe(lo * 1.0001);  // bucket 11: value > lo, <= hi
  h.observe(hi * 0.9999);
  const double expected = std::sqrt(lo * hi);
  EXPECT_NEAR(h.quantile(0.5), expected, expected * 1e-9);
}

TEST(HistogramQuantile, MonotoneAndClampedToObservedRange) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 0.37);
  double prev = h.quantile(0.0);
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // The median of 0.37..370 must land near the middle, not at an edge.
  EXPECT_GT(h.quantile(0.5), 100.0);
  EXPECT_LT(h.quantile(0.5), 260.0);
}

TEST(HistogramQuantile, MergeMatchesCombinedObservations) {
  obs::Histogram a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double va = 1.0 + (i % 97) * 3.1;
    const double vb = 400.0 + (i % 53) * 7.7;
    a.observe(va);
    b.observe(vb);
    all.observe(va);
    all.observe(vb);
  }
  a.merge(b);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Prometheus HELP lines + exposition-format escaping.
// ---------------------------------------------------------------------------

TEST(PrometheusHelp, KnownMetricsCarryHelpText) {
  EXPECT_FALSE(obs::metric_help("fe_queries_handled").empty());
  EXPECT_FALSE(obs::metric_help("query_t_dynamic_ms").empty());
  EXPECT_TRUE(obs::metric_help("no_such_metric_xyz").empty());

  obs::MetricsRegistry reg;
  reg.add("fe_queries_handled", 3);
  const std::string text = obs::export_prometheus(reg);
  EXPECT_NE(text.find("# HELP dyncdn_fe_queries_handled "), std::string::npos);
  EXPECT_NE(text.find("# TYPE dyncdn_fe_queries_handled counter"),
            std::string::npos);
  // HELP precedes TYPE, per the exposition format.
  EXPECT_LT(text.find("# HELP dyncdn_fe_queries_handled"),
            text.find("# TYPE dyncdn_fe_queries_handled"));
}

TEST(PrometheusHelp, EscapingRules) {
  EXPECT_EQ(obs::escape_help("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(obs::escape_help("plain"), "plain");
  // Label values additionally escape double quotes.
  EXPECT_EQ(obs::escape_label_value("say \"hi\"\n"), "say \\\"hi\\\"\\n");
}

// ---------------------------------------------------------------------------
// TimeSeriesSampler — padding, cumulative deltas, merge, eviction.
// ---------------------------------------------------------------------------

TEST(TimeSeries, PadsMissingChannelsAndComputesCumulativeDeltas) {
  obs::TimeSeriesSampler ts(1'000'000);  // 1ms ticks
  ts.begin_tick(0);
  ts.record("depth", 3.0);
  ts.record_cumulative("delivered", 10.0);
  ts.end_tick();
  ts.begin_tick(1);
  ts.record_cumulative("delivered", 25.0);  // delta 15
  ts.end_tick();                            // "depth" padded with 0
  ts.begin_tick(2);
  ts.record("depth", 1.0);
  ts.end_tick();  // "delivered" padded with 0

  const std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("tick,time_ms,delivered,depth"), std::string::npos);
  EXPECT_EQ(ts.sample_count(), 3u);
  // Row values: delivered = [10, 15, 0], depth = [3, 0, 1].
  EXPECT_NE(csv.find("0,0,10,3"), std::string::npos);
  EXPECT_NE(csv.find("1,1,15,0"), std::string::npos);
  EXPECT_NE(csv.find("2,2,0,1"), std::string::npos);
}

TEST(TimeSeries, MergeAlignsByAbsoluteTickAndIsOrderIndependent) {
  const auto make = [](std::uint64_t first_tick, double base) {
    obs::TimeSeriesSampler ts(1'000'000);
    for (std::uint64_t t = first_tick; t < first_tick + 3; ++t) {
      ts.begin_tick(t);
      ts.record("v", base + static_cast<double>(t));
      ts.end_tick();
    }
    return ts;
  };
  obs::TimeSeriesSampler ab = make(0, 1.0);
  ab.merge(make(2, 10.0));  // overlaps at tick 2 only
  obs::TimeSeriesSampler ba = make(2, 10.0);
  ba.merge(make(0, 1.0));
  EXPECT_EQ(ab.to_csv(), ba.to_csv());
  EXPECT_EQ(ab.to_json(false), ba.to_json(false));
  EXPECT_EQ(ab.sample_count(), 5u);  // ticks 0..4
}

TEST(TimeSeries, EvictsOldestPastBound) {
  obs::TimeSeriesSampler ts(1'000'000, /*max_samples=*/4);
  for (std::uint64_t t = 0; t < 6; ++t) {
    ts.begin_tick(t);
    ts.record("v", static_cast<double>(t));
    ts.end_tick();
  }
  EXPECT_EQ(ts.sample_count(), 4u);
  EXPECT_EQ(ts.ticks().front(), 2u);
  EXPECT_EQ(ts.ticks().back(), 5u);
}

TEST(TimeSeries, RuntimeChannelsStayOutOfDeterministicExports) {
  obs::TimeSeriesSampler ts(1'000'000);
  ts.begin_tick(0);
  ts.record("app", 1.0);
  ts.record("pdes_stall_wall_ms", 9.0, /*runtime=*/true);
  ts.end_tick();
  EXPECT_EQ(ts.to_csv().find("pdes_stall_wall_ms"), std::string::npos);
  EXPECT_EQ(ts.to_json(false).find("pdes_stall_wall_ms"), std::string::npos);
  EXPECT_NE(ts.to_json(true).find("pdes_stall_wall_ms"), std::string::npos);
  const auto names = ts.channel_names(false);
  EXPECT_EQ(names.size(), 1u);
  EXPECT_EQ(names.front(), "app");
}

// ---------------------------------------------------------------------------
// Campaign-level determinism: the deterministic time-series exports must
// be byte-identical at every replica-thread count and sim-shard layout.
// ---------------------------------------------------------------------------

testbed::ScenarioOptions telemetry_scenario(std::size_t sim_shards) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 4;
  opt.seed = 4242;
  opt.sim_shards = sim_shards;
  opt.ts_interval = 100_ms;
  return opt;
}

testbed::ExperimentOptions telemetry_experiment() {
  testbed::ExperimentOptions eo;
  eo.reps_per_node = 2;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

TEST(TimeSeriesDeterminism, ByteIdenticalAcrossThreadsAndShards) {
  const auto eo = telemetry_experiment();
  std::string ref_csv, ref_json;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 2u, 4u}) {
      testbed::ReplicaPlan plan;  // one replica per vantage point
      plan.executor.threads = threads;
      const testbed::ExperimentResult result =
          testbed::run_fixed_fe_experiment(telemetry_scenario(shards), 0, eo,
                                           plan);
      ASSERT_GT(result.timeseries.sample_count(), 0u);
      const std::string csv = result.timeseries.to_csv();
      const std::string json = result.timeseries.to_json(false);
      if (ref_csv.empty()) {
        ref_csv = csv;
        ref_json = json;
        // The series must actually carry application channels, or the
        // byte-compare below is vacuous.
        EXPECT_NE(csv.find("net_packets_in_flight"), std::string::npos);
        EXPECT_NE(csv.find("link_packets_delivered"), std::string::npos);
      } else {
        EXPECT_EQ(csv, ref_csv) << shards << " shards, " << threads
                                << " threads";
        EXPECT_EQ(json, ref_json) << shards << " shards, " << threads
                                  << " threads";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Attribution — exact telescoping identity on a real traced campaign.
// ---------------------------------------------------------------------------

// The JSON schema is stable: every component appears even with zero
// samples (attr_dns_ms never fires in a fixed-FE campaign, yet bench_diff
// and plotting scripts rely on the key existing).
TEST(Attribution, AllComponentsAppearInJsonEvenWithZeroSamples) {
  const obs::QueryAttribution attribution;
  const std::string json = attribution.to_json();
  for (const std::string& name : obs::QueryAttribution::component_names()) {
    EXPECT_NE(json.find("\"" + name + "\":{\"count\":0"), std::string::npos)
        << name;
  }
}

#if DYNCDN_OBS
TEST(Attribution, TelescopingIdentityHoldsExactly) {
  testbed::ScenarioOptions opt = telemetry_scenario(1);
  opt.enable_tracing = true;
  testbed::Scenario scenario(opt);
  scenario.warm_up();
  const testbed::ExperimentResult result =
      testbed::run_fixed_fe_experiment(scenario, 0, telemetry_experiment());

  EXPECT_GT(result.attribution.queries(), 0u);
  EXPECT_EQ(result.attribution.reconcile_failures(), 0u);

  // Re-walk the span forest and check the identity per query in integer
  // nanoseconds: (uplink + fe_wait + fe_fetch + delivery) - ack ==
  // t5 - t2 == T_dynamic, with absent anchors collapsed onto their
  // predecessor.
  ASSERT_NE(result.trace, nullptr);
  const analysis::SpanAttributionResult walked =
      analysis::extract_attribution(result.trace->spans(), result.boundary);
  ASSERT_EQ(walked.queries.size(), result.attribution.queries());
  for (const analysis::AttributedQuery& q : walked.queries) {
    ASSERT_TRUE(q.ok);
    const obs::QueryAttribution::Sample& s = q.sample;
    const std::int64_t a0 = s.t1;
    const std::int64_t a1 = s.fe_recv >= 0 ? s.fe_recv : a0;
    const std::int64_t a2 = s.fetch_start >= 0 ? s.fetch_start : a1;
    const std::int64_t a3 = s.fetch_first_byte >= 0 ? s.fetch_first_byte : a2;
    const std::int64_t sum =
        (a1 - a0) + (a2 - a1) + (a3 - a2) + (s.t5 - a3) - (s.t2 - s.t1);
    EXPECT_EQ(sum, s.t5 - s.t2) << q.node << "/" << q.keyword;
    EXPECT_EQ(q.t_dynamic_ms, static_cast<double>(s.t5 - s.t2) / 1e6);
  }
}

// A span dump alone is attributable: the FE stamps the static portion's
// wire size on static_flush, so trace_inspect can recover a boundary
// without the packet capture that discovered the canonical one.
TEST(Attribution, BoundaryRecoverableFromStaticFlushStamps) {
  testbed::ScenarioOptions opt = telemetry_scenario(1);
  opt.enable_tracing = true;
  testbed::Scenario scenario(opt);
  scenario.warm_up();
  const testbed::ExperimentResult result =
      testbed::run_fixed_fe_experiment(scenario, 0, telemetry_experiment());

  ASSERT_NE(result.trace, nullptr);
  const std::size_t stamped =
      analysis::boundary_from_spans(result.trace->spans());
  ASSERT_GT(stamped, 0u);
  // The stamp is the head + cached-prefix wire size; the discovered
  // boundary can only extend it (dynamic portions may share a few leading
  // bytes across keywords), never undercut it.
  EXPECT_LE(stamped, result.boundary);

  // The stamp is good enough to attribute every query on its own.
  const analysis::SpanAttributionResult walked =
      analysis::extract_attribution(result.trace->spans(), stamped);
  EXPECT_EQ(walked.queries.size(), result.attribution.queries());
  EXPECT_EQ(walked.skipped, 0u);
}

TEST(Attribution, RegistryByteIdenticalAcrossThreadCounts) {
  const auto eo = telemetry_experiment();
  std::string ref;
  for (const std::size_t threads : {1u, 4u}) {
    testbed::ScenarioOptions opt = telemetry_scenario(1);
    opt.enable_tracing = true;
    testbed::ReplicaPlan plan;
    plan.executor.threads = threads;
    const testbed::ExperimentResult result =
        testbed::run_fixed_fe_experiment(opt, 0, eo, plan);
    EXPECT_EQ(result.attribution.reconcile_failures(), 0u);
    const std::string prom = obs::export_prometheus(result.attribution.registry());
    if (ref.empty()) {
      ref = prom;
      EXPECT_NE(prom.find("attr_t_dynamic_ms"), std::string::npos);
    } else {
      EXPECT_EQ(prom, ref);
    }
  }
}

TEST(FlightRecorder, CampaignWithExplicitThresholdPromotesSpanTrees) {
  testbed::ScenarioOptions opt = telemetry_scenario(1);
  opt.enable_tracing = true;
  testbed::Scenario scenario(opt);
  scenario.warm_up();
  testbed::ExperimentOptions eo = telemetry_experiment();
  eo.flight.threshold_ms = 0.001;  // everything is "slow"
  const testbed::ExperimentResult result =
      testbed::run_fixed_fe_experiment(scenario, 0, eo);
  ASSERT_FALSE(result.flight.slow().empty());
  for (const obs::FlightRecorder::Entry& e : result.flight.slow()) {
    EXPECT_FALSE(e.node.empty());
    EXPECT_FALSE(e.spans.empty());
    EXPECT_GT(e.t_dynamic_ms, e.threshold_ms);
  }
  // The dump parses as JSON and reports every completed query observed.
  const auto doc = obs::json::parse(result.flight.to_json());
  ASSERT_TRUE(doc.has_value());
  const auto* observed = doc->get("observed");
  ASSERT_NE(observed, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(observed->as_int()),
            result.flight.observed());
}
#endif  // DYNCDN_OBS

// ---------------------------------------------------------------------------
// FlightRecorder unit behaviour (no simulation required).
// ---------------------------------------------------------------------------

obs::FlightRecorder::Entry entry_ms(double t_dynamic_ms) {
  obs::FlightRecorder::Entry e;
  e.node = "client-0";
  e.keyword = "kw";
  e.t_dynamic_ms = t_dynamic_ms;
  return e;
}

TEST(FlightRecorder, ExplicitThresholdSplitsSlowFromRecent) {
  obs::FlightRecorder::Options o;
  o.threshold_ms = 10.0;
  obs::FlightRecorder fr(o);
  EXPECT_FALSE(fr.observe(entry_ms(5.0)));
  EXPECT_TRUE(fr.observe(entry_ms(15.0)));
  EXPECT_EQ(fr.observed(), 2u);
  ASSERT_EQ(fr.slow().size(), 1u);
  EXPECT_EQ(fr.slow().front().t_dynamic_ms, 15.0);
  EXPECT_EQ(fr.slow().front().threshold_ms, 10.0);
  ASSERT_EQ(fr.recent().size(), 1u);
  EXPECT_EQ(fr.recent().front().t_dynamic_ms, 5.0);
}

TEST(FlightRecorder, AdaptiveTriggerArmsAfterMinSamples) {
  obs::FlightRecorder::Options o;
  o.min_samples = 3;
  o.quantile = 0.5;
  o.slow_factor = 2.0;
  obs::FlightRecorder fr(o);
  // Unarmed: even a huge outlier is not promoted before min_samples.
  EXPECT_FALSE(fr.observe(entry_ms(1000.0)));
  EXPECT_FALSE(fr.observe(entry_ms(1.0)));
  EXPECT_FALSE(fr.observe(entry_ms(1.0)));
  // Armed now; threshold = p50 * 2, far below the next outlier.
  EXPECT_GT(fr.current_threshold_ms(), 0.0);
  EXPECT_TRUE(fr.observe(entry_ms(5000.0)));
  ASSERT_EQ(fr.slow().size(), 1u);
  EXPECT_GT(fr.slow().front().threshold_ms, 0.0);
}

TEST(FlightRecorder, BoundedLogsEvictOldestAndMergeReapplies) {
  obs::FlightRecorder::Options o;
  o.threshold_ms = 1.0;
  o.slow_capacity = 2;
  obs::FlightRecorder fr(o);
  fr.observe(entry_ms(10.0));
  fr.observe(entry_ms(20.0));
  fr.observe(entry_ms(30.0));
  ASSERT_EQ(fr.slow().size(), 2u);
  EXPECT_EQ(fr.slow().front().t_dynamic_ms, 20.0);
  EXPECT_EQ(fr.slow().back().t_dynamic_ms, 30.0);

  obs::FlightRecorder other(o);
  other.observe(entry_ms(40.0));
  fr.merge(other);
  EXPECT_EQ(fr.observed(), 4u);
  ASSERT_EQ(fr.slow().size(), 2u);
  EXPECT_EQ(fr.slow().back().t_dynamic_ms, 40.0);
}

TEST(FlightRecorder, ZeroCapacitiesClampToOne) {
  obs::FlightRecorder::Options o;
  o.recent_capacity = 0;
  o.slow_capacity = 0;
  obs::FlightRecorder fr(o);
  EXPECT_EQ(fr.options().recent_capacity, 1u);
  EXPECT_EQ(fr.options().slow_capacity, 1u);
}

}  // namespace
}  // namespace dyncdn
