// Link delivery coalescing equivalence: batching contiguous in-flight
// deliveries behind one kernel event must leave every observable — delivery
// times, handler order, packet captures, Fig. 2 timelines — byte-identical
// to the one-event-per-packet path. The artifact test additionally feeds
// the `trace_diff_coalesced` ctest entry, which cross-checks a coalesced
// run's spans against an uncoalesced run's capture with
// `trace_inspect spans --diff` at tolerance 0.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "capture/serialize.hpp"
#include "cdn/deployment.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "obs/export_chrome.hpp"
#include "search/keywords.hpp"
#include "sim/simulator.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn {
namespace {

using sim::SimTime;
using namespace dyncdn::sim::literals;

net::PacketPtr make_packet(std::size_t payload_bytes) {
  auto p = net::acquire_packet();
  p->src = net::NodeId{1};
  p->dst = net::NodeId{2};
  p->payload = net::PayloadRef{
      net::make_buffer(std::vector<std::uint8_t>(payload_bytes, 0xAB)), 0,
      payload_bytes};
  return p;
}

/// One delivery observation: (arrival ns, payload bytes).
using DeliveryLog = std::vector<std::pair<long long, std::size_t>>;

/// Drive a fixed transmission schedule — bursts that form packet trains,
/// plus unrelated interleaved events that force the coalesced path to
/// re-arm mid-train — and log every delivery.
DeliveryLog run_link_schedule(bool coalesce, net::LinkStats* stats_out) {
  sim::Simulator simulator(5);
  net::LinkConfig cfg;
  cfg.propagation_delay = 10_ms;
  cfg.bandwidth_bps = 8e6;  // 1448B segment ~ 1.45ms serialization
  cfg.coalesce_deliveries = coalesce;
  DeliveryLog log;
  net::Link link(
      simulator, cfg,
      [&](net::PacketPtr p) {
        log.emplace_back(simulator.now().ns(), p->payload_size());
      },
      "test");

  for (int burst = 0; burst < 4; ++burst) {
    simulator.schedule_in(SimTime::milliseconds(burst * 40),
                          [&link, burst]() {
                            for (int i = 0; i <= burst * 2; ++i) {
                              link.transmit(make_packet(1448));
                            }
                          });
  }
  // Foreign events landing between train arrivals: the drain must yield
  // to them and re-schedule instead of running past the event horizon.
  for (int i = 0; i < 60; ++i) {
    simulator.schedule_in(SimTime::microseconds(i * 2700 + 333), []() {});
  }
  simulator.run();
  if (stats_out != nullptr) *stats_out = link.stats();
  return log;
}

TEST(LinkCoalesce, DeliverySequenceIdenticalToPerPacketPath) {
  net::LinkStats on{}, off{};
  const DeliveryLog coalesced = run_link_schedule(true, &on);
  const DeliveryLog per_packet = run_link_schedule(false, &off);

  ASSERT_EQ(coalesced.size(), per_packet.size());
  for (std::size_t i = 0; i < coalesced.size(); ++i) {
    EXPECT_EQ(coalesced[i].first, per_packet[i].first) << "packet " << i;
    EXPECT_EQ(coalesced[i].second, per_packet[i].second) << "packet " << i;
  }
  EXPECT_EQ(on.packets_delivered, off.packets_delivered);
  EXPECT_EQ(on.bytes_delivered, off.bytes_delivered);
  // The trains actually coalesced — the equivalence above was not vacuous.
  EXPECT_GT(on.deliveries_coalesced, 0u);
  EXPECT_EQ(off.deliveries_coalesced, 0u);
}

TEST(LinkCoalesce, ReorderingLinkNeverCoalesces) {
  sim::Simulator simulator(5);
  net::LinkConfig cfg;
  cfg.propagation_delay = 10_ms;
  cfg.bandwidth_bps = 8e6;
  cfg.coalesce_deliveries = true;
  cfg.reorder_probability = 0.5;
  int delivered = 0;
  net::Link link(
      simulator, cfg, [&](net::PacketPtr) { ++delivered; }, "reorder");
  simulator.schedule_in(SimTime::zero(), [&link]() {
    for (int i = 0; i < 16; ++i) link.transmit(make_packet(1448));
  });
  simulator.run();
  EXPECT_EQ(delivered, 16);
  EXPECT_EQ(link.stats().deliveries_coalesced, 0u);
}

/// Run the full testbed (FE fleet + BE + vantage-point client) with link
/// coalescing toggled; return client 0's serialized packet capture and
/// optionally export spans/capture artifacts for the offline diff tool.
std::string run_scenario_capture(bool coalesce,
                                 const std::string& spans_json_path,
                                 const std::string& capture_path) {
  testbed::ScenarioOptions so;
  so.profile = cdn::google_like_profile();
  so.client_count = 2;
  so.seed = 7;
  so.capture_payloads = true;
  so.enable_tracing = true;
  so.link_coalescing = coalesce;
  testbed::Scenario scenario(so);
  scenario.warm_up();
  scenario.connect_client_to_fe(0, 0);

  auto& client = scenario.clients()[0];
  const net::Endpoint fe = scenario.fe_endpoint(0);
  const search::KeywordCatalog catalog(9);
  const auto keywords = catalog.distinct_corpus(4);
  SimTime at = SimTime::zero();
  for (const search::Keyword& kw : keywords) {
    client.node->simulator().schedule_in(at, [&client, fe, kw]() {
      client.query_client->submit(fe, kw, [](const cdn::QueryResult&) {});
    });
    at = at + SimTime::milliseconds(1500);
  }
  scenario.run();

  const capture::PacketTrace web =
      client.recorder->trace().filter_remote_port(80);
  if (!capture_path.empty()) {
    capture::save_trace(web, capture_path, /*with_payloads=*/true);
  }
  if (!spans_json_path.empty()) {
    EXPECT_TRUE(obs::write_chrome_trace(*scenario.trace(), spans_json_path));
  }
  return capture::serialize_trace(web, /*with_payloads=*/true);
}

TEST(LinkCoalesce, ScenarioCaptureByteIdentical) {
  const std::string coalesced = run_scenario_capture(true, "", "");
  const std::string per_packet = run_scenario_capture(false, "", "");
  ASSERT_FALSE(coalesced.empty());
  // Byte-for-byte: timestamps, headers, and payload hex of every captured
  // packet. (EXPECT_TRUE keeps a failure from dumping the whole trace.)
  EXPECT_TRUE(coalesced == per_packet)
      << "captures diverge: " << coalesced.size() << " vs "
      << per_packet.size() << " bytes";
}

// Exports cross-run artifacts consumed by the `trace_diff_coalesced` ctest
// entry: tcp.flow spans from a COALESCED run, packet capture from an
// UNCOALESCED run. `trace_inspect spans --diff` then rebuilds both sets of
// t1..te timelines and requires zero mismatches at tolerance 0.
TEST(LinkCoalesceArtifacts, ExportSpansAndCaptureForDiff) {
  namespace fs = std::filesystem;
  const char* env = std::getenv("DYNCDN_COALESCE_ARTIFACT_DIR");
  const fs::path dir =
      env != nullptr ? fs::path(env)
                     : fs::temp_directory_path() / "dyncdn_coalesce_artifacts";
  fs::create_directories(dir);
  run_scenario_capture(true, (dir / "spans.json").string(), "");
  run_scenario_capture(false, "", (dir / "capture.trace").string());
  EXPECT_TRUE(fs::exists(dir / "spans.json"));
  EXPECT_TRUE(fs::exists(dir / "capture.trace"));
}

}  // namespace
}  // namespace dyncdn
