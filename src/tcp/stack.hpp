// Per-node TCP stack: owns sockets, demultiplexes incoming packets by
// 4-tuple, manages listeners and ephemeral ports.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mem/flat_table.hpp"
#include "mem/slab.hpp"
#include "net/address.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "tcp/socket.hpp"

namespace dyncdn::tcp {

class TcpStack {
 public:
  /// Invoked for each newly established inbound connection; the handler
  /// must install callbacks via socket.set_callbacks().
  using AcceptHandler = std::function<void(TcpSocket&)>;

  /// Installs itself as `node`'s receive handler.
  TcpStack(net::Node& node, TcpConfig default_config = {});
  ~TcpStack();

  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Listen for connections on `port`.
  void listen(net::Port port, AcceptHandler handler);

  /// Active open to `remote`. Returns the connecting socket (it remains
  /// owned by the stack; the reference stays valid until fully closed).
  TcpSocket& connect(net::Endpoint remote, TcpSocket::Callbacks callbacks);
  TcpSocket& connect(net::Endpoint remote, TcpSocket::Callbacks callbacks,
                     const TcpConfig& config);

  net::Node& node() { return node_; }
  sim::Simulator& simulator() { return node_.simulator(); }
  const TcpConfig& default_config() const { return default_config_; }

  std::size_t socket_count() const { return sockets_.size(); }

  /// Lifetime totals for the metrics layer: stats of every socket this
  /// stack ever ran — destroyed ones (accumulated at teardown) plus the
  /// ones still alive.
  SocketStats aggregate_stats() const;
  std::uint64_t sockets_opened() const { return sockets_opened_; }

  // ---- TcpSocket interface ------------------------------------------------
  /// Transmit a packet built by a socket.
  void transmit(net::PacketPtr packet) { node_.send(std::move(packet)); }
  /// Remove a fully closed socket. Destroys it (deferred to a fresh event
  /// so the socket can finish its current handler).
  void destroy(TcpSocket& socket);

 private:
  void on_packet(const net::PacketPtr& packet);
  void send_reset_for(const net::PacketPtr& packet);
  net::Port allocate_ephemeral_port();

  net::Node& node_;
  TcpConfig default_config_;
  /// Flat 4-tuple demux table; socket storage comes from the per-stack
  /// slab, so open/close at steady state is a free-list pop/push and the
  /// lookup on every received segment probes one inline array.
  mem::FlatMap<net::FlowId, TcpSocket*> sockets_;
  mem::TypedSlab<TcpSocket> socket_slab_;
  std::unordered_map<net::Port, AcceptHandler> listeners_;
  net::Port next_ephemeral_ = 40000;
  SocketStats retired_stats_;  // summed when destroyed sockets are reaped
  std::uint64_t sockets_opened_ = 0;
};

}  // namespace dyncdn::tcp
