file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_http.dir/message.cpp.o"
  "CMakeFiles/dyncdn_http.dir/message.cpp.o.d"
  "CMakeFiles/dyncdn_http.dir/parser.cpp.o"
  "CMakeFiles/dyncdn_http.dir/parser.cpp.o.d"
  "libdyncdn_http.a"
  "libdyncdn_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
