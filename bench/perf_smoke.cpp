// perf_smoke — machine-readable performance trajectory for the repo.
//
// Times the simulator's hot paths (event kernel, cancel churn, TCP bulk
// transfer) and the sharded experiment engine (queries/sec, thread-scaling
// curve) and writes everything as JSON so each future PR can diff perf
// against its predecessor:
//
//   ./perf_smoke [output.json]          quick mode (CI: the bench-smoke
//                                       ctest target runs this)
//   DYNCDN_FULL=1 ./perf_smoke          paper-scale sizes
//   DYNCDN_BENCH_JSON=path ./perf_smoke write to `path`
//
// JSON schema: {"mode", "threads_available", "event_kernel": {...
// events_per_sec}, "cancel_churn": {...}, "tcp_bulk": {...}, "experiment":
// {"queries", "serial_wall_ms", "thread_scaling": [{threads, wall_ms,
// speedup_vs_1}]}}. See docs/PERF.md.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/network.hpp"
#include "parallel/replica.hpp"
#include "search/keywords.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "testbed/parallel_experiment.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Rate {
  double wall_ms = 0;
  double per_sec = 0;
  std::uint64_t items = 0;
};

/// Schedule-and-fire throughput of the event kernel.
Rate bench_event_kernel(std::uint64_t events) {
  const auto start = std::chrono::steady_clock::now();
  sim::EventQueue q;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < events; ++i) {
    q.schedule(sim::SimTime::microseconds(static_cast<std::int64_t>(i % 997)),
               [&sum, i] { sum += i; });
  }
  while (!q.empty()) q.pop_and_run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = events + (sum & 1);  // keep `sum` observable
  r.per_sec = static_cast<double>(events) / (r.wall_ms / 1000.0);
  return r;
}

/// TCP-RTO-style churn: every event is cancelled and re-armed.
Rate bench_cancel_churn(std::uint64_t rearms) {
  const auto start = std::chrono::steady_clock::now();
  sim::EventQueue q;
  sim::EventId pending;
  for (std::uint64_t i = 0; i < rearms; ++i) {
    if (pending.valid()) q.cancel(pending);
    pending = q.schedule(
        sim::SimTime::microseconds(static_cast<std::int64_t>(1000 + i)),
        [] {});
  }
  while (!q.empty()) q.pop_and_run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = rearms;
  r.per_sec = static_cast<double>(rearms) / (r.wall_ms / 1000.0);
  return r;
}

/// Full-stack segment throughput: one bulk TCP transfer end to end.
Rate bench_tcp_bulk(std::size_t bytes) {
  const auto start = std::chrono::steady_clock::now();
  sim::Simulator simulator(1);
  net::Network network(simulator);
  net::Node& a = network.add_node("a");
  net::Node& b = network.add_node("b");
  net::LinkConfig cfg;
  cfg.propagation_delay = 10_ms;
  cfg.bandwidth_bps = 1e9;
  network.connect(a, b, cfg);
  tcp::TcpStack sa(a), sb(b);
  std::size_t received = 0;
  sb.listen(80, [&received](tcp::TcpSocket& s) {
    tcp::TcpSocket::Callbacks cb;
    cb.on_data = [&received](net::PayloadRef d) { received += d.length; };
    s.set_callbacks(std::move(cb));
  });
  tcp::TcpSocket& c = sa.connect({b.id(), 80}, {});
  c.send(net::PayloadRef{
      net::make_buffer(std::vector<std::uint8_t>(bytes, 0x55)), 0, bytes});
  c.close();
  simulator.run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = simulator.events_executed();
  r.per_sec = static_cast<double>(r.items) / (r.wall_ms / 1000.0);
  if (received != bytes) {
    std::fprintf(stderr, "perf_smoke: tcp transfer incomplete (%zu/%zu)\n",
                 received, bytes);
    std::exit(1);
  }
  return r;
}

struct ScalePoint {
  std::size_t threads = 0;
  double wall_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_scale();
  const std::uint64_t kernel_events = full ? 4'000'000 : 400'000;
  const std::uint64_t churn_rearms = full ? 2'000'000 : 200'000;
  const std::size_t tcp_bytes = full ? 4'000'000 : 1'000'000;
  const std::size_t clients = full ? 24 : 8;
  const std::size_t reps = full ? 10 : 4;

  std::string out_path = "BENCH.json";
  if (const char* env = std::getenv("DYNCDN_BENCH_JSON")) out_path = env;
  if (argc > 1) out_path = argv[1];

  bench::banner("perf_smoke — hot-path micro-benchmarks",
                std::string("mode: ") + (full ? "full" : "quick") +
                    ", output: " + out_path);

  const Rate kernel = bench_event_kernel(kernel_events);
  std::printf("event kernel:   %10.0f events/sec (%.1f ms)\n", kernel.per_sec,
              kernel.wall_ms);
  const Rate churn = bench_cancel_churn(churn_rearms);
  std::printf("cancel churn:   %10.0f re-arms/sec (%.1f ms)\n", churn.per_sec,
              churn.wall_ms);
  const Rate tcp = bench_tcp_bulk(tcp_bytes);
  std::printf("tcp bulk:       %10.0f sim events/sec (%.1f ms, %llu events)\n",
              tcp.per_sec, tcp.wall_ms,
              static_cast<unsigned long long>(tcp.items));

  // Experiment engine: a fixed-FE campaign sharded one-replica-per-vantage-
  // point; wall time per thread count gives the scaling curve.
  testbed::ScenarioOptions scenario;
  scenario.profile = cdn::google_like_profile();
  scenario.client_count = clients;
  scenario.seed = 4242;
  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};

  const std::size_t hw = parallel::resolve_threads({});
  std::vector<std::size_t> thread_counts{1};
  for (std::size_t t = 2; t <= hw && t <= 8; t *= 2) {
    thread_counts.push_back(t);
  }

  std::vector<ScalePoint> scaling;
  std::size_t queries = 0;
  for (const std::size_t threads : thread_counts) {
    testbed::ReplicaPlan plan;  // default: one shard per vantage point
    plan.executor.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const auto result =
        testbed::run_fixed_fe_experiment(scenario, 0, eo, plan);
    ScalePoint p;
    p.threads = threads;
    p.wall_ms = wall_ms_since(start);
    scaling.push_back(p);
    queries = result.all().size();
    std::printf("experiment:     %zu threads -> %8.1f ms (%zu queries, "
                "%.0f queries/sec)\n",
                threads, p.wall_ms, queries,
                static_cast<double>(queries) / (p.wall_ms / 1000.0));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_smoke: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", full ? "full" : "quick");
  std::fprintf(f, "  \"threads_available\": %zu,\n", hw);
  std::fprintf(f,
               "  \"event_kernel\": {\"events\": %llu, \"wall_ms\": %.3f, "
               "\"events_per_sec\": %.0f},\n",
               static_cast<unsigned long long>(kernel_events), kernel.wall_ms,
               kernel.per_sec);
  std::fprintf(f,
               "  \"cancel_churn\": {\"rearms\": %llu, \"wall_ms\": %.3f, "
               "\"rearms_per_sec\": %.0f},\n",
               static_cast<unsigned long long>(churn_rearms), churn.wall_ms,
               churn.per_sec);
  std::fprintf(f,
               "  \"tcp_bulk\": {\"bytes\": %zu, \"sim_events\": %llu, "
               "\"wall_ms\": %.3f, \"events_per_sec\": %.0f},\n",
               tcp_bytes, static_cast<unsigned long long>(tcp.items),
               tcp.wall_ms, tcp.per_sec);
  std::fprintf(f, "  \"experiment\": {\n");
  std::fprintf(f, "    \"vantage_points\": %zu,\n", clients);
  std::fprintf(f, "    \"queries\": %zu,\n", queries);
  std::fprintf(f, "    \"serial_wall_ms\": %.3f,\n", scaling.front().wall_ms);
  std::fprintf(f, "    \"queries_per_sec_serial\": %.1f,\n",
               static_cast<double>(queries) /
                   (scaling.front().wall_ms / 1000.0));
  std::fprintf(f, "    \"thread_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(f,
                 "      {\"threads\": %zu, \"wall_ms\": %.3f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 scaling[i].threads, scaling[i].wall_ms,
                 scaling.front().wall_ms / scaling[i].wall_ms,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\n[bench json written: %s]\n", out_path.c_str());
  return 0;
}
