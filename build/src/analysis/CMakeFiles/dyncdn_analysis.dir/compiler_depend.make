# Empty compiler generated dependencies file for dyncdn_analysis.
# This may be replaced when dependencies are built.
