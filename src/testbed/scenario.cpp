#include "testbed/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dyncdn::testbed {

namespace {

std::size_t resolve_sim_shards(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DYNCDN_SIM_SHARDS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

std::size_t resolve_capture_budget(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("DYNCDN_CAPTURE_BUDGET")) {
    if (const auto v = parse_byte_size(env); v && *v > 0) return *v;
  }
  return 0;
}

/// Fresh scenario-owned spill directory under the system temp dir. A
/// process-wide counter keeps concurrent scenarios (replica fleets, test
/// suites) from colliding.
std::string make_temp_spill_dir() {
  static std::atomic<std::uint64_t> counter{0};
  namespace fs = std::filesystem;
#if defined(__unix__) || defined(__APPLE__)
  const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
  const unsigned long pid = 0;
#endif
  const fs::path dir =
      fs::temp_directory_path() /
      ("dyncdn-spill-" + std::to_string(pid) + "-" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);
  return dir.string();
}

}  // namespace

std::optional<std::size_t> parse_byte_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const std::string s(text);
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return std::nullopt;
  std::size_t mult = 1;
  if (*end != '\0') {
    switch (*end) {
      case 'k': case 'K': mult = 1024ull; break;
      case 'm': case 'M': mult = 1024ull * 1024; break;
      case 'g': case 'G': mult = 1024ull * 1024 * 1024; break;
      default: return std::nullopt;
    }
    if (end[1] != '\0') return std::nullopt;
  }
  return static_cast<std::size_t>(v) * mult;
}

Scenario::Scenario(ScenarioOptions options) : options_(std::move(options)) {
  const std::size_t shards = resolve_sim_shards(options_.sim_shards);
  capture_budget_ = resolve_capture_budget(options_.capture_budget);
  // Every shard kernel shares the seed: a named RNG stream yields the same
  // sequence no matter which shard its consumer landed on.
  simulator_ = std::make_unique<sim::Simulator>(options_.seed);
  sims_.push_back(simulator_.get());
  for (std::size_t s = 1; s < shards; ++s) {
    extra_sims_.push_back(std::make_unique<sim::Simulator>(options_.seed));
    sims_.push_back(extra_sims_.back().get());
  }
  if (options_.enable_tracing) {
    trace_ = std::make_shared<obs::TraceSession>(options_.trace_ring_bytes);
    simulator_->set_trace(trace_.get());
    // Shards 1..S-1 record into private sessions with disjoint id ranges
    // (folded into trace_ by merge_shard_traces). No flight-recorder ring:
    // the bounded binary dump stays a shard-0 feature.
    shard_traces_.resize(shards);
    for (std::size_t s = 1; s < shards; ++s) {
      shard_traces_[s] = std::make_unique<obs::TraceSession>(0);
      shard_traces_[s]->set_id_base(static_cast<obs::SpanId>(s) << 40);
      sims_[s]->set_trace(shard_traces_[s].get());
    }
  }
  network_ = std::make_unique<net::Network>(*simulator_);
  if (shards > 1) network_->set_shards(sims_);
  content_ = std::make_unique<search::ContentModel>(options_.profile.content,
                                                    options_.profile.name);
  build_backend();
  build_frontends();
  build_clients();
  runner_ = std::make_unique<parallel::ShardRunner>(*network_, sims_);
  if (options_.ts_interval > sim::SimTime::zero()) {
    sampler_ = std::make_unique<obs::TimeSeriesSampler>(
        static_cast<std::uint64_t>(options_.ts_interval.ns()),
        options_.ts_max_samples);
    ts_channels_.fe_fetch_queue = sampler_->channel("fe_fetch_queue");
    ts_channels_.fe_active_requests = sampler_->channel("fe_active_requests");
    ts_channels_.fe_backend_pool = sampler_->channel("fe_backend_pool");
    ts_channels_.be_queue_depth = sampler_->channel("be_queue_depth");
    ts_channels_.net_packets_in_flight =
        sampler_->channel("net_packets_in_flight");
    ts_channels_.link_packets_delivered =
        sampler_->channel("link_packets_delivered");
    ts_channels_.link_bytes_delivered =
        sampler_->channel("link_bytes_delivered");
    ts_channels_.pdes_windows =
        sampler_->channel("pdes_windows", /*runtime=*/true);
    ts_channels_.pdes_barrier_stalls =
        sampler_->channel("pdes_barrier_stalls", /*runtime=*/true);
    ts_channels_.pdes_stall_wall_ms =
        sampler_->channel("pdes_stall_wall_ms", /*runtime=*/true);
    ts_channels_.pdes_cross_shard_packets =
        sampler_->channel("pdes_cross_shard_packets", /*runtime=*/true);
    // Spill-progress channels are registered only when budgeted capture is
    // active, so sampled exports of every other configuration stay
    // byte-identical to previous releases. They are application channels:
    // flush points are a deterministic function of the captured records,
    // which are themselves shard- and thread-invariant.
    if (spilling_active()) {
      ts_channels_.capture_spill_bytes =
          sampler_->channel("capture_spill_bytes");
      ts_channels_.capture_spill_blocks =
          sampler_->channel("capture_spill_blocks");
    }
  }
}

Scenario::~Scenario() {
  if (!owns_spill_dir_) return;
  // Close the writers before removing the directory that holds their
  // files, then best-effort delete (teardown must not throw).
  for (Client& c : clients_) {
    if (c.recorder) c.recorder->set_spill(nullptr, 0);
    c.spill.reset();
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_dir_, ec);
}

bool Scenario::spilling_active() const {
  return capture_budget_ > 0 && options_.capture_clients &&
         !options_.stream_analysis;
}

void Scenario::run() {
  if (!sampler_) {
    runner_->run();
    return;
  }
  // Sampled run: advance tick by tick, snapshotting the fleet at every
  // tick boundary. Ticks are absolute (tick k = k * interval on the sim
  // clock), so series from consecutive runs and from different replicas
  // align by index.
  const std::uint64_t interval =
      static_cast<std::uint64_t>(options_.ts_interval.ns());
  sim::SimTime max_now = sim::SimTime::zero();
  for (sim::Simulator* s : sims_) max_now = std::max(max_now, s->now());
  std::uint64_t tick =
      static_cast<std::uint64_t>(max_now.ns()) / interval + 1;
  while (true) {
    sim::SimTime next = sim::SimTime::infinity();
    for (sim::Simulator* s : sims_) {
      next = std::min(next, s->next_event_time());
    }
    if (next == sim::SimTime::infinity()) break;
    run_to_tick(sim::SimTime::nanoseconds(
        static_cast<std::int64_t>(tick * interval)));
    take_sample(tick);
    ++tick;
  }
  // Drain anything staged outside the kernels (cross-shard mailboxes fed
  // by host code between runs); normally a no-op.
  runner_->run();
}

void Scenario::run_to_tick(sim::SimTime target) {
  if (sims_.size() == 1) {
    // run_window, not run_until: the bounded horizon parks coalesced
    // delivery trains at the tick instead of letting them ride past it,
    // which is what keeps tick-time state identical to the sharded path
    // (cross-shard links never coalesce).
    simulator_->run_window(target + sim::SimTime::nanoseconds(1));
    if (simulator_->now() < target) simulator_->align_clock(target);
    return;
  }
  runner_->run_until(target);
}

void Scenario::run_until(sim::SimTime deadline) {
  runner_->run_until(deadline);
}

void Scenario::merge_shard_traces() {
  if (!trace_) return;
  for (auto& session : shard_traces_) {
    if (session) trace_->absorb_shard(*session);
  }
}

void Scenario::build_backend() {
  const cdn::ServiceProfile& p = options_.profile;
  be_node_ = &network_->add_node("be-" + p.be_site_name, p.be_location);
  cdn::BackendDataCenter::Config cfg;
  cfg.name = p.be_site_name;
  cfg.processing = p.processing;
  cfg.tcp = p.internal_tcp;
  backend_ = std::make_unique<cdn::BackendDataCenter>(*be_node_, *content_,
                                                      cfg);
}

void Scenario::build_frontends() {
  const cdn::ServiceProfile& p = options_.profile;

  struct Site {
    std::string name;
    net::GeoPoint location;
  };
  std::vector<Site> sites;

  if (options_.fe_distance_sweep_miles) {
    // Synthetic placement for fetch-factoring: FE sites due north of the
    // BE at the requested great-circle distances (~69 miles per degree).
    for (std::size_t i = 0; i < options_.fe_distance_sweep_miles->size();
         ++i) {
      const double miles = (*options_.fe_distance_sweep_miles)[i];
      Site s;
      s.name = "sweep-" + std::to_string(i);
      s.location = {p.be_location.lat_deg + miles / 69.0,
                    p.be_location.lon_deg};
      sites.push_back(std::move(s));
    }
  } else {
    // Metro-based placement: each metro hosts an FE with probability
    // `fe_metro_coverage` (Akamai ~ everywhere; Google ~ a third).
    sim::RngStream rng =
        simulator_->rng().stream("scenario/fe-metro-selection");
    const auto& metros = world_metros();
    for (const Metro& m : metros) {
      if (rng.uniform01() < p.fe_metro_coverage) {
        sites.push_back(Site{m.name, m.location});
      }
    }
    if (sites.empty()) {
      sites.push_back(Site{metros.front().name, metros.front().location});
    }
  }

  for (const Site& site : sites) {
    FrontEnd fe;
    fe.site_name = site.name;
    fe.location = site.location;
    // Fixed shard assignment by FE index: round-robin over the shard
    // kernels. The BE stays on shard 0, so the FE<->BE links form the
    // cross-shard cut and their propagation delay is the lookahead.
    fe.node = &network_->add_node(
        "fe-" + site.name, site.location,
        static_cast<std::uint32_t>(fes_.size() % sims_.size()));
    fe.distance_to_be_miles =
        net::haversine_miles(site.location, p.be_location);

    // FE <-> BE path: geographic propagation over a well-provisioned (or,
    // for BingLike, public-internet) link.
    net::LinkConfig link;
    link.coalesce_deliveries = options_.link_coalescing;
    link.propagation_delay = net::propagation_delay(site.location,
                                                    p.be_location);
    link.bandwidth_bps = p.fe_be_bandwidth_bps;
    if (p.fe_be_loss > 0.0) {
      const double loss = p.fe_be_loss;
      link.loss_factory = [loss] { return net::make_bernoulli_loss(loss); };
    }
    network_->connect(*fe.node, *be_node_, link);

    cdn::FrontEndServer::Config cfg;
    cfg.name = "fe-" + site.name;
    cfg.backend = backend_->fetch_endpoint();
    cfg.service = p.fe_service;
    cfg.client_tcp = p.client_tcp;
    cfg.backend_tcp = p.internal_tcp;
    cfg.warm_backend_connection =
        options_.warm_backend_connection.value_or(p.warm_backend_connection);
    if (options_.relay_mode) cfg.relay_mode = *options_.relay_mode;
    if (options_.serve_static_immediately) {
      cfg.serve_static_immediately = *options_.serve_static_immediately;
    }
    if (options_.fe_cache_results) {
      cfg.cache_results = *options_.fe_cache_results;
    }
    if (options_.client_initial_cwnd) {
      cfg.client_tcp.initial_cwnd_segments = *options_.client_initial_cwnd;
    }
    fe.server = std::make_unique<cdn::FrontEndServer>(*fe.node, *content_,
                                                      std::move(cfg));
    fes_.push_back(std::move(fe));
  }
}

void Scenario::build_clients() {
  const cdn::ServiceProfile& p = options_.profile;

  std::vector<VantagePoint> vps;
  if (options_.fe_distance_sweep_miles) {
    // One client co-located with each sweep FE (low client RTT, so
    // T_dynamic approximates T_fetch, as §5 requires).
    for (std::size_t i = 0; i < fes_.size(); ++i) {
      VantagePoint vp;
      vp.name = "probe-" + std::to_string(i);
      vp.metro_index = 0;
      vp.location = {fes_[i].location.lat_deg + 0.02,
                     fes_[i].location.lon_deg};
      // Probe access latency follows the profile's lower bound so that
      // controlled sweeps can set the probe RTT exactly.
      vp.last_mile_one_way =
          sim::SimTime::from_milliseconds(p.last_mile_min_ms);
      vps.push_back(std::move(vp));
    }
  } else {
    VantagePointOptions vpo;
    vpo.count = options_.client_count;
    vpo.seed = options_.seed;
    vpo.last_mile_min_ms = p.last_mile_min_ms;
    vpo.last_mile_max_ms = p.last_mile_max_ms;
    vpo.residential_fraction = options_.residential_fraction;
    vpo.wireless_fraction = options_.wireless_fraction;
    vps = make_vantage_points(vpo);
  }

  tcp::TcpConfig client_tcp = p.client_tcp;
  if (options_.client_initial_cwnd) {
    client_tcp.initial_cwnd_segments = *options_.client_initial_cwnd;
  }

  for (std::size_t i = 0; i < vps.size(); ++i) {
    Client c;
    c.vantage = vps[i];

    // DNS emulation: default FE = geographically nearest site. Computed
    // before node creation because the client lives on its default FE's
    // shard — the chatty client<->FE conversation stays intra-shard, and
    // only the FE<->BE (or non-default-FE) legs cross shards.
    std::size_t best = 0;
    double best_miles = std::numeric_limits<double>::max();
    for (std::size_t f = 0; f < fes_.size(); ++f) {
      const double miles =
          net::haversine_miles(vps[i].location, fes_[f].location);
      if (miles < best_miles) {
        best_miles = miles;
        best = f;
      }
    }
    if (options_.fe_distance_sweep_miles) best = i;  // pair probe with FE
    c.default_fe = best;
    c.node = &network_->add_node(vps[i].name, vps[i].location,
                                 fes_[best].node->shard());

    if (options_.capture_clients) {
      capture::RecorderOptions ro;
      ro.capture_payloads = options_.capture_payloads;
      ro.retain_packets = !options_.stream_analysis;
      c.recorder = std::make_unique<capture::TraceRecorder>(
          *c.node, c.node->simulator(), ro);
      if (options_.stream_analysis) {
        c.analyzer = std::make_unique<analysis::StreamingAnalyzer>(
            fes_.front().server->client_endpoint().port);
        c.recorder->set_sink(c.analyzer.get());
      }
      if (spilling_active()) {
        if (spill_dir_.empty()) {
          if (options_.spill_dir.empty()) {
            spill_dir_ = make_temp_spill_dir();
            owns_spill_dir_ = true;
          } else {
            std::filesystem::create_directories(options_.spill_dir);
            spill_dir_ = options_.spill_dir;
          }
        }
        c.spill = std::make_unique<capture::SpillWriter>(
            spill_dir_ + "/" + c.vantage.name + ".dtrc", c.node->id());
        c.recorder->set_spill(c.spill.get(), capture_budget_);
      }
    }
    c.query_client = std::make_unique<cdn::QueryClient>(*c.node, client_tcp);
    clients_.push_back(std::move(c));
    connect_client_to_fe(i, best);
  }
}

net::LinkConfig Scenario::client_access_link(
    const VantagePoint& vp, const net::GeoPoint& fe_location) const {
  net::LinkConfig link;
  link.coalesce_deliveries = options_.link_coalescing;
  link.propagation_delay =
      net::propagation_delay(vp.location, fe_location) + vp.last_mile_one_way;
  link.bandwidth_bps = options_.profile.client_fe_bandwidth_bps;
  link.reorder_probability = options_.client_link_reorder;
  const double loss = options_.client_link_loss + vp.access_loss;
  if (loss > 0.0) {
    link.loss_factory = [loss] { return net::make_bernoulli_loss(loss); };
  }
  return link;
}

void Scenario::connect_client_to_fe(std::size_t client_index,
                                    std::size_t fe_index) {
  const auto key = std::make_pair(client_index, fe_index);
  if (std::find(client_fe_links_.begin(), client_fe_links_.end(), key) !=
      client_fe_links_.end()) {
    return;
  }
  Client& c = clients_.at(client_index);
  FrontEnd& fe = fes_.at(fe_index);
  network_->connect(*c.node, *fe.node,
                    client_access_link(c.vantage, fe.location));
  client_fe_links_.push_back(key);
}

void Scenario::connect_client_to_be(std::size_t client_index) {
  if (std::find(client_be_links_.begin(), client_be_links_.end(),
                client_index) != client_be_links_.end()) {
    return;
  }
  Client& c = clients_.at(client_index);
  network_->connect(
      *c.node, *be_node_,
      client_access_link(c.vantage, options_.profile.be_location));
  client_be_links_.push_back(client_index);
}

net::Endpoint Scenario::default_fe_endpoint(std::size_t client_index) const {
  return fe_endpoint(clients_.at(client_index).default_fe);
}

net::Endpoint Scenario::fe_endpoint(std::size_t fe_index) const {
  return fes_.at(fe_index).server->client_endpoint();
}

sim::SimTime Scenario::client_fe_rtt(std::size_t client_index,
                                     std::size_t fe_index) const {
  const Client& c = clients_.at(client_index);
  const FrontEnd& fe = fes_.at(fe_index);
  const sim::SimTime one_way =
      net::propagation_delay(c.vantage.location, fe.location) +
      c.vantage.last_mile_one_way;
  return one_way * 2;
}

void Scenario::warm_up(sim::SimTime duration) {
  run_until(simulator_->now() + duration);
  // Recorders should not carry warm-up traffic into the analysis.
  for (Client& c : clients_) {
    if (c.recorder) c.recorder->clear();
  }
}

void Scenario::collect_kernel_metrics(obs::MetricsRegistry& out) {
  // Event kernel, summed over shard kernels. All counters are
  // replica-additive: a sharded campaign merging its shards' registries
  // reports fleet totals. These genuinely depend on the shard layout
  // (cross-shard links bypass delivery coalescing; each shard has its own
  // heap), which is why they are not part of collect_metrics.
  std::uint64_t executed = 0, scheduled = 0, cancels = 0;
  std::int64_t heap_peak = 0;
  for (sim::Simulator* s : sims_) {
    executed += s->events_executed();
    scheduled += s->events_scheduled();
    cancels += s->events_cancelled();
    heap_peak = std::max(heap_peak,
                         static_cast<std::int64_t>(s->max_heaped_entries()));
  }
  out.add("sim_events_executed", executed);
  out.add("sim_events_scheduled", scheduled);
  out.add("sim_timer_cancels", cancels);
  out.gauge_max("sim_event_heap_peak", heap_peak);

  // Conservative-window runner (all zero in a serial scenario).
  const parallel::ShardRunnerStats& st = runner_->stats();
  out.gauge_max("pdes_shards", static_cast<std::int64_t>(sims_.size()));
  out.add("pdes_windows", st.windows);
  out.add("pdes_barrier_stalls", st.barrier_stalls);
  out.add("pdes_cross_shard_packets", st.cross_shard_packets);
  out.add("pdes_serial_fallbacks", st.serial_fallbacks);
  // stall_wall_ns is deliberately absent: it is wall-clock time, and the
  // PDES counters above stay deterministic at a fixed shard layout. The
  // stall timer surfaces through the time-series runtime channels instead.

  // Wall-clock time inside durable-trace disk flushes (capture/spill.hpp).
  // Like the executor stats this is runtime telemetry; it lives here — not
  // in collect_metrics/collect_memory_metrics — so the byte-identical
  // experiment exports never see wall time.
  std::uint64_t spill_flush_ns = 0;
  for (Client& c : clients_) {
    if (c.spill) spill_flush_ns += c.spill->stats().flush_ns;
  }
  out.add("spill_flush_ns", spill_flush_ns);
}

void Scenario::collect_metrics(obs::MetricsRegistry& out) {
  // Network layer.
  out.add("net_packets_created", network_->packets_created());
  out.add("net_packets_routed", network_->packets_routed());
  out.add("net_no_route_drops", network_->no_route_drops());
  const net::LinkStats links = network_->aggregate_link_stats();
  out.add("link_packets_offered", links.packets_offered);
  out.add("link_packets_delivered", links.packets_delivered);
  out.add("link_drops_loss", links.drops_loss);
  out.add("link_drops_queue", links.drops_queue);
  out.add("link_packets_reordered", links.packets_reordered);
  out.add("link_bytes_delivered", links.bytes_delivered);

  // TCP: every stack in the testbed (clients + FE fleet + BE).
  tcp::SocketStats tcp_totals;
  std::uint64_t sockets_opened = 0;
  const auto fold = [&](tcp::TcpStack& stack) {
    const tcp::SocketStats s = stack.aggregate_stats();
    tcp_totals.bytes_sent += s.bytes_sent;
    tcp_totals.bytes_received += s.bytes_received;
    tcp_totals.segments_sent += s.segments_sent;
    tcp_totals.retransmits_rto += s.retransmits_rto;
    tcp_totals.retransmits_fast += s.retransmits_fast;
    tcp_totals.dupacks_received += s.dupacks_received;
    sockets_opened += stack.sockets_opened();
  };
  for (Client& c : clients_) fold(c.query_client->stack());
  for (FrontEnd& fe : fes_) fold(fe.server->stack());
  fold(backend_->stack());
  out.add("tcp_sockets_opened", sockets_opened);
  out.add("tcp_bytes_sent", tcp_totals.bytes_sent);
  out.add("tcp_bytes_received", tcp_totals.bytes_received);
  out.add("tcp_segments_sent", tcp_totals.segments_sent);
  out.add("tcp_retransmits_rto", tcp_totals.retransmits_rto);
  out.add("tcp_retransmits_fast", tcp_totals.retransmits_fast);
  out.add("tcp_dupacks_received", tcp_totals.dupacks_received);

  // Front-end fleet.
  std::uint64_t fe_handled = 0, fe_cache_hits = 0, fe_static_hits = 0;
  std::int64_t be_pool_peak = 0, fetch_queue_peak = 0,
               active_requests_peak = 0;
  for (FrontEnd& fe : fes_) {
    fe_handled += fe.server->queries_handled();
    fe_cache_hits += fe.server->cache_hits();
    fe_static_hits += fe.server->static_cache_hits();
    be_pool_peak =
        std::max(be_pool_peak,
                 static_cast<std::int64_t>(fe.server->backend_pool_peak()));
    fetch_queue_peak =
        std::max(fetch_queue_peak,
                 static_cast<std::int64_t>(fe.server->fetch_queue_peak()));
    active_requests_peak = std::max(
        active_requests_peak,
        static_cast<std::int64_t>(fe.server->active_requests_peak()));
  }
  out.add("fe_queries_handled", fe_handled);
  // Static-portion hits (role 1, always operating) plus dynamic
  // result-cache hits (the off-by-default counterfactual). The static
  // component is what makes this nonzero in every default experiment.
  out.add("fe_cache_hits", fe_cache_hits + fe_static_hits);
  out.add("fe_static_cache_hits", fe_static_hits);
  out.gauge_max("fe_backend_pool_peak", be_pool_peak);
  out.gauge_max("fe_fetch_queue_peak", fetch_queue_peak);
  out.gauge_max("fe_active_requests_peak", active_requests_peak);

  // Back-end data center.
  out.add("be_queries_served", backend_->queries_served());
  out.gauge_max("be_queue_depth_peak",
                static_cast<std::int64_t>(backend_->active_queries_peak()));
}

void Scenario::take_sample(std::uint64_t tick) {
  obs::TimeSeriesSampler& ts = *sampler_;
  ts.begin_tick(tick);

  // Application channels: derived purely from simulation state at the
  // (horizon-aligned) tick, so byte-identical at any thread/shard count.
  std::int64_t fetch_queue = 0, active = 0, pool = 0;
  for (FrontEnd& fe : fes_) {
    fetch_queue += static_cast<std::int64_t>(fe.server->fetch_queue_depth());
    active += static_cast<std::int64_t>(fe.server->active_requests());
    pool += static_cast<std::int64_t>(fe.server->backend_pool_size());
  }
  ts.record(ts_channels_.fe_fetch_queue, static_cast<double>(fetch_queue));
  ts.record(ts_channels_.fe_active_requests, static_cast<double>(active));
  ts.record(ts_channels_.fe_backend_pool, static_cast<double>(pool));
  ts.record(ts_channels_.be_queue_depth,
            static_cast<double>(backend_->active_queries()));

  // sampled_link_stats, not aggregate_link_stats: mid-run snapshots must
  // count delivery at arrival on every link or the series would depend on
  // which links straddle the shard cut.
  const net::LinkStats links = network_->sampled_link_stats();
  ts.record(ts_channels_.net_packets_in_flight,
            static_cast<double>(links.packets_offered -
                                links.packets_delivered - links.drops_loss -
                                links.drops_queue));
  ts.record_cumulative(ts_channels_.link_packets_delivered,
                       static_cast<double>(links.packets_delivered));
  ts.record_cumulative(ts_channels_.link_bytes_delivered,
                       static_cast<double>(links.bytes_delivered));

  // Runtime channels: PDES health. Layout- and wall-clock-dependent, so
  // excluded from the deterministic exports (to_csv / to_json(false)).
  const parallel::ShardRunnerStats& st = runner_->stats();
  ts.record_cumulative(ts_channels_.pdes_windows,
                       static_cast<double>(st.windows));
  ts.record_cumulative(ts_channels_.pdes_barrier_stalls,
                       static_cast<double>(st.barrier_stalls));
  ts.record_cumulative(ts_channels_.pdes_stall_wall_ms,
                       static_cast<double>(st.stall_wall_ns) / 1e6);
  ts.record_cumulative(ts_channels_.pdes_cross_shard_packets,
                       static_cast<double>(st.cross_shard_packets));

  // Spill progress (only registered under budgeted capture). Cumulative
  // writer stats never reset — on_clear keeps counting — so the per-tick
  // deltas recorded here stay non-negative.
  if (spilling_active()) {
    std::uint64_t spill_bytes = 0, spill_blocks = 0;
    for (Client& c : clients_) {
      if (!c.spill) continue;
      spill_bytes += c.spill->stats().bytes_written;
      spill_blocks += c.spill->stats().blocks;
    }
    ts.record_cumulative(ts_channels_.capture_spill_bytes,
                         static_cast<double>(spill_bytes));
    ts.record_cumulative(ts_channels_.capture_spill_blocks,
                         static_cast<double>(spill_blocks));
  }
  ts.end_tick();
}

obs::TimeSeriesSampler Scenario::take_timeseries() {
  if (!sampler_) return obs::TimeSeriesSampler{};
  obs::TimeSeriesSampler out = std::move(*sampler_);
  *sampler_ = obs::TimeSeriesSampler(
      static_cast<std::uint64_t>(options_.ts_interval.ns()),
      options_.ts_max_samples);
  return out;
}

void Scenario::set_stream_boundary(std::size_t boundary) {
  if (!options_.stream_analysis) return;
  for (Client& c : clients_) {
    if (c.analyzer) c.analyzer->set_boundary(boundary);
  }
}

void Scenario::collect_memory_metrics(obs::MetricsRegistry& out) {
  // Deterministic byte accounting, independent of allocator and thread
  // count. Gauges are per-scenario peaks (merge rule: max across
  // replicas); counters are replica-additive.
  std::int64_t retained_peak = 0, analyzer_peak = 0;
  std::uint64_t emitted = 0, late = 0;
  std::uint64_t spill_bytes = 0, spill_blocks = 0, spill_records = 0;
  std::uint64_t spill_raw = 0;
  for (Client& c : clients_) {
    if (c.recorder) {
      retained_peak += static_cast<std::int64_t>(
          c.recorder->peak_retained_bytes());
    }
    if (c.analyzer) {
      analyzer_peak += static_cast<std::int64_t>(c.analyzer->peak_live_bytes());
      emitted += c.analyzer->timelines_emitted_online();
      late += c.analyzer->late_packets();
    }
    if (c.spill) {
      spill_bytes += c.spill->stats().bytes_written;
      spill_blocks += c.spill->stats().blocks;
      spill_records += c.spill->stats().records;
      spill_raw += c.spill->stats().raw_bytes;
    }
  }
  out.gauge_max("capture_retained_bytes_peak", retained_peak);
  out.gauge_max("analyzer_live_bytes_peak", analyzer_peak);
  out.add("stream_timelines_online", emitted);
  out.add("stream_late_packets", late);
  collect_spill_metrics(out);
  // The compression gauge is the ratio of the spill counters (merge rule:
  // max across replicas, so it is informational rather than
  // layout-invariant like the counters themselves).
  if (spill_bytes > 0) {
    out.gauge_max("spill_compression_x",
                  static_cast<std::int64_t>(spill_raw / spill_bytes));
  }
}

void Scenario::collect_spill_metrics(obs::MetricsRegistry& out,
                                     std::span<const std::size_t> client_indices) {
  // Durable-trace (spill) accounting. Every counter is a deterministic
  // function of each client's captured record stream, and clients spill
  // independently — so the replica-additive merge is byte-identical at
  // any thread or shard count for a fixed budget. Restricting to the
  // subset a replica owns keeps it byte-identical across replica layouts
  // too: boundary discovery runs from client 0 in *every* replica, and
  // only the replica that owns client 0 may count its spills. (flush wall
  // time is deliberately not here; see collect_kernel_metrics.)
  std::uint64_t spill_bytes = 0, spill_blocks = 0, spill_records = 0;
  std::uint64_t spill_raw = 0;
  const auto fold = [&](const Client& c) {
    if (!c.spill) return;
    spill_bytes += c.spill->stats().bytes_written;
    spill_blocks += c.spill->stats().blocks;
    spill_records += c.spill->stats().records;
    spill_raw += c.spill->stats().raw_bytes;
  };
  if (client_indices.empty()) {
    for (const Client& c : clients_) fold(c);
  } else {
    for (const std::size_t i : client_indices) fold(clients_.at(i));
  }
  out.add("spill_bytes_written", spill_bytes);
  out.add("spill_blocks", spill_blocks);
  out.add("spill_records", spill_records);
  out.add("spill_raw_bytes", spill_raw);
}

}  // namespace dyncdn::testbed
