// The paper's measurable query parameters (§2):
//
//   T_static  := t4 - t2   — bounds FE-side processing + static delivery
//   T_dynamic := t5 - t2   — upper-bounds the FE-BE fetch time
//   T_delta   := t5 - t4   — lower-bounds the FE-BE fetch time
//
// computed from extracted packet timelines, in milliseconds for direct
// comparison with the paper's figures.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/timeline.hpp"

namespace dyncdn::core {

struct QueryTimings {
  double rtt_ms = 0;        // client<->FE handshake RTT
  double t_static_ms = 0;   // t4 - t2
  double t_dynamic_ms = 0;  // t5 - t2
  double t_delta_ms = 0;    // max(0, t5 - t4): clamped, coalesced packets
                            // at high RTT drive it to zero (paper Fig. 5c)
  double overall_ms = 0;    // te - tb, the user-perceived response time
  std::size_t static_bytes = 0;
  std::size_t dynamic_bytes = 0;

  std::string to_string() const;
};

/// Derive timings from a valid extracted timeline; nullopt if invalid.
std::optional<QueryTimings> timings_from_timeline(
    const analysis::QueryTimeline& timeline);

/// Batch conversion, silently skipping invalid timelines.
std::vector<QueryTimings> timings_from_timelines(
    std::span<const analysis::QueryTimeline> timelines);

/// Column extractors for stats helpers.
std::vector<double> extract_rtt(std::span<const QueryTimings> xs);
std::vector<double> extract_static(std::span<const QueryTimings> xs);
std::vector<double> extract_dynamic(std::span<const QueryTimings> xs);
std::vector<double> extract_delta(std::span<const QueryTimings> xs);
std::vector<double> extract_overall(std::span<const QueryTimings> xs);

}  // namespace dyncdn::core
