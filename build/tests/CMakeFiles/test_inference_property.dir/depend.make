# Empty dependencies file for test_inference_property.
# This may be replaced when dependencies are built.
