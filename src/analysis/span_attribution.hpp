// Span-forest walker for per-query latency attribution.
//
// Walks a trace's span list (live from a TraceSession, or rebuilt from a
// Chrome-trace JSON dump by trace_inspect), pairs each `query` span with
// its `tcp.flow` / `fe.request` / `fe.service` / `fe.fetch` descendants,
// and derives the Fig.-2 control points. t5 comes from the *same* code
// path the packet-capture pipeline uses (`ReassembledStream::from_segments`
// + `finish_timeline_from_stream` over the flow's rx events), which is why
// the attribution sum reconciles with capture-derived T_dynamic at
// tolerance 0. The obs-layer reducers (`QueryAttribution`,
// `FlightRecorder`) consume the extracted samples; this file owns the
// analysis dependency so src/obs/ stays free of it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"

namespace dyncdn::analysis {

struct AttributedQuery {
  bool ok = false;  // decomposable (complete, not failed)
  obs::QueryAttribution::Sample sample;
  std::string node;
  std::string keyword;
  double t_dynamic_ms = 0.0;
  std::int64_t end_ns = 0;  // completion time (deterministic sort key)
  // Indexes into the input span list: the query span and its whole
  // subtree, parent before child (for flight-recorder promotion).
  std::vector<std::size_t> subtree;
};

struct SpanAttributionResult {
  // Completed queries sorted by (end_ns, node, keyword) so downstream
  // reducers see a deterministic order at any thread/shard count.
  std::vector<AttributedQuery> queries;
  std::vector<double> dns_ms;  // root dns.resolve durations, input order
  std::size_t skipped = 0;     // failed / incomplete query spans
};

/// Decompose every query span in `spans` using `boundary` (stream bytes)
/// as the static/dynamic split — the same value the capture pipeline's
/// content analysis discovers.
SpanAttributionResult extract_attribution(
    const std::vector<obs::SpanRecord>& spans, std::size_t boundary);

/// Static/dynamic boundary recovered from the spans themselves: the FE
/// stamps the wire size of the static portion (`bytes`) on every
/// `static_flush` event. Returns 0 when no stamped event exists (traces
/// from before the arg was added). Lets `trace_inspect attribution` work
/// on a span dump alone, with no packet capture beside it.
std::size_t boundary_from_spans(const std::vector<obs::SpanRecord>& spans);

/// Extract and feed the obs-layer reducers in deterministic order.
/// `flight`, when non-null, receives one entry per completed query with
/// the full span subtree attached.
void reduce_attribution(const std::vector<obs::SpanRecord>& spans,
                        std::size_t boundary,
                        obs::QueryAttribution& attribution,
                        obs::FlightRecorder* flight = nullptr);

}  // namespace dyncdn::analysis
