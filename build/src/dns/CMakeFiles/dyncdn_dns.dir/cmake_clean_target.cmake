file(REMOVE_RECURSE
  "libdyncdn_dns.a"
)
