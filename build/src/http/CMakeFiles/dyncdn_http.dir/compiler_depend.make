# Empty compiler generated dependencies file for dyncdn_http.
# This may be replaced when dependencies are built.
