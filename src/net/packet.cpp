#include "net/packet.hpp"

#include <algorithm>
#include <cstdio>

namespace dyncdn::net {

Buffer make_buffer(std::string_view text) {
  return make_buffer(std::vector<std::uint8_t>(text.begin(), text.end()));
}

PayloadRef PayloadRef::slice(std::size_t off, std::size_t len) const {
  PayloadRef out;
  if (off >= length) return out;
  out.buffer = buffer;
  out.offset = offset + off;
  out.length = std::min(len, length - off);
  return out;
}

std::string PayloadRef::to_text() const {
  const auto b = bytes();
  return std::string(b.begin(), b.end());
}

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += "SYN|";
  if (ack) s += "ACK|";
  if (fin) s += "FIN|";
  if (rst) s += "RST|";
  if (s.empty()) return "-";
  s.pop_back();
  return s;
}

std::string Packet::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u:%u -> %u:%u seq=%llu ack=%llu win=%u [%s] %zuB",
                src.value(), static_cast<unsigned>(tcp.src_port), dst.value(),
                static_cast<unsigned>(tcp.dst_port),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack), tcp.window,
                tcp.flags.to_string().c_str(), payload.length);
  return buf;
}

}  // namespace dyncdn::net
