// Response-content model.
//
// The paper's content analysis found every search response splits into:
//  - a STATIC portion, identical across queries (HTTP header, HTML head,
//    CSS, the "Videos / News / Shopping" menu bar) — cached at the FE and
//    delivered immediately; and
//  - a DYNAMIC portion (keyword-dependent menu, results, ads) — generated
//    at the BE per query.
//
// We synthesize both deterministically. The static prefix is bit-identical
// for every query of a service, so the analyzer's cross-query common-prefix
// discovery has a real signal to find; the dynamic body embeds the keyword
// and varies in size with query complexity.
#pragma once

#include <cstddef>
#include <string>

#include "search/keywords.hpp"
#include "sim/random.hpp"

namespace dyncdn::search {

struct ContentProfile {
  /// Bytes of static HTML/CSS/menu (excluding the HTTP header block).
  std::size_t static_html_bytes = 9000;
  /// Dynamic body: base size plus a per-query-word increment.
  std::size_t dynamic_base_bytes = 16000;
  std::size_t dynamic_per_word_bytes = 1500;
  /// Multiplicative lognormal noise on the dynamic size (per query).
  double dynamic_size_sigma = 0.05;
  /// Number of synthesized result entries.
  std::size_t results_per_page = 10;
};

class ContentModel {
 public:
  /// `service_name` flavors the static prefix so different services have
  /// different (but internally constant) static content.
  ContentModel(ContentProfile profile, std::string service_name);

  /// The static portion: HTML head + CSS + menu bar. Identical for every
  /// query; the FE serves this from cache.
  const std::string& static_prefix() const { return static_prefix_; }

  /// The dynamic portion for one query: keyword-dependent result page.
  /// Size varies with word count and the rng draw.
  std::string dynamic_body(const Keyword& keyword, sim::RngStream& rng) const;

  /// Deterministic expected size (before noise) — used by tests.
  std::size_t expected_dynamic_bytes(const Keyword& keyword) const;

  const ContentProfile& profile() const { return profile_; }
  const std::string& service_name() const { return service_name_; }

 private:
  ContentProfile profile_;
  std::string service_name_;
  std::string static_prefix_;
};

}  // namespace dyncdn::search
