file(REMOVE_RECURSE
  "libdyncdn_search.a"
)
