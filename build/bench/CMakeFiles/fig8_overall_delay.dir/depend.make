# Empty dependencies file for fig8_overall_delay.
# This may be replaced when dependencies are built.
