
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/socket.cpp" "src/tcp/CMakeFiles/dyncdn_tcp.dir/socket.cpp.o" "gcc" "src/tcp/CMakeFiles/dyncdn_tcp.dir/socket.cpp.o.d"
  "/root/repo/src/tcp/stack.cpp" "src/tcp/CMakeFiles/dyncdn_tcp.dir/stack.cpp.o" "gcc" "src/tcp/CMakeFiles/dyncdn_tcp.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dyncdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
