file(REMOVE_RECURSE
  "libdyncdn_analysis.a"
)
