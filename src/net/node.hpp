// A simulated host: named, geographically placed, with a transport handler
// (the node's TCP stack) and capture-tap hooks for tcpdump-like tracing.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/geo.hpp"
#include "net/packet.hpp"

namespace dyncdn::net {

class Network;

class Node {
 public:
  /// Called when a packet addressed to this node arrives.
  using ReceiveHandler = std::function<void(const PacketPtr&)>;
  /// Capture hook; sees every packet sent from / delivered to this node.
  using TapFn = std::function<void(const PacketPtr&)>;

  Node(Network& network, NodeId id, std::string name, GeoPoint location);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  const GeoPoint& location() const { return location_; }
  Network& network() { return network_; }

  /// Install the transport layer. Exactly one handler per node; a second
  /// registration replaces the first (used by tests).
  void set_receive_handler(ReceiveHandler handler) {
    receive_handler_ = std::move(handler);
  }

  /// Register capture hooks. Multiple taps may coexist (e.g. a trace
  /// recorder plus a live statistics probe).
  void add_send_tap(TapFn tap) { send_taps_.push_back(std::move(tap)); }
  void add_receive_tap(TapFn tap) { receive_taps_.push_back(std::move(tap)); }

  /// Inject a packet originating at this node into the network.
  /// (Transport layers call this; it stamps src and routes.)
  void send(PacketPtr packet);

  /// Called by the network when a packet for this node arrives.
  void deliver(const PacketPtr& packet);

 private:
  Network& network_;
  NodeId id_;
  std::string name_;
  GeoPoint location_;
  ReceiveHandler receive_handler_;
  std::vector<TapFn> send_taps_;
  std::vector<TapFn> receive_taps_;
};

}  // namespace dyncdn::net
