// Fixed-size slab allocator for hot-path simulation state.
//
// A SlabPool hands out fixed-size blocks from a free list refilled in
// chunks, so steady-state acquire/release is a vector pop/push instead of
// a heap round trip. Pools are NOT thread-safe by design: the intended
// instances are thread_local (one per shard worker) or owned by a
// single-shard component, matching the PDES discipline where each node's
// state is touched by exactly one thread between barriers. Blocks released
// on a different thread than they were acquired on simply migrate to the
// releasing thread's pool — the chunks that back them stay owned by the
// allocating pool, which is why chunk storage is only reclaimed at
// thread/pool teardown.
//
// Under AddressSanitizer (DYNCDN_SANITIZE builds) every free-listed block
// is poisoned, so use-after-release of slab state faults exactly like a
// heap use-after-free would.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DYNCDN_MEM_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define DYNCDN_MEM_ASAN 1
#endif

#ifndef DYNCDN_MEM_ASAN
#define DYNCDN_MEM_ASAN 0
#endif

#if DYNCDN_MEM_ASAN
#include <sanitizer/asan_interface.h>
#define DYNCDN_MEM_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define DYNCDN_MEM_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define DYNCDN_MEM_POISON(p, n) ((void)(p), (void)(n))
#define DYNCDN_MEM_UNPOISON(p, n) ((void)(p), (void)(n))
#endif

namespace dyncdn::mem {

class SlabPool {
 public:
  /// `block_size` is rounded up to max_align_t alignment so any object that
  /// fits can live in a block. `blocks_per_chunk` controls refill
  /// granularity: one heap allocation buys that many blocks.
  explicit SlabPool(std::size_t block_size, std::size_t blocks_per_chunk = 64)
      : block_size_(round_up(block_size)),
        blocks_per_chunk_(blocks_per_chunk == 0 ? 1 : blocks_per_chunk) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (void* chunk : chunks_) {
      DYNCDN_MEM_UNPOISON(chunk, chunk_bytes());
      ::operator delete(chunk);
    }
  }

  void* allocate() {
    if (free_.empty()) refill();
    void* p = free_.back();
    free_.pop_back();
    DYNCDN_MEM_UNPOISON(p, block_size_);
    return p;
  }

  void deallocate(void* p) {
    if (p == nullptr) return;
    DYNCDN_MEM_POISON(p, block_size_);
    free_.push_back(p);
  }

  std::size_t block_size() const { return block_size_; }
  std::size_t free_count() const { return free_.size(); }
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Whether `p` lies inside one of this pool's chunks (tests only; O(chunks)).
  bool owns(const void* p) const {
    const auto* b = static_cast<const std::byte*>(p);
    for (void* chunk : chunks_) {
      const auto* c = static_cast<const std::byte*>(chunk);
      if (b >= c && b < c + chunk_bytes()) return true;
    }
    return false;
  }

 private:
  static std::size_t round_up(std::size_t n) {
    const std::size_t a = alignof(std::max_align_t);
    return n < a ? a : (n + a - 1) / a * a;
  }

  std::size_t chunk_bytes() const { return block_size_ * blocks_per_chunk_; }

  void refill() {
    auto* chunk = static_cast<std::byte*>(::operator new(chunk_bytes()));
    chunks_.push_back(chunk);
    free_.reserve(free_.size() + blocks_per_chunk_);
    // Push in reverse so the pool hands out blocks in ascending address
    // order — deterministic layout, friendlier prefetch.
    for (std::size_t i = blocks_per_chunk_; i-- > 0;) {
      std::byte* block = chunk + i * block_size_;
      DYNCDN_MEM_POISON(block, block_size_);
      free_.push_back(block);
    }
  }

  std::size_t block_size_;
  std::size_t blocks_per_chunk_;
  std::vector<void*> free_;   // external free list: never reads freed blocks
  std::vector<void*> chunks_;
};

/// Typed facade over SlabPool: placement-constructs T in a slab block and
/// destroys it on release. One instance per owning component (per-stack
/// socket slab, per-analyzer timeline slab, ...).
template <class T>
class TypedSlab {
 public:
  explicit TypedSlab(std::size_t blocks_per_chunk = 64)
      : pool_(sizeof(T), blocks_per_chunk) {}

  template <class... Args>
  T* create(Args&&... args) {
    void* p = pool_.allocate();
    try {
      return new (p) T(std::forward<Args>(args)...);
    } catch (...) {
      pool_.deallocate(p);
      throw;
    }
  }

  void destroy(T* p) {
    if (p == nullptr) return;
    p->~T();
    pool_.deallocate(p);
  }

  std::size_t free_count() const { return pool_.free_count(); }

 private:
  SlabPool pool_;
};

}  // namespace dyncdn::mem
