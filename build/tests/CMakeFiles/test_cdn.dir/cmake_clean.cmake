file(REMOVE_RECURSE
  "CMakeFiles/test_cdn.dir/cdn_test.cpp.o"
  "CMakeFiles/test_cdn.dir/cdn_test.cpp.o.d"
  "test_cdn"
  "test_cdn.pdb"
  "test_cdn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
