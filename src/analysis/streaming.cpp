#include "analysis/streaming.hpp"

#include <stdexcept>
#include <utility>

namespace dyncdn::analysis {

namespace {

/// A packet that can no longer influence a finished flow's timeline: no
/// payload, no control flags. The teardown's trailing ACK is the common
/// case.
bool is_pure_ack(const capture::PacketRecord& r) {
  return r.payload_size == 0 && !r.tcp.flags.syn && !r.tcp.flags.fin &&
         !r.tcp.flags.rst;
}

}  // namespace

StreamingTimeline::StreamingTimeline(const net::FlowId& flow) {
  tl_.flow = flow;
}

void StreamingTimeline::observe(const capture::PacketRecord& r) {
  const bool sent = r.direction == capture::Direction::kSent;

  // Control-plane events: this chain must stay a verbatim mirror of
  // timeline_from_conn() — same conditions, same else-if exclusivity — or
  // streaming results drift from the post-hoc path.
  if (sent && r.tcp.flags.syn && !saw_syn_) {
    tl_.tb = r.timestamp;
    client_iss_ = r.tcp.seq;
    saw_syn_ = true;
  } else if (!sent && r.tcp.flags.syn && r.tcp.flags.ack && !saw_synack_) {
    tl_.t_synack = r.timestamp;
    saw_synack_ = true;
  } else if (sent && r.payload_size > 0 && !saw_t1_) {
    tl_.t1 = r.timestamp;  // the GET
    saw_t1_ = true;
  } else if (!sent && saw_t1_ && !saw_t2_ && r.tcp.flags.ack && client_iss_ &&
             r.tcp.ack > *client_iss_ + 1) {
    // First packet from the server acknowledging request payload.
    tl_.t2 = r.timestamp;
    saw_t2_ = true;
  }

  // Received-side stream state, mirroring reassemble(): the normalizer is
  // the *last* received SYN seq (+1), falling back to the minimum data
  // seq; segments are kept raw because the base is only final at the end.
  if (!sent) {
    if (r.tcp.flags.syn) rcv_iss_ = r.tcp.seq;
    if (r.payload_size > 0) {
      if (!min_data_seq_ || r.tcp.seq < *min_data_seq_) {
        min_data_seq_ = r.tcp.seq;
      }
      data_.push_back(RawSegment{r.tcp.seq, r.payload_size, r.timestamp});
    }
    if (r.tcp.flags.fin) fin_rcvd_ = true;
  } else {
    if (r.tcp.flags.fin) fin_sent_ = true;
  }
  if (r.tcp.flags.rst) rst_ = true;
}

QueryTimeline StreamingTimeline::finalize(std::size_t boundary) const {
  QueryTimeline tl = tl_;
  tl.boundary = boundary;

  if (!saw_syn_ || !saw_synack_ || !saw_t1_ || !saw_t2_) {
    tl.invalid_reason = "incomplete handshake/request events";
    return tl;
  }

  // Normalize segments exactly as reassemble() would over the full trace.
  std::vector<ReassembledStream::Segment> segments;
  if (min_data_seq_) {
    const std::uint64_t base = rcv_iss_ ? *rcv_iss_ + 1 : *min_data_seq_;
    segments.reserve(data_.size());
    for (const RawSegment& s : data_) {
      if (s.seq < base) continue;  // pre-data sequence space (SYN)
      segments.push_back(ReassembledStream::Segment{
          static_cast<std::size_t>(s.seq - base), s.length, s.at});
    }
  }
  const ReassembledStream stream =
      ReassembledStream::from_segments(std::move(segments));
  finish_timeline_from_stream(tl, stream, boundary);
  return tl;
}

StreamingAnalyzer::StreamingAnalyzer(net::Port server_port)
    : server_port_(server_port) {}

void StreamingAnalyzer::on_packet(const capture::PacketRecord& record) {
  const net::FlowId flow = record.flow_at_capture_node();
  if (flow.remote.port != server_port_) return;

  const auto [it, inserted] = index_.try_emplace(flow, slots_.size());
  if (inserted) {
    slots_.push_back(
        Slot{flow, std::make_unique<StreamingTimeline>(flow), std::nullopt});
    live_bytes_ += slots_.back().live->retained_bytes();
    bump_peak();
  }
  Slot& slot = slots_[it->second];

  if (!slot.live) {
    // Flow already collapsed online. Teardown ACKs are inert by
    // construction; anything else would have changed the post-hoc result.
    if (!is_pure_ack(record)) ++late_packets_;
    return;
  }

  const std::size_t before = slot.live->retained_bytes();
  slot.live->observe(record);
  live_bytes_ += slot.live->retained_bytes() - before;
  bump_peak();

  if (boundary_ && slot.live->complete()) collapse(slot);
}

void StreamingAnalyzer::collapse(Slot& slot) {
  live_bytes_ -= slot.live->retained_bytes();
  slot.done = slot.live->finalize(*boundary_);
  slot.live.reset();
  live_bytes_ += sizeof(QueryTimeline);
  bump_peak();
  ++emitted_online_;
}

void StreamingAnalyzer::set_boundary(std::size_t boundary) {
  if (boundary_ && *boundary_ != boundary) {
    throw std::logic_error(
        "StreamingAnalyzer: boundary already set to a different value");
  }
  boundary_ = boundary;
  for (Slot& slot : slots_) {
    if (slot.live && slot.live->complete()) collapse(slot);
  }
}

std::vector<QueryTimeline> StreamingAnalyzer::drain(std::size_t boundary) {
  if (boundary_ && *boundary_ != boundary) {
    throw std::logic_error(
        "StreamingAnalyzer: drain boundary differs from streaming boundary");
  }
  boundary_ = boundary;

  std::vector<QueryTimeline> out;
  out.reserve(slots_.size());
  for (Slot& slot : slots_) {
    if (slot.live) {
      out.push_back(slot.live->finalize(boundary));
    } else {
      out.push_back(std::move(*slot.done));
    }
  }
  slots_.clear();
  index_.clear();
  live_bytes_ = 0;
  return out;
}

void StreamingAnalyzer::on_clear() {
  slots_.clear();
  index_.clear();
  live_bytes_ = 0;
  boundary_.reset();
}

}  // namespace dyncdn::analysis
