#include "obs/flight.hpp"

#include <cinttypes>
#include <cstdio>

namespace dyncdn::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

void append_args(std::string& out, const std::vector<Arg>& args) {
  out.push_back('{');
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.push_back('"');
    append_escaped(out, args[i].key);
    out += "\":";
    const ArgValue& v = args[i].value;
    switch (v.type) {
      case ArgValue::Type::kInt:
        append_i64(out, v.i);
        break;
      case ArgValue::Type::kDouble:
        append_double(out, v.d);
        break;
      case ArgValue::Type::kString:
        out.push_back('"');
        append_escaped(out, v.s);
        out.push_back('"');
        break;
    }
  }
  out.push_back('}');
}

void append_span(std::string& out, const SpanRecord& span) {
  out += "{\"id\":";
  append_u64(out, span.id);
  out += ",\"parent\":";
  append_u64(out, span.parent);
  out += ",\"name\":\"";
  append_escaped(out, span.name);
  out += "\",\"cat\":\"";
  append_escaped(out, span.category);
  out += "\",\"start_ns\":";
  append_i64(out, span.start.ns());
  out += ",\"end_ns\":";
  append_i64(out, span.end.ns());
  out += ",\"args\":";
  append_args(out, span.args);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < span.events.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += "{\"name\":\"";
    append_escaped(out, span.events[i].name);
    out += "\",\"at_ns\":";
    append_i64(out, span.events[i].at.ns());
    out += ",\"args\":";
    append_args(out, span.events[i].args);
    out.push_back('}');
  }
  out += "]}";
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Options()) {}

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  if (options_.recent_capacity == 0) options_.recent_capacity = 1;
  if (options_.slow_capacity == 0) options_.slow_capacity = 1;
}

double FlightRecorder::current_threshold_ms() const {
  if (options_.threshold_ms > 0.0) return options_.threshold_ms;
  if (t_dynamic_.count() < options_.min_samples) return 0.0;
  return t_dynamic_.quantile(options_.quantile) * options_.slow_factor;
}

bool FlightRecorder::observe(Entry entry) {
  const double threshold = current_threshold_ms();
  const bool slow = threshold > 0.0 && entry.t_dynamic_ms > threshold;
  t_dynamic_.observe(entry.t_dynamic_ms);
  ++observed_;
  if (slow) {
    entry.threshold_ms = threshold;
    slow_.push_back(std::move(entry));
    while (slow_.size() > options_.slow_capacity) slow_.pop_front();
    return true;
  }
  entry.threshold_ms = 0.0;
  recent_.push_back(std::move(entry));
  while (recent_.size() > options_.recent_capacity) recent_.pop_front();
  return false;
}

void FlightRecorder::merge(const FlightRecorder& other) {
  observed_ += other.observed_;
  t_dynamic_.merge(other.t_dynamic_);
  for (const Entry& e : other.recent_) {
    recent_.push_back(e);
    while (recent_.size() > options_.recent_capacity) recent_.pop_front();
  }
  for (const Entry& e : other.slow_) {
    slow_.push_back(e);
    while (slow_.size() > options_.slow_capacity) slow_.pop_front();
  }
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\"observed\":";
  append_u64(out, observed_);
  out += ",\"threshold_ms\":";
  append_double(out, current_threshold_ms());
  out += ",\"slow\":[";
  bool first = true;
  for (const Entry& e : slow_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"node\":\"";
    append_escaped(out, e.node);
    out += "\",\"keyword\":\"";
    append_escaped(out, e.keyword);
    out += "\",\"t_dynamic_ms\":";
    append_double(out, e.t_dynamic_ms);
    out += ",\"threshold_ms\":";
    append_double(out, e.threshold_ms);
    out += ",\"end_ns\":";
    append_i64(out, e.end_ns);
    out += ",\"spans\":[";
    for (std::size_t i = 0; i < e.spans.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_span(out, e.spans[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace dyncdn::obs
