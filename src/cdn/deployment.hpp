// Service deployment profiles.
//
// The paper contrasts two operational models for the same architecture:
//   - GoogleLike: the service's own FE fleet. Fewer FEs (farther from
//     clients), dedicated machines (low, stable FE service time), BE data
//     centers near the FEs, fast and stable BE processing.
//   - BingLike: a third-party CDN (Akamai) as the FE fleet. FEs in nearly
//     every metro (very close to clients), shared machines (higher, more
//     variable service time), a distant BE data center, slower and more
//     variable BE processing.
//
// All the knobs live here so benches can sweep them; the numbers are
// calibrated so the reproduced figures match the paper's *shapes* (see
// EXPERIMENTS.md for the calibration notes).
#pragma once

#include <cstdint>
#include <string>

#include "cdn/backend.hpp"
#include "cdn/frontend.hpp"
#include "cdn/load_model.hpp"
#include "net/geo.hpp"
#include "search/content_model.hpp"
#include "tcp/config.hpp"

namespace dyncdn::cdn {

struct ServiceProfile {
  std::string name;

  search::ContentProfile content;

  /// BE query processing (T_proc model).
  ProcessingModel processing;

  /// FE request-handling service time.
  LoadModel fe_service;

  /// Fraction of metros that host an FE site (1.0 = every metro, like
  /// Akamai; lower = clients often reach an FE in another metro).
  double fe_metro_coverage = 1.0;

  /// BE data-center location.
  net::GeoPoint be_location;
  std::string be_site_name;

  /// TCP tuning. Client side uses `client_tcp` (both at clients and at the
  /// FE's client-facing sockets); `internal_tcp` governs FE<->BE. The
  /// internal receive window bounds the paper's constant C in
  /// T_fetch = T_proc + C * RTT_be.
  tcp::TcpConfig client_tcp;
  tcp::TcpConfig internal_tcp;

  bool warm_backend_connection = true;

  /// Link parameters.
  double client_fe_bandwidth_bps = 50e6;   // access links
  double fe_be_bandwidth_bps = 1e9;        // internal / well-provisioned
  double fe_be_loss = 0.0;                 // per-packet, each direction
  /// Last-mile one-way latency added on client<->FE links, per client,
  /// uniform in [min, max] (models access-network delay).
  double last_mile_min_ms = 1.0;
  double last_mile_max_ms = 3.0;
};

/// Google-style deployment: dedicated FEs, sparse placement, fast BE.
ServiceProfile google_like_profile();

/// Bing-style deployment: Akamai FEs everywhere, shared load, distant and
/// slow BE.
ServiceProfile bing_like_profile();

}  // namespace dyncdn::cdn
