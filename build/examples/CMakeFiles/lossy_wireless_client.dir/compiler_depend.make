# Empty compiler generated dependencies file for lossy_wireless_client.
# This may be replaced when dependencies are built.
