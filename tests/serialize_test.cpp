// Trace serialization round-trip and error-handling tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "capture/recorder.hpp"
#include "capture/serialize.hpp"
#include "analysis/reassembly.hpp"
#include "harness.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::capture {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;

/// Produces a real captured trace with handshake, data and teardown.
PacketTrace make_real_trace(bool payloads) {
  static std::unique_ptr<TwoNodeHarness> harness;
  harness = std::make_unique<TwoNodeHarness>();
  RecorderOptions ro;
  ro.capture_payloads = payloads;
  auto recorder = std::make_unique<TraceRecorder>(*harness->client_node,
                                                  harness->simulator, ro);
  harness->server->listen(80, [](tcp::TcpSocket& s) {
    tcp::TcpSocket::Callbacks cb;
    cb.on_data = [&s](net::PayloadRef) {
      s.send_text("response:" + pattern_text(4000));
      s.close();
    };
    s.set_callbacks(std::move(cb));
  });
  tcp::TcpSocket& c =
      harness->client->connect({harness->server_node->id(), 80}, {});
  c.send_text("GET /x HTTP/1.1\r\n\r\n");
  harness->simulator.run();
  return recorder->trace();
}

void expect_traces_equal(const PacketTrace& a, const PacketTrace& b,
                         bool with_payloads) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.node(), b.node());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto x = a.records()[i];
    const auto y = b.records()[i];
    EXPECT_EQ(x.timestamp, y.timestamp) << i;
    EXPECT_EQ(x.direction, y.direction) << i;
    EXPECT_EQ(x.src, y.src) << i;
    EXPECT_EQ(x.dst, y.dst) << i;
    EXPECT_EQ(x.tcp.seq, y.tcp.seq) << i;
    EXPECT_EQ(x.tcp.ack, y.tcp.ack) << i;
    EXPECT_EQ(x.tcp.window, y.tcp.window) << i;
    EXPECT_EQ(x.tcp.flags.syn, y.tcp.flags.syn) << i;
    EXPECT_EQ(x.tcp.flags.ack, y.tcp.flags.ack) << i;
    EXPECT_EQ(x.tcp.flags.fin, y.tcp.flags.fin) << i;
    EXPECT_EQ(x.tcp.flags.rst, y.tcp.flags.rst) << i;
    EXPECT_EQ(x.payload_size, y.payload_size) << i;
    if (with_payloads) {
      EXPECT_EQ(x.payload.to_text(), y.payload.to_text()) << i;
    } else {
      EXPECT_TRUE(y.payload.empty()) << i;
    }
  }
}

TEST(TraceSerialize, RoundTripWithPayloads) {
  const PacketTrace original = make_real_trace(true);
  ASSERT_GT(original.size(), 5u);
  const PacketTrace parsed = parse_trace(serialize_trace(original, true));
  expect_traces_equal(original, parsed, true);
}

TEST(TraceSerialize, RoundTripHeadersOnly) {
  const PacketTrace original = make_real_trace(true);
  const PacketTrace parsed = parse_trace(serialize_trace(original, false));
  expect_traces_equal(original, parsed, false);
}

TEST(TraceSerialize, ReassemblyWorksOnParsedTrace) {
  // The acid test: the analysis pipeline must produce identical results on
  // the round-tripped trace.
  const PacketTrace original = make_real_trace(true);
  const PacketTrace parsed = parse_trace(serialize_trace(original, true));
  const auto flow = original.flows().front();
  const auto a =
      analysis::reassemble(original, flow, Direction::kReceived);
  const auto b = analysis::reassemble(parsed, flow, Direction::kReceived);
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(a.length(), b.length());
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].at, b.segments()[i].at);
  }
}

TEST(TraceSerialize, FileSaveLoadRoundTrip) {
  const PacketTrace original = make_real_trace(true);
  const std::string path = ::testing::TempDir() + "dyncdn_trace_test.txt";
  save_trace(original, path);
  const PacketTrace loaded = load_trace(path);
  expect_traces_equal(original, loaded, true);
  std::remove(path.c_str());
}

TEST(TraceSerialize, EmptyTraceRoundTrips) {
  PacketTrace empty(net::NodeId{7});
  const PacketTrace parsed = parse_trace(serialize_trace(empty));
  EXPECT_EQ(parsed.node(), net::NodeId{7});
  EXPECT_TRUE(parsed.empty());
}

TEST(TraceSerialize, ParseRejectsMissingHeader) {
  EXPECT_THROW(parse_trace("1 snd 1 2 3 4 5 6 7 S 0\n"), std::runtime_error);
  EXPECT_THROW(parse_trace(""), std::runtime_error);
}

TEST(TraceSerialize, ParseRejectsMalformedLines) {
  const std::string header = "# dyncdn-trace v1 node=1\n";
  EXPECT_THROW(parse_trace(header + "garbage\n"), std::runtime_error);
  EXPECT_THROW(parse_trace(header + "1 mid 1 2 3 4 5 6 7 S 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace(header + "x snd 1 2 3 4 5 6 7 S 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace(header + "1 snd 1 2 3 4 5 6 7 Z 0\n"),
               std::runtime_error);
}

TEST(TraceSerialize, ParseRejectsPayloadMismatch) {
  const std::string header = "# dyncdn-trace v1 node=1\n";
  // paylen says 2 bytes but hex encodes 1.
  EXPECT_THROW(parse_trace(header + "1 snd 1 2 3 4 5 6 7 A 2 ff\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace(header + "1 snd 1 2 3 4 5 6 7 A 1 f\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace(header + "1 snd 1 2 3 4 5 6 7 A 1 zz\n"),
               std::runtime_error);
}

TEST(TraceSerialize, ParseErrorsCarryLineNumbers) {
  const std::string header = "# dyncdn-trace v1 node=1\n";
  try {
    parse_trace(header + "garbage\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  try {
    parse_trace("");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trace parse"), std::string::npos)
        << e.what();
  }
}

TEST(TraceSerialize, ParseRejectsDuplicateHeader) {
  const std::string header = "# dyncdn-trace v1 node=1\n";
  EXPECT_THROW(parse_trace(header + header), std::runtime_error);
}

TEST(TraceSerialize, ParseRejectsNegativeTimestamp) {
  const std::string header = "# dyncdn-trace v1 node=1\n";
  EXPECT_THROW(parse_trace(header + "-5 snd 1 2 3 4 5 6 7 S 0\n"),
               std::runtime_error);
}

TEST(TraceSerialize, ParseToleratesCommentsAndBlankLines) {
  const std::string text =
      "# dyncdn-trace v1 node=3\n"
      "# a comment\n"
      "\n"
      "1000 snd 3 40000 2 80 0 0 65535 S 0\n"
      "\n"
      "2000 rcv 2 80 3 40000 0 1 65535 SA 0\n";
  const PacketTrace trace = parse_trace(text);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.records()[0].tcp.flags.syn, true);
  EXPECT_EQ(trace.records()[1].direction, Direction::kReceived);
  EXPECT_EQ(trace.records()[1].tcp.flags.ack, true);
}

TEST(TraceSerialize, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/path/trace.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace dyncdn::capture
