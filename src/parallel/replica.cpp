#include "parallel/replica.hpp"

#include <cstdlib>

namespace dyncdn::parallel {

namespace {

/// SplitMix64 finalizer: the same mixing core RngFactory uses, applied to
/// the combined (base, index) word so replica universes never collide with
/// the named streams derived inside a replica.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t replica_seed(std::uint64_t base_seed,
                           std::uint64_t replica_index) {
  return mix(mix(base_seed) ^ (replica_index * 0xd1b54a32d192ed03ULL + 1));
}

std::size_t resolve_threads(const ExecutorConfig& config) {
  if (config.threads > 0) return config.threads;
  if (const char* env = std::getenv("DYNCDN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_grain(const ExecutorConfig& config) {
  if (config.grain > 0) return config.grain;
  if (const char* env = std::getenv("DYNCDN_GRAIN")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1;
}

bool grain_is_auto(const ExecutorConfig& config) {
  if (config.grain > 0) return false;
  if (const char* env = std::getenv("DYNCDN_GRAIN")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return false;
  }
  return true;
}

}  // namespace dyncdn::parallel
