// Umbrella header for instrumentation sites.
//
// DYNCDN_OBS is the compile-time kill switch (CMake option of the same
// name, default ON). Sites wrap span emission in `#if DYNCDN_OBS` so a
// =0 build removes tracing from the hot path entirely; with =1 the
// runtime gate is obs::active_trace(sim) — one pointer load and test
// when no session is attached or the session is disabled.
#pragma once

#ifndef DYNCDN_OBS
#define DYNCDN_OBS 1
#endif

#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::obs {

// The session attached to this simulator, or nullptr when tracing is off.
inline TraceSession* active_trace(const sim::Simulator& simulator) {
  TraceSession* t = simulator.trace();
  return (t != nullptr && t->enabled()) ? t : nullptr;
}

}  // namespace dyncdn::obs
