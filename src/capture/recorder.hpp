// TraceRecorder: attaches tcpdump-style taps to a node.
#pragma once

#include <algorithm>
#include <cstddef>

#include "capture/trace.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::capture {

class SpillWriter;  // capture/spill.hpp

/// Observer of packets as a recorder sees them. The streaming analysis
/// pipeline implements this to reduce traffic to timelines online without
/// the capture layer depending on analysis.
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  /// Called once per captured packet, in capture order. The record (and any
  /// retained payload reference) is only guaranteed valid for the duration
  /// of the call; sinks must copy what they keep.
  virtual void on_packet(const PacketRecord& record) = 0;

  /// Called when the recorder's buffer is discarded (warm-up, phase
  /// boundaries). Sinks should drop in-flight per-flow state so the next
  /// phase starts clean, mirroring what a post-hoc analyzer of the cleared
  /// trace would see.
  virtual void on_clear() = 0;
};

struct RecorderOptions {
  /// Retain full payload bytes (needed for content analysis). Headers-only
  /// captures are cheaper for long load experiments.
  bool capture_payloads = true;
  /// Keep every PacketRecord in the trace buffer. Streaming campaigns turn
  /// this off: packets still flow to the sink, but nothing accumulates.
  bool retain_packets = true;
};

/// Records every packet sent or received by one node.
///
/// Lifetime: the recorder registers taps on construction; the taps hold a
/// pointer to it, so it must outlive the node's traffic (recorders are
/// created once per experiment and kept until analysis completes).
/// Recording can be paused/resumed between experiment phases.
class TraceRecorder {
 public:
  TraceRecorder(net::Node& node, sim::Simulator& simulator,
                RecorderOptions options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const PacketTrace& trace() const { return trace_; }
  PacketTrace& trace() { return trace_; }

  void pause() { recording_ = false; }
  void resume() { recording_ = true; }
  bool recording() const { return recording_; }

  /// Toggle payload retention (e.g. on for a boundary-discovery phase,
  /// off for long measurement sweeps to bound memory).
  void set_capture_payloads(bool v) { options_.capture_payloads = v; }
  bool capture_payloads() const { return options_.capture_payloads; }

  /// Toggle trace-buffer retention. The sink keeps observing either way.
  void set_retain_packets(bool v) { options_.retain_packets = v; }
  bool retain_packets() const { return options_.retain_packets; }

  /// Attach/detach a streaming observer (not owned; must outlive traffic).
  void set_sink(PacketSink* sink) { sink_ = sink; }
  PacketSink* sink() const { return sink_; }

  /// Discard everything captured so far (e.g. between repetitions).
  /// Notifies the sink so online per-flow state resets in lockstep, and
  /// restarts the spill file (spilled records belong to the discarded
  /// capture).
  void clear();

  /// Attach a durable overflow target (not owned; must outlive traffic).
  /// Once trace().retained_bytes() reaches `budget_bytes` after an append,
  /// the buffered records are streamed to the writer and the in-memory
  /// buffer resets — memory stays bounded by the budget while the full
  /// capture survives on disk. A budget of 0 disables spilling.
  void set_spill(SpillWriter* spill, std::size_t budget_bytes);
  SpillWriter* spill() const { return spill_; }
  std::size_t spill_budget() const { return spill_budget_; }
  /// True once at least one budget-triggered spill has happened since the
  /// last clear() (i.e. trace() alone is an incomplete view).
  bool has_spilled() const { return has_spilled_; }

  /// The complete capture: the spilled prefix reloaded from disk followed
  /// by the in-memory tail. Finalizes the spill file (further capture
  /// requires clear(), which restarts it). When nothing has spilled this
  /// is simply a copy of trace().
  PacketTrace full_trace();

  /// High-water mark of trace_.retained_bytes() across the recorder's
  /// lifetime (clear() does not rewind it) — the deterministic measure of
  /// what full-capture retention would cost this node. Under a spill
  /// budget the buffer saw-tooths; the peak is noted immediately before
  /// each post-spill reset so it reflects the true high-water.
  std::size_t peak_retained_bytes() const { return peak_retained_bytes_; }

 private:
  void record(Direction direction, const net::PacketPtr& packet);
  void spill_buffer();

  sim::Simulator& simulator_;
  RecorderOptions options_;
  PacketTrace trace_;
  PacketSink* sink_ = nullptr;
  SpillWriter* spill_ = nullptr;
  std::size_t spill_budget_ = 0;
  bool has_spilled_ = false;
  std::size_t peak_retained_bytes_ = 0;
  bool recording_ = true;
};

}  // namespace dyncdn::capture
