# Empty dependencies file for ext_residential_access.
# This may be replaced when dependencies are built.
