#include "net/packet.hpp"

#include <algorithm>
#include <cstdio>
#include <new>

namespace dyncdn::net {

namespace {

/// Per-thread free list of fixed-size blocks. Each simulation replica runs
/// single-threaded on its own worker, so no locking; blocks released on a
/// different thread than they were acquired on simply migrate pools.
struct PacketBlockPool {
  std::vector<void*> blocks;
  std::size_t block_size = 0;

  ~PacketBlockPool() {
    for (void* b : blocks) ::operator delete(b);
  }
};

thread_local PacketBlockPool t_packet_pool;

/// Recycling allocator used only via allocate_shared<Packet>: every
/// allocation it ever sees is the single combined (control block + Packet)
/// node type, so one fixed block size serves the whole pool.
template <class T>
struct PacketPoolAllocator {
  using value_type = T;

  PacketPoolAllocator() = default;
  template <class U>
  PacketPoolAllocator(const PacketPoolAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    PacketBlockPool& pool = t_packet_pool;
    if (n == 1 && bytes == pool.block_size && !pool.blocks.empty()) {
      void* block = pool.blocks.back();
      pool.blocks.pop_back();
      return static_cast<T*>(block);
    }
    if (n == 1 && pool.block_size == 0) pool.block_size = bytes;
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) {
    constexpr std::size_t kMaxCachedBlocks = 4096;
    const std::size_t bytes = n * sizeof(T);
    PacketBlockPool& pool = t_packet_pool;
    if (n == 1 && bytes == pool.block_size &&
        pool.blocks.size() < kMaxCachedBlocks) {
      pool.blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const PacketPoolAllocator<U>&) const {
    return true;
  }
};

}  // namespace

PacketPtr acquire_packet() {
  return std::allocate_shared<Packet>(PacketPoolAllocator<Packet>{});
}

std::size_t packet_pool_free_count() { return t_packet_pool.blocks.size(); }

Buffer make_buffer(std::string_view text) {
  return make_buffer(std::vector<std::uint8_t>(text.begin(), text.end()));
}

PayloadRef PayloadRef::slice(std::size_t off, std::size_t len) const {
  PayloadRef out;
  if (off >= length) return out;
  out.buffer = buffer;
  out.offset = offset + off;
  out.length = std::min(len, length - off);
  return out;
}

std::string PayloadRef::to_text() const {
  const auto b = bytes();
  return std::string(b.begin(), b.end());
}

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += "SYN|";
  if (ack) s += "ACK|";
  if (fin) s += "FIN|";
  if (rst) s += "RST|";
  if (s.empty()) return "-";
  s.pop_back();
  return s;
}

std::string Packet::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%u:%u -> %u:%u seq=%llu ack=%llu win=%u [%s] %zuB",
                src.value(), static_cast<unsigned>(tcp.src_port), dst.value(),
                static_cast<unsigned>(tcp.dst_port),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack), tcp.window,
                tcp.flags.to_string().c_str(), payload.length);
  return buf;
}

}  // namespace dyncdn::net
