// Per-query latency attribution: an online reducer that decomposes each
// completed query's T_dynamic into the paper's components and feeds
// per-component log-scale histograms (p50/p99/p999 per component out of
// every run, no retained packets).
//
// The decomposition telescopes over span anchors on the Fig.-2 timeline:
//
//   a0 = t1                 GET transmitted (tx_data on the tcp.flow span)
//   a1 = fe.request start   FE received the request (fallback: a0)
//   a2 = fe.fetch start     FE issued the BE fetch   (fallback: a1)
//   a3 = fetch first_byte   first BE byte at the FE  (fallback: a2)
//
//   uplink   = a1 - a0        fe_wait  = a2 - a1
//   fe_fetch = a3 - a2        delivery = t5 - a3
//   ack      = t2 - t1        (client-side overlap, subtracted)
//
// so (uplink + fe_wait + fe_fetch + delivery) - ack == t5 - t2 ==
// T_dynamic holds *exactly* in integer nanoseconds by construction; any
// violation (negative component, broken event ordering) increments
// `attr_reconcile_failures` instead of polluting the histograms. connect
// (tb -> SYN-ACK) and fe.service (overlapping the fetch, so not part of
// the sum) are reported alongside; dns.resolve arrives via its own root
// spans. Cache-hit / fetch-free queries degenerate gracefully: the
// missing anchors collapse and the identity still holds.
//
// This class is pure obs-layer: it consumes precomputed Sample structs
// (exact nanoseconds). The span-forest walker that produces them — using
// the same reassembly code as the packet-capture pipeline, which is what
// makes the external capture-diff reconcile at tolerance 0 — lives in
// src/analysis/span_attribution.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dyncdn::obs {

class QueryAttribution {
 public:
  // Exact simulated-clock nanoseconds; -1 marks an absent anchor.
  struct Sample {
    std::int64_t tb = -1;        // SYN sent
    std::int64_t t_synack = -1;  // SYN-ACK received
    std::int64_t t1 = -1;        // GET transmitted
    std::int64_t t2 = -1;        // ACK of the GET
    std::int64_t t5 = -1;        // last dynamic byte
    std::int64_t fe_recv = -1;       // fe.request span start
    std::int64_t fetch_start = -1;   // fe.fetch span start
    std::int64_t fetch_first_byte = -1;  // first_byte event on fe.fetch
    std::int64_t fe_service_ns = -1;     // fe.service span duration
  };

  // Component histogram names in report order.
  static const std::vector<std::string>& component_names();

  // Reduce one completed query. Returns true when the sample passed the
  // telescoping reconciliation and fed the histograms.
  bool observe(const Sample& s);

  // dns.resolve spans are roots (resolution is outside the per-query
  // timeline, per the paper's footnote), so they arrive separately.
  void observe_dns_ms(double ms);

  // Count a query the walker could not decompose (failed / incomplete).
  void skip() { registry_.add("attr_skipped", 1); }

  void merge(const QueryAttribution& other) {
    registry_.merge(other.registry_);
  }

  std::uint64_t queries() const { return registry_.counter("attr_queries"); }
  std::uint64_t reconcile_failures() const {
    return registry_.counter("attr_reconcile_failures");
  }
  std::uint64_t skipped() const { return registry_.counter("attr_skipped"); }

  const MetricsRegistry& registry() const { return registry_; }

  // {"queries":N,...,"components":{name:{count,mean,p50,p99,p999,min,max}}}
  std::string to_json() const;

 private:
  MetricsRegistry registry_;
};

}  // namespace dyncdn::obs
