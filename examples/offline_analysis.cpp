// Offline analysis — the paper's capture-then-analyze workflow as two
// decoupled stages with a trace file in between.
//
// Stage 1 (capture): run a small measurement, stream the client's tcpdump-
// style trace into a durable binary .dtrc file (capture/spill.hpp).
// Stage 2 (analyze): mmap the file — as a separate consumer would — and
// run content-boundary discovery, timeline extraction and fetch-time
// inference on it.
//
//   $ ./examples/offline_analysis [trace-path]
//
// A path without the .dtrc extension selects the line-oriented text format
// (capture/serialize.hpp) instead — same records, grep-able, ~4-5x larger.
#include <cstdio>
#include <string>
#include <string_view>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/timeline.hpp"
#include "capture/serialize.hpp"
#include "capture/spill.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/dyncdn_offline_trace.dtrc";
  const bool binary = std::string_view(path).ends_with(".dtrc");

  // ---- Stage 1: capture -----------------------------------------------
  {
    testbed::ScenarioOptions opt;
    opt.profile = cdn::google_like_profile();
    opt.client_count = 1;
    opt.seed = 31;
    opt.capture_payloads = true;  // full payloads, like the paper's tcpdump
    testbed::Scenario scenario(opt);
    scenario.warm_up();

    auto& client = scenario.clients().front();
    search::KeywordCatalog catalog(3);
    // A handful of distinct queries (for boundary discovery) plus repeats.
    for (const auto& kw : catalog.distinct_corpus(5)) {
      client.query_client->submit(scenario.default_fe_endpoint(0), kw,
                                  [](const cdn::QueryResult&) {});
      scenario.run();
    }
    if (binary) {
      capture::save_trace_dtrc(client.recorder->trace(), path);
    } else {
      capture::save_trace(client.recorder->trace(), path);
    }
    std::printf("stage 1: captured %zu packets -> %s (%s format)\n",
                client.recorder->trace().size(), path.c_str(),
                binary ? "binary .dtrc" : "text");
  }

  // ---- Stage 2: analyze (no simulator, only the trace file) ------------
  // The binary path goes through SpillReader: the constructor mmaps the
  // file and parses only the footer; read_all() then decodes the blocks.
  // (capture::load_trace(path) would do the same via magic sniffing — the
  // explicit reader is shown here because block iteration and per-flow
  // seeks hang off it.)
  const capture::PacketTrace trace = [&] {
    if (binary) {
      capture::SpillReader reader(path);
      std::printf("stage 2: %zu blocks, %llu records in footer index\n",
                  reader.block_count(),
                  static_cast<unsigned long long>(reader.record_count()));
      return reader.read_all();
    }
    return capture::load_trace(path);
  }();
  std::printf("stage 2: loaded %zu packets (node %u)\n", trace.size(),
              trace.node().value());

  // Content analysis: reassemble every response and find the common prefix.
  const capture::PacketTrace service = trace.filter_remote_port(80);
  std::vector<std::string> responses;
  for (const net::FlowId& flow : service.flows()) {
    auto stream =
        analysis::reassemble(service, flow, capture::Direction::kReceived);
    if (!stream.empty()) responses.push_back(stream.bytes());
  }
  const std::size_t boundary = analysis::common_prefix_boundary(responses);
  std::printf("content analysis: %zu responses, static portion = %zu "
              "bytes\n",
              responses.size(), boundary);

  // Timeline extraction + inference.
  const auto timelines = analysis::extract_all_timelines(trace, 80, boundary);
  const auto timings = core::timings_from_timelines(timelines);
  std::printf("\n%6s %9s %10s %11s %9s %22s\n", "query", "RTT", "Tstatic",
              "Tdynamic", "Tdelta", "fetch bounds");
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const core::FetchBounds b = core::fetch_bounds(timings[i]);
    std::printf("%6zu %7.1fms %8.1fms %9.1fms %7.1fms   [%6.1f, %6.1f] ms\n",
                i + 1, timings[i].rtt_ms, timings[i].t_static_ms,
                timings[i].t_dynamic_ms, timings[i].t_delta_ms, b.lower_ms,
                b.upper_ms);
  }
  std::printf("\nThe analysis stage used nothing but the trace file — the "
              "same\nobservables the paper's offline tcpdump analysis "
              "had.\n");
  return 0;
}
