// Node addressing. The simulated internet uses flat 32-bit node addresses
// (one per host) plus 16-bit ports, mirroring the IP:port pairs tcpdump
// records in the paper's traces.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace dyncdn::net {

/// Flat address of a simulated host. Value 0 is reserved as "invalid".
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value_(v) {}
  constexpr std::uint32_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  friend constexpr auto operator<=>(NodeId, NodeId) = default;

 private:
  std::uint32_t value_ = 0;
};

using Port = std::uint16_t;

/// A transport endpoint (host address + port).
struct Endpoint {
  NodeId node;
  Port port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) = default;
  std::string to_string() const;
};

/// A TCP connection is identified by its two endpoints, as in a pcap
/// 4-tuple. Ordered so it can key std::map.
struct FlowId {
  Endpoint local;
  Endpoint remote;

  friend constexpr auto operator<=>(const FlowId&, const FlowId&) = default;
  FlowId reversed() const { return FlowId{remote, local}; }
  std::string to_string() const;
};

}  // namespace dyncdn::net

template <>
struct std::hash<dyncdn::net::NodeId> {
  std::size_t operator()(dyncdn::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<dyncdn::net::Endpoint> {
  std::size_t operator()(const dyncdn::net::Endpoint& e) const noexcept {
    return (static_cast<std::size_t>(e.node.value()) << 16) ^ e.port;
  }
};

template <>
struct std::hash<dyncdn::net::FlowId> {
  std::size_t operator()(const dyncdn::net::FlowId& f) const noexcept {
    const std::size_t h1 = std::hash<dyncdn::net::Endpoint>{}(f.local);
    const std::size_t h2 = std::hash<dyncdn::net::Endpoint>{}(f.remote);
    return h1 ^ (h2 * 0x9E3779B97F4A7C15ULL);
  }
};
