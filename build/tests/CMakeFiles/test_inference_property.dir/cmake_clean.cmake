file(REMOVE_RECURSE
  "CMakeFiles/test_inference_property.dir/inference_property_test.cpp.o"
  "CMakeFiles/test_inference_property.dir/inference_property_test.cpp.o.d"
  "test_inference_property"
  "test_inference_property.pdb"
  "test_inference_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inference_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
