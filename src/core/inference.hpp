// The model-based inference framework (the paper's core contribution).
//
// From externally measurable timings it:
//  - bounds the unobservable FE-BE fetch time:  T_delta <= T_fetch <= T_dynamic
//  - detects the RTT threshold beyond which T_delta = 0 — the paper's
//    placement trade-off: below the threshold, moving FEs closer to users
//    no longer improves perceived latency, which is then governed solely
//    by the fetch time;
//  - factors T_fetch = T_proc + C * RTT_be by regressing T_dynamic (for
//    low-RTT clients) against the FE<->BE distance: the intercept estimates
//    the back-end processing time, the slope the per-mile network delay.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/timings.hpp"
#include "stats/descriptive.hpp"
#include "stats/regression.hpp"

namespace dyncdn::core {

/// Bounds on the unobservable FE-BE fetch time for one query (Eq. 1).
struct FetchBounds {
  double lower_ms = 0;  // T_delta
  double upper_ms = 0;  // T_dynamic

  bool contains(double t_fetch_ms) const {
    return t_fetch_ms >= lower_ms && t_fetch_ms <= upper_ms;
  }
  double width() const { return upper_ms - lower_ms; }
};

FetchBounds fetch_bounds(const QueryTimings& q);

/// Per-vantage-point aggregate (one PlanetLab node in Figs. 5/7/8):
/// median of each timing across that node's repeated queries.
struct NodeAggregate {
  std::string node_name;
  double rtt_ms = 0;  // median handshake RTT
  double med_static_ms = 0;
  double med_dynamic_ms = 0;
  double med_delta_ms = 0;
  double med_overall_ms = 0;
  std::size_t samples = 0;
};

NodeAggregate aggregate_node(std::string node_name,
                             std::span<const QueryTimings> qs);

/// T_delta-threshold estimate from per-node aggregates (paper §4.1: for
/// Google ~50-100ms, Bing ~100-200ms).
struct ThresholdEstimate {
  bool found = false;
  /// Smallest RTT at which T_delta has collapsed to (near) zero.
  double threshold_rtt_ms = 0;
  /// Fit of T_delta vs RTT over the pre-threshold region; the paper's
  /// model predicts a negative slope ~ -(static-delivery RTT multiple).
  stats::LinearFit pre_threshold_fit;

  std::string to_string() const;
};

/// `zero_eps_ms`: T_delta below this counts as "zero".
ThresholdEstimate estimate_delta_threshold(
    std::span<const NodeAggregate> nodes, double zero_eps_ms = 5.0);

/// Fetch-time factoring via distance regression (§5, Fig. 9).
struct FetchFactoring {
  stats::LinearFit fit;  // y = slope * miles + intercept

  /// Estimated back-end processing time (the paper reads the Y-intercept
  /// as "the computation time for a given search query").
  double t_proc_ms() const { return fit.intercept; }
  /// Network contribution per mile of FE-BE distance.
  double slope_ms_per_mile() const { return fit.slope; }
  /// The constant C of Eq. 2 implied by the slope: slope divided by the
  /// per-mile RTT of light in fiber (2 / 124 ms per mile of separation).
  double implied_round_trips() const;

  std::string to_string() const;
};

/// `distances_miles[i]` pairs with `t_dynamic_ms[i]` (one point per FE
/// site, T_dynamic medians from low-RTT clients only, per the paper).
FetchFactoring factor_fetch_time(std::span<const double> distances_miles,
                                 std::span<const double> t_dynamic_ms);

}  // namespace dyncdn::core
