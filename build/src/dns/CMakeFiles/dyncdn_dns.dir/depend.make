# Empty dependencies file for dyncdn_dns.
# This may be replaced when dependencies are built.
