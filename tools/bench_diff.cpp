// Perf-regression gate over BENCH.json files.
//
//   bench_diff <baseline.json> <candidate.json> [--tolerance=0.10]
//              [--mem-tolerance=0.25] [--alloc-tolerance=0.10]
//
// Walks both documents and collects every gated metric by key name:
//
//   higher-is-better (throughput): `events_per_sec`,
//     `queries_per_sec_serial`, `queries_per_sec_best`, `packets_per_sec`,
//     `bytes_per_sec`, `stream_reduction_pct`, `spill_compression_x`.
//     Fails when the candidate is more than `tolerance` below the
//     baseline.
//
//   lower-is-better (memory): `peak_rss_bytes`, `peak_live_delta_bytes`,
//     `allocations`, `retained_bytes_peak`, `analyzer_bytes_peak`. Fails
//     when the candidate is more than `mem-tolerance` ABOVE the baseline
//     (memory is less noisy than wall clock but RSS quantizes in pages, so
//     it gets its own, looser knob).
//
//   lower-is-better (allocation counters): `allocs_per_query`. Heap
//     allocation counts are fully deterministic under DYNCDN_MEM_TRACK, so
//     they get the tightest knob (`--alloc-tolerance`, default 0.10): a
//     >10% rise in allocations per query fails even when wall clock and
//     peak memory look fine. Skipped (reported `ok`, ratio vs a zero
//     baseline) when either side was built without allocation tracking.
//
//   absolute ceiling (observability cost): `overhead_pct`,
//     `telemetry_overhead_pct`, `spill_overhead_pct`. Gated on the
//     CANDIDATE value alone against the section's own `hard_limit_pct`
//     sibling when the JSON emits one, else `--overhead-ceiling` (default
//     10.0) — these are wall-clock percentages whose baseline value is
//     noise, and the ceiling must hold even when the baseline predates
//     the section.
//
// Metrics are addressed by dotted path; metrics present on only one side
// are reported but not fatal, so the bench can grow sections without
// breaking older baselines. Exit 1 on regression, 2 on usage/parse errors.
//
// Wired into ctest as `bench_diff` (label: bench), comparing the run's
// fresh BENCH.json against the committed bench/BASELINE_quick.json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using dyncdn::obs::json::Value;

enum class Direction { kHigherIsBetter, kLowerIsBetter, kLowerIsBetterAlloc, kCeiling };

bool is_throughput_metric(const std::string& key) {
  return key == "events_per_sec" || key == "queries_per_sec_serial" ||
         key == "queries_per_sec_best" || key == "packets_per_sec" ||
         key == "bytes_per_sec" || key == "stream_reduction_pct" ||
         key == "spill_compression_x";
}

bool is_memory_metric(const std::string& key) {
  return key == "peak_rss_bytes" || key == "peak_live_delta_bytes" ||
         key == "allocations" || key == "retained_bytes_peak" ||
         key == "analyzer_bytes_peak";
}

bool is_alloc_metric(const std::string& key) {
  return key == "allocs_per_query";
}

bool is_ceiling_metric(const std::string& key) {
  return key == "overhead_pct" || key == "telemetry_overhead_pct" ||
         key == "spill_overhead_pct";
}

struct Metric {
  std::string path;
  double value = 0.0;
  Direction direction = Direction::kHigherIsBetter;
  // Ceiling metrics: the section's own "hard_limit_pct" sibling, when the
  // JSON provides one; < 0 means fall back to --overhead-ceiling.
  double ceiling = -1.0;
};

void collect(const Value& v, const std::string& prefix,
             std::vector<Metric>& out) {
  if (!v.is_object()) return;
  for (const auto& [key, child] : v.object) {
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    if (child.type == Value::Type::kNumber && is_throughput_metric(key)) {
      out.push_back(Metric{path, child.as_double(),
                           Direction::kHigherIsBetter});
    } else if (child.type == Value::Type::kNumber && is_memory_metric(key)) {
      out.push_back(Metric{path, child.as_double(),
                           Direction::kLowerIsBetter});
    } else if (child.type == Value::Type::kNumber && is_alloc_metric(key)) {
      out.push_back(Metric{path, child.as_double(),
                           Direction::kLowerIsBetterAlloc});
    } else if (child.type == Value::Type::kNumber && is_ceiling_metric(key)) {
      Metric m{path, child.as_double(), Direction::kCeiling};
      for (const auto& [sibling, sv] : v.object) {
        if (sibling == "hard_limit_pct" && sv.type == Value::Type::kNumber) {
          m.ceiling = sv.as_double();
        }
      }
      out.push_back(std::move(m));
    } else {
      collect(child, path, out);
    }
  }
}

std::vector<Metric> load_metrics(const char* file) {
  std::ifstream in(file);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", file);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = dyncdn::obs::json::parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", file);
    std::exit(2);
  }
  std::vector<Metric> out;
  collect(*doc, "", out);
  return out;
}

const Metric* find(const std::vector<Metric>& metrics,
                   const std::string& path) {
  for (const Metric& m : metrics) {
    if (m.path == path) return &m;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.10;
  double mem_tolerance = 0.25;
  double alloc_tolerance = 0.10;
  double overhead_ceiling = 10.0;
  const char* base_path = nullptr;
  const char* cand_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--mem-tolerance=", 16) == 0) {
      mem_tolerance = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--alloc-tolerance=", 18) == 0) {
      alloc_tolerance = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--overhead-ceiling=", 19) == 0) {
      overhead_ceiling = std::atof(argv[i] + 19);
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cand_path == nullptr) {
      cand_path = argv[i];
    } else {
      base_path = nullptr;
      break;
    }
  }
  if (base_path == nullptr || cand_path == nullptr || tolerance < 0.0 ||
      mem_tolerance < 0.0 || alloc_tolerance < 0.0 ||
      overhead_ceiling < 0.0) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json> "
                 "[--tolerance=0.10] [--mem-tolerance=0.25] "
                 "[--alloc-tolerance=0.10] [--overhead-ceiling=10.0]\n");
    return 2;
  }

  const std::vector<Metric> base = load_metrics(base_path);
  const std::vector<Metric> cand = load_metrics(cand_path);
  if (base.empty()) {
    std::fprintf(stderr, "bench_diff: no gated metrics in %s\n", base_path);
    return 2;
  }

  int regressions = 0;
  for (const Metric& b : base) {
    if (b.direction == Direction::kCeiling) continue;  // candidate-side gate
    const Metric* c = find(cand, b.path);
    if (c == nullptr) {
      std::printf("MISSING  %-45s baseline=%.0f (not in candidate)\n",
                  b.path.c_str(), b.value);
      continue;
    }
    const double ratio = b.value > 0.0 ? c->value / b.value : 1.0;
    bool regressed = false;
    switch (b.direction) {
      case Direction::kHigherIsBetter:
        regressed = ratio < 1.0 - tolerance;
        break;
      case Direction::kLowerIsBetter:
        regressed = ratio > 1.0 + mem_tolerance;
        break;
      case Direction::kLowerIsBetterAlloc:
        // A zero candidate means allocation tracking was compiled out
        // (sanitizer builds); there is nothing to gate.
        regressed = c->value > 0.0 && ratio > 1.0 + alloc_tolerance;
        break;
      case Direction::kCeiling:
        break;
    }
    std::printf("%s %-45s %12.0f -> %12.0f  (%+.1f%%%s)\n",
                regressed ? "REGRESS " : "ok      ", b.path.c_str(), b.value,
                c->value, (ratio - 1.0) * 100.0,
                b.direction == Direction::kHigherIsBetter ? ""
                                                          : ", lower=better");
    if (regressed) ++regressions;
  }
  for (const Metric& c : cand) {
    if (c.direction == Direction::kCeiling) {
      // Absolute gate on the candidate: these percentages are wall-clock
      // noise run to run, so only the hard ceiling is enforced — the
      // section's own hard_limit_pct when it emits one.
      const double limit = c.ceiling >= 0.0 ? c.ceiling : overhead_ceiling;
      const bool over = c.value > limit;
      std::printf("%s %-45s %12.2f  (ceiling %.1f)\n",
                  over ? "CEILING " : "ok      ", c.path.c_str(), c.value,
                  limit);
      if (over) ++regressions;
    } else if (find(base, c.path) == nullptr) {
      std::printf("NEW      %-45s candidate=%.0f (not in baseline)\n",
                  c.path.c_str(), c.value);
    }
  }

  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_diff: %d metric(s) regressed beyond tolerance "
                 "(throughput %.0f%%, memory %.0f%%, allocs %.0f%%)\n",
                 regressions, tolerance * 100.0, mem_tolerance * 100.0,
                 alloc_tolerance * 100.0);
    return 1;
  }
  std::printf("bench_diff: all gated metrics within tolerance "
              "(throughput %.0f%%, memory %.0f%%, allocs %.0f%%)\n",
              tolerance * 100.0, mem_tolerance * 100.0,
              alloc_tolerance * 100.0);
  return 0;
}
