// A simulated host: named, geographically placed, with a transport handler
// (the node's TCP stack) and capture-tap hooks for tcpdump-like tracing.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/geo.hpp"
#include "net/packet.hpp"

namespace dyncdn::sim {
class Simulator;
}  // namespace dyncdn::sim

namespace dyncdn::net {

class Network;

class Node {
 public:
  /// Called when a packet addressed to this node arrives.
  using ReceiveHandler = std::function<void(const PacketPtr&)>;
  /// Capture hook; sees every packet sent from / delivered to this node.
  using TapFn = std::function<void(const PacketPtr&)>;

  Node(Network& network, NodeId id, std::string name, GeoPoint location,
       sim::Simulator& simulator, std::uint32_t shard);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  const GeoPoint& location() const { return location_; }
  Network& network() { return network_; }

  /// The event kernel this node's components schedule on. In a serial
  /// topology this is the Network's base simulator; in a sharded topology
  /// it is the node's shard kernel. Everything host-local (TCP stacks,
  /// servers, clients, capture) must reach the clock through here so a
  /// shard's state never touches another shard's queue.
  sim::Simulator& simulator() const { return simulator_; }
  std::uint32_t shard() const { return shard_; }

  /// Next packet id in this node's id space: the node index in the high
  /// bits, a per-node sequence below. Ids are unique network-wide and —
  /// unlike a global counter — independent of cross-shard interleaving,
  /// which keeps captures byte-identical between serial and sharded runs.
  std::uint64_t next_packet_id() {
    return (static_cast<std::uint64_t>(id_.value()) << 40) |
           ++packets_created_;
  }
  std::uint64_t packets_created() const { return packets_created_; }

  /// Install the transport layer. Exactly one handler per node; a second
  /// registration replaces the first (used by tests).
  void set_receive_handler(ReceiveHandler handler) {
    receive_handler_ = std::move(handler);
  }

  /// Register capture hooks. Multiple taps may coexist (e.g. a trace
  /// recorder plus a live statistics probe).
  void add_send_tap(TapFn tap) { send_taps_.push_back(std::move(tap)); }
  void add_receive_tap(TapFn tap) { receive_taps_.push_back(std::move(tap)); }

  /// Inject a packet originating at this node into the network.
  /// (Transport layers call this; it stamps src and routes.)
  void send(PacketPtr packet);

  /// Called by the network when a packet for this node arrives.
  void deliver(const PacketPtr& packet);

 private:
  Network& network_;
  NodeId id_;
  std::string name_;
  GeoPoint location_;
  sim::Simulator& simulator_;
  std::uint32_t shard_ = 0;
  std::uint64_t packets_created_ = 0;
  ReceiveHandler receive_handler_;
  std::vector<TapFn> send_taps_;
  std::vector<TapFn> receive_taps_;
};

}  // namespace dyncdn::net
