// Online (streaming) timeline extraction.
//
// The post-hoc pipeline retains every PacketRecord of a campaign and
// reduces traces to Fig.-2 timelines afterwards, so memory grows with
// total packets. The streaming pipeline reduces each flow *as packets are
// captured*: a StreamingTimeline keeps only the control-event state machine
// plus the received-side segment list (seq, length, timestamp — never
// payload bytes), and once the static/dynamic boundary is known a finished
// flow is collapsed to its QueryTimeline the moment its teardown is
// observed. Campaign memory becomes O(in-flight flows), not O(packets).
//
// Equivalence contract: for any capture, drain() must produce timelines
// byte-identical to extract_all_timelines() over the retained trace —
// including invalid_reason strings and the order of validity checks. The
// implementation guarantees this by construction: the per-packet control
// scan mirrors timeline_from_conn's else-if chain exactly, segment
// normalization mirrors reassemble() (base = last received SYN seq + 1,
// else min data seq; seq < base skipped), and the response-data events are
// computed by the very same finish_timeline_from_stream() the post-hoc
// path uses. Tests in tests/streaming_test.cpp enforce tolerance-0
// equality on out-of-order, retransmitted and interleaved inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/timeline.hpp"
#include "capture/recorder.hpp"
#include "capture/trace.hpp"
#include "mem/arena.hpp"
#include "mem/flat_table.hpp"
#include "mem/slab.hpp"
#include "net/address.hpp"

namespace dyncdn::analysis {

/// Incremental Fig.-2 timeline builder for one TCP flow.
///
/// Feed it every packet of the flow in capture order via observe(); call
/// finalize() once (teardown seen, or at drain time) to obtain the same
/// QueryTimeline the post-hoc extract_timeline() would produce.
class StreamingTimeline {
 public:
  explicit StreamingTimeline(const net::FlowId& flow);

  void observe(const capture::PacketRecord& record);

  /// Both FINs (or a RST) observed: no future packet can change the
  /// timeline except trailing pure ACKs, which never affect analysis.
  bool complete() const { return rst_ || (fin_sent_ && fin_rcvd_); }

  /// Reduce accumulated state to the flow's timeline. Pure: does not
  /// consume state, so calling at teardown or at drain gives equal results.
  QueryTimeline finalize(std::size_t boundary) const;

  /// Deterministic footprint of this builder (state machine + segment
  /// list). Used for the analyzer's live/peak accounting.
  std::size_t retained_bytes() const {
    return sizeof(StreamingTimeline) + data_.size() * sizeof(RawSegment);
  }

 private:
  /// A received data segment exactly as captured, pre-normalization (the
  /// stream base is only known once all SYNs have been seen).
  struct RawSegment {
    std::uint64_t seq;
    std::size_t length;
    sim::SimTime at;
  };

  QueryTimeline tl_;  // flow + control events filled in as observed
  bool saw_syn_ = false, saw_synack_ = false, saw_t1_ = false,
       saw_t2_ = false;
  bool fin_sent_ = false, fin_rcvd_ = false, rst_ = false;
  std::optional<std::uint64_t> client_iss_;
  std::optional<std::uint64_t> rcv_iss_;       // last received SYN seq
  std::optional<std::uint64_t> min_data_seq_;  // earliest received data seq
  std::vector<RawSegment> data_;               // received payload segments
};

/// Multi-flow streaming analyzer: a capture::PacketSink that groups packets
/// by connection (first-appearance order, matching split_by_flow) and
/// emits QueryTimelines online.
///
/// Boundary lifecycle: until set_boundary() is called, completed flows stay
/// buffered (their timeline depends on the static/dynamic split). After
/// the boundary is known — immediately after discovery in an experiment —
/// every flow collapses to its timeline at teardown. drain() returns all
/// timelines in first-appearance flow order and resets the flow table; the
/// boundary persists across drains (multi-phase experiments reuse it) and
/// is only cleared by on_clear(), which mirrors TraceRecorder::clear().
class StreamingAnalyzer final : public capture::PacketSink {
 public:
  explicit StreamingAnalyzer(net::Port server_port);
  ~StreamingAnalyzer() override;

  StreamingAnalyzer(const StreamingAnalyzer&) = delete;
  StreamingAnalyzer& operator=(const StreamingAnalyzer&) = delete;

  // capture::PacketSink
  void on_packet(const capture::PacketRecord& record) override;
  void on_clear() override;

  /// Fix the static/dynamic boundary, enabling online emission. Completed
  /// flows buffered so far collapse immediately. Throws std::logic_error
  /// if a different boundary is already set.
  void set_boundary(std::size_t boundary);
  bool has_boundary() const { return boundary_.has_value(); }

  /// Finalize every remaining flow and return all timelines in
  /// first-appearance order (identical to extract_all_timelines over the
  /// equivalent retained trace). Resets the flow table; keeps the boundary.
  std::vector<QueryTimeline> drain(std::size_t boundary);

  /// Deterministic live footprint (builders + buffered timelines).
  std::size_t live_bytes() const { return live_bytes_; }
  /// High-water mark of live_bytes() since construction (survives drain
  /// and on_clear, so it reports the whole campaign's worst moment).
  std::size_t peak_live_bytes() const { return peak_live_bytes_; }

  /// --- Streaming boundary discovery -------------------------------------
  /// Probe mode reassembles a *clipped prefix* of every received-direction
  /// response stream instead of building timelines, so the paper's
  /// common-prefix boundary can be discovered without retaining a payload
  /// trace. Memory is O(boundary): the moment two responses diverge at
  /// byte p, every probe buffer is clipped to p + 1 and stays there.
  ///
  /// While a probe is active, packets do NOT feed the timeline flow table —
  /// probe traffic must never surface in drain(). finish_boundary_probe()
  /// returns the longest common prefix across all non-empty response
  /// streams, byte-identical to common_prefix_boundary() over the fully
  /// reassembled responses (including '\0' gap filler), or 0 when fewer
  /// than two streams carried data. Requires payload capture upstream.
  void begin_boundary_probe();
  std::size_t finish_boundary_probe();
  bool probing() const { return probing_; }
  /// Response streams with data seen by the active probe (the equivalent of
  /// the post-hoc path's non-empty reassembled-responses count).
  std::size_t probe_flows() const;

  /// Flows collapsed online (at teardown, before drain).
  std::uint64_t timelines_emitted_online() const { return emitted_online_; }

  /// Non-trivial packets (anything but a pure ACK) that arrived for a flow
  /// already collapsed online. Always 0 in correct operation; a nonzero
  /// value means the streaming result may diverge from post-hoc analysis.
  std::uint64_t late_packets() const { return late_packets_; }

  net::Port server_port() const { return server_port_; }

 private:
  struct Slot {
    net::FlowId flow;
    StreamingTimeline* live = nullptr;  // slab-owned; null once collapsed
    std::optional<QueryTimeline> done;
  };

  /// One response stream under boundary probing: a clipped mirror of what
  /// reassemble() would build, plus the bookkeeping needed to compare it
  /// incrementally against the reference flow.
  struct ProbeFlow {
    net::FlowId flow;
    std::optional<std::uint64_t> iss;  // last received SYN seq
    struct PendingSegment {
      // Data captured before any SYN: the stream base is unknown until a
      // SYN arrives (or, like reassemble()'s fallback, until the probe
      // finishes and the minimum data seq becomes the base). The bytes
      // live in the analyzer's probe arena, which outlives every pending
      // segment (reset only at probe teardown).
      std::uint64_t seq;
      std::size_t length;
      std::span<const std::uint8_t> bytes;
    };
    std::vector<PendingSegment> pending;
    std::string bytes;  // clipped mirror of ReassembledStream::bytes()
    std::vector<std::pair<std::size_t, std::size_t>> covered;  // merged
    std::size_t contig = 0;       // covered prefix is [0, contig)
    std::size_t full_length = 0;  // unclipped stream length
    std::size_t cmp = 0;          // bytes matched against flow 0 so far
    std::optional<std::size_t> mismatch;  // first divergence vs flow 0
  };

  void bump_peak() {
    if (live_bytes_ > peak_live_bytes_) peak_live_bytes_ = live_bytes_;
  }
  void collapse(Slot& slot);
  /// Finalize-and-release for one live builder (slab storage goes back to
  /// the free list).
  void release_live(Slot& slot);
  /// Deterministic footprint of one probe flow (buffer + interval list +
  /// any pre-SYN pending segments). Feeds live/peak accounting.
  static std::size_t probe_retained(const ProbeFlow& flow);
  void observe_probe(const capture::PacketRecord& record);
  void apply_probe_segment(ProbeFlow& flow, std::uint64_t base,
                           std::uint64_t seq, std::size_t payload_size,
                           std::span<const std::uint8_t> payload);
  void advance_probe_compare();
  void tighten_probe_cap(std::size_t cap);
  void reset_probe();

  net::Port server_port_;
  std::optional<std::size_t> boundary_;
  std::vector<Slot> slots_;  // first-appearance order
  /// Flow -> slot index. Flat table: drain order comes from slots_, so the
  /// table's slot-order iteration never matters.
  mem::FlatMap<net::FlowId, std::size_t> index_;
  /// Builder storage: one slab block per in-flight flow.
  mem::TypedSlab<StreamingTimeline> timeline_slab_;
  bool probing_ = false;
  std::vector<ProbeFlow> probe_flows_;  // first-appearance order
  mem::FlatMap<net::FlowId, std::size_t> probe_index_;
  /// Backing store for pre-SYN pending segment bytes; reset with the probe.
  mem::Arena probe_arena_;
  /// Reused flattening scratch for chained payloads (capacity persists).
  std::vector<std::uint8_t> probe_scratch_;
  /// Upper bound on probe buffer length: tightened to (divergence + 1) the
  /// moment any flow mismatches the reference, clipping all buffers.
  std::size_t probe_cap_ = static_cast<std::size_t>(-1);
  std::size_t live_bytes_ = 0;
  std::size_t peak_live_bytes_ = 0;
  std::uint64_t emitted_online_ = 0;
  std::uint64_t late_packets_ = 0;
};

}  // namespace dyncdn::analysis
