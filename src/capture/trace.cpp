#include "capture/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "mem/flat_table.hpp"

namespace dyncdn::capture {

net::FlowId flow_at_capture(Direction direction, net::NodeId src,
                            net::NodeId dst, const net::TcpHeader& tcp) {
  if (direction == Direction::kSent) {
    return net::FlowId{net::Endpoint{src, tcp.src_port},
                       net::Endpoint{dst, tcp.dst_port}};
  }
  return net::FlowId{net::Endpoint{dst, tcp.dst_port},
                     net::Endpoint{src, tcp.src_port}};
}

std::string record_to_string(sim::SimTime timestamp, Direction direction,
                             net::NodeId src, net::NodeId dst,
                             const net::TcpHeader& tcp,
                             std::size_t payload_size) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%12s %s %u:%u -> %u:%u seq=%llu ack=%llu [%s] %zuB",
                timestamp.to_string().c_str(), capture::to_string(direction),
                src.value(), static_cast<unsigned>(tcp.src_port), dst.value(),
                static_cast<unsigned>(tcp.dst_port),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack),
                tcp.flags.to_string().c_str(), payload_size);
  return buf;
}

PacketTrace PacketTrace::filter(
    const std::function<bool(const PacketRecordView&)>& pred) const {
  PacketTrace out(node_);
  for (std::size_t i = 0; i < size(); ++i) {
    const PacketRecordView v = view(i);
    if (pred(v)) out.add(v);
  }
  return out;
}

PacketTrace PacketTrace::filter_flow(const net::FlowId& flow) const {
  return filter([&](const PacketRecordView& r) {
    const net::FlowId f = r.flow_at_capture_node();
    return f == flow || f == flow.reversed();
  });
}

PacketTrace PacketTrace::filter_remote_port(net::Port port) const {
  return filter([&](const PacketRecordView& r) {
    return r.flow_at_capture_node().remote.port == port;
  });
}

std::vector<std::pair<net::FlowId, PacketTrace>> PacketTrace::split_by_flow(
    std::optional<net::Port> remote_port) const {
  std::vector<std::pair<net::FlowId, PacketTrace>> out;
  mem::FlatMap<net::FlowId, std::size_t> index;
  for (std::size_t i = 0; i < size(); ++i) {
    const PacketRecordView r = view(i);
    const net::FlowId f = r.flow_at_capture_node();
    if (remote_port && f.remote.port != *remote_port) continue;
    const auto [slot, inserted] = index.try_emplace(f, out.size());
    if (inserted) out.emplace_back(f, PacketTrace(node_));
    out[*slot].second.add(r);
  }
  return out;
}

std::vector<net::FlowId> PacketTrace::flows() const {
  std::vector<net::FlowId> out;
  for (std::size_t i = 0; i < size(); ++i) {
    const net::FlowId f =
        flow_at_capture(directions_[i], srcs_[i], dsts_[i], tcps_[i]);
    if (std::find(out.begin(), out.end(), f) == out.end()) out.push_back(f);
  }
  return out;
}

std::string PacketTrace::to_text() const {
  std::string out;
  for (std::size_t i = 0; i < size(); ++i) {
    out += view(i).to_string();
    out += '\n';
  }
  return out;
}

}  // namespace dyncdn::capture
