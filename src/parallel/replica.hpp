// Deterministic parallel replica execution.
//
// The paper's campaigns are embarrassingly parallel: hundreds of vantage
// points, sweep points and bench repetitions, each an independent
// simulation. The ReplicaExecutor runs such replicas on a fixed set of
// worker threads using work stealing: each worker starts with a contiguous
// block of the replica index space in a Chase-Lev deque (worksteal.hpp)
// and, when its block is exhausted, steals chunks from the busiest end of
// other workers' deques. Unlike the previous static round-robin shard,
// uneven replica costs (loss sweeps, cold vs warm caches) no longer leave
// workers idle while one worker drains a long tail.
//
// Determinism is preserved because scheduling only decides *where* a
// replica runs, never *what it computes*: replica i's body sees only its
// own index and seed, and its result lands at slot i regardless of which
// worker ran it or in what order. The merged output stays bit-identical at
// any thread count — the equivalence tests in tests/parallel_test.cpp and
// tests/streaming_test.cpp hold at 1, 2 and 4 threads.
//
// Seeding: replica_seed(base, i) gives every replica its own independent,
// stable RNG universe. It is a SplitMix64-style hash, so neighbouring
// indices produce statistically unrelated streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/worksteal.hpp"

namespace dyncdn::parallel {

/// Stable per-replica seed: hash of (base_seed, replica_index).
/// Same inputs always give the same seed, on every platform.
std::uint64_t replica_seed(std::uint64_t base_seed,
                           std::uint64_t replica_index);

struct ExecutorConfig {
  /// Worker count. 0 = use DYNCDN_THREADS if set, else
  /// std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Replicas per stealable chunk. Larger grains amortize deque traffic
  /// for very cheap replicas at the cost of coarser balancing. 0 = use
  /// DYNCDN_GRAIN if set, else auto-tune: start each run at
  /// count / (workers * 8) chunks-per-worker granularity and halve it for
  /// subsequent runs whenever the previous run's ExecutorStats show heavy
  /// stealing (a steal-heavy round means chunks were too coarse to balance
  /// the load). Grain only affects scheduling, never results.
  std::size_t grain = 0;
};

/// Thread count an ExecutorConfig resolves to (env var / hardware probe
/// applied, floor of 1).
std::size_t resolve_threads(const ExecutorConfig& config);

/// Chunk granularity an ExecutorConfig resolves to (floor of 1).
std::size_t resolve_grain(const ExecutorConfig& config);

/// True when neither ExecutorConfig.grain nor DYNCDN_GRAIN pins the grain,
/// so the executor may auto-tune it between runs.
bool grain_is_auto(const ExecutorConfig& config);

/// Scheduling counters from the most recent run() (not part of the result
/// contract — purely observability).
struct ExecutorStats {
  std::uint64_t tasks = 0;    // chunks executed in total
  std::uint64_t steals = 0;   // chunks executed by a non-owner worker
  std::size_t workers = 0;    // threads actually spawned (1 = inline)
  // Per-worker breakdowns (index = worker id) for the telemetry layer;
  // the inline path reports one pseudo-worker. Wall-clock free, but the
  // split across workers is scheduling-dependent — runtime telemetry
  // only, never part of the deterministic result contract.
  std::vector<std::uint64_t> tasks_by_worker;
  std::vector<std::uint64_t> steals_by_worker;
};

class ReplicaExecutor {
 public:
  explicit ReplicaExecutor(ExecutorConfig config = {})
      : threads_(resolve_threads(config)),
        grain_(resolve_grain(config)),
        auto_grain_(grain_is_auto(config)) {}

  std::size_t threads() const { return threads_; }
  /// Effective grain of the next run. In auto mode this starts at 0
  /// ("derive from the run's replica count") and is pinned after the first
  /// parallel run based on its steal counters.
  std::size_t grain() const { return auto_grain_ ? tuned_grain_ : grain_; }
  bool auto_grain() const { return auto_grain_; }
  const ExecutorStats& last_stats() const { return stats_; }

  /// Run fn(0) .. fn(count-1), returning results in index order. With one
  /// thread (or one replica) everything runs inline on the caller — the
  /// serial path is literally the same code. Exceptions propagate: the
  /// lowest-index replica's exception is rethrown after all workers join.
  template <class Fn>
  auto run(std::size_t count, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "ReplicaExecutor::run requires a result per replica");

    std::vector<std::optional<R>> slots(count);
    // Effective grain for this run: the pinned value, or — in auto mode —
    // a previous round's tuned pick, falling back to ~8 chunks per worker
    // for the very first (warm-up) round.
    std::size_t grain = grain_;
    if (auto_grain_) {
      grain = tuned_grain_ > 0
                  ? tuned_grain_
                  : std::max<std::size_t>(1, count / (threads_ * 8));
    }
    const std::size_t chunks = (count + grain - 1) / grain;
    const std::size_t workers = std::min(threads_, chunks);
    stats_ = ExecutorStats{};
    stats_.tasks = chunks;
    stats_.workers = workers > 0 ? workers : 1;

    if (workers <= 1) {
      for (std::size_t i = 0; i < count; ++i) slots[i].emplace(fn(i));
      stats_.tasks_by_worker.assign(1, chunks);
      stats_.steals_by_worker.assign(1, 0);
    } else {
      std::vector<std::exception_ptr> errors(count);
      std::atomic<std::uint64_t> steals{0};
      std::vector<std::uint64_t> tasks_by_worker(workers, 0);
      std::vector<std::uint64_t> steals_by_worker(workers, 0);

      // Each worker's deque starts with a contiguous block of chunk ids,
      // pushed highest-first so the owner pops ascending while thieves
      // take from the far end.
      std::vector<std::unique_ptr<StealDeque>> deques;
      deques.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        const std::size_t lo = w * chunks / workers;
        const std::size_t hi = (w + 1) * chunks / workers;
        deques.push_back(std::make_unique<StealDeque>(hi - lo));
        for (std::size_t c = hi; c > lo; --c) deques[w]->prefill(c - 1);
      }

      const auto run_chunk = [&](std::size_t c) {
        const std::size_t lo = c * grain;
        const std::size_t hi = std::min(count, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) {
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      };

      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w]() {
          std::size_t c = 0;
          std::uint64_t my_tasks = 0;
          std::uint64_t my_steals = 0;
          while (true) {
            if (deques[w]->pop(c)) {
              ++my_tasks;
              run_chunk(c);
              continue;
            }
            // Own deque drained: sweep the others. A kLost result means a
            // task may still be in flight behind a CAS we lost, so only an
            // all-kEmpty sweep terminates the worker.
            bool lost_race = false;
            bool stole = false;
            for (std::size_t k = 1; k < workers && !stole; ++k) {
              switch (deques[(w + k) % workers]->steal(c)) {
                case StealDeque::Steal::kItem:
                  stole = true;
                  break;
                case StealDeque::Steal::kLost:
                  lost_race = true;
                  break;
                case StealDeque::Steal::kEmpty:
                  break;
              }
            }
            if (stole) {
              steals.fetch_add(1, std::memory_order_relaxed);
              ++my_tasks;
              ++my_steals;
              run_chunk(c);
              continue;
            }
            if (!lost_race) break;
          }
          // Single writer per index; join() publishes to the coordinator.
          tasks_by_worker[w] = my_tasks;
          steals_by_worker[w] = my_steals;
        });
      }
      for (std::thread& t : pool) t.join();
      stats_.steals = steals.load(std::memory_order_relaxed);
      stats_.tasks_by_worker = std::move(tasks_by_worker);
      stats_.steals_by_worker = std::move(steals_by_worker);
      if (auto_grain_) {
        // A steal-heavy round means the static blocks were too coarse for
        // the cost skew: halve the grain for subsequent runs. Otherwise
        // pin what we used — it balanced fine.
        const bool steal_heavy = stats_.steals * 4 >= stats_.tasks;
        tuned_grain_ =
            steal_heavy ? std::max<std::size_t>(1, grain / 2) : grain;
      }
      for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
      }
    }

    std::vector<R> out;
    out.reserve(count);
    for (std::optional<R>& s : slots) out.push_back(std::move(*s));
    return out;
  }

 private:
  std::size_t threads_;
  std::size_t grain_;
  bool auto_grain_;
  /// Auto mode only: grain picked from the last parallel run's steal
  /// counters (0 = no parallel run yet — derive from the replica count).
  std::size_t tuned_grain_ = 0;
  ExecutorStats stats_;
};

}  // namespace dyncdn::parallel
