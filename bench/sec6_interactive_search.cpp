// §6 reproduction: the interactive "search as you type" feature.
//
// A nearby client types a long query character by character; every
// keystroke issues the current prefix as a separate query over a fresh TCP
// connection (the behaviour the paper observed in Google's early
// deployment). Claims to reproduce:
//   1. one TCP connection per keystroke;
//   2. each per-keystroke delivery still fits the basic model — valid
//      t1..te timelines, and T_delta <= true T_fetch <= T_dynamic;
//   3. BE processing time drops for subsequent keystrokes because they
//      are highly correlated with (strict extensions of) prior queries.
#include <cstdio>

#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "cdn/interactive.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;

int main() {
  bench::banner("§6 — interactive search-as-you-type",
                "one query per keystroke over a fresh connection; BE "
                "prefix-correlation enabled");

  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.profile.processing.correlation_history = 64;  // enable the feature
  opt.profile.processing.load.sigma = 0.03;
  opt.profile.fe_service.sigma = 0.03;
  opt.profile.last_mile_min_ms = 2.0;
  opt.profile.last_mile_max_ms = 2.0;
  opt.seed = 606;
  opt.fe_distance_sweep_miles = std::vector<double>{250.0};
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  const std::size_t boundary = testbed::discover_boundary(scenario, 0, 0);
  const std::size_t discovery_fetches =
      scenario.fes()[0].server->fetch_log().size();

  auto& client = scenario.clients().front();
  client.recorder->clear();

  const search::Keyword full{"computer science department",
                             search::KeywordClass::kGranular, 900};
  cdn::TypingOptions typing;
  cdn::InteractiveTyper typer(*client.query_client, typing, 77);

  cdn::TypingSessionResult session;
  typer.type(scenario.fe_endpoint(0), full,
             [&](const cdn::TypingSessionResult& s) { session = s; });
  scenario.run();

  // Per-keystroke analysis from the packet capture.
  const auto timelines = analysis::extract_all_timelines(
      client.recorder->trace(), 80, boundary);
  const auto timings = core::timings_from_timelines(timelines);
  const auto& be_log = scenario.backend().query_log();
  const auto& fetch_log = scenario.fes()[0].server->fetch_log();

  bench::section("per-keystroke results");
  std::printf("%6s %-30s %9s %10s %9s %11s %11s\n", "key#", "prefix",
              "Tproc", "correlated", "Tdelta", "Tdynamic", "bounds");
  std::size_t bounds_ok = 0, bounds_total = 0;
  for (std::size_t i = 0; i < session.keystrokes.size(); ++i) {
    const auto& ks = session.keystrokes[i];
    const double t_proc =
        (discovery_fetches + i < be_log.size())
            ? be_log[discovery_fetches + i].t_proc.to_milliseconds()
            : 0.0;
    const bool correlated = (discovery_fetches + i < be_log.size()) &&
                            be_log[discovery_fetches + i].correlated;
    double t_delta = 0, t_dynamic = 0;
    const char* verdict = "-";
    if (i < timings.size()) {
      t_delta = timings[i].t_delta_ms;
      t_dynamic = timings[i].t_dynamic_ms;
      if (discovery_fetches + i < fetch_log.size()) {
        const double truth = fetch_log[discovery_fetches + i]
                                 .true_fetch_time()
                                 .to_milliseconds();
        const bool ok =
            core::fetch_bounds(timings[i]).contains(truth);
        verdict = ok ? "HOLD" : "VIOLATED";
        ++bounds_total;
        if (ok) ++bounds_ok;
      }
    }
    std::printf("%6zu %-30s %8.1fms %10s %8.1fms %10.1fms %11s\n", i + 1,
                ("\"" + ks.prefix + "\"").c_str(), t_proc,
                correlated ? "yes" : "no", t_delta, t_dynamic, verdict);
  }

  bench::section("paper-shape summary");
  std::printf("connections used: %zu (one per keystroke: %s)\n",
              session.connections,
              session.connections == session.keystrokes.size() ? "yes"
                                                                : "NO");
  std::printf("fetch bounds held on %zu/%zu keystrokes\n", bounds_ok,
              bounds_total);
  // Compare the first keystroke's processing time with the median of the
  // correlated tail.
  if (be_log.size() > discovery_fetches + 4) {
    const double first =
        be_log[discovery_fetches].t_proc.to_milliseconds();
    std::vector<double> tail;
    for (std::size_t i = discovery_fetches + 1; i < be_log.size(); ++i) {
      tail.push_back(be_log[i].t_proc.to_milliseconds());
    }
    const double tail_med = stats::median(tail);
    std::printf("T_proc: first keystroke %.1fms, later keystrokes median "
                "%.1fms\n",
                first, tail_med);
    std::printf("paper shape %s: the model still fits per keystroke, and "
                "correlated queries process faster\n",
                (bounds_ok == bounds_total && tail_med < 0.7 * first)
                    ? "HOLDS"
                    : "VIOLATED");
  }
  return 0;
}
