// Figure 5 reproduction (Datasets B): median T_static, T_dynamic and
// T_delta per vantage point vs client->FE RTT, for one fixed BingLike FE
// and one fixed GoogleLike FE.
//
// Paper shapes:
//  (a) T_static roughly flat in RTT (FE-local, RTT effect subtracted);
//  (b) T_dynamic ~ constant at small RTT, growing linearly at large RTT;
//  (c) T_delta decreasing linearly at small RTT, zero beyond a threshold
//      (~50-100ms for Google, ~100-200ms for Bing).
//
// Quick: 110 nodes x 14 reps. DYNCDN_FULL=1: 200 nodes x 40 reps.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "stats/regression.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct ServiceRun {
  std::string name;
  std::vector<core::NodeAggregate> nodes;  // sorted by RTT
};

ServiceRun run_service(cdn::ServiceProfile profile, std::size_t clients,
                       std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = profile;
  opt.client_count = clients;
  opt.seed = 55;

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1100_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};

  // Sharded replica plan: one replica per vantage point, spread over
  // DYNCDN_THREADS workers (results are thread-count-invariant).
  const auto result =
      testbed::run_fixed_fe_experiment(opt, 0, eo, testbed::ReplicaPlan{});

  ServiceRun run;
  run.name = profile.name;
  run.nodes = result.per_node;
  std::sort(run.nodes.begin(), run.nodes.end(),
            [](const auto& a, const auto& b) { return a.rtt_ms < b.rtt_ms; });
  return run;
}

void report(const ServiceRun& run) {
  bench::section(run.name + " — per-node medians (sorted by RTT)");
  std::printf("%24s %9s %10s %11s %9s\n", "node", "RTT(ms)", "Tstatic",
              "Tdynamic", "Tdelta");
  for (const auto& n : run.nodes) {
    if (n.samples == 0) continue;
    std::printf("%24s %9.1f %10.1f %11.1f %9.1f\n", n.node_name.c_str(),
                n.rtt_ms, n.med_static_ms, n.med_dynamic_ms, n.med_delta_ms);
  }

  std::vector<double> rtt, tsta, tdyn, tdel;
  for (const auto& n : run.nodes) {
    if (n.samples == 0) continue;
    rtt.push_back(n.rtt_ms);
    tsta.push_back(n.med_static_ms);
    tdyn.push_back(n.med_dynamic_ms);
    tdel.push_back(n.med_delta_ms);
  }

  std::printf("\n(a) T_static vs RTT:\n");
  bench::ascii_scatter(rtt, tsta);
  std::printf("    fit: %s\n",
              stats::linear_fit(rtt, tsta).to_string().c_str());
  std::printf("    (expect slope ~1: the static tail needs one residual "
              "delivery round — the same RTT dependence that makes T_delta "
              "collapse; the paper calls T_static 'relatively stable' over "
              "its low-RTT bulk)\n");

  std::printf("\n(b) T_dynamic vs RTT:\n");
  bench::ascii_scatter(rtt, tdyn);

  std::printf("\n(c) T_delta vs RTT:\n");
  bench::ascii_scatter(rtt, tdel);

  const auto threshold = core::estimate_delta_threshold(run.nodes);
  std::printf("    %s\n", threshold.to_string().c_str());

  const std::vector<std::string> cols{"rtt_ms", "t_static_ms",
                                      "t_dynamic_ms", "t_delta_ms"};
  const std::vector<std::vector<double>> data{rtt, tsta, tdyn, tdel};
  bench::write_csv("fig5_" + run.name + ".csv", cols, data);
}

}  // namespace

int main() {
  const std::size_t clients = bench::full_scale() ? 200 : 110;
  const std::size_t reps = bench::full_scale() ? 40 : 14;
  bench::banner("Figure 5 — T_static / T_dynamic / T_delta vs RTT (Datasets B)",
                std::to_string(clients) + " vantage points x " +
                    std::to_string(reps) + " reps against one fixed FE");

  const ServiceRun bing = run_service(cdn::bing_like_profile(), clients, reps);
  const ServiceRun google =
      run_service(cdn::google_like_profile(), clients, reps);

  report(bing);
  report(google);

  bench::section("paper-shape summary");
  const auto th_bing = core::estimate_delta_threshold(bing.nodes);
  const auto th_google = core::estimate_delta_threshold(google.nodes);
  if (th_bing.found && th_google.found) {
    std::printf("T_delta collapse threshold: %s ~%.0f ms vs %s ~%.0f ms\n",
                bing.name.c_str(), th_bing.threshold_rtt_ms,
                google.name.c_str(), th_google.threshold_rtt_ms);
    std::printf("paper shape %s: Bing threshold exceeds Google's "
                "(paper: 100-200ms vs 50-100ms)\n",
                th_bing.threshold_rtt_ms > th_google.threshold_rtt_ms
                    ? "HOLDS"
                    : "VIOLATED");
  } else {
    std::printf("threshold not found for %s%s\n",
                th_bing.found ? "" : bing.name.c_str(),
                th_google.found ? "" : google.name.c_str());
  }
  return 0;
}
