#include "stats/regression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <vector>

#include "stats/descriptive.hpp"

namespace dyncdn::stats {

std::string LinearFit::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "y = %.4g*x + %.4g (R^2=%.3f, n=%zu)",
                slope, intercept, r_squared, n);
  return buf;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  fit.n = xs.size();
  const std::size_t n = xs.size();
  if (n == 0) return fit;

  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (n < 2 || sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - fit.predict(xs[i]);
    ss_res += r * r;
  }
  fit.r_squared = (syy == 0.0) ? 1.0 : 1.0 - ss_res / syy;
  if (n > 2) {
    const double sigma2 = ss_res / static_cast<double>(n - 2);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
    fit.intercept_stderr =
        std::sqrt(sigma2 * (1.0 / static_cast<double>(n) + mx * mx / sxx));
  }
  return fit;
}

LinearFit theil_sen_fit(std::span<const double> xs,
                        std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  fit.n = xs.size();
  const std::size_t n = xs.size();
  if (n == 0) return fit;
  if (n == 1) {
    fit.intercept = ys[0];
    return fit;
  }

  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[j] - xs[i];
      if (dx != 0.0) slopes.push_back((ys[j] - ys[i]) / dx);
    }
  }
  if (slopes.empty()) {
    fit.intercept = median(ys);
    return fit;
  }
  fit.slope = median(slopes);

  std::vector<double> residuals;
  residuals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) residuals.push_back(ys[i] - fit.slope * xs[i]);
  fit.intercept = median(residuals);

  // R² relative to the robust fit, for comparability with linear_fit.
  const double my = mean(ys);
  double ss_res = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ys[i] - fit.predict(xs[i]);
    ss_res += r * r;
    syy += (ys[i] - my) * (ys[i] - my);
  }
  fit.r_squared = (syy == 0.0) ? 1.0 : 1.0 - ss_res / syy;
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace dyncdn::stats
