#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace dyncdn::sim {

namespace {

constexpr std::uint64_t kBucketMask = EventQueue::kBucketsPerLevel - 1;

/// Level-0 bucket index of an absolute time.
constexpr std::int64_t idx0_of(SimTime t) {
  return t.ns() >> EventQueue::kWheelShift;
}

}  // namespace

void EventQueue::heap_push(Entry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
  if (heap_.size() > max_heaped_) max_heaped_ = heap_.size();
}

EventId EventQueue::schedule(SimTime at, Callback cb) {
  if (at < last_popped_) {
    throw std::logic_error("EventQueue::schedule: scheduling into the past (" +
                           at.to_string() + " < " + last_popped_.to_string() +
                           ")");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(cb);

  const std::uint32_t gen = slots_[slot].gen;
  const Entry entry{at, next_seq_++, slot, gen};
  // Near events (and any event behind the cursor, which can happen when
  // next_time() has drained ahead of last_popped_) go straight to the
  // heap; far cancellable timers go to the wheel.
  if (idx0_of(at) <
      static_cast<std::int64_t>(cursor_idx0_) + kNearBuckets) {
    heap_push(entry);
  } else {
    wheel_place(entry);
    if (++wheel_size_ > max_wheeled_) max_wheeled_ = wheel_size_;
  }
  ++live_;
  return EventId{(static_cast<std::uint64_t>(slot) << 32) | gen};
}

void EventQueue::wheel_place(Entry e) {
  const std::uint64_t at = static_cast<std::uint64_t>(e.at.ns());
  const std::uint64_t cur = cursor_idx0_ << kWheelShift;
  for (int level = 0; level < kLevels; ++level) {
    const int shift = kWheelShift + 8 * level;
    if ((at >> shift) - (cur >> shift) < kBucketsPerLevel) {
      auto& bucket =
          wheel_[static_cast<std::size_t>(level)][(at >> shift) & kBucketMask];
      // Buckets keep their capacity across cascades (clear(), not a fresh
      // vector), but a cold bucket's first few pushes would still double
      // through 1/2/4; start at a useful size instead.
      if (bucket.capacity() == 0) bucket.reserve(8);
      bucket.push_back(e);
      return;
    }
  }
  overflow_.push_back(e);
}

void EventQueue::replace_after_cascade(Entry e) {
  if (entry_dead(e)) {
    --dead_total_;
    --wheel_size_;
    return;
  }
  if (idx0_of(e.at) <
      static_cast<std::int64_t>(cursor_idx0_) + kNearBuckets) {
    --wheel_size_;
    heap_push(e);
  } else {
    wheel_place(e);  // stays in the wheel, one level down
  }
}

void EventQueue::step_cursor() {
  const std::uint64_t next = cursor_idx0_ + 1;
  cursor_idx0_ = next;
  if ((next & kBucketMask) == 0) {
    // The cursor enters a new level-1 bucket window: cascade it down.
    // Entering a new level-2 window (and a new overflow lap) cascades the
    // higher structures first; re-filed entries can never land in a
    // bucket that is itself about to cascade, because wheel_place always
    // prefers the shallowest level that fits.
    if ((next & 0xFFFF) == 0) {
      if ((next & 0xFFFFFF) == 0 && !overflow_.empty()) {
        std::vector<Entry> pending;
        pending.swap(overflow_);
        for (Entry& e : pending) replace_after_cascade(e);
      }
      Bucket& b2 = wheel_[2][(next >> 16) & kBucketMask];
      if (!b2.empty()) {
        Bucket pending;
        pending.swap(b2);
        for (Entry& e : pending) replace_after_cascade(e);
        b2 = std::move(pending);  // reuse capacity
        b2.clear();
      }
    }
    Bucket& b1 = wheel_[1][(next >> 8) & kBucketMask];
    if (!b1.empty()) {
      Bucket pending;
      pending.swap(b1);
      for (Entry& e : pending) replace_after_cascade(e);
      b1 = std::move(pending);
      b1.clear();
    }
  }
  Bucket& due = wheel_[0][next & kBucketMask];
  wheel_size_ -= due.size();
  for (Entry& e : due) {
    if (entry_dead(e)) {
      --dead_total_;  // a cancelled wheel entry dies here, in place
      continue;
    }
    heap_push(e);
  }
  due.clear();
}

void EventQueue::drain_wheel_to(SimTime t) {
  const std::uint64_t target =
      static_cast<std::uint64_t>(idx0_of(t));
  if (target <= cursor_idx0_) return;
  if (wheel_size_ == 0) {  // nothing to flush: jump
    cursor_idx0_ = target;
    return;
  }
  while (cursor_idx0_ < target) step_cursor();
}

void EventQueue::advance_until_heap_nonempty() {
  while (heap_.empty()) {
    assert(wheel_size_ > 0 &&
           "advance_until_heap_nonempty without wheel entries");
    step_cursor();
    skim();  // a flushed bucket may contain only entries cancelled later
  }
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  ++s.gen;
  free_slots_.push_back(slot);
  --live_;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id.value() >> 32);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value());
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // already fired/cancelled (or never scheduled here)
  }
  retire_slot(slot);
  ++cancelled_;
  // The orphaned entry dies in place wherever it lives — skimmed off the
  // heap top, dropped at bucket flush/cascade, or removed by the joint
  // compaction below. Cancel itself never has to know which.
  ++dead_total_;
  maybe_compact();
  return true;
}

void EventQueue::skim() {
  while (!heap_.empty() && entry_dead(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    --dead_total_;
  }
}

void EventQueue::maybe_compact() {
  // Sweep once cancelled entries dominate the live population: total
  // storage (heap + wheel + overflow) stays within 2x live events plus
  // slack no matter how hard timers churn. With an empty wheel every dead
  // entry is in the heap, so a tight slack keeps heap sifts shallow;
  // otherwise the slack is sized for the wheel — a sweep must at least
  // look at every bucket (768 of them), so sweeping every few dozen
  // cancels when few timers are live would dominate the O(1) cancel path
  // it exists to protect.
  const bool heap_only = wheel_size_ == 0;
  if (dead_total_ < (heap_only ? 64 : kCompactSlack) ||
      dead_total_ <= live_) {
    return;
  }
  const auto is_dead = [this](const Entry& e) { return entry_dead(e); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), is_dead),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), later);
  if (heap_only) {
    dead_total_ = 0;
    return;
  }
  for (auto& level : wheel_) {
    for (Bucket& bucket : level) {
      if (bucket.empty()) continue;
      const std::size_t before = bucket.size();
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(), is_dead),
                   bucket.end());
      wheel_size_ -= before - bucket.size();
    }
  }
  const std::size_t overflow_before = overflow_.size();
  overflow_.erase(
      std::remove_if(overflow_.begin(), overflow_.end(), is_dead),
      overflow_.end());
  wheel_size_ -= overflow_before - overflow_.size();
  dead_total_ = 0;
}

SimTime EventQueue::next_time() {
  if (live_ == 0) return SimTime::infinity();
  skim();
  if (heap_.empty()) advance_until_heap_nonempty();
  // A wheel entry could still precede the current heap top; draining up to
  // it flushes any such entry into the heap, making the top exact.
  drain_wheel_to(heap_.front().at);
  return heap_.front().at;
}

SimTime EventQueue::pop_and_run() {
  assert(live_ > 0 && "pop_and_run on empty queue");
  skim();
  if (heap_.empty()) advance_until_heap_nonempty();
  drain_wheel_to(heap_.front().at);
  const Entry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  // Move the callback out and retire the slot *before* running: the
  // callback may itself schedule (possibly reusing this slot) or try to
  // cancel its own id, which must report "already fired".
  Callback cb = std::move(slots_[entry.slot].cb);
  retire_slot(entry.slot);
  last_popped_ = entry.at;
  cb();
  return entry.at;
}

}  // namespace dyncdn::sim
