// Streaming-analysis equivalence tests: the online pipeline
// (StreamingAnalyzer fed packet-by-packet through the capture sink) must
// produce timelines, experiment TSVs and metrics byte-identical to the
// post-hoc path (retained PacketTrace -> split_by_flow -> extract_timeline)
// at tolerance 0 — including invalid_reason strings — on clean, reordered,
// retransmitted and interleaved inputs, and at 1, 2 and 4 worker threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/streaming.hpp"
#include "analysis/timeline.hpp"
#include "capture/recorder.hpp"
#include "net/packet.hpp"
#include "harness.hpp"
#include "obs/export_prometheus.hpp"
#include "tcp/stack.hpp"
#include "testbed/experiment.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::analysis {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using dyncdn::testing::TwoNodeOptions;
using sim::SimTime;
using namespace dyncdn::sim::literals;

constexpr net::Port kPort = 80;

/// Tolerance-0 comparison of every field the analysis pipeline consumes.
void expect_timeline_eq(const QueryTimeline& a, const QueryTimeline& b,
                        const char* what) {
  EXPECT_EQ(a.flow, b.flow) << what;
  EXPECT_EQ(a.valid, b.valid) << what;
  EXPECT_EQ(a.invalid_reason, b.invalid_reason) << what;
  EXPECT_EQ(a.tb, b.tb) << what;
  EXPECT_EQ(a.t_synack, b.t_synack) << what;
  EXPECT_EQ(a.t1, b.t1) << what;
  EXPECT_EQ(a.t2, b.t2) << what;
  EXPECT_EQ(a.t3, b.t3) << what;
  EXPECT_EQ(a.t4, b.t4) << what;
  EXPECT_EQ(a.t5, b.t5) << what;
  EXPECT_EQ(a.te, b.te) << what;
  EXPECT_EQ(a.response_bytes, b.response_bytes) << what;
  EXPECT_EQ(a.boundary, b.boundary) << what;
}

void expect_timelines_eq(const std::vector<QueryTimeline>& streaming,
                         const std::vector<QueryTimeline>& post_hoc) {
  ASSERT_EQ(streaming.size(), post_hoc.size());
  for (std::size_t i = 0; i < streaming.size(); ++i) {
    expect_timeline_eq(streaming[i], post_hoc[i],
                       ("flow " + std::to_string(i)).c_str());
  }
}

// ---------------------------------------------------------------------------
// Harness-level equivalence: the recorder both retains the trace AND feeds
// the analyzer, so post-hoc and streaming analysis see the exact same
// capture of a real TCP exchange.
// ---------------------------------------------------------------------------

/// Serves a static burst immediately and a dynamic burst after a delay
/// (same mini front-end the analysis tests use).
struct MiniFrontEnd {
  std::string static_part;
  std::string dynamic_part;
  SimTime fetch_delay = 120_ms;
  sim::Simulator* simulator = nullptr;

  void install(tcp::TcpStack& stack) {
    simulator = &stack.simulator();
    stack.listen(kPort, [this](tcp::TcpSocket& s) {
      tcp::TcpSocket::Callbacks cb;
      cb.on_data = [this, &s](net::PayloadRef) {
        s.send_text(static_part);
        simulator->schedule_in(fetch_delay, [this, &s]() {
          s.send_text(dynamic_part);
          s.close();
        });
      };
      s.set_callbacks(std::move(cb));
    });
  }
};

struct StreamingFixture {
  explicit StreamingFixture(TwoNodeOptions opt = {}) : h(opt) {
    capture::RecorderOptions ro;  // headers-only, like campaign captures
    recorder = std::make_unique<capture::TraceRecorder>(*h.client_node,
                                                        h.simulator, ro);
    analyzer = std::make_unique<StreamingAnalyzer>(kPort);
    recorder->set_sink(analyzer.get());
  }

  void run_queries(MiniFrontEnd& fe, std::size_t concurrent) {
    fe.install(*h.server);
    for (std::size_t i = 0; i < concurrent; ++i) {
      tcp::TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
      s.send_text("GET /q HTTP/1.1\r\n\r\n");
    }
    h.simulator.run();
  }

  /// Both pipelines over the identical capture, compared at tolerance 0.
  void expect_equivalent(std::size_t boundary) {
    const auto post_hoc =
        extract_all_timelines(recorder->trace(), kPort, boundary);
    const auto streaming = analyzer->drain(boundary);
    expect_timelines_eq(streaming, post_hoc);
    EXPECT_EQ(analyzer->late_packets(), 0u);
  }

  TwoNodeHarness h;
  std::unique_ptr<capture::TraceRecorder> recorder;
  std::unique_ptr<StreamingAnalyzer> analyzer;
};

TEST(StreamingEquivalence, CleanFlow) {
  StreamingFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(4000);
  fe.dynamic_part = pattern_text(6000);
  f.run_queries(fe, 1);
  f.expect_equivalent(4000);
}

TEST(StreamingEquivalence, RetransmissionAfterDrop) {
  TwoNodeOptions opt;
  opt.drop_indices_s2c = {3};  // drop one data packet -> retransmission
  StreamingFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(8 * 1448);
  fe.dynamic_part = pattern_text(2000);
  f.run_queries(fe, 1);
  f.expect_equivalent(8 * 1448);
}

TEST(StreamingEquivalence, HeadDropMakesDataArriveOutOfOrder) {
  TwoNodeOptions opt;
  opt.drop_indices_s2c = {2};  // first data packet retransmits after later ones
  StreamingFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(6 * 1448);
  fe.dynamic_part = pattern_text(1500);
  f.run_queries(fe, 1);
  f.expect_equivalent(6 * 1448);
}

TEST(StreamingEquivalence, RandomLossAndReordering) {
  TwoNodeOptions opt;
  opt.loss = 0.03;
  opt.reordering = 0.2;
  opt.seed = 77;
  StreamingFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(12 * 1448);
  fe.dynamic_part = pattern_text(5000);
  f.run_queries(fe, 1);
  f.expect_equivalent(12 * 1448);
}

TEST(StreamingEquivalence, InterleavedConcurrentFlows) {
  StreamingFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(3000);
  fe.dynamic_part = pattern_text(3000);
  f.run_queries(fe, 4);  // four connections share the link concurrently
  // Order must match split_by_flow's first-appearance order.
  f.expect_equivalent(3000);
}

TEST(StreamingEquivalence, WrongBoundaryStillMatchesIncludingReason) {
  StreamingFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(2000);
  fe.dynamic_part = pattern_text(2000);
  f.run_queries(fe, 1);
  // Boundary 0 and boundary beyond the stream both yield invalid
  // timelines; the invalid_reason strings must match the post-hoc path.
  const auto post_hoc = extract_all_timelines(f.recorder->trace(), kPort, 0);
  const auto streaming = f.analyzer->drain(0);
  expect_timelines_eq(streaming, post_hoc);
  ASSERT_FALSE(streaming.empty());
  EXPECT_FALSE(streaming.front().valid);
}

// ---------------------------------------------------------------------------
// Synthetic captures: hand-built packet sequences exercise corners a real
// TCP exchange rarely produces (missing SYN, duplicate SYN, overlapping
// retransmission). Both pipelines consume the identical record list.
// ---------------------------------------------------------------------------

struct SyntheticCapture {
  net::NodeId client{10};
  net::NodeId server{20};
  net::Port client_port = 40001;

  capture::PacketTrace trace{net::NodeId{10}};
  StreamingAnalyzer analyzer{kPort};

  capture::PacketRecord make(bool sent, std::int64_t at_us, std::uint64_t seq,
                             std::uint64_t ack, std::size_t payload,
                             net::TcpFlags flags) {
    capture::PacketRecord r;
    r.timestamp = SimTime::microseconds(at_us);
    r.direction =
        sent ? capture::Direction::kSent : capture::Direction::kReceived;
    r.src = sent ? client : server;
    r.dst = sent ? server : client;
    r.tcp.src_port = sent ? client_port : kPort;
    r.tcp.dst_port = sent ? kPort : client_port;
    r.tcp.seq = seq;
    r.tcp.ack = ack;
    r.tcp.flags = flags;
    r.payload_size = payload;
    return r;
  }

  void feed(const capture::PacketRecord& r) {
    analyzer.on_packet(r);
    trace.add(r);
  }

  void handshake_and_get() {
    feed(make(true, 1000, 100, 0, 0, {.syn = true}));                // SYN
    feed(make(false, 1100, 500, 101, 0, {.syn = true, .ack = true}));  // SYNACK
    feed(make(true, 1200, 101, 501, 0, {.ack = true}));              // ACK
    feed(make(true, 1300, 101, 501, 20, {.ack = true}));             // GET
    feed(make(false, 1400, 501, 121, 0, {.ack = true}));             // ACK GET
  }

  void teardown(std::int64_t at_us, std::uint64_t srv_seq,
                std::uint64_t cli_seq) {
    feed(make(false, at_us, srv_seq, cli_seq, 0, {.ack = true, .fin = true}));
    feed(make(true, at_us + 50, cli_seq, srv_seq + 1, 0,
              {.ack = true, .fin = true}));
    feed(make(false, at_us + 100, srv_seq + 1, cli_seq + 1, 0, {.ack = true}));
  }

  void expect_equivalent(std::size_t boundary) {
    const auto post_hoc = extract_all_timelines(trace, kPort, boundary);
    const auto streaming = analyzer.drain(boundary);
    expect_timelines_eq(streaming, post_hoc);
  }
};

TEST(StreamingSynthetic, OverlappingRetransmission) {
  SyntheticCapture c;
  c.handshake_and_get();
  // 0..999 arrives, then 500..1499 (overlaps 500 bytes), then 1500..1999.
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  c.feed(c.make(false, 2500, 1001, 121, 1000, {.ack = true}));
  c.feed(c.make(false, 3000, 2001, 121, 500, {.ack = true}));
  c.teardown(4000, 2501, 121);
  c.expect_equivalent(1200);
}

TEST(StreamingSynthetic, OutOfOrderSegments) {
  SyntheticCapture c;
  c.handshake_and_get();
  // Segments arrive 2nd, 1st, 3rd.
  c.feed(c.make(false, 2100, 1501, 121, 1000, {.ack = true}));
  c.feed(c.make(false, 2200, 501, 121, 1000, {.ack = true}));
  c.feed(c.make(false, 2300, 2501, 121, 700, {.ack = true}));
  c.teardown(3000, 3201, 121);
  c.expect_equivalent(1000);
}

TEST(StreamingSynthetic, MissingSynFallsBackToMinSeq) {
  SyntheticCapture c;
  // Capture started late: no SYN/SYNACK, data only. Both paths must agree
  // on the (invalid) timeline and its reason.
  c.feed(c.make(true, 1300, 101, 501, 20, {.ack = true}));
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  c.feed(c.make(false, 2100, 1501, 121, 500, {.ack = true}));
  c.teardown(3000, 2001, 121);
  c.expect_equivalent(800);
}

TEST(StreamingSynthetic, DuplicateSynUsesLastReceivedIss) {
  SyntheticCapture c;
  c.feed(c.make(true, 1000, 100, 0, 0, {.syn = true}));
  c.feed(c.make(false, 1100, 500, 101, 0, {.syn = true, .ack = true}));
  // Retransmitted SYN-ACK (same iss — the common duplicate).
  c.feed(c.make(false, 1150, 500, 101, 0, {.syn = true, .ack = true}));
  c.feed(c.make(true, 1200, 101, 501, 0, {.ack = true}));
  c.feed(c.make(true, 1300, 101, 501, 20, {.ack = true}));
  c.feed(c.make(false, 1400, 501, 121, 0, {.ack = true}));
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  c.teardown(3000, 1501, 121);
  c.expect_equivalent(400);
}

TEST(StreamingSynthetic, RstTerminatedFlow) {
  SyntheticCapture c;
  c.handshake_and_get();
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  c.feed(c.make(false, 2500, 1501, 121, 0, {.ack = true, .rst = true}));
  c.expect_equivalent(600);
}

TEST(StreamingSynthetic, OtherPortsAreIgnoredByBothPaths) {
  SyntheticCapture c;
  c.handshake_and_get();
  // A DNS-ish packet on another port must not create a flow.
  auto stray = c.make(true, 1500, 0, 0, 30, {});
  stray.tcp.dst_port = 53;
  c.feed(stray);
  c.feed(c.make(false, 2000, 501, 121, 800, {.ack = true}));
  c.teardown(3000, 1301, 121);
  c.expect_equivalent(500);
  EXPECT_EQ(c.analyzer.late_packets(), 0u);
}

// ---------------------------------------------------------------------------
// Streaming boundary discovery: the probe must return exactly what
// common_prefix_boundary produces over fully reassembled responses — on
// clean, reordered, retransmitted and SYN-less inputs — while retaining
// only O(boundary) bytes once two responses diverge.
// ---------------------------------------------------------------------------

struct ProbeCapture {
  net::NodeId client{10};
  net::NodeId server{20};
  capture::PacketTrace trace{net::NodeId{10}};
  StreamingAnalyzer analyzer{kPort};

  capture::PacketRecord make(net::Port client_port, bool sent,
                             std::int64_t at_us, std::uint64_t seq,
                             std::uint64_t ack, const std::string& text,
                             net::TcpFlags flags) {
    capture::PacketRecord r;
    r.timestamp = SimTime::microseconds(at_us);
    r.direction =
        sent ? capture::Direction::kSent : capture::Direction::kReceived;
    r.src = sent ? client : server;
    r.dst = sent ? server : client;
    r.tcp.src_port = sent ? client_port : kPort;
    r.tcp.dst_port = sent ? kPort : client_port;
    r.tcp.seq = seq;
    r.tcp.ack = ack;
    r.tcp.flags = flags;
    r.payload_size = text.size();
    if (!text.empty()) {
      std::vector<std::uint8_t> bytes(text.begin(), text.end());
      r.payload =
          net::PayloadRef{net::make_buffer(std::move(bytes)), 0, text.size()};
    }
    return r;
  }

  void feed(const capture::PacketRecord& r) {
    analyzer.on_packet(r);
    trace.add(r);
  }

  void server_syn(net::Port client_port, std::int64_t at_us) {
    feed(make(client_port, false, at_us, 500, 101, "",
              {.syn = true, .ack = true}));
  }

  void data(net::Port client_port, std::int64_t at_us, std::uint64_t seq,
            const std::string& text) {
    feed(make(client_port, false, at_us, seq, 121, text, {.ack = true}));
  }

  /// Ground truth: the post-hoc path over the identical record list.
  std::size_t post_hoc_boundary() const {
    std::vector<std::string> responses;
    for (const auto& [flow, conn] : trace.split_by_flow(kPort)) {
      ReassembledStream stream =
          reassemble(conn, flow, capture::Direction::kReceived);
      if (!stream.empty()) responses.push_back(stream.bytes());
    }
    return common_prefix_boundary(responses);
  }
};

TEST(StreamingBoundaryProbe, MatchesPostHocAndClipsMemory) {
  ProbeCapture c;
  c.analyzer.begin_boundary_probe();
  const std::string common(200, 'S');
  const std::string tail_a(5000, 'a');
  const std::string tail_b(5000, 'b');

  c.server_syn(40001, 1000);
  c.server_syn(40002, 1100);
  c.data(40001, 2000, 501, common + tail_a);
  c.data(40002, 2100, 501, common + tail_b);
  EXPECT_EQ(c.analyzer.probe_flows(), 2u);

  // Divergence at byte 200 clipped every buffer: the analyzer holds a few
  // hundred bytes of prefix, never the ~10 KB of payload that was fed.
  EXPECT_LT(c.analyzer.live_bytes(), 2048u);

  const std::size_t expected = c.post_hoc_boundary();
  ASSERT_EQ(expected, common.size());
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), expected);
  EXPECT_FALSE(c.analyzer.probing());
  EXPECT_EQ(c.analyzer.live_bytes(), 0u);
}

TEST(StreamingBoundaryProbe, OutOfOrderAndOverlappingRetransmission) {
  ProbeCapture c;
  c.analyzer.begin_boundary_probe();
  // Flow 1 arrives in order; flow 2 delivers its head last and overlaps a
  // retransmitted middle segment. The probe must not compare '\0' filler
  // under the still-open head gap.
  c.server_syn(40001, 1000);
  c.server_syn(40002, 1100);
  c.data(40001, 2000, 501, std::string(300, 'S') + std::string(100, 'x'));
  c.data(40002, 2100, 801, std::string(60, 'y'));         // offset 300 first
  c.data(40002, 2200, 601, std::string(240, 'S'));        // middle, overlaps
  c.data(40002, 2300, 501, std::string(100, 'S'));        // head arrives last
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), c.post_hoc_boundary());
}

TEST(StreamingBoundaryProbe, MissingSynFallsBackToMinSeq) {
  ProbeCapture c;
  c.analyzer.begin_boundary_probe();
  // Capture started late: neither flow has a SYN, so the stream base is
  // the minimum data seq — only final when the probe finishes.
  c.data(40001, 2000, 1501, std::string(50, 'D'));  // higher seq first
  c.data(40001, 2100, 501, std::string(1000, 'S'));
  c.data(40002, 2200, 501, std::string(120, 'S') + std::string(40, 'z'));
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), c.post_hoc_boundary());
}

TEST(StreamingBoundaryProbe, ShorterResponseBoundsThePrefix) {
  ProbeCapture c;
  c.analyzer.begin_boundary_probe();
  // No byte ever diverges — the prefix is limited by the shortest stream,
  // exactly like common_prefix_boundary's min-length clamp.
  c.server_syn(40001, 1000);
  c.server_syn(40002, 1100);
  c.data(40001, 2000, 501, std::string(500, 'S'));
  c.data(40002, 2100, 501, std::string(180, 'S'));
  const std::size_t expected = c.post_hoc_boundary();
  ASSERT_EQ(expected, 180u);
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), expected);
}

TEST(StreamingBoundaryProbe, ThreeFlowsTakeTheEarliestDivergence) {
  ProbeCapture c;
  c.analyzer.begin_boundary_probe();
  c.server_syn(40001, 1000);
  c.server_syn(40002, 1100);
  c.server_syn(40003, 1200);
  c.data(40001, 2000, 501, std::string(400, 'S') + "AAAA");
  c.data(40002, 2100, 501, std::string(400, 'S') + "BBBB");  // diverges @400
  c.data(40003, 2200, 501, std::string(90, 'S') + "CCCC");   // diverges @90
  const std::size_t expected = c.post_hoc_boundary();
  ASSERT_EQ(expected, 90u);
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), expected);
}

TEST(StreamingBoundaryProbe, ProbeTrafficNeverBecomesTimelines) {
  ProbeCapture c;
  c.analyzer.begin_boundary_probe();
  c.server_syn(40001, 1000);
  c.server_syn(40002, 1100);
  c.data(40001, 2000, 501, "STATICaaa");
  c.data(40002, 2100, 501, "STATICbbb");
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), 6u);
  // Fewer than two data-bearing flows -> 0, mirroring the "not enough
  // responses" guard in discover_boundary.
  c.analyzer.begin_boundary_probe();
  c.server_syn(40004, 3000);
  c.data(40004, 3100, 501, "only one response");
  EXPECT_EQ(c.analyzer.probe_flows(), 1u);
  EXPECT_EQ(c.analyzer.finish_boundary_probe(), 0u);
  // None of the probe traffic reached the timeline flow table.
  EXPECT_TRUE(c.analyzer.drain(6).empty());
}

// ---------------------------------------------------------------------------
// Online-emission lifecycle: once the boundary is known, completed flows
// collapse to timelines at teardown and their builder state is freed.
// ---------------------------------------------------------------------------

TEST(StreamingOnline, BoundaryEnablesCollapseAtTeardown) {
  SyntheticCapture c;
  c.analyzer.set_boundary(600);
  c.handshake_and_get();
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  EXPECT_EQ(c.analyzer.timelines_emitted_online(), 0u);
  const std::size_t live_before = c.analyzer.live_bytes();
  c.teardown(3000, 1501, 121);
  EXPECT_EQ(c.analyzer.timelines_emitted_online(), 1u);
  // Collapsing frees the builder: live footprint drops to one timeline.
  EXPECT_LT(c.analyzer.live_bytes(), live_before);
  EXPECT_EQ(c.analyzer.live_bytes(), sizeof(QueryTimeline));
  c.expect_equivalent(600);
  EXPECT_EQ(c.analyzer.late_packets(), 0u);
}

TEST(StreamingOnline, LateBoundaryCollapsesBufferedFlows) {
  SyntheticCapture c;
  c.handshake_and_get();
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  c.teardown(3000, 1501, 121);
  EXPECT_EQ(c.analyzer.timelines_emitted_online(), 0u);  // no boundary yet
  c.analyzer.set_boundary(600);
  EXPECT_EQ(c.analyzer.timelines_emitted_online(), 1u);
  c.expect_equivalent(600);
}

TEST(StreamingOnline, TrailingPureAckIsInertLateDataCounts) {
  SyntheticCapture c;
  c.analyzer.set_boundary(600);
  c.handshake_and_get();
  c.feed(c.make(false, 2000, 501, 121, 1000, {.ack = true}));
  c.teardown(3000, 1501, 121);
  ASSERT_EQ(c.analyzer.timelines_emitted_online(), 1u);
  // The teardown's trailing ACK (already fed) plus one more pure ACK: inert.
  c.analyzer.on_packet(c.make(false, 3300, 1502, 122, 0, {.ack = true}));
  EXPECT_EQ(c.analyzer.late_packets(), 0u);
  // A data-bearing packet after collapse is a divergence signal.
  c.analyzer.on_packet(c.make(false, 3400, 1502, 122, 100, {.ack = true}));
  EXPECT_EQ(c.analyzer.late_packets(), 1u);
}

TEST(StreamingOnline, ConflictingBoundaryThrows) {
  StreamingAnalyzer a(kPort);
  a.set_boundary(100);
  a.set_boundary(100);  // same value is fine
  EXPECT_THROW(a.set_boundary(200), std::logic_error);
  EXPECT_THROW(a.drain(300), std::logic_error);
  EXPECT_NO_THROW(a.drain(100));
}

TEST(StreamingOnline, RecorderClearResetsAnalyzer) {
  SyntheticCapture c;
  c.analyzer.set_boundary(600);
  c.handshake_and_get();
  ASSERT_GT(c.analyzer.live_bytes(), 0u);
  const std::size_t peak = c.analyzer.peak_live_bytes();
  c.analyzer.on_clear();  // what TraceRecorder::clear() forwards
  EXPECT_EQ(c.analyzer.live_bytes(), 0u);
  EXPECT_FALSE(c.analyzer.has_boundary());
  // Peak is a campaign-wide high-water mark; it survives clears.
  EXPECT_EQ(c.analyzer.peak_live_bytes(), peak);
}

TEST(StreamingOnline, DrainKeepsBoundaryForNextPhase) {
  SyntheticCapture c;
  c.handshake_and_get();
  c.teardown(3000, 501, 121);
  c.analyzer.drain(700);
  EXPECT_TRUE(c.analyzer.has_boundary());  // multi-phase experiments reuse it
  EXPECT_NO_THROW(c.analyzer.drain(700));
}

// ---------------------------------------------------------------------------
// Experiment-level equivalence: the acceptance contract. Streaming mode
// must reproduce the retained-capture experiment byte-for-byte — timings,
// node aggregates, rendered TSV rows and the Prometheus metrics dump — at
// 1, 2 and 4 threads.
// ---------------------------------------------------------------------------

testbed::ScenarioOptions small_scenario(bool stream,
                                        std::size_t shards = 1) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 6;
  opt.seed = 4242;
  opt.stream_analysis = stream;
  opt.sim_shards = shards;
  return opt;
}

testbed::ExperimentOptions small_experiment() {
  testbed::ExperimentOptions eo;
  eo.reps_per_node = 3;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

/// The exact TSV block `dyncdn_experiment` prints for a result.
std::string render_tsv(const testbed::ExperimentResult& r) {
  std::string out =
      "node\trtt_ms\tt_static_ms\tt_dynamic_ms\tt_delta_ms\toverall_ms\t"
      "samples\n";
  char row[256];
  for (const auto& n : r.per_node) {
    std::snprintf(row, sizeof(row), "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%zu\n",
                  n.node_name.c_str(), n.rtt_ms, n.med_static_ms,
                  n.med_dynamic_ms, n.med_delta_ms, n.med_overall_ms,
                  n.samples);
    out += row;
  }
  return out;
}

void expect_results_identical(const testbed::ExperimentResult& a,
                              const testbed::ExperimentResult& b) {
  ASSERT_EQ(a.boundary, b.boundary);
  ASSERT_EQ(a.per_node_timings.size(), b.per_node_timings.size());
  for (std::size_t n = 0; n < a.per_node_timings.size(); ++n) {
    const auto& qa = a.per_node_timings[n];
    const auto& qb = b.per_node_timings[n];
    ASSERT_EQ(qa.size(), qb.size()) << "node " << n;
    for (std::size_t q = 0; q < qa.size(); ++q) {
      EXPECT_EQ(std::memcmp(&qa[q], &qb[q], sizeof(qa[q])), 0)
          << "node " << n << " query " << q;
    }
  }
  EXPECT_EQ(render_tsv(a), render_tsv(b));
  EXPECT_EQ(obs::export_prometheus(a.metrics),
            obs::export_prometheus(b.metrics));
}

TEST(StreamingExperiment, ByteIdenticalToCaptureAt1_2_4Threads) {
  const auto options = small_experiment();

  testbed::ReplicaPlan plan;
  plan.executor.threads = 1;
  const auto capture_run = testbed::run_fixed_fe_experiment(
      small_scenario(false), 0, options, plan);

  // Streaming mode keeps its per-flow state in slab/arena-backed flat
  // tables; the full 1/2/4-thread x 1/2/4-shard matrix must still match
  // the serial retained-capture run byte for byte.
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      plan.executor.threads = threads;
      const auto streaming_run = testbed::run_fixed_fe_experiment(
          small_scenario(true, shards), 0, options, plan);
      expect_results_identical(capture_run, streaming_run);
    }
  }
}

TEST(StreamingExperiment, ByteIdenticalUnderClientLinkLoss) {
  auto capture_opt = small_scenario(false);
  auto stream_opt = small_scenario(true);
  capture_opt.client_link_loss = stream_opt.client_link_loss = 0.02;
  const auto options = small_experiment();

  testbed::Scenario cap(capture_opt);
  cap.warm_up();
  const auto a = testbed::run_fixed_fe_experiment(cap, 0, options);
  testbed::Scenario str(stream_opt);
  str.warm_up();
  const auto b = testbed::run_fixed_fe_experiment(str, 0, options);
  expect_results_identical(a, b);
}

TEST(StreamingExperiment, DiscoverBoundaryMatchesCaptureMode) {
  // Full-stack cross-check of the probe: the streaming scenario's clipped
  // prefix reassembly must land on the very boundary the retained-trace
  // path computes from complete responses.
  testbed::Scenario cap(small_scenario(false));
  cap.warm_up();
  const std::size_t post_hoc = testbed::discover_boundary(cap, 0, 0);
  testbed::Scenario str(small_scenario(true));
  str.warm_up();
  const std::size_t probed = testbed::discover_boundary(str, 0, 0);
  EXPECT_GT(post_hoc, 0u);
  EXPECT_EQ(probed, post_hoc);
}

TEST(StreamingExperiment, CachingExperimentMatchesCapturePath) {
  testbed::Scenario cap(small_scenario(false));
  cap.warm_up();
  const auto a = testbed::run_caching_experiment(cap, 0, 0, 5);
  testbed::Scenario str(small_scenario(true));
  str.warm_up();
  const auto b = testbed::run_caching_experiment(str, 0, 0, 5);

  EXPECT_EQ(a.t_dynamic_same_ms, b.t_dynamic_same_ms);
  EXPECT_EQ(a.t_dynamic_distinct_ms, b.t_dynamic_distinct_ms);
  EXPECT_EQ(a.detection.caching_detected, b.detection.caching_detected);
  EXPECT_EQ(a.fe_cache_hits, b.fe_cache_hits);
}

TEST(StreamingExperiment, StreamingModeEmitsOnlineAndBoundsMemory) {
  testbed::Scenario scenario(small_scenario(true));
  scenario.warm_up();
  const auto r =
      testbed::run_fixed_fe_experiment(scenario, 0, small_experiment());
  ASSERT_GT(r.all().size(), 0u);

  obs::MetricsRegistry mem;
  scenario.collect_memory_metrics(mem);
  // Flows were reduced online (the boundary arrives right after discovery,
  // so measured-phase flows collapse at teardown)...
  EXPECT_GT(mem.counter("stream_timelines_online"), 0u);
  EXPECT_EQ(mem.counter("stream_late_packets"), 0u);
  // ...and no packets were retained outside the discovery probe phase,
  // whose handful of payload-bearing records dominates the retained peak.
  const double analyzer_peak = mem.gauge("analyzer_live_bytes_peak");
  EXPECT_GT(analyzer_peak, 0.0);

  // The capture-mode scenario retains the whole campaign: its peak must
  // dwarf the streaming analyzer's in-flight state.
  testbed::Scenario cap_scenario(small_scenario(false));
  cap_scenario.warm_up();
  testbed::run_fixed_fe_experiment(cap_scenario, 0, small_experiment());
  obs::MetricsRegistry cap_mem;
  cap_scenario.collect_memory_metrics(cap_mem);
  const double capture_peak = cap_mem.gauge("capture_retained_bytes_peak");
  ASSERT_GT(capture_peak, 0.0);
  // Acceptance floor is 40% lower; construction guarantees far more.
  EXPECT_LT(analyzer_peak, 0.6 * capture_peak);
}

}  // namespace
}  // namespace dyncdn::analysis
