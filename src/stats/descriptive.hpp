// Descriptive statistics used throughout trace analysis and the benches:
// mean/stddev, order statistics, moving median (the paper smooths Fig. 3
// with a moving median of window 10), and five-number summaries.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dyncdn::stats {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample standard deviation; 0 for n < 2.
double stddev(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); 0 when mean == 0.
double coefficient_of_variation(std::span<const double> xs);

/// Median (average of the two central order statistics for even n).
/// Returns 0 for an empty span.
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1] (type-7, the numpy default).
double quantile(std::span<const double> xs, double q);

double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Moving median with a centered-as-possible trailing window: element i is
/// the median of xs[max(0, i-w+1) .. i]. Matches the paper's "moving median
/// with the sample window size being 10" smoothing of noisy time series.
std::vector<double> moving_median(std::span<const double> xs, std::size_t window);

/// Moving mean with the same trailing-window convention as moving_median.
std::vector<double> moving_mean(std::span<const double> xs, std::size_t window);

/// Five-number summary + mean/stddev, for printing experiment rows.
struct Summary {
  std::size_t n = 0;
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  double mean = 0, stddev = 0;

  /// One-line rendering: "n=.. min=.. q1=.. med=.. q3=.. max=.. mean=.. sd=.."
  std::string to_string() const;
};

Summary summarize(std::span<const double> xs);

/// Interquartile range (q3 - q1).
double iqr(std::span<const double> xs);

}  // namespace dyncdn::stats
