file(REMOVE_RECURSE
  "libdyncdn_net.a"
)
