// Durable trace pipeline tests: .dtrc round-trip byte-identity, block
// index / per-flow seeks, corrupt-input rejection, budget-triggered spill
// equivalence (a campaign that spills mid-run must analyze identically to
// one that kept everything in memory, at any thread x shard layout), and
// the artifact export feeding the `trace_diff_spilled` ctest entry.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/reassembly.hpp"
#include "capture/recorder.hpp"
#include "capture/serialize.hpp"
#include "capture/spill.hpp"
#include "cdn/deployment.hpp"
#include "harness.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_prometheus.hpp"
#include "search/keywords.hpp"
#include "tcp/stack.hpp"
#include "testbed/experiment.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::capture {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using sim::SimTime;
using namespace dyncdn::sim::literals;

/// Real captured traffic (handshake, data, teardown) — same generator as
/// the text-serialization tests, so both formats face identical input.
/// `connections` concurrent client connections multiply the record count
/// and give the capture several distinct flows. With `budget` > 0 the
/// recorder spills into `*spill` whenever its buffer crosses the budget;
/// the harness run is deterministic, so two calls produce byte-identical
/// packet streams regardless of spilling.
std::unique_ptr<TwoNodeHarness> harness;
std::unique_ptr<TraceRecorder> recorder;

/// Tears the long-lived harness down while the slab/arena pools backing
/// its captured payloads are still alive (static destruction order across
/// translation units is unspecified, so the trace must not outlive main).
class HarnessTeardown : public ::testing::Environment {
 public:
  void TearDown() override {
    recorder.reset();
    harness.reset();
  }
};
const auto* const kTeardown =
    ::testing::AddGlobalTestEnvironment(new HarnessTeardown);

PacketTrace make_real_trace(bool payloads, int connections = 1,
                            SpillWriter* spill = nullptr,
                            std::size_t budget = 0,
                            TraceRecorder** recorder_out = nullptr) {
  harness = std::make_unique<TwoNodeHarness>();
  RecorderOptions ro;
  ro.capture_payloads = payloads;
  recorder = std::make_unique<TraceRecorder>(*harness->client_node,
                                             harness->simulator, ro);
  if (spill != nullptr) recorder->set_spill(spill, budget);
  harness->server->listen(80, [](tcp::TcpSocket& s) {
    tcp::TcpSocket::Callbacks cb;
    cb.on_data = [&s](net::PayloadRef) {
      s.send_text("response:" + pattern_text(4000));
      s.close();
    };
    s.set_callbacks(std::move(cb));
  });
  for (int i = 0; i < connections; ++i) {
    tcp::TcpSocket& c =
        harness->client->connect({harness->server_node->id(), 80}, {});
    c.send_text("GET /x HTTP/1.1\r\n\r\n");
  }
  harness->simulator.run();
  if (recorder_out != nullptr) *recorder_out = recorder.get();
  return recorder->full_trace();
}

void expect_traces_equal(const PacketTrace& a, const PacketTrace& b,
                         bool with_payloads) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.node(), b.node());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto x = a.records()[i];
    const auto y = b.records()[i];
    EXPECT_EQ(x.timestamp, y.timestamp) << i;
    EXPECT_EQ(x.direction, y.direction) << i;
    EXPECT_EQ(x.src, y.src) << i;
    EXPECT_EQ(x.dst, y.dst) << i;
    EXPECT_EQ(x.tcp.seq, y.tcp.seq) << i;
    EXPECT_EQ(x.tcp.ack, y.tcp.ack) << i;
    EXPECT_EQ(x.tcp.window, y.tcp.window) << i;
    EXPECT_EQ(x.tcp.flags.syn, y.tcp.flags.syn) << i;
    EXPECT_EQ(x.tcp.flags.ack, y.tcp.flags.ack) << i;
    EXPECT_EQ(x.tcp.flags.fin, y.tcp.flags.fin) << i;
    EXPECT_EQ(x.tcp.flags.rst, y.tcp.flags.rst) << i;
    EXPECT_EQ(x.payload_size, y.payload_size) << i;
    if (with_payloads) {
      EXPECT_EQ(x.payload.to_text(), y.payload.to_text()) << i;
    } else {
      EXPECT_TRUE(y.payload.empty()) << i;
    }
  }
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Codec: round-trip byte-identity.
// ---------------------------------------------------------------------------

TEST(SpillFormat, RoundTripWithPayloads) {
  const PacketTrace original = make_real_trace(true);
  ASSERT_GT(original.size(), 5u);
  const std::string path = temp_path("spill_rt_payloads.dtrc");
  save_trace_dtrc(original, path);
  const PacketTrace loaded = load_trace_dtrc(path);
  expect_traces_equal(original, loaded, true);
  std::remove(path.c_str());
}

TEST(SpillFormat, RoundTripHeadersOnly) {
  const PacketTrace original = make_real_trace(false);
  const std::string path = temp_path("spill_rt_headers.dtrc");
  save_trace_dtrc(original, path);
  const PacketTrace loaded = load_trace_dtrc(path);
  expect_traces_equal(original, loaded, false);
  std::remove(path.c_str());
}

TEST(SpillFormat, EmptyTraceRoundTrips) {
  PacketTrace empty(net::NodeId{7});
  const std::string path = temp_path("spill_rt_empty.dtrc");
  save_trace_dtrc(empty, path);
  SpillReader reader(path);
  EXPECT_EQ(reader.node(), net::NodeId{7});
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_TRUE(reader.read_all().empty());
  std::remove(path.c_str());
}

TEST(SpillFormat, ReassemblyWorksOnReloadedTrace) {
  // The acid test: the analysis pipeline must produce identical results on
  // the spilled-then-reloaded trace.
  const PacketTrace original = make_real_trace(true);
  const std::string path = temp_path("spill_reassembly.dtrc");
  save_trace_dtrc(original, path);
  const PacketTrace loaded = load_trace_dtrc(path);
  const auto flow = original.flows().front();
  const auto a = analysis::reassemble(original, flow, Direction::kReceived);
  const auto b = analysis::reassemble(loaded, flow, Direction::kReceived);
  EXPECT_EQ(a.bytes(), b.bytes());
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].at, b.segments()[i].at);
  }
  std::remove(path.c_str());
}

TEST(SpillFormat, TextAndBinaryConvergeOnTheSameRecords) {
  // convert-style cross-check: text -> records -> dtrc -> records must
  // equal the original (the trace_inspect convert path).
  const PacketTrace original = make_real_trace(true);
  const PacketTrace via_text = parse_trace(serialize_trace(original, true));
  const std::string path = temp_path("spill_convert.dtrc");
  save_trace_dtrc(via_text, path);
  expect_traces_equal(original, load_trace_dtrc(path), true);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Block structure: index metadata, iteration determinism, per-flow seek.
// ---------------------------------------------------------------------------

TEST(SpillFormat, MultiBlockEncodingAndBlockIndex) {
  const PacketTrace original = make_real_trace(true, 8);
  ASSERT_GT(original.size(), 64u);
  const std::string path = temp_path("spill_blocks.dtrc");
  SpillWriter::Options wo;
  wo.block_records = 16;  // force many blocks
  {
    SpillWriter writer(path, original.node(), wo);
    writer.append_trace(original);
    writer.finish();
    EXPECT_EQ(writer.stats().records, original.size());
    EXPECT_GT(writer.stats().bytes_written, 0u);
    EXPECT_EQ(writer.stats().blocks, (original.size() + 15) / 16);
  }
  SpillReader reader(path);
  EXPECT_GT(reader.block_count(), 3u);
  std::uint64_t indexed_records = 0;
  SimTime prev_last = SimTime::zero();
  for (std::size_t b = 0; b < reader.block_count(); ++b) {
    const auto info = reader.block_info(b);
    EXPECT_LE(info.records, 16u);
    EXPECT_LE(info.first_timestamp, info.last_timestamp) << "block " << b;
    EXPECT_GE(info.first_timestamp, prev_last) << "block " << b;
    prev_last = info.last_timestamp;
    indexed_records += info.records;
  }
  EXPECT_EQ(indexed_records, reader.record_count());
  EXPECT_EQ(reader.record_count(), original.size());

  // Blocks decode independently and concatenate to the full capture.
  PacketTrace concat(reader.node());
  for (std::size_t b = 0; b < reader.block_count(); ++b) {
    reader.read_block(b, concat);
  }
  expect_traces_equal(original, concat, true);
  std::remove(path.c_str());
}

TEST(SpillFormat, ReaderIterationIsDeterministic) {
  const PacketTrace original = make_real_trace(true);
  const std::string path = temp_path("spill_determinism.dtrc");
  save_trace_dtrc(original, path);
  SpillReader reader(path);
  // Two full decodes of the same mapping are byte-identical.
  const std::string once = serialize_trace(reader.read_all(), true);
  const std::string twice = serialize_trace(reader.read_all(), true);
  EXPECT_TRUE(once == twice);
  // Streaming visitation sees the same records in the same order.
  PacketTrace streamed(reader.node());
  reader.for_each_record([&](const PacketRecord& r) { streamed.add(r); });
  expect_traces_equal(original, streamed, true);
  std::remove(path.c_str());
}

TEST(SpillFormat, ReadFlowMatchesFilterFlow) {
  const PacketTrace original = make_real_trace(true, 8);
  ASSERT_GT(original.flows().size(), 4u);
  const std::string path = temp_path("spill_flow.dtrc");
  SpillWriter::Options wo;
  wo.block_records = 16;
  {
    SpillWriter writer(path, original.node(), wo);
    writer.append_trace(original);
    writer.finish();
  }
  SpillReader reader(path);
  for (const net::FlowId& flow : original.flows()) {
    expect_traces_equal(original.filter_flow(flow), reader.read_flow(flow),
                        true);
  }
  std::remove(path.c_str());
}

TEST(SpillFormat, LoadTraceSniffsBinaryFormat) {
  // load_trace dispatches on the magic, not the extension: a .dtrc file
  // under a text-ish name still loads, so every consumer of load_trace
  // (trace_inspect, --diff, examples) reads both formats.
  const PacketTrace original = make_real_trace(true);
  const std::string path = temp_path("spill_sniff.trace");
  save_trace_dtrc(original, path);
  expect_traces_equal(original, load_trace(path), true);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Error paths: truncation and corruption must throw, never crash.
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SpillFormat, TruncatedFilesThrow) {
  const PacketTrace original = make_real_trace(true);
  const std::string path = temp_path("spill_trunc.dtrc");
  save_trace_dtrc(original, path);
  const std::string whole = read_file(path);
  ASSERT_GT(whole.size(), 64u);
  const std::string cut = temp_path("spill_trunc_cut.dtrc");
  // Every truncation class: empty, sub-header, header-only (no tail),
  // mid-blocks, and just-missing-the-tail.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{16}, whole.size() / 2,
        whole.size() - 1}) {
    write_file(cut, whole.substr(0, keep));
    EXPECT_THROW(SpillReader reader(cut), std::runtime_error)
        << "kept " << keep << " of " << whole.size() << " bytes";
  }
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(SpillFormat, CorruptMagicThrows) {
  const PacketTrace original = make_real_trace(true);
  const std::string path = temp_path("spill_corrupt.dtrc");
  save_trace_dtrc(original, path);
  std::string bytes = read_file(path);
  const std::string bad = temp_path("spill_corrupt_bad.dtrc");

  std::string head = bytes;
  head[0] ^= 0xFF;  // header magic
  write_file(bad, head);
  EXPECT_THROW(SpillReader r1(bad), std::runtime_error);
  EXPECT_FALSE(SpillReader::is_dtrc_file(bad));

  std::string tail = bytes;
  tail[tail.size() - 1] ^= 0xFF;  // tail magic
  write_file(bad, tail);
  EXPECT_THROW(SpillReader r2(bad), std::runtime_error);

  std::string footer = bytes;
  // Footer offset pointing past EOF.
  for (std::size_t i = 0; i < 8; ++i) {
    footer[footer.size() - 24 + i] = static_cast<char>(0xEE);
  }
  write_file(bad, footer);
  EXPECT_THROW(SpillReader r3(bad), std::runtime_error);

  EXPECT_THROW(SpillReader missing(temp_path("no_such_file.dtrc")),
               std::runtime_error);
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

// ---------------------------------------------------------------------------
// Writer lifecycle: finish/on_clear semantics and cumulative stats.
// ---------------------------------------------------------------------------

TEST(SpillFormat, OnClearRestartsFileAndKeepsCumulativeStats) {
  const PacketTrace original = make_real_trace(true, 4);
  ASSERT_GT(original.size(), 20u);
  const std::string path = temp_path("spill_clear.dtrc");
  SpillWriter writer(path, original.node());
  writer.append_trace(original);
  writer.finish();
  EXPECT_THROW(writer.append_trace(original), std::logic_error);

  writer.on_clear();  // discard: the file restarts from the header
  PacketTrace second(original.node());
  for (std::size_t i = 0; i < 10; ++i) second.add(original.records()[i]);
  writer.append_trace(second);
  writer.finish();

  SpillReader reader(path);
  EXPECT_EQ(reader.record_count(), 10u);
  expect_traces_equal(second, reader.read_all(), true);
  // Stats are cumulative across restarts (the telemetry counters must
  // never run backwards mid-campaign).
  EXPECT_EQ(writer.stats().records, original.size() + 10u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Recorder integration: budget-triggered spill.
// ---------------------------------------------------------------------------

TEST(SpillRecorder, BudgetedCaptureEqualsInMemoryCapture) {
  // Unbudgeted reference run, then an identical deterministic run with a
  // budget small enough to force several mid-run spills: full_trace()
  // (spilled prefix reloaded from disk + in-memory tail) must be
  // byte-identical to the in-memory capture.
  const PacketTrace reference = make_real_trace(true, 4);
  const std::size_t budget = reference.retained_bytes() / 5;
  ASSERT_GT(budget, 0u);

  const std::string path = temp_path("spill_budget.dtrc");
  SpillWriter spill(path, reference.node());
  TraceRecorder* recorder = nullptr;
  const PacketTrace budgeted =
      make_real_trace(true, 4, &spill, budget, &recorder);
  ASSERT_NE(recorder, nullptr);
  EXPECT_TRUE(recorder->has_spilled());
  // The buffer actually stayed bounded: the tail alone is not the capture.
  EXPECT_LT(recorder->trace().size(), reference.size());
  expect_traces_equal(reference, budgeted, true);
  std::remove(path.c_str());
}

TEST(SpillRecorder, PeakRetainedReflectsPreSpillHighWater) {
  const PacketTrace reference = make_real_trace(true, 4);
  const std::size_t budget = reference.retained_bytes() / 4;
  const std::string path = temp_path("spill_peak.dtrc");
  SpillWriter spill(path, reference.node());
  TraceRecorder* recorder = nullptr;
  make_real_trace(true, 4, &spill, budget, &recorder);
  ASSERT_TRUE(recorder->has_spilled());
  // The saw-toothing buffer's true high-water: at least the budget (a
  // spill only fires at/above it), well below the full capture cost.
  EXPECT_GE(recorder->peak_retained_bytes(), budget);
  EXPECT_LT(recorder->peak_retained_bytes(), reference.retained_bytes());
  std::remove(path.c_str());
}

TEST(SpillRecorder, ClearResetsSpilledState) {
  const PacketTrace reference = make_real_trace(true, 4);
  const std::string path = temp_path("spill_reclear.dtrc");
  SpillWriter spill(path, reference.node());
  TraceRecorder* recorder = nullptr;
  make_real_trace(true, 4, &spill, reference.retained_bytes() / 5, &recorder);
  ASSERT_TRUE(recorder->has_spilled());
  recorder->clear();
  EXPECT_FALSE(recorder->has_spilled());
  EXPECT_TRUE(recorder->trace().empty());
  EXPECT_TRUE(recorder->full_trace().empty());
  EXPECT_FALSE(spill.finished());  // restarted, ready for the next phase
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Scenario wiring: budget resolution and campaign-level equivalence.
// ---------------------------------------------------------------------------

TEST(SpillScenario, ParseByteSizeSuffixes) {
  using testbed::parse_byte_size;
  EXPECT_EQ(parse_byte_size("0"), std::size_t{0});
  EXPECT_EQ(parse_byte_size("1024"), std::size_t{1024});
  EXPECT_EQ(parse_byte_size("4k"), std::size_t{4096});
  EXPECT_EQ(parse_byte_size("4K"), std::size_t{4096});
  EXPECT_EQ(parse_byte_size("2m"), std::size_t{2} << 20);
  EXPECT_EQ(parse_byte_size("1G"), std::size_t{1} << 30);
  EXPECT_FALSE(parse_byte_size("").has_value());
  EXPECT_FALSE(parse_byte_size("k").has_value());
  EXPECT_FALSE(parse_byte_size("12x").has_value());
  EXPECT_FALSE(parse_byte_size("1kb").has_value());
}

testbed::ScenarioOptions spill_scenario(std::size_t budget,
                                        std::size_t sim_shards = 1) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 4;
  opt.seed = 4242;
  opt.capture_budget = budget;
  opt.sim_shards = sim_shards;
  return opt;
}

TEST(SpillScenario, EnvVarSetsBudgetAndOptionWins) {
  setenv("DYNCDN_CAPTURE_BUDGET", "64k", 1);
  testbed::Scenario from_env(spill_scenario(0));
  EXPECT_EQ(from_env.capture_budget(), std::size_t{64} << 10);
  EXPECT_TRUE(from_env.spilling_active());
  testbed::Scenario explicit_opt(spill_scenario(1234));
  EXPECT_EQ(explicit_opt.capture_budget(), 1234u);
  unsetenv("DYNCDN_CAPTURE_BUDGET");
  testbed::Scenario off(spill_scenario(0));
  EXPECT_EQ(off.capture_budget(), 0u);
  EXPECT_FALSE(off.spilling_active());
}

testbed::ExperimentOptions small_experiment() {
  testbed::ExperimentOptions eo;
  eo.reps_per_node = 3;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

void expect_timings_identical(const testbed::ExperimentResult& a,
                              const testbed::ExperimentResult& b) {
  ASSERT_EQ(a.boundary, b.boundary);
  ASSERT_EQ(a.per_node_timings.size(), b.per_node_timings.size());
  for (std::size_t n = 0; n < a.per_node_timings.size(); ++n) {
    const auto& qa = a.per_node_timings[n];
    const auto& qb = b.per_node_timings[n];
    ASSERT_EQ(qa.size(), qb.size()) << "node " << n;
    for (std::size_t q = 0; q < qa.size(); ++q) {
      EXPECT_EQ(std::memcmp(&qa[q], &qb[q], sizeof(qa[q])), 0)
          << "node " << n << " query " << q;
    }
  }
}

TEST(SpillScenario, BudgetedCampaignMatchesInMemoryAtAnyLayout) {
  // The tentpole contract: a campaign whose recorders spill mid-run must
  // produce byte-identical per-query timings to the unbudgeted in-memory
  // run, across 1/2/4 worker threads x 1/2/4 conservative sim shards.
  // The replica split is held fixed (one replica per vantage point, the
  // same plan the unbudgeted base uses): clients share the FE fleet, so
  // changing the *replica* layout legitimately changes the measured
  // packet streams — the invariance contract is over threads and sim
  // shards, and the spill counters ride on the capture bytes.
  const auto options = small_experiment();
  testbed::ReplicaPlan plan;  // shards = 0: one replica per vantage point
  plan.executor.threads = 1;
  const auto base =
      testbed::run_fixed_fe_experiment(spill_scenario(0), 0, options, plan);

  // A budget this small forces multiple spills per vantage point.
  const std::size_t budget = 8 << 10;
  std::string budgeted_export;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      plan.executor.threads = threads;
      const auto r = testbed::run_fixed_fe_experiment(
          spill_scenario(budget, shards), 0, options, plan);
      expect_timings_identical(base, r);
      EXPECT_GT(r.metrics.counter("spill_bytes_written"), 0u)
          << threads << "x" << shards;
      EXPECT_GT(r.metrics.counter("spill_blocks"), 0u);
      // The compact encoding beats PacketTrace's in-memory accounting.
      EXPECT_GT(r.metrics.counter("spill_raw_bytes"),
                r.metrics.counter("spill_bytes_written"));
      // The whole export — spill counters included — is byte-identical
      // at every thread/sim-shard combination.
      const std::string exported = obs::export_prometheus(r.metrics);
      if (budgeted_export.empty()) {
        budgeted_export = exported;
      } else {
        EXPECT_TRUE(budgeted_export == exported)
            << "metrics diverge at " << threads << " threads, " << shards
            << " shards";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Artifact export for the `trace_diff_spilled` ctest entry: one budgeted
// traced run; its spans go to spans.json and its complete capture goes to
// capture.dtrc THROUGH the spill path (budget-spilled prefix + flushed
// tail). `trace_inspect spans --diff` then requires the timelines rebuilt
// from the spilled file to match the live spans at tolerance 0.
// ---------------------------------------------------------------------------

TEST(SpillArtifacts, ExportSpansAndSpilledCaptureForDiff) {
#if !DYNCDN_OBS
  GTEST_SKIP() << "requires span instrumentation (DYNCDN_OBS=ON)";
#endif
  namespace fs = std::filesystem;
  const char* env = std::getenv("DYNCDN_SPILL_ARTIFACT_DIR");
  const fs::path dir = env != nullptr
                           ? fs::path(env)
                           : fs::temp_directory_path() / "dyncdn_spill_artifacts";
  fs::create_directories(dir);

  testbed::ScenarioOptions so;
  so.profile = cdn::google_like_profile();
  so.client_count = 2;
  so.seed = 7;
  so.capture_payloads = true;
  so.enable_tracing = true;
  so.capture_budget = 8 << 10;  // forced low: several spills per client
  testbed::Scenario scenario(so);
  scenario.warm_up();
  scenario.connect_client_to_fe(0, 0);

  auto& client = scenario.clients()[0];
  const net::Endpoint fe = scenario.fe_endpoint(0);
  const search::KeywordCatalog catalog(9);
  SimTime at = SimTime::zero();
  for (const search::Keyword& kw : catalog.distinct_corpus(4)) {
    client.node->simulator().schedule_in(at, [&client, fe, kw]() {
      client.query_client->submit(fe, kw, [](const cdn::QueryResult&) {});
    });
    at = at + SimTime::milliseconds(1500);
  }
  scenario.run();

  // The diff must exercise a genuinely spilled file, not an in-memory dump.
  ASSERT_TRUE(client.recorder->has_spilled());
  client.spill->append_trace(client.recorder->trace());  // flush the tail
  client.spill->finish();
  fs::copy_file(client.spill->path(), dir / "capture.dtrc",
                fs::copy_options::overwrite_existing);
  EXPECT_TRUE(obs::write_chrome_trace(*scenario.trace(),
                                      (dir / "spans.json").string()));
  EXPECT_TRUE(fs::exists(dir / "capture.dtrc"));
}

}  // namespace
}  // namespace dyncdn::capture
