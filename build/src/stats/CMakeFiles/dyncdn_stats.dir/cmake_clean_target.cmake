file(REMOVE_RECURSE
  "libdyncdn_stats.a"
)
