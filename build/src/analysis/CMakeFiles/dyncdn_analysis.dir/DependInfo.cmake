
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/boundary.cpp" "src/analysis/CMakeFiles/dyncdn_analysis.dir/boundary.cpp.o" "gcc" "src/analysis/CMakeFiles/dyncdn_analysis.dir/boundary.cpp.o.d"
  "/root/repo/src/analysis/reassembly.cpp" "src/analysis/CMakeFiles/dyncdn_analysis.dir/reassembly.cpp.o" "gcc" "src/analysis/CMakeFiles/dyncdn_analysis.dir/reassembly.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/analysis/CMakeFiles/dyncdn_analysis.dir/timeline.cpp.o" "gcc" "src/analysis/CMakeFiles/dyncdn_analysis.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/capture/CMakeFiles/dyncdn_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyncdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dyncdn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
