#include "tcp/stack.hpp"

#include <stdexcept>
#include <utility>

namespace dyncdn::tcp {

TcpStack::TcpStack(net::Node& node, TcpConfig default_config)
    : node_(node), default_config_(default_config) {
  node_.set_receive_handler(
      [this](const net::PacketPtr& p) { on_packet(p); });
}

TcpStack::~TcpStack() {
  sockets_.for_each(
      [this](const net::FlowId&, TcpSocket* s) { socket_slab_.destroy(s); });
}

void TcpStack::listen(net::Port port, AcceptHandler handler) {
  if (!listeners_.emplace(port, std::move(handler)).second) {
    throw std::logic_error("TcpStack::listen: port already in use");
  }
}

TcpSocket& TcpStack::connect(net::Endpoint remote,
                             TcpSocket::Callbacks callbacks) {
  return connect(remote, std::move(callbacks), default_config_);
}

TcpSocket& TcpStack::connect(net::Endpoint remote,
                             TcpSocket::Callbacks callbacks,
                             const TcpConfig& config) {
  const net::FlowId flow{
      net::Endpoint{node_.id(), allocate_ephemeral_port()}, remote};
  TcpSocket* socket = socket_slab_.create(*this, flow, config,
                                          std::move(callbacks),
                                          /*passive=*/false);
  sockets_.try_emplace(flow, socket);
  ++sockets_opened_;
  socket->start_connect();
  return *socket;
}

void TcpStack::on_packet(const net::PacketPtr& packet) {
  // A socket keys its flow by (local, remote); the incoming packet's sender
  // view must be reversed to match.
  const net::FlowId flow = packet->flow_from_sender().reversed();

  if (TcpSocket** existing = sockets_.find(flow)) {
    (*existing)->on_packet(packet);
    return;
  }

  if (packet->tcp.flags.syn && !packet->tcp.flags.ack) {
    auto listener = listeners_.find(packet->tcp.dst_port);
    if (listener != listeners_.end()) {
      TcpSocket* socket = socket_slab_.create(
          *this, flow, default_config_, TcpSocket::Callbacks{},
          /*passive=*/true);
      sockets_.try_emplace(flow, socket);
      ++sockets_opened_;
      listener->second(*socket);  // install application callbacks
      socket->on_syn(packet);
      return;
    }
    send_reset_for(packet);
    return;
  }
  if (packet->tcp.flags.rst) return;  // never answer a RST with a RST
  // Stray non-SYN segment for an unknown flow (e.g. a retransmission that
  // arrived after teardown): answer with RST so the remote end stops
  // retransmitting into the void, as a real stack would.
  send_reset_for(packet);
}

void TcpStack::send_reset_for(const net::PacketPtr& packet) {
  auto rst = net::acquire_packet();
  rst->dst = packet->src;
  rst->tcp.src_port = packet->tcp.dst_port;
  rst->tcp.dst_port = packet->tcp.src_port;
  rst->tcp.seq = packet->tcp.ack;
  rst->tcp.ack = packet->tcp.seq + 1;
  rst->tcp.flags.rst = true;
  rst->tcp.flags.ack = true;
  transmit(std::move(rst));
}

void TcpStack::destroy(TcpSocket& socket) {
  const net::FlowId flow = socket.flow();
  // Deferred: the socket may be deep in its own call stack. Stats are
  // banked at reap time (not here) so aggregate_stats never double-counts
  // a socket that is both retired and still in the map.
  simulator().schedule_in(sim::SimTime::zero(), [this, flow]() {
    TcpSocket** entry = sockets_.find(flow);
    if (entry == nullptr) return;
    TcpSocket* socket = *entry;
    const SocketStats& s = socket->stats();
    retired_stats_.bytes_sent += s.bytes_sent;
    retired_stats_.bytes_received += s.bytes_received;
    retired_stats_.segments_sent += s.segments_sent;
    retired_stats_.retransmits_rto += s.retransmits_rto;
    retired_stats_.retransmits_fast += s.retransmits_fast;
    retired_stats_.dupacks_received += s.dupacks_received;
    sockets_.erase(flow);
    socket_slab_.destroy(socket);
  });
}

SocketStats TcpStack::aggregate_stats() const {
  SocketStats total = retired_stats_;
  // Slot-order iteration: fine here, the fold is order-independent.
  sockets_.for_each([&total](const net::FlowId&, TcpSocket* const& socket) {
    const SocketStats& s = socket->stats();
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
    total.segments_sent += s.segments_sent;
    total.retransmits_rto += s.retransmits_rto;
    total.retransmits_fast += s.retransmits_fast;
    total.dupacks_received += s.dupacks_received;
  });
  return total;
}

net::Port TcpStack::allocate_ephemeral_port() {
  // Monotonic; wraps after ~25k connections per node, far beyond any
  // single experiment's needs, and TIME_WAIT prevents 4-tuple reuse races.
  if (next_ephemeral_ == 0xFFFF) next_ephemeral_ = 40000;
  return next_ephemeral_++;
}

}  // namespace dyncdn::tcp
