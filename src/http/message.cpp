#include "http/message.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace dyncdn::http {

namespace {
bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

void append_headers(std::string& out, const HeaderList& headers) {
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
}

std::size_t headers_serialized_size(const HeaderList& headers) {
  std::size_t n = 0;
  for (const auto& [name, value] : headers) {
    n += name.size() + 2 + value.size() + 2;
  }
  return n;
}
}  // namespace

std::optional<std::string_view> find_header(const HeaderList& headers,
                                            std::string_view name) {
  for (const auto& [n, v] : headers) {
    if (iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

void HttpRequest::set_header(std::string name, std::string value) {
  for (auto& [n, v] : headers) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

std::string HttpRequest::serialize() const {
  std::string out;
  out.reserve(method.size() + target.size() + version.size() + 4 +
              headers_serialized_size(headers) + 2 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  append_headers(out, headers);
  out += "\r\n";
  out += body;
  return out;
}

std::optional<std::string> HttpRequest::query_param(
    std::string_view key) const {
  const std::size_t qpos = target.find('?');
  if (qpos == std::string::npos) return std::nullopt;
  std::string_view query = std::string_view(target).substr(qpos + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return url_decode(pair.substr(eq + 1));
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return std::nullopt;
}

void HttpResponse::set_header(std::string name, std::string value) {
  for (auto& [n, v] : headers) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

std::string HttpResponse::serialize_head() const {
  char line[64];
  std::snprintf(line, sizeof(line), "%s %d ", version.c_str(), status);
  std::string out;
  out.reserve(version.size() + 16 + reason.size() + 2 +
              headers_serialized_size(headers) + 2);
  out += line;
  out += reason;
  out += "\r\n";
  append_headers(out, headers);
  out += "\r\n";
  return out;
}

std::string HttpResponse::serialize() const {
  // When Content-Length is absent it is injected in place. set_header()
  // would have appended it at the end of the header list, so emitting it
  // after the existing headers is byte-identical to the old copy-mutate
  // path without duplicating the whole message.
  const bool inject = !header("Content-Length");
  const std::string content_length =
      inject ? std::to_string(body.size()) : std::string();
  char line[64];
  std::snprintf(line, sizeof(line), "%s %d ", version.c_str(), status);
  std::string out;
  out.reserve(version.size() + 16 + reason.size() + 2 +
              headers_serialized_size(headers) +
              (inject ? 16 + content_length.size() + 2 : 0) + 2 + body.size());
  out += line;
  out += reason;
  out += "\r\n";
  append_headers(out, headers);
  if (inject) {
    out += "Content-Length: ";
    out += content_length;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        return std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
      };
      out.push_back(static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string url_encode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(c);
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", uc);
      out += buf;
    }
  }
  return out;
}

}  // namespace dyncdn::http
