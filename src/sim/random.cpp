#include "sim/random.hpp"

namespace dyncdn::sim {

std::uint64_t RngFactory::mix(std::uint64_t x) {
  // SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace {
std::uint64_t hash_name(std::string_view name) {
  // FNV-1a over the stream name.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}
}  // namespace

RngStream RngFactory::stream(std::string_view name) const {
  return RngStream(mix(experiment_seed_ ^ hash_name(name)));
}

RngFactory RngFactory::derive(std::string_view name) const {
  return RngFactory(mix(experiment_seed_ ^ hash_name(name) ^ 0xA5A5A5A5A5A5A5A5ULL));
}

}  // namespace dyncdn::sim
