#include "analysis/boundary.hpp"

#include <algorithm>

namespace dyncdn::analysis {

std::size_t common_prefix_boundary(std::span<const std::string> responses) {
  if (responses.size() < 2) return 0;
  std::size_t prefix = responses.front().size();
  const std::string& first = responses.front();
  for (std::size_t i = 1; i < responses.size() && prefix > 0; ++i) {
    const std::string& other = responses[i];
    const std::size_t limit = std::min(prefix, other.size());
    std::size_t p = 0;
    while (p < limit && first[p] == other[p]) ++p;
    prefix = p;
  }
  return prefix;
}

std::size_t common_prefix_boundary(
    std::span<const ReassembledStream> streams) {
  std::vector<std::string> bodies;
  bodies.reserve(streams.size());
  for (const ReassembledStream& s : streams) bodies.push_back(s.bytes());
  return common_prefix_boundary(bodies);
}

std::vector<EventCluster> temporal_clusters(const ReassembledStream& stream,
                                            sim::SimTime min_gap) {
  std::vector<EventCluster> clusters;

  // Order arrivals by time (capture order is already temporal, but be
  // defensive about merged traces).
  std::vector<ReassembledStream::Segment> segs(stream.segments().begin(),
                                               stream.segments().end());
  std::stable_sort(segs.begin(), segs.end(),
                   [](const auto& a, const auto& b) { return a.at < b.at; });

  for (const auto& s : segs) {
    if (clusters.empty() || s.at - clusters.back().end >= min_gap) {
      EventCluster c;
      c.start = c.end = s.at;
      c.packet_count = 1;
      c.first_offset = s.offset;
      c.bytes = s.length;
      clusters.push_back(c);
    } else {
      EventCluster& c = clusters.back();
      c.end = s.at;
      ++c.packet_count;
      c.first_offset = std::min(c.first_offset, s.offset);
      c.bytes += s.length;
    }
  }
  return clusters;
}

std::size_t temporal_boundary_estimate(const ReassembledStream& stream,
                                       sim::SimTime min_gap) {
  const auto clusters = temporal_clusters(stream, min_gap);
  if (clusters.size() < 2) return 0;
  // The static portion occupies the first cluster; the dynamic portion
  // begins where the second cluster's lowest offset starts.
  return clusters[1].first_offset;
}

}  // namespace dyncdn::analysis
