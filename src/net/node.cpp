#include "net/node.hpp"

#include <utility>

#include "net/network.hpp"

namespace dyncdn::net {

Node::Node(Network& network, NodeId id, std::string name, GeoPoint location,
           sim::Simulator& simulator, std::uint32_t shard)
    : network_(network),
      id_(id),
      name_(std::move(name)),
      location_(location),
      simulator_(simulator),
      shard_(shard) {}

void Node::send(PacketPtr packet) {
  packet->src = id_;
  for (const auto& tap : send_taps_) tap(packet);
  network_.route(id_, std::move(packet));
}

void Node::deliver(const PacketPtr& packet) {
  if (packet->dst != id_) {
    // Transit traffic: forward along the route without surfacing it to the
    // local transport or capture taps (taps model end-host tcpdump).
    network_.route(id_, packet);
    return;
  }
  for (const auto& tap : receive_taps_) tap(packet);
  if (receive_handler_) receive_handler_(packet);
}

}  // namespace dyncdn::net
