file(REMOVE_RECURSE
  "CMakeFiles/fig4_packet_timelines.dir/fig4_packet_timelines.cpp.o"
  "CMakeFiles/fig4_packet_timelines.dir/fig4_packet_timelines.cpp.o.d"
  "fig4_packet_timelines"
  "fig4_packet_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_packet_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
