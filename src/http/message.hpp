// Minimal HTTP/1.1 message model: enough to carry search queries and
// responses with the same framing the paper's tcpdump analysis observed
// (request line + headers, status line + headers + Content-Length body).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dyncdn::http {

using HeaderList = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup (HTTP header names are case-insensitive).
std::optional<std::string_view> find_header(const HeaderList& headers,
                                            std::string_view name);

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderList headers;
  std::string body;

  void set_header(std::string name, std::string value);
  std::optional<std::string_view> header(std::string_view name) const {
    return find_header(headers, name);
  }

  /// Wire form: request line, headers, CRLF, body.
  std::string serialize() const;

  /// Extract a query parameter from the target, e.g. q from
  /// "/search?q=hello+world" (with '+' decoded to space, %xx decoded).
  std::optional<std::string> query_param(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderList headers;
  std::string body;

  void set_header(std::string name, std::string value);
  std::optional<std::string_view> header(std::string_view name) const {
    return find_header(headers, name);
  }

  /// Wire form; sets Content-Length from body size if not already present.
  std::string serialize() const;

  /// Header block only (status line + headers + blank line). Used by the FE
  /// server, which sends headers + static prefix before the dynamic body
  /// exists; Content-Length must then be supplied by the caller.
  std::string serialize_head() const;
};

/// Percent+plus decoding for query strings.
std::string url_decode(std::string_view s);
/// Percent+plus encoding for query values.
std::string url_encode(std::string_view s);

}  // namespace dyncdn::http
