# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_capture[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_cdn[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_interactive[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_property[1]_include.cmake")
include("/root/repo/build/tests/test_inference_property[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_pool[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_state[1]_include.cmake")
include("/root/repo/build/tests/test_acceptance[1]_include.cmake")
