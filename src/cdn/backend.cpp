#include "cdn/backend.hpp"

#include <algorithm>
#include <charconv>
#include <memory>
#include <utility>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "obs/obs.hpp"

namespace dyncdn::cdn {

namespace {

/// Reconstruct workload metadata from request query params. The client
/// emulator encodes rank/class alongside q — standing in for the popularity
/// statistics a real BE maintains internally.
search::Keyword keyword_from_request(const http::HttpRequest& req) {
  search::Keyword k;
  k.text = req.query_param("q").value_or("");
  k.rank = 1000000;  // effectively unranked
  if (const auto r = req.query_param("rank")) {
    std::size_t v = 0;
    const auto [p, ec] = std::from_chars(r->data(), r->data() + r->size(), v);
    if (ec == std::errc{} && v > 0) k.rank = v;
  }
  if (const auto c = req.query_param("cls")) {
    if (*c == "popular") k.cls = search::KeywordClass::kPopular;
    else if (*c == "granular") k.cls = search::KeywordClass::kGranular;
    else if (*c == "complex") k.cls = search::KeywordClass::kComplex;
    else if (*c == "mixed") k.cls = search::KeywordClass::kMixed;
  }
  return k;
}

std::size_t warmup_bytes_from_request(const http::HttpRequest& req) {
  std::size_t v = 64 * 1024;
  if (const auto b = req.query_param("bytes")) {
    std::size_t parsed = 0;
    const auto [p, ec] =
        std::from_chars(b->data(), b->data() + b->size(), parsed);
    if (ec == std::errc{} && parsed > 0) v = parsed;
  }
  return v;
}

}  // namespace

BackendDataCenter::BackendDataCenter(net::Node& node,
                                     const search::ContentModel& content,
                                     Config config)
    : node_(node),
      content_(content),
      config_(std::move(config)),
      stack_(node, config_.tcp),
      proc_rng_(node.simulator().rng().stream(
          "be/" + config_.name + "/proc")),
      content_rng_(node.simulator().rng().stream(
          "be/" + config_.name + "/content")) {
  stack_.listen(config_.fetch_port,
                [this](tcp::TcpSocket& s) { serve_fetch(s); });
  stack_.listen(config_.direct_port,
                [this](tcp::TcpSocket& s) { serve_direct(s); });
}

bool BackendDataCenter::is_correlated(const std::string& text) const {
  if (config_.processing.correlation_history == 0) return false;
  for (const std::string& prev : recent_queries_) {
    // The new query *strictly extends* a recent one: the "search as you
    // type" pattern, where most of the previous computation is reusable.
    // Exact repeats deliberately do NOT qualify — results are generated
    // fresh per query (personalization), which is what makes the paper's
    // §3 same-query-repeated experiment come out cache-free.
    if (!prev.empty() && text.size() > prev.size() &&
        text.compare(0, prev.size(), prev) == 0) {
      return true;
    }
  }
  return false;
}

void BackendDataCenter::remember_query(const std::string& text) {
  if (config_.processing.correlation_history == 0) return;
  recent_queries_.push_back(text);
  while (recent_queries_.size() > config_.processing.correlation_history) {
    recent_queries_.pop_front();
  }
}

void BackendDataCenter::process_query(
    const search::Keyword& keyword, std::uint64_t query_id,
    [[maybe_unused]] std::uint64_t trace_parent,
    std::function<void(std::string)> done) {
  sim::Simulator& simulator = node_.simulator();
  const sim::SimTime now = simulator.now();

  double base_ms = config_.processing.base_for(keyword);
  const bool correlated = is_correlated(keyword.text);
  if (correlated) base_ms *= config_.processing.correlated_factor;
  remember_query(keyword.text);

  const sim::SimTime t_proc = config_.processing.load.draw_scaled(
      proc_rng_, now, active_, base_ms);
  ++active_;
  active_peak_ = std::max(active_peak_, active_);

  obs::SpanId span = obs::kNoSpan;
#if DYNCDN_OBS
  if (obs::TraceSession* trace = obs::active_trace(simulator)) {
    span = trace->begin_span(now, "be.process", "be", trace_parent);
    trace->add_arg(span, "keyword", obs::ArgValue::of(keyword.text));
    trace->add_arg(span, "query_id",
                   obs::ArgValue::of(static_cast<std::int64_t>(query_id)));
    trace->add_arg(span, "t_proc_ms",
                   obs::ArgValue::of(t_proc.to_milliseconds()));
    if (correlated) {
      trace->add_arg(span, "correlated", obs::ArgValue::of(std::int64_t{1}));
    }
  }
#endif

  simulator.schedule_in(
      t_proc, [this, keyword, query_id, now, t_proc, correlated, span,
               done = std::move(done)]() {
        --active_;
        std::string body = content_.dynamic_body(keyword, content_rng_);
        BackendQueryRecord rec;
        rec.query_id = query_id;
        rec.keyword = keyword.text;
        rec.request_received = now;
        rec.processing_done = node_.simulator().now();
        rec.t_proc = t_proc;
        rec.dynamic_bytes = body.size();
        rec.correlated = correlated;
        query_log_.push_back(std::move(rec));
#if DYNCDN_OBS
        if (obs::TraceSession* trace =
                obs::active_trace(node_.simulator())) {
          trace->end_span(span, node_.simulator().now());
        }
#endif
        done(std::move(body));
      });
}

void BackendDataCenter::serve_fetch(tcp::TcpSocket& socket) {
  // Persistent connection from an FE; responses are written atomically per
  // query (one send per response), so completion-order interleaving is safe.
  tcp::TcpSocket* sock = &socket;
  auto alive = std::make_shared<bool>(true);

  auto parser = std::make_shared<http::RequestParser>(
      [this, sock, alive](http::HttpRequest req) {
        std::uint64_t query_id = 0;
        if (const auto id = req.header("X-Query-Id")) {
          std::from_chars(id->data(), id->data() + id->size(), query_id);
        }

        if (req.target.starts_with("/warmup")) {
          // Connection-priming transfer: bulk bytes, no processing delay.
          http::HttpResponse resp;
          resp.set_header("X-Query-Id", std::to_string(query_id));
          resp.set_header("X-Warmup", "1");
          resp.body.assign(warmup_bytes_from_request(req), 'w');
          if (*alive) sock->send_text(resp.serialize());
          return;
        }

        const search::Keyword keyword = keyword_from_request(req);
        std::uint64_t trace_parent = 0;
        if (const auto span = req.header("X-Trace-Span")) {
          std::from_chars(span->data(), span->data() + span->size(),
                          trace_parent);
        }
        process_query(keyword, query_id, trace_parent,
                      [sock, alive, query_id](std::string body) {
                        if (!*alive) return;  // FE connection died meanwhile
                        http::HttpResponse resp;
                        resp.set_header("X-Query-Id",
                                        std::to_string(query_id));
                        resp.body = std::move(body);
                        sock->send_text(resp.serialize());
                      });
      });

  tcp::TcpSocket::Callbacks cb;
  cb.on_data = [sock, alive, parser](net::PayloadRef d) {
    try {
      d.for_each_slice([&parser](std::span<const std::uint8_t> s) {
        parser->feed(std::string_view(
            reinterpret_cast<const char*>(s.data()), s.size()));
      });
    } catch (const std::exception&) {
      if (*alive) sock->abort();  // malformed fetch request
    }
  };
  cb.on_remote_close = [sock] { sock->close(); };
  cb.on_closed = [alive] { *alive = false; };
  socket.set_callbacks(std::move(cb));
}

void BackendDataCenter::serve_direct(tcp::TcpSocket& socket) {
  // The no-FE baseline: the data center serves the complete page itself.
  // Everything (including the static portion) waits for T_proc, and the
  // whole transfer rides one long-RTT connection with cold slow start.
  tcp::TcpSocket* sock = &socket;
  auto alive = std::make_shared<bool>(true);

  auto parser = std::make_shared<http::RequestParser>(
      [this, sock, alive](http::HttpRequest req) {
        const search::Keyword keyword = keyword_from_request(req);
        process_query(keyword, 0, 0, [this, sock, alive](std::string body) {
          if (!*alive) return;
          http::HttpResponse resp;
          resp.set_header("Server", config_.name);
          resp.set_header("Connection", "close");
          // Close-framed: no Content-Length.
          sock->send_text(resp.serialize_head());
          if (!static_prefix_buf_) {
            static_prefix_buf_ = net::make_buffer(content_.static_prefix());
          }
          sock->send(net::PayloadRef{static_prefix_buf_, 0,
                                     static_prefix_buf_->size()});
          sock->send_text(body);
          sock->close();
        });
      });

  tcp::TcpSocket::Callbacks cb;
  cb.on_data = [sock, alive, parser](net::PayloadRef d) {
    try {
      d.for_each_slice([&parser](std::span<const std::uint8_t> s) {
        parser->feed(std::string_view(
            reinterpret_cast<const char*>(s.data()), s.size()));
      });
    } catch (const std::exception&) {
      if (*alive) sock->abort();  // malformed request
    }
  };
  cb.on_closed = [alive] { *alive = false; };
  socket.set_callbacks(std::move(cb));
}

}  // namespace dyncdn::cdn
