// Extension: FE load vs T_static.
//
// The paper *speculates* (§4.2) that Bing's higher and more variable
// T_static stems from load on the shared Akamai front-ends, but cannot
// manipulate the load of a production CDN. We can: sweep the number of
// vantage points hammering a single FE and measure T_static's median and
// spread, with the FE's concurrency penalty switched on and off as a
// control.
//
// Expected: with the concurrency penalty on, T_static's median and IQR
// grow with offered load; with it off, they stay flat — the observable the
// paper attributes to shared front-ends is reproduced by load alone.
#include <cstdio>

#include "bench_util.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "stats/descriptive.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

struct LoadPoint {
  double med_static = 0;
  double iqr_static = 0;
  double med_dynamic = 0;
};

LoadPoint run_load(std::size_t clients, bool congestion, std::size_t reps) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::bing_like_profile();
  // Isolate the concurrency effect from background swings.
  opt.profile.fe_service.sigma = 0.05;
  opt.profile.fe_service.load_amplitude = 0.0;
  opt.profile.fe_service.congestion_per_active = congestion ? 0.08 : 0.0;
  opt.profile.processing.load.sigma = 0.05;
  opt.profile.processing.load.load_amplitude = 0.0;
  opt.client_count = clients;
  opt.seed = 1010;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 600_ms;  // aggressive: load overlaps
  eo.stagger = 17_ms;
  search::KeywordCatalog catalog(10);
  eo.keywords = {catalog.figure3_keywords().front()};
  const auto result = testbed::run_fixed_fe_experiment(scenario, 0, eo);

  std::vector<double> statics, dynamics;
  for (const auto& q : result.all()) {
    statics.push_back(q.t_static_ms);
    dynamics.push_back(q.t_dynamic_ms);
  }
  LoadPoint p;
  p.med_static = stats::median(statics);
  p.iqr_static = stats::iqr(statics);
  p.med_dynamic = stats::median(dynamics);
  return p;
}

}  // namespace

int main() {
  const std::size_t reps = bench::full_scale() ? 25 : 10;
  bench::banner("Extension — FE load vs T_static (the paper's §4.2 "
                "speculation, tested)",
                "N clients hammer one FE every 600ms; concurrency penalty "
                "on vs off; " + std::to_string(reps) + " reps each");

  std::printf("%10s | %34s | %34s\n", "", "congestion penalty ON",
              "congestion penalty OFF");
  std::printf("%10s | %10s %10s %11s | %10s %10s %11s\n", "clients",
              "Tsta med", "Tsta IQR", "Tdyn med", "Tsta med", "Tsta IQR",
              "Tdyn med");

  std::vector<double> loads, med_on, iqr_on, med_off;
  for (const std::size_t clients : {5u, 20u, 60u, 120u}) {
    const LoadPoint on = run_load(clients, true, reps);
    const LoadPoint off = run_load(clients, false, reps);
    std::printf("%10zu | %10.1f %10.1f %11.1f | %10.1f %10.1f %11.1f\n",
                static_cast<std::size_t>(clients), on.med_static,
                on.iqr_static, on.med_dynamic, off.med_static,
                off.iqr_static, off.med_dynamic);
    loads.push_back(static_cast<double>(clients));
    med_on.push_back(on.med_static);
    iqr_on.push_back(on.iqr_static);
    med_off.push_back(off.med_static);
  }

  bench::section("verdict");
  const bool grows = med_on.back() > 1.3 * med_on.front();
  const bool spreads = iqr_on.back() > 1.3 * iqr_on.front();
  const bool control_flat = med_off.back() < 1.25 * med_off.front();
  std::printf("T_static median grows with load (penalty on):   %s "
              "(%.1f -> %.1f ms)\n",
              grows ? "yes" : "no", med_on.front(), med_on.back());
  std::printf("T_static spread grows with load (penalty on):   %s "
              "(IQR %.1f -> %.1f ms)\n",
              spreads ? "yes" : "no", iqr_on.front(), iqr_on.back());
  std::printf("control (penalty off) stays flat:               %s "
              "(%.1f -> %.1f ms)\n",
              control_flat ? "yes" : "no", med_off.front(), med_off.back());
  std::printf("paper's §4.2 attribution %s: shared-FE load alone produces "
              "the elevated, variable T_static signature\n",
              (grows && spreads && control_flat) ? "SUPPORTED" : "NOT "
                                                                 "REPRODUCED");
  return 0;
}
