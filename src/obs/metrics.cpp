#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace dyncdn::obs {

namespace {

// Geometric ladder from 0.01 to ~1.3e5 (covers sub-RTT microsecond spans
// through multi-minute outliers when samples are in milliseconds), factor
// ~1.47 per step, 64 finite buckets + overflow.
constexpr std::size_t kFiniteBuckets = 64;

std::vector<double> make_bounds() {
  std::vector<double> bounds;
  bounds.reserve(kFiniteBuckets);
  double b = 0.01;
  for (std::size_t i = 0; i < kFiniteBuckets; ++i) {
    bounds.push_back(b);
    b *= 1.47;
  }
  return bounds;
}

}  // namespace

const std::vector<double>& Histogram::upper_bounds() {
  static const std::vector<double> bounds = make_bounds();
  return bounds;
}

Histogram::Histogram() : buckets_(kFiniteBuckets + 1, 0) {}

void Histogram::observe(double value) {
  const auto& bounds = upper_bounds();
  const auto it =
      std::lower_bound(bounds.begin(), bounds.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  const auto& bounds = upper_bounds();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t next = cumulative + buckets_[i];
    if (static_cast<double>(next) >= target && buckets_[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : std::max(max_, lo);
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets_[i]);
      // Bucket edges form a geometric ladder, so mass inside a bucket is
      // modelled log-uniform: interpolate geometrically where both edges
      // are positive. Bucket 0 has lo == 0 — linear is the only option.
      const double v = (lo > 0.0 && hi > lo)
                           ? lo * std::pow(hi / lo, frac)
                           : lo + (hi - lo) * frac;
      return std::clamp(v, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::gauge_max(const std::string& name,
                                std::int64_t value) {
  auto [it, inserted] = gauges_.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

std::int64_t MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  histograms_[name].observe(value);
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauge_max(name, value);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
}

}  // namespace dyncdn::obs
