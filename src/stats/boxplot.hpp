// Tukey boxplot statistics: Fig. 8 of the paper shows per-node boxplots of
// the overall response delay.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dyncdn::stats {

struct BoxplotStats {
  double q1 = 0, median = 0, q3 = 0;
  double whisker_low = 0;   // smallest sample >= q1 - 1.5*IQR
  double whisker_high = 0;  // largest sample <= q3 + 1.5*IQR
  std::vector<double> outliers;
  std::size_t n = 0;

  /// "med=.. [q1=.., q3=..] whiskers=[.., ..] outliers=k"
  std::string to_string() const;
};

BoxplotStats boxplot(std::span<const double> xs);

/// Render a compact fixed-width ASCII boxplot of `b` over the axis
/// [axis_min, axis_max], e.g. "   |----[==|===]------|   ". Used by the
/// Fig. 8 bench to print per-node box rows.
std::string ascii_boxplot(const BoxplotStats& b, double axis_min,
                          double axis_max, std::size_t width = 60);

}  // namespace dyncdn::stats
