file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_property.dir/tcp_property_test.cpp.o"
  "CMakeFiles/test_tcp_property.dir/tcp_property_test.cpp.o.d"
  "test_tcp_property"
  "test_tcp_property.pdb"
  "test_tcp_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
