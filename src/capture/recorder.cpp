#include "capture/recorder.hpp"

namespace dyncdn::capture {

TraceRecorder::TraceRecorder(net::Node& node, sim::Simulator& simulator,
                             RecorderOptions options)
    : simulator_(simulator), options_(options), trace_(node.id()) {
  node.add_send_tap([this](const net::PacketPtr& p) {
    record(Direction::kSent, p);
  });
  node.add_receive_tap([this](const net::PacketPtr& p) {
    record(Direction::kReceived, p);
  });
}

void TraceRecorder::record(Direction direction, const net::PacketPtr& packet) {
  if (!recording_) return;
  PacketRecord r;
  r.timestamp = simulator_.now();
  r.direction = direction;
  r.src = packet->src;
  r.dst = packet->dst;
  r.tcp = packet->tcp;
  r.payload_size = packet->payload.length;
  if (options_.capture_payloads) r.payload = packet->payload;
  if (sink_ != nullptr) sink_->on_packet(r);
  if (options_.retain_packets) {
    trace_.add(std::move(r));
    peak_retained_bytes_ =
        std::max(peak_retained_bytes_, trace_.retained_bytes());
  }
}

}  // namespace dyncdn::capture
