#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace dyncdn::net {

Link::Link(sim::Simulator& simulator, LinkConfig config, DeliverFn deliver,
           std::string rng_name)
    : simulator_(simulator),
      config_(std::move(config)),
      deliver_(std::move(deliver)),
      loss_(config_.loss_factory ? config_.loss_factory() : make_no_loss()),
      loss_rng_(simulator.rng().stream(rng_name)) {}

sim::SimTime Link::serialization_delay(std::size_t bytes) const {
  if (config_.bandwidth_bps <= 0.0) return sim::SimTime::zero();
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps;
  return sim::SimTime::from_seconds(seconds);
}

void Link::drain_tx_done(sim::SimTime now) const {
  while (!tx_done_.empty() && tx_done_.front() <= now) {
    tx_done_.pop_front();
  }
}

std::size_t Link::backlog() const {
  drain_tx_done(simulator_.now());
  return tx_done_.size();
}

void Link::deliver_packet(PacketPtr packet) {
  ++stats_.packets_delivered;
  stats_.bytes_delivered += packet->wire_size();
  deliver_(std::move(packet));
}

void Link::drain_train() {
  train_event_armed_ = false;
  // Head delivery: the train event was scheduled for exactly this arrival.
  deliver_packet(std::move(train_.front().packet));
  train_.pop_front();
  while (!train_.empty()) {
    const sim::SimTime next_arrival = train_.front().arrival;
    // Ride the train only while no other pending event precedes the next
    // arrival — anything the last delivery scheduled (ACKs, timers) or
    // any other component's event must run first, exactly as it would
    // have with one delivery event per packet. Under a conservative
    // window the train must also never advance the clock to or past the
    // barrier: a cross-shard arrival in [horizon, next_arrival) could
    // otherwise be overtaken. Re-arming below parks the remainder as a
    // pending event the next window picks up at the exact same time.
    if (next_arrival < simulator_.horizon() &&
        simulator_.next_event_time() > next_arrival) {
      simulator_.advance_to(next_arrival);
      ++stats_.deliveries_coalesced;
      deliver_packet(std::move(train_.front().packet));
      train_.pop_front();
    } else {
      // A delivery handler transmitting on this same link mid-drain may
      // already have re-armed; never schedule a second train event.
      if (!train_event_armed_) {
        train_event_armed_ = true;
        simulator_.schedule_at(next_arrival, [this]() { drain_train(); });
      }
      return;
    }
  }
}

void Link::transmit(PacketPtr packet) {
  ++stats_.packets_offered;

  if (loss_->should_drop(loss_rng_)) {
    ++stats_.drops_loss;
    return;
  }
  const sim::SimTime now = simulator_.now();
  drain_tx_done(now);
  if (tx_done_.size() >= config_.queue_capacity) {
    ++stats_.drops_queue;
    return;
  }

  const sim::SimTime tx_start = std::max(now, busy_until_);
  const sim::SimTime tx_end =
      tx_start + serialization_delay(packet->wire_size());
  busy_until_ = tx_end;
  // The transmitter frees its queue slot when serialization completes, not
  // when the packet lands after propagation; the slot is reclaimed lazily
  // at the next transmit instead of costing a kernel event.
  tx_done_.push_back(tx_end);

  sim::SimTime arrival = tx_end + config_.propagation_delay;
  if (config_.reorder_probability > 0.0) {
    // Reordered arrivals are not FIFO, so such links never coalesce.
    if (loss_rng_.chance(config_.reorder_probability)) {
      arrival += config_.reorder_extra_delay;
      ++stats_.packets_reordered;
    }
  }
  if (post_) {
    // Cross-shard: stage (arrival, packet) for the window-barrier flush.
    // Stats are counted here, on the source shard's thread — the actual
    // delivery runs on the destination shard, which must never touch this
    // link's state concurrently.
    ++stats_.packets_delivered;
    stats_.bytes_delivered += packet->wire_size();
    post_(arrival, std::move(packet));
    return;
  }
  if (config_.reorder_probability == 0.0 && config_.coalesce_deliveries) {
    // FIFO train: one armed event delivers the whole contiguous batch.
    // Arm at the HEAD's arrival — during a reentrant mid-drain transmit
    // the train still holds earlier, not-yet-delivered packets.
    train_.push_back(PendingDelivery{arrival, std::move(packet)});
    if (!train_event_armed_) {
      train_event_armed_ = true;
      simulator_.schedule_at(train_.front().arrival,
                             [this]() { drain_train(); });
    }
    return;
  }
  simulator_.schedule_at(arrival, [this, packet = std::move(packet)]() mutable {
    deliver_packet(std::move(packet));
  });
}

}  // namespace dyncdn::net
