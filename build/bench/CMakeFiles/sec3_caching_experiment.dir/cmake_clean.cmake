file(REMOVE_RECURSE
  "CMakeFiles/sec3_caching_experiment.dir/sec3_caching_experiment.cpp.o"
  "CMakeFiles/sec3_caching_experiment.dir/sec3_caching_experiment.cpp.o.d"
  "sec3_caching_experiment"
  "sec3_caching_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_caching_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
