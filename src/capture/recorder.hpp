// TraceRecorder: attaches tcpdump-style taps to a node.
#pragma once

#include "capture/trace.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace dyncdn::capture {

struct RecorderOptions {
  /// Retain full payload bytes (needed for content analysis). Headers-only
  /// captures are cheaper for long load experiments.
  bool capture_payloads = true;
};

/// Records every packet sent or received by one node.
///
/// Lifetime: the recorder registers taps on construction; the taps hold a
/// pointer to it, so it must outlive the node's traffic (recorders are
/// created once per experiment and kept until analysis completes).
/// Recording can be paused/resumed between experiment phases.
class TraceRecorder {
 public:
  TraceRecorder(net::Node& node, sim::Simulator& simulator,
                RecorderOptions options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const PacketTrace& trace() const { return trace_; }
  PacketTrace& trace() { return trace_; }

  void pause() { recording_ = false; }
  void resume() { recording_ = true; }
  bool recording() const { return recording_; }

  /// Toggle payload retention (e.g. on for a boundary-discovery phase,
  /// off for long measurement sweeps to bound memory).
  void set_capture_payloads(bool v) { options_.capture_payloads = v; }
  bool capture_payloads() const { return options_.capture_payloads; }

  /// Discard everything captured so far (e.g. between repetitions).
  void clear() { trace_.clear(); }

 private:
  void record(Direction direction, const net::PacketPtr& packet);

  sim::Simulator& simulator_;
  RecorderOptions options_;
  PacketTrace trace_;
  bool recording_ = true;
};

}  // namespace dyncdn::capture
