// HTTP message serialization and incremental parsing tests.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"

namespace dyncdn::http {
namespace {

TEST(HttpMessage, RequestSerializeRoundTrip) {
  HttpRequest req;
  req.method = "GET";
  req.target = "/search?q=hello";
  req.set_header("Host", "example.com");
  const std::string wire = req.serialize();
  EXPECT_EQ(wire,
            "GET /search?q=hello HTTP/1.1\r\nHost: example.com\r\n\r\n");
}

TEST(HttpMessage, HeaderLookupIsCaseInsensitive) {
  HttpRequest req;
  req.set_header("Content-Length", "42");
  EXPECT_EQ(req.header("content-length").value(), "42");
  EXPECT_EQ(req.header("CONTENT-LENGTH").value(), "42");
  EXPECT_FALSE(req.header("missing").has_value());
}

TEST(HttpMessage, SetHeaderReplacesExisting) {
  HttpResponse resp;
  resp.set_header("X-A", "1");
  resp.set_header("x-a", "2");
  EXPECT_EQ(resp.headers.size(), 1u);
  EXPECT_EQ(resp.header("X-A").value(), "2");
}

TEST(HttpMessage, ResponseSerializeAddsContentLength) {
  HttpResponse resp;
  resp.body = "hello";
  const std::string wire = resp.serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(HttpMessage, SerializeHeadOmitsBody) {
  HttpResponse resp;
  resp.set_header("Connection", "close");
  resp.body = "ignored";
  const std::string head = resp.serialize_head();
  EXPECT_EQ(head.find("ignored"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

TEST(HttpMessage, QueryParamExtraction) {
  HttpRequest req;
  req.target = "/search?q=computer+science&rank=3&cls=popular";
  EXPECT_EQ(req.query_param("q").value(), "computer science");
  EXPECT_EQ(req.query_param("rank").value(), "3");
  EXPECT_EQ(req.query_param("cls").value(), "popular");
  EXPECT_FALSE(req.query_param("missing").has_value());
}

TEST(HttpMessage, QueryParamOnTargetWithoutQuery) {
  HttpRequest req;
  req.target = "/plain";
  EXPECT_FALSE(req.query_param("q").has_value());
}

TEST(HttpMessage, UrlEncodeDecodeRoundTrip) {
  const std::string original = "computer & potato 100%";
  const std::string encoded = url_encode(original);
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(url_decode(encoded), original);
}

TEST(HttpMessage, UrlDecodeHandlesPercent) {
  EXPECT_EQ(url_decode("a%20b"), "a b");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("100%25"), "100%");
  EXPECT_EQ(url_decode("%ZZ"), "%ZZ");  // malformed escapes pass through
}

TEST(RequestParser, SingleCompleteRequest) {
  std::vector<HttpRequest> got;
  RequestParser parser([&](HttpRequest r) { got.push_back(std::move(r)); });
  parser.feed("GET /a HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].target, "/a");
  EXPECT_EQ(got[0].header("Host").value(), "x");
  EXPECT_FALSE(parser.mid_message());
}

TEST(RequestParser, ByteAtATimeDelivery) {
  std::vector<HttpRequest> got;
  RequestParser parser([&](HttpRequest r) { got.push_back(std::move(r)); });
  const std::string wire = "GET /slow HTTP/1.1\r\nA: b\r\n\r\n";
  for (const char c : wire) parser.feed(std::string_view(&c, 1));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].target, "/slow");
}

TEST(RequestParser, PipelinedRequests) {
  std::vector<HttpRequest> got;
  RequestParser parser([&](HttpRequest r) { got.push_back(std::move(r)); });
  parser.feed(
      "GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\nGET /three "
      "HTTP/1.1\r\n\r\n");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[2].target, "/three");
}

TEST(RequestParser, RequestWithBody) {
  std::vector<HttpRequest> got;
  RequestParser parser([&](HttpRequest r) { got.push_back(std::move(r)); });
  parser.feed("POST /q HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
  EXPECT_TRUE(got.empty());  // body incomplete
  parser.feed("lo");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].body, "hello");
}

TEST(RequestParser, MalformedRequestLineThrows) {
  RequestParser parser([](HttpRequest) {});
  EXPECT_THROW(parser.feed("NONSENSE\r\n\r\n"), std::runtime_error);
}

TEST(RequestParser, MalformedHeaderThrows) {
  RequestParser parser([](HttpRequest) {});
  EXPECT_THROW(parser.feed("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
               std::runtime_error);
}

struct ResponseEvents {
  std::vector<std::optional<std::size_t>> header_lengths;
  std::string body;
  std::vector<HttpResponse> completed;

  ResponseParser::Callbacks callbacks() {
    ResponseParser::Callbacks cb;
    cb.on_headers = [this](const HttpResponse&,
                           std::optional<std::size_t> len) {
      header_lengths.push_back(len);
    };
    cb.on_body_data = [this](std::string_view chunk) { body.append(chunk); };
    cb.on_complete = [this](const HttpResponse& r) { completed.push_back(r); };
    return cb;
  }
};

TEST(ResponseParser, LengthFramedResponse) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nbody");
  ASSERT_EQ(ev.completed.size(), 1u);
  EXPECT_EQ(ev.completed[0].status, 200);
  EXPECT_EQ(ev.completed[0].body, "body");
  EXPECT_EQ(ev.header_lengths[0].value(), 4u);
  EXPECT_EQ(ev.body, "body");
}

TEST(ResponseParser, StreamingBodyChunks) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n");
  EXPECT_TRUE(ev.completed.empty());
  parser.feed("01234");
  EXPECT_EQ(ev.body, "01234");
  EXPECT_TRUE(ev.completed.empty());
  parser.feed("56789");
  ASSERT_EQ(ev.completed.size(), 1u);
  EXPECT_EQ(ev.completed[0].body, "0123456789");
}

TEST(ResponseParser, BackToBackResponsesOnPersistentConnection) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed(
      "HTTP/1.1 200 OK\r\nX-Query-Id: 1\r\nContent-Length: 2\r\n\r\naa"
      "HTTP/1.1 200 OK\r\nX-Query-Id: 2\r\nContent-Length: 3\r\n\r\nbbb");
  ASSERT_EQ(ev.completed.size(), 2u);
  EXPECT_EQ(ev.completed[0].header("X-Query-Id").value(), "1");
  EXPECT_EQ(ev.completed[1].body, "bbb");
}

TEST(ResponseParser, CloseFramedResponse) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\npartial");
  EXPECT_FALSE(ev.header_lengths[0].has_value());
  EXPECT_TRUE(ev.completed.empty());
  parser.feed(" and more");
  parser.finish_stream();
  ASSERT_EQ(ev.completed.size(), 1u);
  EXPECT_EQ(ev.completed[0].body, "partial and more");
}

TEST(ResponseParser, FinishStreamMidLengthBodyThrows) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort");
  EXPECT_THROW(parser.finish_stream(), std::runtime_error);
}

TEST(ResponseParser, FinishStreamMidHeadersThrows) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 200 OK\r\nConn");
  EXPECT_THROW(parser.finish_stream(), std::runtime_error);
}

TEST(ResponseParser, CleanCloseBetweenResponsesIsFine) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nx");
  EXPECT_NO_THROW(parser.finish_stream());
  EXPECT_EQ(ev.completed.size(), 1u);
}

TEST(ResponseParser, BadStatusLineThrows) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  EXPECT_THROW(parser.feed("GARBAGE\r\n\r\n"), std::runtime_error);
}

TEST(ResponseParser, BadContentLengthThrows) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  EXPECT_THROW(
      parser.feed("HTTP/1.1 200 OK\r\nContent-Length: abc\r\n\r\n"),
      std::runtime_error);
}

TEST(ResponseParser, StatusWithoutReasonPhrase) {
  ResponseEvents ev;
  ResponseParser parser(ev.callbacks());
  parser.feed("HTTP/1.1 204\r\nContent-Length: 0\r\n\r\n");
  ASSERT_EQ(ev.completed.size(), 1u);
  EXPECT_EQ(ev.completed[0].status, 204);
}


// ---------------------------------------------------------------------------
// Round-trip property: any serialized message parses back identically, and
// arbitrary segmentation of the byte stream never changes the result.
// ---------------------------------------------------------------------------

class RequestRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RequestRoundTrip, SerializeParseIdenticalUnderAnySegmentation) {
  const int seed = GetParam();
  std::mt19937 gen(static_cast<unsigned>(seed));
  auto rand_token = [&](int min_len, int max_len) {
    std::uniform_int_distribution<int> len(min_len, max_len);
    std::uniform_int_distribution<int> ch(0, 25);
    std::string s;
    for (int i = 0, n = len(gen); i < n; ++i) {
      s.push_back(static_cast<char>('a' + ch(gen)));
    }
    return s;
  };

  HttpRequest original;
  original.method = gen() % 2 ? "GET" : "POST";
  original.target = "/" + rand_token(1, 12) + "?q=" + rand_token(1, 20);
  std::uniform_int_distribution<int> nheaders(0, 5);
  for (int i = 0, n = nheaders(gen); i < n; ++i) {
    original.set_header("X-" + rand_token(1, 8), rand_token(0, 30));
  }
  if (original.method == "POST") {
    original.body = rand_token(0, 200);
    original.set_header("Content-Length",
                        std::to_string(original.body.size()));
  }

  const std::string wire = original.serialize();
  std::vector<HttpRequest> parsed;
  RequestParser parser([&](HttpRequest r) { parsed.push_back(std::move(r)); });

  // Feed in random-sized chunks.
  std::uniform_int_distribution<std::size_t> chunk(1, 17);
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n = std::min(chunk(gen), wire.size() - pos);
    parser.feed(std::string_view(wire).substr(pos, n));
    pos += n;
  }

  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].method, original.method);
  EXPECT_EQ(parsed[0].target, original.target);
  EXPECT_EQ(parsed[0].body, original.body);
  ASSERT_EQ(parsed[0].headers.size(), original.headers.size());
  for (std::size_t i = 0; i < original.headers.size(); ++i) {
    EXPECT_EQ(parsed[0].headers[i], original.headers[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequestRoundTrip, ::testing::Range(0, 12));

class ResponseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ResponseRoundTrip, SerializeParseIdenticalUnderAnySegmentation) {
  const int seed = GetParam();
  std::mt19937 gen(static_cast<unsigned>(seed + 1000));
  std::uniform_int_distribution<int> body_len(0, 5000);
  HttpResponse original;
  original.status = 200;
  original.set_header("Server", "round-trip");
  original.body.assign(static_cast<std::size_t>(body_len(gen)), 'b');

  const std::string wire = original.serialize();
  std::vector<HttpResponse> parsed;
  ResponseParser::Callbacks cb;
  cb.on_complete = [&](const HttpResponse& r) { parsed.push_back(r); };
  ResponseParser parser(std::move(cb));

  std::uniform_int_distribution<std::size_t> chunk(1, 997);
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n = std::min(chunk(gen), wire.size() - pos);
    parser.feed(std::string_view(wire).substr(pos, n));
    pos += n;
  }
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].status, 200);
  EXPECT_EQ(parsed[0].body, original.body);
  EXPECT_EQ(parsed[0].header("Server").value(), "round-trip");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace dyncdn::http
