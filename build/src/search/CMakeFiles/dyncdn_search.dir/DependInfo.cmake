
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/content_model.cpp" "src/search/CMakeFiles/dyncdn_search.dir/content_model.cpp.o" "gcc" "src/search/CMakeFiles/dyncdn_search.dir/content_model.cpp.o.d"
  "/root/repo/src/search/keywords.cpp" "src/search/CMakeFiles/dyncdn_search.dir/keywords.cpp.o" "gcc" "src/search/CMakeFiles/dyncdn_search.dir/keywords.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
