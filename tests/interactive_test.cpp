// Tests for the §6 interactive "search as you type" extension: the typing
// emulator, per-keystroke connections, and the BE's prefix-correlation
// processing discount.
#include <gtest/gtest.h>

#include "cdn/interactive.hpp"
#include "core/timings.hpp"
#include "analysis/timeline.hpp"
#include "net/packet.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn::cdn {
namespace {

struct InteractiveFixture {
  explicit InteractiveFixture(bool correlation = true,
                              std::uint64_t seed = 9) {
    testbed::ScenarioOptions opt;
    opt.profile = google_like_profile();
    if (correlation) opt.profile.processing.correlation_history = 64;
    opt.profile.processing.load.sigma = 0.0;
    opt.profile.fe_service.sigma = 0.0;
    opt.profile.last_mile_min_ms = 2.0;
    opt.profile.last_mile_max_ms = 2.0;
    opt.seed = seed;
    opt.fe_distance_sweep_miles = std::vector<double>{200.0};
    scenario = std::make_unique<testbed::Scenario>(opt);
    scenario->warm_up();
  }

  TypingSessionResult run_typing(const std::string& text,
                                 TypingOptions options = {}) {
    auto& client = scenario->clients().front();
    InteractiveTyper typer(*client.query_client, options, 5);
    TypingSessionResult out;
    typer.type(scenario->fe_endpoint(0),
               search::Keyword{text, search::KeywordClass::kGranular, 500},
               [&](const TypingSessionResult& s) { out = s; });
    scenario->run();
    return out;
  }

  std::unique_ptr<testbed::Scenario> scenario;
};

TEST(InteractiveTyper, OneQueryPerKeystrokeAfterMinPrefix) {
  InteractiveFixture f;
  TypingOptions opt;
  opt.min_prefix = 3;
  const auto session = f.run_typing("abcdef", opt);
  // Prefixes: abc, abcd, abcde, abcdef.
  ASSERT_EQ(session.keystrokes.size(), 4u);
  EXPECT_EQ(session.keystrokes.front().prefix, "abc");
  EXPECT_EQ(session.keystrokes.back().prefix, "abcdef");
  EXPECT_EQ(session.connections, 4u);
}

TEST(InteractiveTyper, PrefixesGrowByOneCharacter) {
  InteractiveFixture f;
  const auto session = f.run_typing("network measurement");
  for (std::size_t i = 1; i < session.keystrokes.size(); ++i) {
    const auto& prev = session.keystrokes[i - 1].prefix;
    const auto& cur = session.keystrokes[i].prefix;
    EXPECT_EQ(cur.size(), prev.size() + 1);
    EXPECT_EQ(cur.substr(0, prev.size()), prev);
  }
}

TEST(InteractiveTyper, EveryKeystrokeQueryCompletes) {
  InteractiveFixture f;
  const auto session = f.run_typing("cloud computing");
  ASSERT_FALSE(session.keystrokes.empty());
  for (const auto& ks : session.keystrokes) {
    EXPECT_FALSE(ks.result.failed) << ks.prefix << ": "
                                   << ks.result.failure_reason;
    EXPECT_EQ(ks.result.status, 200) << ks.prefix;
    EXPECT_GT(ks.result.body_bytes, 0u) << ks.prefix;
  }
}

TEST(InteractiveTyper, EachKeystrokeUsesAFreshConnection) {
  InteractiveFixture f;
  std::size_t syns = 0;
  f.scenario->clients().front().node->add_send_tap(
      [&](const net::PacketPtr& p) {
        if (p->tcp.flags.syn) ++syns;
      });
  const auto session = f.run_typing("galaxy");
  EXPECT_EQ(syns, session.keystrokes.size());
}

TEST(InteractiveTyper, PerKeystrokeDeliveriesFitTheModel) {
  // §6's headline: "the delivery of each query hence still fits our basic
  // model" — every keystroke query yields a valid Fig.-2 timeline.
  InteractiveFixture f;
  const std::size_t boundary = testbed::discover_boundary(*f.scenario, 0, 0);
  f.scenario->clients().front().recorder->clear();

  const auto session = f.run_typing("science");
  const auto timelines = analysis::extract_all_timelines(
      f.scenario->clients().front().recorder->trace(), 80, boundary);
  ASSERT_EQ(timelines.size(), session.keystrokes.size());
  for (const auto& tl : timelines) {
    EXPECT_TRUE(tl.valid) << tl.invalid_reason;
  }
}

TEST(BackendCorrelation, ExtensionsAreDiscounted) {
  InteractiveFixture f(/*correlation=*/true);
  f.run_typing("abcdef");
  const auto& log = f.scenario->backend().query_log();
  ASSERT_GE(log.size(), 3u);
  // First issued prefix is uncorrelated; every extension is correlated.
  std::size_t first = log.size() - 5;  // 5 keystrokes for "abcdef" (min 2)
  EXPECT_FALSE(log[first].correlated);
  for (std::size_t i = first + 1; i < log.size(); ++i) {
    EXPECT_TRUE(log[i].correlated) << log[i].keyword;
    EXPECT_LT(log[i].t_proc.to_milliseconds(),
              0.7 * log[first].t_proc.to_milliseconds());
  }
}

TEST(BackendCorrelation, DisabledByDefault) {
  InteractiveFixture f(/*correlation=*/false);
  f.run_typing("abcdef");
  for (const auto& rec : f.scenario->backend().query_log()) {
    EXPECT_FALSE(rec.correlated);
  }
}

TEST(BackendCorrelation, ExactRepeatIsNotCorrelated) {
  // Personalization: identical queries are regenerated at full cost, which
  // is what keeps the §3 caching experiment clean.
  InteractiveFixture f(/*correlation=*/true);
  auto& client = f.scenario->clients().front();
  const search::Keyword kw{"repeat me", search::KeywordClass::kPopular, 500};
  for (int i = 0; i < 3; ++i) {
    client.query_client->submit(f.scenario->fe_endpoint(0), kw,
                                [](const QueryResult&) {});
    f.scenario->run();
  }
  const auto& log = f.scenario->backend().query_log();
  ASSERT_EQ(log.size(), 3u);
  for (const auto& rec : log) {
    EXPECT_FALSE(rec.correlated) << rec.keyword;
  }
}

TEST(BackendCorrelation, HistoryIsBounded) {
  testbed::ScenarioOptions opt;
  opt.profile = google_like_profile();
  opt.profile.processing.correlation_history = 2;  // tiny window
  opt.profile.processing.load.sigma = 0.0;
  opt.seed = 10;
  opt.fe_distance_sweep_miles = std::vector<double>{200.0};
  testbed::Scenario scenario(opt);
  scenario.warm_up();
  auto& client = scenario.clients().front();

  auto submit = [&](const std::string& text) {
    client.query_client->submit(
        scenario.fe_endpoint(0),
        search::Keyword{text, search::KeywordClass::kPopular, 500},
        [](const QueryResult&) {});
    scenario.run();
  };
  submit("aaa");       // history: [aaa]
  submit("unrelated"); // history: [aaa, unrelated]
  submit("other");     // history: [unrelated, other] — "aaa" evicted
  submit("aaa bbb");   // extends the evicted entry: NOT correlated
  const auto& log = scenario.backend().query_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_FALSE(log[3].correlated);
}

TEST(InteractiveTyper, OverlappingKeystrokesAllComplete) {
  // Fast typist: keystroke gaps shorter than a query round trip, so
  // several queries are in flight concurrently.
  InteractiveFixture f;
  TypingOptions opt;
  opt.keystroke_min_ms = 15.0;
  opt.keystroke_max_ms = 25.0;
  const auto session = f.run_typing("fast typing session");
  ASSERT_FALSE(session.keystrokes.empty());
  for (const auto& ks : session.keystrokes) {
    EXPECT_FALSE(ks.result.failed) << ks.prefix;
  }
}

TEST(InteractiveTyper, ShortTextBelowMinPrefixIssuesNothing) {
  InteractiveFixture f;
  TypingOptions opt;
  opt.min_prefix = 10;
  const auto session = f.run_typing("short", opt);
  EXPECT_TRUE(session.keystrokes.empty());
  EXPECT_EQ(session.connections, 0u);
}

}  // namespace
}  // namespace dyncdn::cdn
