file(REMOVE_RECURSE
  "libdyncdn_core.a"
)
