// Parallel replica engine: executor ordering/exception semantics, seed-hash
// stability, and the headline determinism contract — the same sharded
// experiment produces byte-identical results at 1, 2 and N threads, and a
// single-shard plan reproduces the legacy serial path bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/export_chrome.hpp"
#include "obs/export_prometheus.hpp"
#include "parallel/replica.hpp"
#include "parallel/worksteal.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

namespace dyncdn {
namespace {

using namespace dyncdn::sim::literals;

TEST(ReplicaSeed, StableAndDistinct) {
  EXPECT_EQ(parallel::replica_seed(1, 0), parallel::replica_seed(1, 0));
  EXPECT_NE(parallel::replica_seed(1, 0), parallel::replica_seed(1, 1));
  EXPECT_NE(parallel::replica_seed(1, 0), parallel::replica_seed(2, 0));
  // Neighbouring indices must not produce near-identical seeds.
  const std::uint64_t a = parallel::replica_seed(7, 100);
  const std::uint64_t b = parallel::replica_seed(7, 101);
  EXPECT_GT(__builtin_popcountll(a ^ b), 8);
}

TEST(ReplicaExecutor, ResultsLandInIndexOrder) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::ReplicaExecutor exec({threads});
    const auto out =
        exec.run(17, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 17u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(StealDeque, OwnerPopsAscendingUnderHighestFirstPrefill) {
  parallel::StealDeque d(5);
  for (std::size_t c = 5; c > 0; --c) d.prefill(c - 1);
  std::size_t out = 0;
  for (std::size_t expect = 0; expect < 5; ++expect) {
    ASSERT_TRUE(d.pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_FALSE(d.pop(out));
}

TEST(StealDeque, ThievesTakeTheOppositeEnd) {
  parallel::StealDeque d(4);
  for (std::size_t c = 4; c > 0; --c) d.prefill(c - 1);
  std::size_t out = 0;
  ASSERT_EQ(d.steal(out), parallel::StealDeque::Steal::kItem);
  EXPECT_EQ(out, 3u);  // the far (highest) end
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, 0u);  // owner still sees the low end
  ASSERT_EQ(d.steal(out), parallel::StealDeque::Steal::kItem);
  EXPECT_EQ(out, 2u);
  ASSERT_TRUE(d.pop(out));
  EXPECT_EQ(out, 1u);
  EXPECT_EQ(d.steal(out), parallel::StealDeque::Steal::kEmpty);
}

TEST(StealDeque, ConcurrentOwnerAndThievesConsumeEachTaskOnce) {
  constexpr std::size_t kTasks = 2000;
  parallel::StealDeque d(kTasks);
  for (std::size_t c = kTasks; c > 0; --c) d.prefill(c - 1);

  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<std::size_t> consumed{0};
  const auto thief = [&] {
    std::size_t t = 0;
    while (consumed.load() < kTasks) {
      switch (d.steal(t)) {
        case parallel::StealDeque::Steal::kItem:
          hits[t].fetch_add(1);
          consumed.fetch_add(1);
          break;
        case parallel::StealDeque::Steal::kLost:
          break;  // retry
        case parallel::StealDeque::Steal::kEmpty:
          std::this_thread::yield();  // owner may still be mid-pop
          break;
      }
    }
  };
  std::thread t1(thief), t2(thief);
  std::size_t t = 0;
  while (d.pop(t)) {
    hits[t].fetch_add(1);
    consumed.fetch_add(1);
  }
  t1.join();
  t2.join();
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ReplicaExecutor, StealsFromBlockedWorkersDeque) {
  // Worker 3 owns the block {6, 7}: it pops 6 first and blocks inside it
  // until 7 has run — which can only happen via a steal, since 7 sits in
  // the blocked worker's own deque. Guarantees steals > 0 without timing
  // assumptions on a loaded (or single-core) runner.
  parallel::ExecutorConfig cfg;
  cfg.threads = 4;
  cfg.grain = 1;
  parallel::ReplicaExecutor exec(cfg);
  std::atomic<bool> seven_ran{false};
  const auto out = exec.run(8, [&](std::size_t i) {
    if (i == 7) seven_ran.store(true);
    if (i == 6) {
      while (!seven_ran.load()) std::this_thread::yield();
    }
    return i * 10;
  });
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 10);
  EXPECT_EQ(exec.last_stats().workers, 4u);
  EXPECT_EQ(exec.last_stats().tasks, 8u);
  EXPECT_GT(exec.last_stats().steals, 0u);
}

TEST(ReplicaExecutor, GrainBatchesChunksWithoutChangingResults) {
  parallel::ExecutorConfig cfg;
  cfg.threads = 3;
  cfg.grain = 4;
  parallel::ReplicaExecutor exec(cfg);
  EXPECT_EQ(exec.grain(), 4u);
  const auto out = exec.run(10, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(exec.last_stats().tasks, 3u);  // ceil(10 / 4)
}

TEST(ReplicaExecutor, AutoGrainLowersAfterStealHeavyRun) {
  // Auto mode (grain = 0, no DYNCDN_GRAIN): the first run starts at
  // count / (threads * 8) and subsequent runs react to the steal counters.
  unsetenv("DYNCDN_GRAIN");
  parallel::ExecutorConfig cfg;
  cfg.threads = 2;
  cfg.grain = 0;
  parallel::ReplicaExecutor exec(cfg);
  ASSERT_TRUE(exec.auto_grain());
  EXPECT_EQ(exec.grain(), 0u);  // nothing tuned before the first run

  // 32 replicas, 2 workers -> initial grain 2, 16 chunks; worker 0 owns
  // chunks 0..7 (indices 0..15). Replica 0 blocks until indices 8..15 have
  // all run — they sit in worker 0's own deque, so the only way forward is
  // worker 1 stealing chunks 4..7. That forces >= 4 steals out of 16
  // chunks deterministically, which trips the steal-heavy rule
  // (steals * 4 >= tasks) and halves the grain for the next run.
  std::atomic<int> upper_half_ran{0};
  const auto out = exec.run(32, [&](std::size_t i) {
    if (i >= 8 && i < 16) upper_half_ran.fetch_add(1);
    if (i == 0) {
      while (upper_half_ran.load() < 8) std::this_thread::yield();
    }
    return i * 3;
  });
  ASSERT_EQ(out.size(), 32u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3);
  EXPECT_EQ(exec.last_stats().tasks, 16u);
  EXPECT_GE(exec.last_stats().steals, 4u);
  EXPECT_EQ(exec.grain(), 1u);  // halved from the warm-up grain of 2

  // The tuned grain drives the next run: 32 chunks now.
  const auto again = exec.run(32, [](std::size_t i) { return i + 7; });
  for (std::size_t i = 0; i < again.size(); ++i) EXPECT_EQ(again[i], i + 7);
  EXPECT_EQ(exec.last_stats().tasks, 32u);
}

TEST(ReplicaExecutor, PinnedGrainNeverTunes) {
  // Both an explicit config grain and the DYNCDN_GRAIN env var disable
  // auto-tuning: the resolved grain is a contract, not a starting point.
  parallel::ExecutorConfig cfg;
  cfg.threads = 2;
  cfg.grain = 4;
  parallel::ReplicaExecutor pinned(cfg);
  EXPECT_FALSE(pinned.auto_grain());
  EXPECT_EQ(pinned.grain(), 4u);
  (void)pinned.run(32, [](std::size_t i) { return i; });
  EXPECT_EQ(pinned.grain(), 4u);

  setenv("DYNCDN_GRAIN", "3", 1);
  parallel::ReplicaExecutor from_env({2, 0});
  unsetenv("DYNCDN_GRAIN");
  EXPECT_FALSE(from_env.auto_grain());
  EXPECT_EQ(from_env.grain(), 3u);
}

TEST(ReplicaExecutor, SkewedWorkloadMatchesSerialResults) {
  // Heavily skewed costs: the last block takes far longer than the rest.
  // Whatever the steal pattern, results must equal the serial run.
  parallel::ExecutorConfig cfg;
  cfg.threads = 4;
  cfg.grain = 1;
  parallel::ReplicaExecutor exec(cfg);
  const auto body = [](std::size_t i) {
    std::uint64_t acc = i;
    const std::size_t spins = (i >= 24) ? 200000 : 100;
    for (std::size_t k = 0; k < spins; ++k) acc = acc * 2862933555777941757ull + 3037000493ull;
    return acc;
  };
  const auto parallel_out = exec.run(32, body);
  parallel::ReplicaExecutor serial({1});
  const auto serial_out = serial.run(32, body);
  EXPECT_EQ(parallel_out, serial_out);
  EXPECT_EQ(exec.last_stats().tasks, 32u);
}

TEST(ReplicaExecutor, MoreThreadsThanReplicasIsFine) {
  parallel::ReplicaExecutor exec({16});
  const auto out = exec.run(3, [](std::size_t i) { return i + 1; });
  EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ReplicaExecutor, LowestIndexExceptionPropagates) {
  parallel::ReplicaExecutor exec({4});
  try {
    exec.run(8, [](std::size_t i) -> int {
      if (i == 2 || i == 6) {
        throw std::runtime_error("replica " + std::to_string(i));
      }
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "replica 2");
  }
}

testbed::ScenarioOptions small_scenario() {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 8;
  opt.seed = 1234;
  return opt;
}

testbed::ExperimentOptions small_experiment() {
  testbed::ExperimentOptions eo;
  eo.reps_per_node = 3;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};
  return eo;
}

/// Exact equality, field by field: the determinism contract is bit-level.
void expect_identical(const testbed::ExperimentResult& a,
                      const testbed::ExperimentResult& b) {
  ASSERT_EQ(a.boundary, b.boundary);
  ASSERT_EQ(a.discovery_fetches, b.discovery_fetches);
  ASSERT_EQ(a.per_node_timings.size(), b.per_node_timings.size());
  for (std::size_t n = 0; n < a.per_node_timings.size(); ++n) {
    const auto& qa = a.per_node_timings[n];
    const auto& qb = b.per_node_timings[n];
    ASSERT_EQ(qa.size(), qb.size()) << "node " << n;
    for (std::size_t q = 0; q < qa.size(); ++q) {
      EXPECT_EQ(std::memcmp(&qa[q], &qb[q], sizeof(qa[q])), 0)
          << "node " << n << " query " << q;
    }
  }
  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t n = 0; n < a.per_node.size(); ++n) {
    EXPECT_EQ(a.per_node[n].node_name, b.per_node[n].node_name);
    EXPECT_EQ(a.per_node[n].samples, b.per_node[n].samples);
    EXPECT_EQ(a.per_node[n].rtt_ms, b.per_node[n].rtt_ms);
    EXPECT_EQ(a.per_node[n].med_static_ms, b.per_node[n].med_static_ms);
    EXPECT_EQ(a.per_node[n].med_dynamic_ms, b.per_node[n].med_dynamic_ms);
    EXPECT_EQ(a.per_node[n].med_delta_ms, b.per_node[n].med_delta_ms);
  }
}

TEST(ParallelExperiment, ByteIdenticalAcrossThreadCounts) {
  const auto scenario = small_scenario();
  const auto options = small_experiment();

  testbed::ReplicaPlan plan;  // default: one shard per vantage point
  plan.executor.threads = 1;
  const auto t1 = testbed::run_fixed_fe_experiment(scenario, 0, options, plan);
  plan.executor.threads = 2;
  const auto t2 = testbed::run_fixed_fe_experiment(scenario, 0, options, plan);
  plan.executor.threads = 5;
  const auto t5 = testbed::run_fixed_fe_experiment(scenario, 0, options, plan);

  ASSERT_EQ(t1.per_node.size(), 8u);
  ASSERT_GT(t1.all().size(), 0u);
  expect_identical(t1, t2);
  expect_identical(t1, t5);
}

// Satellite of the observability PR: the merged metrics registry (and its
// canonical Prometheus rendering) must be bit-identical at any thread
// count, because shards merge in index order and every collected counter
// is derived from the deterministic simulation, never from wall clocks.
TEST(ParallelExperiment, MetricsPrometheusDumpThreadCountInvariant) {
  const auto scenario = small_scenario();
  const auto options = small_experiment();

  testbed::ReplicaPlan plan;  // default: one shard per vantage point
  std::vector<std::string> dumps;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    plan.executor.threads = threads;
    const auto r = testbed::run_fixed_fe_experiment(scenario, 0, options, plan);
    EXPECT_GT(r.metrics.counter("queries_analyzed"), 0u);
    // Kernel counters live in the segregated registry: they depend on the
    // shard layout, so keeping them out of `metrics` is what lets this
    // test demand byte-identical dumps in the first place.
    EXPECT_GT(r.kernel_metrics.counter("sim_events_executed"), 0u);
    ASSERT_NE(r.metrics.histogram("query_rtt_ms"), nullptr);
    dumps.push_back(obs::export_prometheus(r.metrics));
  }
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_FALSE(dumps[0].empty());
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0], dumps[2]);
}

// Same contract for the merged span trace: shard traces are absorbed in
// shard-index order with deterministic id remapping, so the Chrome export
// is byte-identical at any thread count.
TEST(ParallelExperiment, TraceChromeExportThreadCountInvariant) {
#if !DYNCDN_OBS
  GTEST_SKIP() << "requires span instrumentation (DYNCDN_OBS=ON)";
#endif
  auto scenario = small_scenario();
  scenario.enable_tracing = true;
  const auto options = small_experiment();

  testbed::ReplicaPlan plan;
  std::vector<std::string> dumps;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    plan.executor.threads = threads;
    const auto r = testbed::run_fixed_fe_experiment(scenario, 0, options, plan);
    ASSERT_NE(r.trace, nullptr);
    EXPECT_GT(r.trace->spans().size(), 0u);
    dumps.push_back(obs::export_chrome_trace(*r.trace));
  }
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(ParallelExperiment, SingleShardMatchesLegacySerialPath) {
  const auto scenario_options = small_scenario();
  const auto options = small_experiment();

  testbed::Scenario scenario(scenario_options);
  scenario.warm_up();
  const auto legacy = testbed::run_fixed_fe_experiment(scenario, 0, options);

  testbed::ReplicaPlan plan;
  plan.shards = 1;  // whole fleet in one simulator, like the legacy path
  plan.executor.threads = 3;
  const auto sharded =
      testbed::run_fixed_fe_experiment(scenario_options, 0, options, plan);

  expect_identical(legacy, sharded);
}

TEST(ParallelExperiment, DefaultFeShardingIsThreadCountInvariant) {
  const auto scenario = small_scenario();
  const auto options = small_experiment();

  testbed::ReplicaPlan plan;
  plan.shards = 3;  // mixed shard sizes exercise the scatter merge
  plan.executor.threads = 1;
  const auto t1 = testbed::run_default_fe_experiment(scenario, options, plan);
  plan.executor.threads = 4;
  const auto t4 = testbed::run_default_fe_experiment(scenario, options, plan);
  expect_identical(t1, t4);
}

TEST(ParallelExperiment, FetchFactoringThreadCountInvariant) {
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.seed = 99;
  opt.fe_distance_sweep_miles = std::vector<double>{50, 150, 300, 450};

  const search::Keyword keyword{"network measurement study",
                                search::KeywordClass::kGranular, 5000};
  testbed::ReplicaPlan plan;
  plan.executor.threads = 1;
  const auto t1 =
      testbed::run_fetch_factoring_experiment(opt, keyword, 4, plan);
  plan.executor.threads = 4;
  const auto t4 =
      testbed::run_fetch_factoring_experiment(opt, keyword, 4, plan);

  ASSERT_EQ(t1.distances_miles.size(), 4u);
  ASSERT_EQ(t1.distances_miles, t4.distances_miles);
  ASSERT_EQ(t1.med_t_dynamic_ms, t4.med_t_dynamic_ms);
  EXPECT_EQ(t1.factoring.fit.slope, t4.factoring.fit.slope);
  EXPECT_EQ(t1.factoring.fit.intercept, t4.factoring.fit.intercept);
}

TEST(ParallelExperiment, PlannedClientCountIsSweepAware) {
  testbed::ScenarioOptions opt;
  opt.client_count = 60;
  EXPECT_EQ(testbed::planned_client_count(opt), 60u);
  opt.fe_distance_sweep_miles = std::vector<double>{10, 20, 30};
  EXPECT_EQ(testbed::planned_client_count(opt), 3u);
}

}  // namespace
}  // namespace dyncdn
