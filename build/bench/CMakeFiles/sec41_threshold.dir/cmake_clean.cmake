file(REMOVE_RECURSE
  "CMakeFiles/sec41_threshold.dir/sec41_threshold.cpp.o"
  "CMakeFiles/sec41_threshold.dir/sec41_threshold.cpp.o.d"
  "sec41_threshold"
  "sec41_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec41_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
