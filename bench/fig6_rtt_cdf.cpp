// Figure 6 reproduction (Datasets A): CDF of the RTT between vantage
// points and their default (DNS-nearest) FE server, Bing vs Google.
//
// Paper shape: Bing's Akamai FEs are closer — >80% of nodes see <20ms RTT
// to a Bing FE, vs ~60% for Google.
//
// RTTs are measured, not read from the topology: each client performs one
// query against its default FE and the handshake RTT is extracted from the
// packet capture.
#include <cstdio>

#include "bench_util.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "stats/cdf.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

std::vector<double> measure_default_rtts(cdn::ServiceProfile profile,
                                         std::size_t clients) {
  testbed::ScenarioOptions opt;
  opt.profile = profile;
  opt.client_count = clients;
  opt.seed = 66;
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  testbed::ExperimentOptions eo;
  eo.reps_per_node = 2;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(6);
  eo.keywords = {catalog.figure3_keywords().front()};
  const auto result = testbed::run_default_fe_experiment(scenario, eo);

  std::vector<double> rtts;
  for (const auto& n : result.per_node) {
    if (n.samples > 0) rtts.push_back(n.rtt_ms);
  }
  return rtts;
}

}  // namespace

int main() {
  const std::size_t clients = bench::full_scale() ? 220 : 120;
  bench::banner("Figure 6 — RTT CDF to the default FE (Datasets A)",
                std::to_string(clients) +
                    " vantage points, handshake-measured RTT");

  const auto bing_rtts =
      measure_default_rtts(cdn::bing_like_profile(), clients);
  const auto google_rtts =
      measure_default_rtts(cdn::google_like_profile(), clients);

  const stats::EmpiricalCdf bing(bing_rtts), google(google_rtts);

  bench::section("CDF (fraction of nodes with RTT <= x)");
  std::printf("%10s %12s %12s\n", "RTT(ms)", "Bing-like", "Google-like");
  for (double x = 0; x <= 100.0; x += 5.0) {
    std::printf("%10.0f %12.3f %12.3f\n", x, bing.at(x), google.at(x));
  }

  {
    std::vector<double> xs, fb, fg;
    for (double x = 0; x <= 100.0; x += 2.0) {
      xs.push_back(x);
      fb.push_back(bing.at(x));
      fg.push_back(google.at(x));
    }
    const std::vector<std::string> cols{"rtt_ms", "cdf_bing_like",
                                        "cdf_google_like"};
    const std::vector<std::vector<double>> data{xs, fb, fg};
    bench::write_csv("fig6_rtt_cdf.csv", cols, data);
  }

  bench::section("paper-shape summary");
  std::printf("nodes with RTT < 20ms: Bing-like %.0f%%, Google-like %.0f%%\n",
              100.0 * bing.at(20.0), 100.0 * google.at(20.0));
  std::printf("(paper: >80%% for Bing/Akamai, ~60%% for Google)\n");
  std::printf("paper shape %s: Bing FEs closer to clients than Google FEs\n",
              bing.at(20.0) > google.at(20.0) ? "HOLDS" : "VIOLATED");
  std::printf("median RTT: Bing-like %.1fms, Google-like %.1fms\n",
              bing.quantile(0.5), google.quantile(0.5));
  return 0;
}
