// Small-buffer-optimized move-only callable for the event kernel.
//
// Every TCP ACK re-arms the retransmission timer, so the event queue
// constructs and destroys one callback per segment. std::function heap
// allocates for captures beyond ~16 bytes and pays for copyability we never
// use; this type stores any callable up to kInlineBytes inline (timer
// lambdas capture a pointer or two) and only falls back to the heap for
// oversized captures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dyncdn::sim {

/// Move-only `void()` callable with inline storage.
class Callback {
 public:
  /// Inline capacity: large enough for a lambda capturing a handful of
  /// pointers/shared_ptrs or a std::function, small enough to keep heap
  /// entries cache-friendly.
  static constexpr std::size_t kInlineBytes = 48;

  Callback() = default;

  template <class F,
            class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                     std::is_invocable_r_v<void, D&>>>
  Callback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule() call site.
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      // Almost every kernel callback is a lambda over a few raw pointers:
      // trivially copyable and trivially destructible. Tag those in the
      // ops pointer's low bit so move and reset — the per-event hot path,
      // hit twice per schedule/cancel pair — become an inline memcpy and
      // a store instead of two indirect calls.
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        ops_ = tag(&InlineModel<D>::ops);
      } else {
        ops_ = &InlineModel<D>::ops;
      }
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::ops;
    }
  }

  Callback(Callback&& other) noexcept { move_from(other); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  void operator()() { ops()->invoke(*this); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (!trivial()) ops()->destroy(*this);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(Callback&);
    /// Move-construct src's callable into dst's (empty) storage, then
    /// destroy src's. dst.ops_ is set by the caller.
    void (*relocate)(Callback& dst, Callback& src);
    void (*destroy)(Callback&);
  };

  static constexpr std::uintptr_t kTrivialBit = 1;

  static const Ops* tag(const Ops* p) {
    return reinterpret_cast<const Ops*>(reinterpret_cast<std::uintptr_t>(p) |
                                        kTrivialBit);
  }
  bool trivial() const {
    return (reinterpret_cast<std::uintptr_t>(ops_) & kTrivialBit) != 0;
  }
  const Ops* ops() const {
    return reinterpret_cast<const Ops*>(reinterpret_cast<std::uintptr_t>(ops_) &
                                        ~kTrivialBit);
  }

  template <class D>
  struct InlineModel {
    static D& target(Callback& c) {
      return *std::launder(reinterpret_cast<D*>(c.storage_));
    }
    static void invoke(Callback& c) { target(c)(); }
    static void relocate(Callback& dst, Callback& src) {
      ::new (static_cast<void*>(dst.storage_)) D(std::move(target(src)));
      target(src).~D();
    }
    static void destroy(Callback& c) { target(c).~D(); }
    static constexpr Ops ops{invoke, relocate, destroy};
  };

  template <class D>
  struct HeapModel {
    static D*& target(Callback& c) {
      return *std::launder(reinterpret_cast<D**>(c.storage_));
    }
    static void invoke(Callback& c) { (*target(c))(); }
    static void relocate(Callback& dst, Callback& src) {
      ::new (static_cast<void*>(dst.storage_)) D*(target(src));
    }
    static void destroy(Callback& c) { delete target(c); }
    static constexpr Ops ops{invoke, relocate, destroy};
  };

  void move_from(Callback& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.trivial()) {
        // Whole-buffer copy on purpose: the callable may be smaller than
        // kInlineBytes and the tail indeterminate, but copying a fixed 48
        // bytes beats a per-type size lookup on the hot path.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
        std::memcpy(storage_, other.storage_, kInlineBytes);
#pragma GCC diagnostic pop
      } else {
        other.ops()->relocate(*this, other);
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
};

}  // namespace dyncdn::sim
