// Quickstart: build a small GoogleLike deployment, run one search query,
// and print the packet timeline plus the inferred timings — a miniature of
// the paper's entire measurement pipeline.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "analysis/boundary.hpp"
#include "analysis/timeline.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;

int main() {
  // 1. Build the testbed: BE data center + FE fleet + 5 vantage points.
  testbed::ScenarioOptions opt;
  opt.profile = cdn::google_like_profile();
  opt.client_count = 5;
  opt.seed = 7;
  opt.capture_clients = true;
  opt.capture_payloads = true;  // keep payloads: we print content analysis
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  std::printf("deployment: %s — %zu FE sites, BE at %s (%s)\n",
              scenario.profile().name.c_str(), scenario.fes().size(),
              scenario.profile().be_site_name.c_str(),
              scenario.profile().be_location.to_string().c_str());

  // 2. Discover the static/dynamic boundary by content analysis across
  //    responses to distinct queries (the paper's §3 methodology).
  const std::size_t boundary = testbed::discover_boundary(scenario, 0, 0);
  std::printf("content analysis: static portion = %zu bytes "
              "(HTTP header + HTML head + CSS + menu bar)\n\n",
              boundary);

  // 3. Submit one query from client 0 to FE 0 and capture every packet.
  search::KeywordCatalog catalog(42);
  const search::Keyword keyword = catalog.figure3_keywords().front();
  std::printf("query: \"%s\" [%s]\n", keyword.text.c_str(),
              search::to_string(keyword.cls));

  auto& client = scenario.clients().front();
  cdn::QueryResult app_result;
  client.query_client->submit(scenario.fe_endpoint(0), keyword,
                              [&](const cdn::QueryResult& r) {
                                app_result = r;
                              });
  scenario.run();

  // 4. Print the packet-level timeline (Fig. 4 style).
  const auto& trace = client.recorder->trace();
  std::printf("\npacket timeline at the client (%zu packets):\n",
              trace.size());
  for (const auto& record : trace.records()) {
    std::printf("  %s\n", record.to_string().c_str());
  }

  // 5. Extract the Fig. 2 model events and the paper's timing parameters.
  const auto timelines =
      analysis::extract_all_timelines(trace, 80, boundary);
  if (timelines.empty() || !timelines.front().valid) {
    std::printf("\ntimeline extraction failed: %s\n",
                timelines.empty() ? "no flows"
                                  : timelines.front().invalid_reason.c_str());
    return 1;
  }
  const auto& tl = timelines.front();
  std::printf("\nextracted timeline: %s\n", tl.to_string().c_str());

  const auto timings = core::timings_from_timeline(tl);
  std::printf("timings: %s\n", timings->to_string().c_str());

  const core::FetchBounds bounds = core::fetch_bounds(*timings);
  std::printf("inferred FE-BE fetch-time bounds: %.1fms <= T_fetch <= %.1fms\n",
              bounds.lower_ms, bounds.upper_ms);

  // 6. The simulator knows the true fetch time — the paper could not check
  //    this, but we can: verify the inference bounds hold.
  const auto& fetch_log = scenario.fes().front().server->fetch_log();
  if (!fetch_log.empty()) {
    const double true_fetch =
        fetch_log.back().true_fetch_time().to_milliseconds();
    std::printf("ground truth: T_fetch = %.1fms -> bounds %s\n", true_fetch,
                bounds.contains(true_fetch) ? "HOLD" : "VIOLATED");
  }

  std::printf("\napp-level: status=%d bytes=%zu overall=%.1fms%s\n",
              app_result.status, app_result.body_bytes,
              app_result.overall_delay().to_milliseconds(),
              app_result.failed ? " FAILED" : "");
  return 0;
}
