# ctest wrapper for the bench_diff regression gate.
#
# Wall-clock throughput on a shared (often 1-core) runner occasionally dips
# 15%+ below the committed envelope when bench_smoke lands right after the
# full functional sweep — a scheduler/cache transient, not a code change.
# A genuine regression reproduces on a fresh measurement; a transient does
# not.  So: compare, and on failure re-measure once (perf_smoke rewrites
# BENCH.json) before declaring a regression.
#
# Inputs: -DBENCH_DIFF= -DPERF_SMOKE= -DBASELINE= -DBENCH_JSON=

execute_process(COMMAND "${BENCH_DIFF}" "${BASELINE}" "${BENCH_JSON}"
                RESULT_VARIABLE rc)
if(rc EQUAL 0)
  return()
endif()

message(STATUS "bench_diff failed on the in-suite measurement; "
               "re-running perf_smoke to rule out a scheduler transient")
execute_process(COMMAND "${PERF_SMOKE}" "${BENCH_JSON}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_smoke re-measurement failed (exit ${rc})")
endif()

execute_process(COMMAND "${BENCH_DIFF}" "${BASELINE}" "${BENCH_JSON}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_diff regression confirmed on re-measurement")
endif()
