#include "dns/resolver.hpp"

#include <charconv>
#include <memory>

#include "obs/obs.hpp"

namespace dyncdn::dns {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

DnsServer::DnsServer(net::Node& node, cdn::LoadModel service)
    : node_(node),
      stack_(node),
      service_(service),
      service_rng_(node.simulator().rng().stream(
          "dns/" + node.name() + "/service")) {
  // policy_ stays null by default: the serve path round-robins.
  stack_.listen(kDnsPort, [this](tcp::TcpSocket& s) { serve(s); });
}

void DnsServer::add_record(const std::string& name, net::Endpoint endpoint) {
  records_[name].push_back(endpoint);
}

void DnsServer::serve(tcp::TcpSocket& socket) {
  tcp::TcpSocket* sock = &socket;
  auto alive = std::make_shared<bool>(true);
  auto buffer = std::make_shared<std::string>();

  tcp::TcpSocket::Callbacks cb;
  cb.on_data = [this, sock, alive, buffer](net::PayloadRef d) {
    d.append_to(*buffer);
    const std::size_t eol = buffer->find('\n');
    if (eol == std::string::npos) return;
    const std::string line = buffer->substr(0, eol);
    buffer->erase(0, eol + 1);

    std::string reply = "NX\n";
    if (line.size() > 2 && line[0] == 'Q' && line[1] == ' ') {
      const std::string name = line.substr(2);
      auto it = records_.find(name);
      if (it != records_.end() && !it->second.empty()) {
        net::Endpoint chosen;
        if (policy_) {
          chosen = policy_(sock->flow().remote.node, it->second);
        } else {
          std::size_t& cursor = rr_cursor_[name];
          chosen = it->second[cursor % it->second.size()];
          ++cursor;
        }
        reply = "A " + std::to_string(chosen.node.value()) + " " +
                std::to_string(chosen.port) + "\n";
      }
    }
    ++queries_served_;

    // Resolver lookup latency, then answer and close.
    sim::Simulator& simulator = node_.simulator();
    const sim::SimTime delay =
        service_.draw(service_rng_, simulator.now(), 0);
    simulator.schedule_in(delay, [sock, alive, reply]() {
      if (!*alive) return;
      sock->send_text(reply);
      sock->close();
    });
  };
  cb.on_closed = [alive] { *alive = false; };
  socket.set_callbacks(std::move(cb));
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

DnsClient::DnsClient(tcp::TcpStack& stack, net::Endpoint server)
    : stack_(stack), server_(server) {}

void DnsClient::resolve(const std::string& name, Handler handler) {
  sim::Simulator& simulator = stack_.simulator();

#if DYNCDN_OBS
  if (obs::TraceSession* trace = obs::active_trace(simulator)) {
    // Root span (footnote 1 of the paper: resolution is *not* part of the
    // per-query timeline, so it does not hang under a query span).
    const obs::SpanId span =
        trace->begin_span(simulator.now(), "dns.resolve", "dns");
    trace->add_arg(span, "name", obs::ArgValue::of(name));
    handler = [&simulator, trace, span,
               inner = std::move(handler)](const ResolveResult& r) {
      trace->add_arg(span, "failed",
                     obs::ArgValue::of(static_cast<std::int64_t>(r.failed)));
      trace->end_span(span, simulator.now());
      inner(r);
    };
  }
#endif

  if (cache_ttl_ > sim::SimTime::zero()) {
    auto it = cache_.find(name);
    if (it != cache_.end() && it->second.expires >= simulator.now()) {
      ++cache_hits_;
      ResolveResult r;
      r.failed = false;
      r.endpoint = it->second.endpoint;
      r.started = r.completed = simulator.now();
      handler(r);
      return;
    }
  }

  struct LookupCtx {
    ResolveResult result;
    Handler handler;
    std::string buffer;
    bool reported = false;

    void report() {
      if (reported) return;
      reported = true;
      handler(result);
    }
  };
  auto ctx = std::make_shared<LookupCtx>();
  ctx->result.started = simulator.now();
  ctx->handler = std::move(handler);
  ++lookups_sent_;

  tcp::TcpSocket::Callbacks cb;
  cb.on_data = [this, ctx, name, &simulator](net::PayloadRef d) {
    d.append_to(ctx->buffer);
    const std::size_t eol = ctx->buffer.find('\n');
    if (eol == std::string::npos) return;
    const std::string line = ctx->buffer.substr(0, eol);

    if (line.size() > 2 && line[0] == 'A' && line[1] == ' ') {
      std::uint32_t node_id = 0;
      unsigned port = 0;
      const char* p = line.c_str() + 2;
      const char* end = line.c_str() + line.size();
      auto r1 = std::from_chars(p, end, node_id);
      if (r1.ec == std::errc{} && r1.ptr < end) {
        auto r2 = std::from_chars(r1.ptr + 1, end, port);
        if (r2.ec == std::errc{}) {
          ctx->result.failed = false;
          ctx->result.endpoint =
              net::Endpoint{net::NodeId{node_id},
                            static_cast<net::Port>(port)};
        }
      }
      if (ctx->result.failed) ctx->result.error = "malformed answer";
    } else {
      ctx->result.error = "NXDOMAIN";
    }
    ctx->result.completed = simulator.now();
    if (!ctx->result.failed && cache_ttl_ > sim::SimTime::zero()) {
      cache_[name] = CacheEntry{ctx->result.endpoint,
                                simulator.now() + cache_ttl_};
    }
    ctx->report();
  };
  cb.on_closed = [ctx, &simulator] {
    if (!ctx->reported) {
      ctx->result.completed = simulator.now();
      if (ctx->result.error.empty()) {
        ctx->result.error = "connection closed before answer";
      }
      ctx->report();
    }
  };

  tcp::TcpSocket& socket = stack_.connect(server_, std::move(cb));
  socket.send_text("Q " + name + "\n");
}

}  // namespace dyncdn::dns
