file(REMOVE_RECURSE
  "CMakeFiles/fig3_keyword_effect.dir/fig3_keyword_effect.cpp.o"
  "CMakeFiles/fig3_keyword_effect.dir/fig3_keyword_effect.cpp.o.d"
  "fig3_keyword_effect"
  "fig3_keyword_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_keyword_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
