file(REMOVE_RECURSE
  "CMakeFiles/split_tcp_comparison.dir/split_tcp_comparison.cpp.o"
  "CMakeFiles/split_tcp_comparison.dir/split_tcp_comparison.cpp.o.d"
  "split_tcp_comparison"
  "split_tcp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_tcp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
