// Sim-time periodic metric series: bounded, merge-deterministic sampling
// of scalar channels at a fixed tick interval.
//
// The sampler itself is passive — it does not know about the simulator.
// The scenario drives it: at each tick boundary it calls begin_tick(),
// record()s every channel, then end_tick(). Channels come in two groups:
//
//  * application channels (default): derived only from simulation state
//    (queue depths, in-flight packets, delivered-byte deltas). These are
//    shard-layout invariant at barrier-aligned tick times, so the CSV/JSON
//    exports are byte-identical at any thread or shard count — the same
//    contract as the metrics registry.
//  * runtime channels (record(..., /*runtime=*/true)): PDES/executor
//    health (barrier stall wall-time, window counts). Wall clocks and
//    layout-dependent counters live here; they are excluded from the
//    deterministic exports and surface only via to_json(true).
//
// merge() aligns two samplers by absolute tick index and sums values, the
// commutative rule that keeps replica merges order-independent. The series
// is bounded: past max_samples ticks the oldest tick is evicted.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dyncdn::obs {

class TimeSeriesSampler {
  struct Channel;

 public:
  // interval_ns: sim-time width of one tick; max_samples bounds retained
  // ticks (oldest evicted first).
  explicit TimeSeriesSampler(std::uint64_t interval_ns = 0,
                             std::size_t max_samples = 4096);

  bool enabled() const { return interval_ns_ > 0; }
  std::uint64_t interval_ns() const { return interval_ns_; }
  std::size_t max_samples() const { return max_samples_; }

  // Start the sample for absolute tick index `tick` (sim time =
  // tick * interval). Ticks must be presented in increasing order.
  void begin_tick(std::uint64_t tick);

  // Record an instantaneous value for `channel` at the current tick.
  void record(const std::string& channel, double value, bool runtime = false);

  // Record a monotonically increasing cumulative counter; the stored value
  // is the delta since the previous record_cumulative on this channel.
  void record_cumulative(const std::string& channel, double cumulative,
                         bool runtime = false);

  // Interned channel handle for the per-tick hot path: resolves the name
  // once, then record(ref, ...) skips the string-keyed map lookup that
  // dominates take_sample() at small tick intervals. Refs stay valid
  // across ticks and evictions but are invalidated by merge().
  class ChannelRef {
   public:
    ChannelRef() = default;

   private:
    friend class TimeSeriesSampler;
    Channel* ch = nullptr;
  };
  ChannelRef channel(const std::string& name, bool runtime = false);
  void record(ChannelRef ref, double value);
  void record_cumulative(ChannelRef ref, double cumulative);

  // Close the current tick: channels not recorded this tick are padded
  // with zero so every channel column has one value per retained tick.
  void end_tick();

  // Sum `other` into this series, aligning rows by absolute tick index
  // (a tick missing on either side contributes zero). Channel runtime
  // flags are unioned. Deterministic for any merge order.
  void merge(const TimeSeriesSampler& other);

  std::size_t sample_count() const { return ticks_.size(); }
  const std::vector<std::uint64_t>& ticks() const { return ticks_; }
  std::vector<std::string> channel_names(bool include_runtime = false) const;

  // CSV with header `tick,time_ms,<app channels sorted>`; runtime channels
  // never appear (they are not deterministic across layouts).
  std::string to_csv() const;

  // JSON object {interval_ns, ticks:[...], channels:{name:[...]}}.
  // Runtime channels are included only when include_runtime is set.
  std::string to_json(bool include_runtime = false) const;

 private:
  struct Channel {
    bool runtime = false;
    bool has_prev = false;
    double prev_cumulative = 0.0;
    // values[i] belongs to ticks_[i]; padded to ticks_.size() by
    // end_tick(), shorter only mid-tick.
    std::vector<double> values;
  };

  void record_channel(Channel& ch, double value);

  void pad_channel(Channel& ch) {
    if (ch.values.size() < ticks_.size()) {
      ch.values.resize(ticks_.size(), 0.0);
    }
  }
  void evict_to_bound();

  std::uint64_t interval_ns_ = 0;
  std::size_t max_samples_ = 4096;
  bool in_tick_ = false;
  std::vector<std::uint64_t> ticks_;
  std::map<std::string, Channel> channels_;
};

}  // namespace dyncdn::obs
