#include "capture/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace dyncdn::capture {

net::FlowId PacketRecord::flow_at_capture_node() const {
  if (direction == Direction::kSent) {
    return net::FlowId{net::Endpoint{src, tcp.src_port},
                       net::Endpoint{dst, tcp.dst_port}};
  }
  return net::FlowId{net::Endpoint{dst, tcp.dst_port},
                     net::Endpoint{src, tcp.src_port}};
}

std::string PacketRecord::to_string() const {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%12s %s %u:%u -> %u:%u seq=%llu ack=%llu [%s] %zuB",
                timestamp.to_string().c_str(), capture::to_string(direction),
                src.value(), static_cast<unsigned>(tcp.src_port), dst.value(),
                static_cast<unsigned>(tcp.dst_port),
                static_cast<unsigned long long>(tcp.seq),
                static_cast<unsigned long long>(tcp.ack),
                tcp.flags.to_string().c_str(), payload_size);
  return buf;
}

PacketTrace PacketTrace::filter(
    const std::function<bool(const PacketRecord&)>& pred) const {
  PacketTrace out(node_);
  for (const PacketRecord& r : records_) {
    if (pred(r)) out.add(r);
  }
  return out;
}

PacketTrace PacketTrace::filter_flow(const net::FlowId& flow) const {
  return filter([&](const PacketRecord& r) {
    const net::FlowId f = r.flow_at_capture_node();
    return f == flow || f == flow.reversed();
  });
}

PacketTrace PacketTrace::filter_remote_port(net::Port port) const {
  return filter([&](const PacketRecord& r) {
    return r.flow_at_capture_node().remote.port == port;
  });
}

std::vector<std::pair<net::FlowId, PacketTrace>> PacketTrace::split_by_flow(
    std::optional<net::Port> remote_port) const {
  std::vector<std::pair<net::FlowId, PacketTrace>> out;
  std::unordered_map<net::FlowId, std::size_t> index;
  for (const PacketRecord& r : records_) {
    const net::FlowId f = r.flow_at_capture_node();
    if (remote_port && f.remote.port != *remote_port) continue;
    const auto [it, inserted] = index.try_emplace(f, out.size());
    if (inserted) out.emplace_back(f, PacketTrace(node_));
    out[it->second].second.add(r);
  }
  return out;
}

std::vector<net::FlowId> PacketTrace::flows() const {
  std::vector<net::FlowId> out;
  for (const PacketRecord& r : records_) {
    const net::FlowId f = r.flow_at_capture_node();
    if (std::find(out.begin(), out.end(), f) == out.end()) out.push_back(f);
  }
  return out;
}

std::string PacketTrace::to_text() const {
  std::string out;
  for (const PacketRecord& r : records_) {
    out += r.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace dyncdn::capture
