// Front-end (proxy) server — the system under study.
//
// Implements the two FE roles the paper identifies:
//  1. it caches the static portion of the response and sends it to the
//     client immediately upon receiving the query, and
//  2. it splits the end-to-end TCP connection: clients terminate at the FE
//     while the FE fetches dynamic content over a persistent, pre-warmed
//     connection to the BE data center, then relays bytes as they arrive.
//
// Knobs cover the ablations DESIGN.md lists: cold vs warm BE connection,
// streaming vs store-and-forward relay, deferred static delivery, and an
// (off by default, per the paper's §3 finding) FE result cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/load_model.hpp"
#include "http/parser.hpp"
#include "net/node.hpp"
#include "search/content_model.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::cdn {

/// Ground-truth record of one FE->BE fetch. `fetch_start` to `last_byte`
/// is the true T_fetch the paper's framework can only bound from outside.
struct FetchRecord {
  std::uint64_t query_id = 0;
  std::string target;
  sim::SimTime fetch_start;   // FE wrote the query to the BE connection
  sim::SimTime first_byte;    // first dynamic-body byte arrived at the FE
  sim::SimTime last_byte;     // dynamic body complete at the FE
  bool served_from_fe_cache = false;

  sim::SimTime true_fetch_time() const { return last_byte - fetch_start; }
};

class FrontEndServer {
 public:
  enum class RelayMode {
    /// Forward dynamic bytes to the client as they arrive from the BE.
    kStreaming,
    /// Assemble the complete dynamic portion before delivering it — the
    /// edge-side "dynamic content assembly" of Lewin et al. (the paper's
    /// ref [8]), and the behaviour the paper's Eq. 2 encodes: the fetch
    /// time constant C "depends on the TCP window size on the BE data
    /// center", i.e. delivery to the FE completes (window-paced) before
    /// the client sees dynamic bytes. Default.
    kStoreAndForward,
  };

  struct Config {
    std::string name = "fe";
    net::Port client_port = 80;
    net::Endpoint backend;  // BE fetch endpoint

    /// FE request-handling service time (cache lookup + proxy overhead).
    /// Shared CDN hosts (BingLike) get larger sigma/amplitude.
    LoadModel service;

    /// Pre-warm persistent BE connections with a bulk transfer so their
    /// congestion windows are open before the first real query (the paper's
    /// "persistent TCP connection ... eliminates the effect of TCP
    /// slow-start" aspect). Disable for the cold-connection ablation.
    bool warm_backend_connection = true;
    std::size_t warmup_bytes = 128 * 1024;

    /// The FE multiplexes fetches over a pool of persistent BE
    /// connections, one in-flight query per connection (HTTP/1.1-style);
    /// the pool grows on demand up to this cap, beyond which fetches
    /// queue. Zero means unbounded.
    std::size_t max_backend_connections = 0;

    RelayMode relay_mode = RelayMode::kStoreAndForward;

    /// Send headers + static prefix immediately on query receipt (role 1).
    /// false = wait for the BE response before sending anything (ablation).
    bool serve_static_immediately = true;

    /// Cache dynamic results at the FE keyed by request target. The paper
    /// §3 concludes real FEs do NOT do this; the caching-experiment bench
    /// flips it on to show what the detector would see if they did.
    bool cache_results = false;

    tcp::TcpConfig client_tcp;
    tcp::TcpConfig backend_tcp;
  };

  FrontEndServer(net::Node& node, const search::ContentModel& content,
                 Config config);

  net::Node& node() { return node_; }
  const Config& config() const { return config_; }
  net::Endpoint client_endpoint() const {
    return {node_.id(), config_.client_port};
  }

  const std::vector<FetchRecord>& fetch_log() const { return fetch_log_; }
  std::size_t queries_handled() const { return queries_handled_; }
  /// Hits of the (off-by-default) dynamic result cache only.
  std::size_t cache_hits() const { return cache_hits_; }
  /// Hits of the static-portion cache (role 1). The first query primes
  /// the prefix into the FE cache; every later serve of it is a hit, so a
  /// repeated query from the same vantage point always records one.
  std::size_t static_cache_hits() const { return static_cache_hits_; }
  /// True when at least one pooled BE connection is established.
  bool backend_connected() const;
  std::size_t backend_pool_size() const { return be_pool_.size(); }

  /// Instantaneous depths for the time-series sampler (the *_peak()
  /// accessors below keep the end-of-run high-water marks).
  std::size_t fetch_queue_depth() const { return fetch_queue_.size(); }
  std::size_t active_requests() const { return active_requests_; }

  /// High-water marks for the metrics layer.
  std::size_t backend_pool_peak() const { return be_pool_peak_; }
  std::size_t fetch_queue_peak() const { return fetch_queue_peak_; }
  std::size_t active_requests_peak() const { return active_requests_peak_; }
  tcp::TcpStack& stack() { return stack_; }

 private:
  /// Per-client-connection state, shared between callbacks.
  struct ClientCtx {
    tcp::TcpSocket* socket = nullptr;
    bool alive = true;
    std::string buffered;  // store-and-forward accumulation
    /// Observability: the fe.request span for the request in flight on
    /// this connection (kNoSpan when tracing is off).
    std::uint64_t span = 0;
  };

  /// One pooled persistent connection to the BE.
  struct BackendConn {
    tcp::TcpSocket* socket = nullptr;
    std::unique_ptr<http::ResponseParser> parser;
    std::shared_ptr<bool> alive;   // invalidates socket callbacks
    std::uint64_t response_id = 0;  // id of the response being parsed
    bool response_is_warmup = false;
    std::uint64_t in_flight_query = 0;  // 0 = idle
    bool connected = false;
  };

  void accept_client(tcp::TcpSocket& socket);
  void handle_request(std::shared_ptr<ClientCtx> ctx, http::HttpRequest req);
  void send_head_and_static(ClientCtx& ctx);
  void begin_fetch(std::shared_ptr<ClientCtx> ctx, const std::string& target);
  void dispatch_fetch(std::uint64_t query_id);
  BackendConn* idle_backend_conn();
  BackendConn& open_backend_conn(bool warm);
  void backend_conn_lost(BackendConn& conn);

  net::Node& node_;
  const search::ContentModel& content_;
  Config config_;
  tcp::TcpStack stack_;
  sim::RngStream service_rng_;

  std::vector<std::unique_ptr<BackendConn>> be_pool_;
  std::vector<std::uint64_t> fetch_queue_;  // queries awaiting a connection

  std::uint64_t next_query_id_ = 1;
  /// In-flight fetches: query id -> client context + log index.
  struct Pending {
    std::shared_ptr<ClientCtx> ctx;
    std::size_t log_index = 0;
    std::string cache_key;
    std::string target;
    std::uint64_t fetch_span = 0;  // obs: fe.fetch span id
  };
  std::unordered_map<std::uint64_t, Pending> pending_;

  std::unordered_map<std::string, std::string> result_cache_;
  std::vector<FetchRecord> fetch_log_;
  std::size_t queries_handled_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t static_cache_hits_ = 0;
  bool static_prefix_primed_ = false;
  /// The cached static portion as a wire buffer: primed on first serve,
  /// then sent zero-copy on every hit instead of re-copied per query.
  net::Buffer static_prefix_buf_;
  std::size_t active_requests_ = 0;
  std::size_t be_pool_peak_ = 0;
  std::size_t fetch_queue_peak_ = 0;
  std::size_t active_requests_peak_ = 0;
};

}  // namespace dyncdn::cdn
