// §4.1 reproduction: the placement / fetch-time trade-off.
//
// Sweep the client->FE RTT with everything else held fixed and show:
//  - T_delta decreases linearly with RTT and collapses to zero at a
//    service-specific threshold (Google ~50-100ms, Bing ~100-200ms);
//  - below the threshold, further reducing RTT no longer improves
//    T_dynamic ("reducing the RTT further will not drastically improve
//    the overall user perceived performance") — the fetch time rules.
//
// Implemented with a controlled single-client topology per RTT point so
// the sweep is exact rather than dependent on vantage-point luck.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

/// Median timings for one emulated client at a forced RTT: a single FE at
/// the service's typical FE->BE distance, with one co-located probe whose
/// last-mile latency is set so the handshake RTT equals `rtt_ms`.
core::NodeAggregate probe_rtt(const cdn::ServiceProfile& base, double rtt_ms,
                              double fe_be_miles, std::size_t reps,
                              std::uint64_t seed) {
  cdn::ServiceProfile profile = base;
  profile.last_mile_min_ms = std::max(0.1, rtt_ms / 2.0 - 0.05);
  profile.last_mile_max_ms = profile.last_mile_min_ms;

  testbed::ScenarioOptions opt;
  opt.profile = profile;
  opt.seed = seed;
  opt.fe_distance_sweep_miles = std::vector<double>{fe_be_miles};
  testbed::Scenario scenario(opt);
  scenario.warm_up();

  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 1100_ms;
  search::KeywordCatalog catalog(4);
  eo.keywords = {catalog.figure3_keywords().front()};
  const auto result = testbed::run_fixed_fe_experiment(scenario, 0, eo);
  return result.per_node.at(0);
}

void run_service(const cdn::ServiceProfile& profile, double fe_be_miles,
                 std::size_t reps) {
  std::vector<core::NodeAggregate> nodes;
  std::vector<double> rtts, tdyn, tdelta, overall;
  for (double rtt = 4; rtt <= 280; rtt *= 1.45) {
    core::NodeAggregate n = probe_rtt(profile, rtt, fe_be_miles, reps, 101);
    nodes.push_back(n);
    rtts.push_back(n.rtt_ms);
    tdyn.push_back(n.med_dynamic_ms);
    tdelta.push_back(n.med_delta_ms);
    overall.push_back(n.med_overall_ms);
  }

  bench::section(profile.name + " — controlled RTT sweep");
  std::printf("%10s %12s %10s %12s\n", "RTT(ms)", "Tdynamic", "Tdelta",
              "overall");
  for (std::size_t i = 0; i < rtts.size(); ++i) {
    std::printf("%10.1f %12.1f %10.1f %12.1f\n", rtts[i], tdyn[i],
                tdelta[i], overall[i]);
  }

  const auto est = core::estimate_delta_threshold(nodes);
  std::printf("threshold: %s\n", est.to_string().c_str());

  // Quantify "closer no longer helps": compare T_dynamic at the two
  // lowest RTTs vs the change across the two highest.
  if (tdyn.size() >= 4) {
    const double low_gain = tdyn[1] - tdyn[0];
    const double high_gain = tdyn[tdyn.size() - 1] - tdyn[tdyn.size() - 2];
    std::printf("T_dynamic change per RTT step: %.1f ms at low RTT vs "
                "%.1f ms at high RTT\n",
                low_gain, high_gain);
    std::printf("below the threshold, T_dynamic is fetch-dominated "
                "(flat): %s\n",
                std::abs(low_gain) < 0.3 * std::abs(high_gain) ? "HOLDS"
                                                               : "VIOLATED");
  }
}

}  // namespace

int main() {
  const std::size_t reps = bench::full_scale() ? 30 : 12;
  bench::banner("§4.1 — T_delta threshold and the placement trade-off",
                "controlled client RTT sweep, " + std::to_string(reps) +
                    " reps per point");
  // FE->BE distances chosen as each service's typical FE-to-data-center
  // separation (Akamai FEs scatter far from the single Bing DC; Google
  // FEs sit nearer its data centers).
  run_service(cdn::google_like_profile(), 400.0, reps);
  run_service(cdn::bing_like_profile(), 650.0, reps);
  std::printf(
      "\npaper conclusion: there is a distance threshold within which "
      "placing FE\nservers closer to users no longer helps; beyond it the "
      "end-to-end\nperformance is determined solely by the FE-BE fetch "
      "time.\n");
  return 0;
}
