#include "cdn/interactive.hpp"

#include <utility>

namespace dyncdn::cdn {

InteractiveTyper::InteractiveTyper(QueryClient& client, TypingOptions options,
                                   std::uint64_t seed)
    : client_(client), options_(options), rng_(seed) {}

void InteractiveTyper::type(net::Endpoint server,
                            const search::Keyword& keyword, Handler done) {
  server_ = server;
  keyword_ = keyword;
  next_char_ = 0;
  outstanding_ = 0;
  typing_done_ = false;
  session_ = TypingSessionResult{};
  done_ = std::move(done);
  issue_next();
}

void InteractiveTyper::issue_next() {
  sim::Simulator& simulator = client_.node().simulator();

  // Type characters (without issuing) until the minimum prefix is reached.
  while (next_char_ < keyword_.text.size() &&
         next_char_ + 1 < options_.min_prefix) {
    ++next_char_;
  }

  if (next_char_ >= keyword_.text.size()) {
    typing_done_ = true;
    if (outstanding_ == 0 && done_) done_(session_);
    return;
  }

  ++next_char_;
  const std::string prefix = keyword_.text.substr(0, next_char_);

  // Each keystroke's query is an ordinary search query for the prefix,
  // over a brand-new connection (QueryClient::submit always opens one).
  search::Keyword partial = keyword_;
  partial.text = prefix;

  const std::size_t index = session_.keystrokes.size();
  session_.keystrokes.push_back(KeystrokeResult{prefix, QueryResult{}});
  ++session_.connections;
  ++outstanding_;

  client_.submit(server_, partial, [this, index](const QueryResult& r) {
    session_.keystrokes[index].result = r;
    --outstanding_;
    if (typing_done_ && outstanding_ == 0 && done_) done_(session_);
  });

  // Schedule the next keystroke after a human-scale gap; queries from
  // successive keystrokes may overlap in flight, as in the real feature.
  const double gap_ms =
      rng_.uniform(options_.keystroke_min_ms, options_.keystroke_max_ms);
  simulator.schedule_in(sim::SimTime::from_milliseconds(gap_ms),
                        [this]() { issue_next(); });
}

}  // namespace dyncdn::cdn
