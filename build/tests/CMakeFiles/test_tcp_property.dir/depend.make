# Empty dependencies file for test_tcp_property.
# This may be replaced when dependencies are built.
