// TCP state-machine transition tests: observing the endpoint states
// through establishment, data transfer, half-close, simultaneous paths
// and resets — the corners the property sweeps don't pin down explicitly.
#include <gtest/gtest.h>

#include "harness.hpp"
#include "tcp/socket.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::tcp {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using dyncdn::testing::TwoNodeOptions;
using namespace dyncdn::sim::literals;

constexpr net::Port kPort = 80;

struct StateFixture {
  StateFixture() {
    h.server->listen(kPort, [this](TcpSocket& s) {
      server_sock = &s;
      TcpSocket::Callbacks cb;
      cb.on_data = [this](net::PayloadRef d) {
        server_received += d.to_text();
      };
      cb.on_remote_close = [this] { server_saw_close = true; };
      s.set_callbacks(std::move(cb));
    });
  }

  TcpSocket& connect() {
    TcpSocket::Callbacks cb;
    cb.on_connected = [this] { client_connected = true; };
    cb.on_remote_close = [this] { client_saw_close = true; };
    return h.client->connect({h.server_node->id(), kPort}, std::move(cb));
  }

  TwoNodeHarness h;
  TcpSocket* server_sock = nullptr;
  std::string server_received;
  bool client_connected = false;
  bool client_saw_close = false;
  bool server_saw_close = false;
};

TEST(TcpStates, ClientWalksSynSentToEstablished) {
  StateFixture f;
  TcpSocket& c = f.connect();
  EXPECT_EQ(c.state(), TcpState::kSynSent);
  f.h.simulator.run();
  EXPECT_EQ(c.state(), TcpState::kEstablished);
  EXPECT_TRUE(f.client_connected);
  ASSERT_NE(f.server_sock, nullptr);
  EXPECT_EQ(f.server_sock->state(), TcpState::kEstablished);
}

TEST(TcpStates, ActiveCloserPassesThroughFinWait) {
  StateFixture f;
  TcpSocket& c = f.connect();
  f.h.simulator.run();
  c.close();
  // Immediately after close(), the FIN is out: FIN_WAIT_1.
  EXPECT_EQ(c.state(), TcpState::kFinWait1);
  // Run only until the ACK of our FIN returns but before the server FINs
  // back (server app hasn't called close): FIN_WAIT_2 is stable.
  f.h.simulator.run();
  EXPECT_TRUE(f.server_saw_close);
  EXPECT_EQ(c.state(), TcpState::kFinWait2);
  // Server half stays CLOSE_WAIT until it closes.
  EXPECT_EQ(f.server_sock->state(), TcpState::kCloseWait);
}

TEST(TcpStates, PassiveCloserWalksCloseWaitToClosed) {
  StateFixture f;
  TcpSocket& c = f.connect();
  f.h.simulator.run();
  c.close();
  f.h.simulator.run();
  ASSERT_EQ(f.server_sock->state(), TcpState::kCloseWait);
  f.server_sock->close();
  EXPECT_EQ(f.server_sock->state(), TcpState::kLastAck);
  f.h.simulator.run();
  // Both fully closed and reaped.
  EXPECT_EQ(f.h.client->socket_count(), 0u);
  EXPECT_EQ(f.h.server->socket_count(), 0u);
}

TEST(TcpStates, HalfCloseStillDeliversServerData) {
  // Client closes its sending half; the server keeps sending afterwards —
  // the client must ack and deliver it (the close-framed HTTP pattern).
  StateFixture f;
  std::string client_received;
  TcpSocket::Callbacks cb;
  cb.on_data = [&](net::PayloadRef d) { client_received += d.to_text(); };
  TcpSocket& c = f.h.client->connect({f.h.server_node->id(), kPort},
                                     std::move(cb));
  f.h.simulator.run();
  c.close();  // half-close: we send nothing more
  f.h.simulator.run();

  ASSERT_NE(f.server_sock, nullptr);
  f.server_sock->send_text("late server data");
  f.h.simulator.run();
  EXPECT_EQ(client_received, "late server data");
  f.server_sock->close();
  f.h.simulator.run();
  EXPECT_EQ(f.h.client->socket_count(), 0u);
}

TEST(TcpStates, DataArrivingWithHandshakeAckIsAccepted) {
  // The client writes immediately; its first data segment can arrive at a
  // server still in SYN_RCVD (the handshake ACK races it) and must count.
  TwoNodeOptions opt;
  opt.drop_indices_c2s = {1};  // drop the pure handshake-ACK
  TwoNodeHarness h(opt);
  std::string received;
  h.server->listen(kPort, [&](TcpSocket& s) {
    TcpSocket::Callbacks cb;
    cb.on_data = [&](net::PayloadRef d) { received += d.to_text(); };
    s.set_callbacks(std::move(cb));
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text("races the ack");
  h.simulator.run();
  EXPECT_EQ(received, "races the ack");
}

TEST(TcpStates, RstInEstablishedTearsDownBothWays) {
  StateFixture f;
  f.connect();
  f.h.simulator.run();
  f.server_sock->abort();  // server resets
  f.h.simulator.run();
  EXPECT_EQ(f.h.client->socket_count(), 0u);
  EXPECT_EQ(f.h.server->socket_count(), 0u);
}

TEST(TcpStates, CloseIsIdempotent) {
  StateFixture f;
  TcpSocket& c = f.connect();
  f.h.simulator.run();
  c.close();
  c.close();  // second close must be a no-op
  c.close();
  f.h.simulator.run();
  // Our half is done (FIN acked); the server still holds its half open.
  EXPECT_EQ(c.state(), TcpState::kFinWait2);
  f.server_sock->close();
  f.h.simulator.run();
  EXPECT_EQ(f.h.client->socket_count(), 0u);
  EXPECT_EQ(f.h.server->socket_count(), 0u);
}

TEST(TcpStates, StrayPacketAfterTeardownGetsReset) {
  // A late segment for a fully-closed connection must be answered with
  // RST (and not crash): simulated by a fresh stack-level injection.
  StateFixture f;
  TcpSocket& c = f.connect();
  f.h.simulator.run();
  const net::FlowId flow = c.flow();
  c.close();
  f.h.simulator.run();
  f.server_sock->close();  // complete the bidirectional teardown
  f.h.simulator.run();
  ASSERT_EQ(f.h.server->socket_count(), 0u);

  // Forge a data segment on the dead flow towards the server.
  int rsts_seen = 0;
  f.h.client_node->add_receive_tap([&](const net::PacketPtr& p) {
    if (p->tcp.flags.rst) ++rsts_seen;
  });
  auto stray = net::acquire_packet();
  stray->dst = flow.remote.node;
  stray->tcp.src_port = flow.local.port;
  stray->tcp.dst_port = flow.remote.port;
  stray->tcp.seq = 12345;
  stray->tcp.flags.ack = true;
  net::Buffer payload = net::make_buffer("late");
  stray->payload = net::PayloadRef{payload, 0, payload->size()};
  f.h.client_node->send(stray);
  f.h.simulator.run();
  EXPECT_EQ(rsts_seen, 1);
}

TEST(TcpStates, ListenerRejectsSecondBindOnSamePort) {
  StateFixture f;
  EXPECT_THROW(f.h.server->listen(kPort, [](TcpSocket&) {}),
               std::logic_error);
}

TEST(TcpStates, SrttConvergesToPathRtt) {
  TwoNodeOptions opt;
  opt.one_way_delay = 35_ms;
  TwoNodeHarness h(opt);
  h.server->listen(kPort, [](TcpSocket& s) {
    s.set_callbacks(TcpSocket::Callbacks{});
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text(pattern_text(40 * 1448));
  h.simulator.run();
  EXPECT_NEAR(c.srtt().to_milliseconds(), 70.0, 8.0);
}

TEST(TcpStates, CwndGrowsThroughSlowStartThenLinearly) {
  TwoNodeOptions opt;
  opt.tcp.initial_ssthresh = 8 * 1448;  // force early congestion avoidance
  TwoNodeHarness h(opt);
  h.server->listen(kPort, [](TcpSocket& s) {
    s.set_callbacks(TcpSocket::Callbacks{});
  });
  TcpSocket& c = h.client->connect({h.server_node->id(), kPort}, {});
  c.send_text(pattern_text(100 * 1448));
  h.simulator.run();
  // Past ssthresh, growth is ~1 MSS per RTT: cwnd ends well above
  // ssthresh but nowhere near slow-start-only levels.
  EXPECT_GT(c.cwnd_bytes(), 8u * 1448u);
  EXPECT_EQ(c.ssthresh_bytes(), 8u * 1448u);
  EXPECT_LT(c.cwnd_bytes(), 40u * 1448u);
}

}  // namespace
}  // namespace dyncdn::tcp
