# Empty compiler generated dependencies file for fe_placement_study.
# This may be replaced when dependencies are built.
