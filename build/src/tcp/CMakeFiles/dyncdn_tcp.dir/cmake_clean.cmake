file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_tcp.dir/socket.cpp.o"
  "CMakeFiles/dyncdn_tcp.dir/socket.cpp.o.d"
  "CMakeFiles/dyncdn_tcp.dir/stack.cpp.o"
  "CMakeFiles/dyncdn_tcp.dir/stack.cpp.o.d"
  "libdyncdn_tcp.a"
  "libdyncdn_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
