// Extension: quantifying footnote 1 — "DNS resolution time is not
// included, as it is negligible as compared to the overall user-perceived
// response time."
//
// A client behind a metro resolver (3ms away) resolves the service name
// via CDN-style DNS redirection (the resolver returns the nearest FE),
// then runs the query. We compare the resolution time against the overall
// response time, for cold lookups and for the cached lookups that real
// stub resolvers serve for almost all queries.
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "cdn/backend.hpp"
#include "cdn/client.hpp"
#include "cdn/deployment.hpp"
#include "cdn/frontend.hpp"
#include "dns/resolver.hpp"
#include "net/network.hpp"
#include "search/content_model.hpp"
#include "sim/simulator.hpp"
#include "stats/descriptive.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

int main() {
  const std::size_t reps = bench::full_scale() ? 60 : 20;
  bench::banner("Extension — DNS resolution vs overall response time",
                "footnote 1 quantified; " + std::to_string(reps) +
                    " query cycles");

  sim::Simulator simulator(17);
  net::Network network(simulator);
  search::ContentModel content(search::ContentProfile{}, "DnsDemo");

  net::Node& client_node = network.add_node("client");
  net::Node& dns_node = network.add_node("dns");    // metro resolver
  net::Node& fe_near = network.add_node("fe-near");
  net::Node& fe_far = network.add_node("fe-far");
  net::Node& be_node = network.add_node("be");

  net::LinkConfig l3;
  l3.propagation_delay = 3_ms;
  network.connect(client_node, dns_node, l3);

  net::LinkConfig l8;
  l8.propagation_delay = 8_ms;
  network.connect(client_node, fe_near, l8);
  net::LinkConfig l45;
  l45.propagation_delay = 45_ms;
  network.connect(client_node, fe_far, l45);

  net::LinkConfig internal;
  internal.propagation_delay = 6_ms;
  internal.bandwidth_bps = 1e9;
  network.connect(fe_near, be_node, internal);
  network.connect(fe_far, be_node, internal);

  const cdn::ServiceProfile profile = cdn::google_like_profile();
  cdn::BackendDataCenter::Config be_cfg;
  be_cfg.processing = profile.processing;
  be_cfg.tcp = profile.internal_tcp;
  cdn::BackendDataCenter backend(be_node, content, be_cfg);

  auto make_fe = [&](net::Node& node, const char* name) {
    cdn::FrontEndServer::Config cfg;
    cfg.name = name;
    cfg.backend = backend.fetch_endpoint();
    cfg.service.median_ms = 25.0;
    cfg.service.sigma = 0.05;
    cfg.client_tcp = profile.client_tcp;
    cfg.backend_tcp = profile.internal_tcp;
    return std::make_unique<cdn::FrontEndServer>(node, content, cfg);
  };
  auto fe1 = make_fe(fe_near, "fe-near");
  auto fe2 = make_fe(fe_far, "fe-far");

  cdn::LoadModel dns_service;
  dns_service.median_ms = 2.0;
  dns_service.sigma = 0.2;
  dns::DnsServer dns_server(dns_node, dns_service);
  dns_server.add_record("search.example", fe1->client_endpoint());
  dns_server.add_record("search.example", fe2->client_endpoint());
  // CDN-style steering: always hand out the nearest FE for this client.
  dns_server.set_policy([&](net::NodeId,
                            const std::vector<net::Endpoint>& cands) {
    return cands.front();  // fe-near registered first
  });

  cdn::QueryClient client(client_node, profile.client_tcp);
  dns::DnsClient resolver(client.stack(), dns_server.endpoint());
  resolver.set_cache_ttl(30_s);
  simulator.run_until(simulator.now() + 3_s);

  const search::Keyword keyword{"dns footnote probe",
                                search::KeywordClass::kGranular, 700};

  std::vector<double> dns_ms, overall_ms;
  std::size_t steered_to_near = 0;
  for (std::size_t r = 0; r < reps; ++r) {
    // Each cycle: resolve (cache expires every 30s; queries are 2s apart,
    // so ~1 in 15 lookups is cold), then query the returned endpoint.
    dns::ResolveResult res;
    resolver.resolve("search.example",
                     [&](const dns::ResolveResult& rr) { res = rr; });
    simulator.run();
    if (res.failed) continue;
    if (res.endpoint.node == fe_near.id()) ++steered_to_near;
    dns_ms.push_back(res.duration().to_milliseconds());

    cdn::QueryResult qr;
    client.submit(res.endpoint, keyword,
                  [&](const cdn::QueryResult& q) { qr = q; });
    simulator.run();
    if (!qr.failed) overall_ms.push_back(qr.overall_delay().to_milliseconds());
    simulator.run_until(simulator.now() + 2_s);
  }

  bench::section("results");
  std::printf("DNS steering: %zu/%zu lookups answered with the nearest FE\n",
              steered_to_near, dns_ms.size());
  std::printf("DNS resolution time:  %s\n",
              stats::summarize(dns_ms).to_string().c_str());
  std::printf("overall response time: %s\n",
              stats::summarize(overall_ms).to_string().c_str());
  const double cold_dns = stats::max_of(dns_ms);
  const double med_overall = stats::median(overall_ms);
  std::printf("\ncold lookup = %.1fms (%.1f%% of the median response); "
              "cached lookups are free\n",
              cold_dns, 100.0 * cold_dns / med_overall);
  std::printf("footnote 1 %s: resolution is negligible relative to the "
              "response time\n",
              cold_dns < 0.2 * med_overall ? "HOLDS" : "VIOLATED");
  return 0;
}
