// perf_smoke — machine-readable performance trajectory for the repo.
//
// Times the simulator's hot paths (event kernel, cancel churn, timer-churn
// wheel workload, link batch delivery, TCP bulk transfer, scattered-send
// gather) and the sharded experiment engine (queries/sec, thread-scaling
// curve) and writes everything as JSON so each future PR can diff perf
// against its predecessor:
//
//   ./perf_smoke [output.json]          quick mode (CI: the bench-smoke
//                                       ctest target runs this)
//   DYNCDN_FULL=1 ./perf_smoke          paper-scale sizes
//   DYNCDN_BENCH_JSON=path ./perf_smoke write to `path`
//   --trace-out=FILE                    Chrome trace of the serial campaign
//   --metrics-out=FILE                  Prometheus dump of its registry
//
// JSON schema: {"mode", "threads_available", "event_kernel": {...
// events_per_sec}, "cancel_churn": {...}, "timer_churn": {...},
// "link_batch": {...}, "tcp_bulk": {...}, "gather_fastpath": {...},
// "obs_overhead": {...}, "telemetry": {ts_interval_ms, ticks, plain_ms,
// sampled_ms, telemetry_overhead_pct, "attribution": {queries,
// reconcile_failures, skipped, "components": {name: {count, mean, p50,
// p99, p999, min, max}}}}, "memory": {"peak_rss_bytes", "capture": {...},
// "stream": {...}, "allocs_per_query", "stream_reduction_pct"},
// "spill": {records, text_bytes, dtrc_bytes, spill_compression_x,
// encode_wall_ms, bytes_per_sec, budget_bytes, spill_blocks,
// spill_bytes_written, plain_ms, budgeted_ms, spill_overhead_pct}
// (durable-trace pipeline: .dtrc size vs the text format on the same
// headers-only captures — gated >=4x — plus the budgeted-capture
// campaign's spill overhead, ceiling-gated like telemetry),
// "experiment": {"queries",
// "serial_wall_ms", "queries_per_sec_best", "thread_scaling": [{threads,
// threads_available, oversubscribed, wall_ms, queries_per_sec,
// speedup_vs_1, shards, barrier_stalls, cross_shard_packets}],
// "scenario_scaling": [{shards, oversubscribed, wall_ms, queries_per_sec,
// speedup_vs_1, windows, barrier_stalls, cross_shard_packets}] (one
// scenario partitioned across shard kernels — conservative parallel DES;
// results are byte-identical at every shard count), "metrics": {...}}.
// A copy also lands at <repo-root>/BENCH_latest.json (gitignored) so the
// latest numbers are always one `cat` away. See docs/PERF.md; the
// bench_diff ctest target gates these numbers against
// bench/BASELINE_quick.json via tools/bench_diff.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "capture/serialize.hpp"
#include "capture/spill.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "obs/export_chrome.hpp"
#include "obs/export_prometheus.hpp"
#include "obs/memory.hpp"
#include "obs/obs.hpp"
#include "parallel/pdes.hpp"
#include "parallel/replica.hpp"
#include "search/keywords.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"
#include "testbed/parallel_experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;
using namespace dyncdn::sim::literals;

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Rate {
  double wall_ms = 0;
  double per_sec = 0;
  std::uint64_t items = 0;
};

/// Schedule-and-fire throughput of the event kernel.
Rate bench_event_kernel(std::uint64_t events) {
  const auto start = std::chrono::steady_clock::now();
  sim::EventQueue q;
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i < events; ++i) {
    q.schedule(sim::SimTime::microseconds(static_cast<std::int64_t>(i % 997)),
               [&sum, i] { sum += i; });
  }
  while (!q.empty()) q.pop_and_run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = events + (sum & 1);  // keep `sum` observable
  r.per_sec = static_cast<double>(events) / (r.wall_ms / 1000.0);
  return r;
}

/// TCP-RTO-style churn: every event is cancelled and re-armed.
Rate bench_cancel_churn(std::uint64_t rearms) {
  const auto start = std::chrono::steady_clock::now();
  sim::EventQueue q;
  sim::EventId pending;
  for (std::uint64_t i = 0; i < rearms; ++i) {
    if (pending.valid()) q.cancel(pending);
    pending = q.schedule(
        sim::SimTime::microseconds(static_cast<std::int64_t>(1000 + i)),
        [] {});
  }
  while (!q.empty()) q.pop_and_run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = rearms;
  r.per_sec = static_cast<double>(rearms) / (r.wall_ms / 1000.0);
  return r;
}

/// The cancel-churn-heavy *population* profile: thousands of concurrent
/// far-future RTO-style timers, re-armed round-robin (flows ACK in turn,
/// each re-arming its retransmit timer) 200ms..3s out while the simulated
/// clock creeps forward through interleaved near-term events. This is the
/// workload the hierarchical timing wheel targets: with a global binary
/// heap every re-arm pays an O(log n) sift through the whole timer
/// population plus dead-entry compaction; wheel entries die in place.
Rate bench_timer_churn(std::size_t timers, std::uint64_t rearms) {
  const auto start = std::chrono::steady_clock::now();
  sim::EventQueue q;
  std::uint64_t fired = 0;
  // Deterministic xorshift so baseline and optimized runs see the same
  // schedule pattern.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  const auto rnd = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  sim::SimTime now = sim::SimTime::zero();
  const auto rto_delay = [&rnd]() {
    return sim::SimTime::milliseconds(
        200 + static_cast<std::int64_t>(rnd() % 2800));
  };
  std::vector<sim::EventId> ids(timers);
  for (std::size_t i = 0; i < timers; ++i) {
    ids[i] = q.schedule(now + rto_delay(), [&fired] { ++fired; });
  }
  std::uint64_t pops = 0;
  for (std::uint64_t i = 0; i < rearms; ++i) {
    // ACK-burst re-arm: a flow receiving a window of ACKs re-arms its own
    // RTO several times in a row before the next flow's burst arrives.
    const std::size_t pick = static_cast<std::size_t>((i / 16) % timers);
    q.cancel(ids[pick]);
    ids[pick] = q.schedule(now + rto_delay(), [&fired] { ++fired; });
    if ((i & 255u) == 0) {
      // An ACK-like near-term event arrives and advances the clock; the
      // RTO population stays far in the future.
      q.schedule(now + 50_us, [&fired] { ++fired; });
      now = q.pop_and_run();
      ++pops;
    }
  }
  while (!q.empty()) {
    q.pop_and_run();
    ++pops;
  }
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = rearms + pops + (fired & 1);
  r.per_sec = static_cast<double>(r.items) / (r.wall_ms / 1000.0);
  return r;
}

/// Link-layer delivery throughput: bursts of MSS-sized packets through one
/// Link into a counting sink. Contiguous arrivals on a FIFO link are the
/// packet-train case link event coalescing batches into single deliveries.
Rate bench_link_batch(std::size_t packets) {
  const auto start = std::chrono::steady_clock::now();
  sim::Simulator simulator(7);
  net::LinkConfig cfg;
  cfg.propagation_delay = 10_ms;
  cfg.bandwidth_bps = 1e9;
  cfg.queue_capacity = 1u << 20;
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  net::Link link(
      simulator, cfg,
      [&delivered, &bytes](net::PacketPtr p) {
        ++delivered;
        bytes += p->wire_size();
      },
      "bench/link-batch");
  const std::size_t kBurst = 64;
  auto payload = net::make_buffer(std::vector<std::uint8_t>(1448, 0xAB));
  const std::size_t bursts = (packets + kBurst - 1) / kBurst;
  std::size_t remaining = packets;
  for (std::size_t b = 0; b < bursts; ++b) {
    const std::size_t n = std::min(kBurst, remaining);
    remaining -= n;
    simulator.schedule_at(
        sim::SimTime::milliseconds(static_cast<std::int64_t>(b)),
        [&link, payload, n]() {
          for (std::size_t i = 0; i < n; ++i) {
            auto p = net::acquire_packet();
            p->payload = net::PayloadRef{payload, 0, payload->size()};
            link.transmit(std::move(p));
          }
        });
  }
  simulator.run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = delivered;
  r.per_sec = static_cast<double>(delivered) / (r.wall_ms / 1000.0);
  if (delivered != packets) {
    std::fprintf(stderr, "perf_smoke: link batch lost packets (%llu/%zu)\n",
                 static_cast<unsigned long long>(delivered), packets);
    std::exit(1);
  }
  return r;
}

/// Full-stack segment throughput: one bulk TCP transfer end to end. When
/// `attach_disabled_trace`, a TraceSession is attached to the simulator
/// but runtime-disabled — the configuration whose cost the zero-overhead
/// policy bounds (docs/OBSERVABILITY.md): every instrumentation site
/// reduces to one pointer load + test. `chunk_bytes` > 0 feeds the send
/// buffer in chunks of that size instead of one write, so MSS segments
/// span application writes — the scattered-send gather path.
Rate bench_tcp_bulk(std::size_t bytes, bool attach_disabled_trace = false,
                    std::size_t chunk_bytes = 0) {
  const auto start = std::chrono::steady_clock::now();
  sim::Simulator simulator(1);
  obs::TraceSession disabled_trace;
  if (attach_disabled_trace) {
    disabled_trace.set_enabled(false);
    simulator.set_trace(&disabled_trace);
  }
  net::Network network(simulator);
  net::Node& a = network.add_node("a");
  net::Node& b = network.add_node("b");
  net::LinkConfig cfg;
  cfg.propagation_delay = 10_ms;
  cfg.bandwidth_bps = 1e9;
  network.connect(a, b, cfg);
  tcp::TcpStack sa(a), sb(b);
  std::size_t received = 0;
  sb.listen(80, [&received](tcp::TcpSocket& s) {
    tcp::TcpSocket::Callbacks cb;
    cb.on_data = [&received](net::PayloadRef d) { received += d.length; };
    s.set_callbacks(std::move(cb));
  });
  tcp::TcpSocket& c = sa.connect({b.id(), 80}, {});
  auto buf = net::make_buffer(std::vector<std::uint8_t>(bytes, 0x55));
  if (chunk_bytes == 0) {
    c.send(net::PayloadRef{buf, 0, bytes});
  } else {
    for (std::size_t off = 0; off < bytes; off += chunk_bytes) {
      c.send(net::PayloadRef{buf, off, std::min(chunk_bytes, bytes - off)});
    }
  }
  c.close();
  simulator.run();
  Rate r;
  r.wall_ms = wall_ms_since(start);
  r.items = simulator.events_executed();
  r.per_sec = static_cast<double>(r.items) / (r.wall_ms / 1000.0);
  if (received != bytes) {
    std::fprintf(stderr, "perf_smoke: tcp transfer incomplete (%zu/%zu)\n",
                 received, bytes);
    std::exit(1);
  }
  return r;
}

struct ScalePoint {
  std::size_t threads = 0;
  double wall_ms = 0;
  double queries_per_sec = 0;
  bool oversubscribed = false;  // threads > cores: wall time is noise
  // Conservative-DES view of the same run, from the merged kernel metrics
  // (all replicas serial unless the scenario requests sim_shards > 1).
  std::size_t shards = 1;
  std::uint64_t barrier_stalls = 0;
  std::uint64_t cross_shard_packets = 0;
};

/// One scenario_scaling row: the identical campaign with the single
/// scenario partitioned across `shards` kernels.
struct ShardScalePoint {
  std::size_t shards = 0;
  double wall_ms = 0;
  double queries_per_sec = 0;
  std::uint64_t windows = 0;
  std::uint64_t barrier_stalls = 0;
  std::uint64_t cross_shard_packets = 0;
  bool oversubscribed = false;  // shards > cores: wall time is noise
};

/// One serial quick campaign in the given analysis mode, with the
/// allocation tracker's high-water mark rebased first so the phase's peak
/// is isolated (process RSS is monotonic and useless for an in-process
/// A/B). Returns tracked + deterministic byte accounting.
struct MemoryPhase {
  std::uint64_t peak_live_delta_bytes = 0;  // tracker, whole phase
  std::uint64_t allocations = 0;            // tracker, whole phase
  std::int64_t retained_bytes_peak = 0;     // deterministic capture gauge
  std::int64_t analyzer_bytes_peak = 0;     // deterministic streaming gauge
  std::uint64_t timelines_online = 0;
  std::uint64_t late_packets = 0;
};

/// One serial campaign with the 100ms sim-time sampler on or off, timing
/// ONLY the measurement run: scenario construction and warm-up stay
/// outside the clock, since they are identical on both sides and their
/// allocation noise would drown the per-tick sampling cost the telemetry
/// overhead gate compares.
double bench_campaign_wall_ms(const testbed::ScenarioOptions& base,
                              const testbed::ExperimentOptions& eo,
                              bool sampled) {
  testbed::ScenarioOptions so = base;
  so.enable_tracing = false;
  so.ts_interval =
      sampled ? sim::SimTime::milliseconds(100) : sim::SimTime::zero();
  testbed::Scenario sc(so);
  sc.warm_up();
  const auto start = std::chrono::steady_clock::now();
  testbed::run_fixed_fe_experiment(sc, 0, eo);
  return wall_ms_since(start);
}

MemoryPhase bench_campaign_memory(const testbed::ScenarioOptions& base,
                                  const testbed::ExperimentOptions& eo,
                                  bool streaming) {
  testbed::ScenarioOptions so = base;
  so.stream_analysis = streaming;
  so.enable_tracing = false;

  obs::reset_peak_live_bytes();
  const obs::MemorySnapshot before = obs::memory_snapshot();
  obs::MetricsRegistry mem;
  {
    testbed::Scenario scenario(so);
    scenario.warm_up();
    testbed::run_fixed_fe_experiment(scenario, 0, eo);
    scenario.collect_memory_metrics(mem);
  }
  const obs::MemorySnapshot after = obs::memory_snapshot();

  MemoryPhase phase;
  if (obs::memory_tracking_enabled()) {
    phase.peak_live_delta_bytes = after.peak_live_bytes - before.live_bytes;
    phase.allocations = after.allocations - before.allocations;
  }
  for (const auto& [name, value] : mem.gauges()) {
    if (name == "capture_retained_bytes_peak") phase.retained_bytes_peak = value;
    if (name == "analyzer_live_bytes_peak") phase.analyzer_bytes_peak = value;
  }
  for (const auto& [name, value] : mem.counters()) {
    if (name == "stream_timelines_online") phase.timelines_online = value;
    if (name == "stream_late_packets") phase.late_packets = value;
  }
  return phase;
}

/// Durable-trace pipeline costs: how compact the block-columnar .dtrc
/// encoding is versus the text format, and how fast it encodes.
struct SpillPhase {
  std::uint64_t records = 0;
  std::uint64_t text_bytes = 0;  // headers-only text serialization
  std::uint64_t dtrc_bytes = 0;  // same captures as .dtrc files
  double compression_x = 0;      // text_bytes / dtrc_bytes
  double encode_wall_ms = 0;     // one encode pass over every capture
  double bytes_per_sec = 0;      // logical (text) bytes encoded per second
};

/// Runs the quick campaign in full-capture mode with queries driven by
/// hand — run_fixed_fe_experiment clears each recorder after analysis, so
/// the capture would be gone before it could be serialized — then encodes
/// every client capture both ways. Sizes are deterministic (the campaign
/// is); only encode_wall_ms varies, measured best-of over `passes` with
/// `iters` encodes per pass to stretch the sample past timer resolution.
SpillPhase bench_spill_encode(const testbed::ScenarioOptions& base,
                              int passes, int iters) {
  namespace fs = std::filesystem;
  testbed::ScenarioOptions so = base;
  so.stream_analysis = false;  // retain packets
  so.enable_tracing = false;
  so.ts_interval = sim::SimTime::zero();
  testbed::Scenario sc(so);
  sc.warm_up();
  const net::Endpoint fe = sc.fe_endpoint(0);
  const search::KeywordCatalog catalog(5);
  const auto keywords = catalog.distinct_corpus(4);
  for (std::size_t i = 0; i < sc.clients().size(); ++i) {
    sc.connect_client_to_fe(i, 0);
  }
  for (std::size_t i = 0; i < sc.clients().size(); ++i) {
    auto& client = sc.clients()[i];
    sim::SimTime at = sim::SimTime::milliseconds(
        static_cast<std::int64_t>(100 * i));
    for (const search::Keyword& kw : keywords) {
      client.node->simulator().schedule_in(at, [&client, fe, kw]() {
        client.query_client->submit(fe, kw, [](const cdn::QueryResult&) {});
      });
      at = at + sim::SimTime::milliseconds(1500);
    }
  }
  sc.run();

  SpillPhase phase;
  const fs::path dir = fs::temp_directory_path() / "dyncdn-bench-spill";
  fs::create_directories(dir);
  std::vector<const capture::PacketTrace*> traces;
  for (const auto& client : sc.clients()) {
    const capture::PacketTrace& trace = client.recorder->trace();
    traces.push_back(&trace);
    phase.records += trace.size();
    phase.text_bytes +=
        capture::serialize_trace(trace, /*with_payloads=*/false).size();
  }
  const fs::path scratch = dir / "capture.dtrc";
  for (int pass = 0; pass < passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      for (const capture::PacketTrace* trace : traces) {
        capture::save_trace_dtrc(*trace, scratch.string());
      }
    }
    const double ms = wall_ms_since(start) / iters;
    if (pass == 0 || ms < phase.encode_wall_ms) phase.encode_wall_ms = ms;
  }
  int ci = 0;
  for (const capture::PacketTrace* trace : traces) {
    const fs::path per = dir / ("capture-" + std::to_string(ci++) + ".dtrc");
    capture::save_trace_dtrc(*trace, per.string());
    phase.dtrc_bytes += fs::file_size(per);
  }
  fs::remove_all(dir);
  phase.compression_x =
      phase.dtrc_bytes > 0 ? static_cast<double>(phase.text_bytes) /
                                 static_cast<double>(phase.dtrc_bytes)
                           : 0.0;
  phase.bytes_per_sec = static_cast<double>(phase.text_bytes) /
                        (phase.encode_wall_ms / 1000.0);
  return phase;
}

/// One full-capture campaign with the given spill budget (0 = spilling
/// off), timing only the measurement run — the telemetry-gate discipline.
/// Returns the wall time plus the run's spill counters so the caller can
/// assert the budgeted side actually spilled mid-campaign.
struct SpillCampaignRun {
  double wall_ms = 0;
  std::uint64_t spill_blocks = 0;
  std::uint64_t spill_bytes = 0;
};

SpillCampaignRun bench_spill_campaign(const testbed::ScenarioOptions& base,
                                      const testbed::ExperimentOptions& eo,
                                      std::size_t budget) {
  testbed::ScenarioOptions so = base;
  so.stream_analysis = false;  // spilling rides on packet retention
  so.enable_tracing = false;
  so.ts_interval = sim::SimTime::zero();
  so.capture_budget = budget;
  testbed::Scenario sc(so);
  sc.warm_up();
  const auto start = std::chrono::steady_clock::now();
  const testbed::ExperimentResult result =
      testbed::run_fixed_fe_experiment(sc, 0, eo);
  SpillCampaignRun run;
  run.wall_ms = wall_ms_since(start);
  run.spill_blocks = result.metrics.counter("spill_blocks");
  run.spill_bytes = result.metrics.counter("spill_bytes_written");
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_scale();
  const std::uint64_t kernel_events = full ? 4'000'000 : 400'000;
  const std::uint64_t churn_rearms = full ? 2'000'000 : 200'000;
  // Production-scale RTO population: hundreds of thousands of concurrent
  // connections, each with one pending retransmission timer. At this size
  // the final drain dominates a global binary heap (deep sift-downs over
  // cold memory) while the timing wheel flushes buckets in near order.
  const std::size_t churn_timers = 262144;
  const std::uint64_t timer_churn_rearms = full ? 2'000'000 : 400'000;
  const std::size_t batch_packets = full ? 400'000 : 100'000;
  const std::size_t tcp_bytes = full ? 4'000'000 : 1'000'000;
  const std::size_t gather_bytes = full ? 2'000'000 : 1'000'000;
  const std::size_t gather_chunk = 256;
  const std::size_t clients = full ? 24 : 8;
  const std::size_t reps = full ? 10 : 4;

  std::string out_path = "BENCH.json";
  std::string trace_out, metrics_out;
  if (const char* env = std::getenv("DYNCDN_BENCH_JSON")) out_path = env;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--trace-out=")) {
      trace_out = arg.substr(12);
    } else if (arg.starts_with("--metrics-out=")) {
      metrics_out = arg.substr(14);
    } else {
      out_path = argv[i];
    }
  }

  bench::banner("perf_smoke — hot-path micro-benchmarks",
                std::string("mode: ") + (full ? "full" : "quick") +
                    ", output: " + out_path);

  // Every gated section reports best-of-3 in quick mode: single-pass
  // numbers on a shared CI box swing ±15% with whatever ran a moment ago,
  // which is wider than the 10% gate. Best-of converges on the machine's
  // actual capability, so baseline and candidate meet on stable ground.
  // Full-mode sections run long enough to be stable single-pass.
  const int section_passes = full ? 1 : 3;
  const auto best_of = [section_passes](auto&& fn) {
    Rate best = fn();
    for (int i = 1; i < section_passes; ++i) {
      const Rate r = fn();
      if (r.wall_ms < best.wall_ms) best = r;
    }
    return best;
  };

  const Rate kernel = best_of([&] { return bench_event_kernel(kernel_events); });
  std::printf("event kernel:   %10.0f events/sec (%.1f ms)\n", kernel.per_sec,
              kernel.wall_ms);
  const Rate churn = best_of([&] { return bench_cancel_churn(churn_rearms); });
  std::printf("cancel churn:   %10.0f re-arms/sec (%.1f ms)\n", churn.per_sec,
              churn.wall_ms);
  const Rate timer_churn = best_of(
      [&] { return bench_timer_churn(churn_timers, timer_churn_rearms); });
  std::printf("timer churn:    %10.0f events/sec (%.1f ms, %zu live timers)\n",
              timer_churn.per_sec, timer_churn.wall_ms, churn_timers);
  const Rate link_batch = best_of([&] { return bench_link_batch(batch_packets); });
  std::printf("link batch:     %10.0f packets/sec (%.1f ms)\n",
              link_batch.per_sec, link_batch.wall_ms);
  const Rate tcp = best_of([&] { return bench_tcp_bulk(tcp_bytes); });
  std::printf("tcp bulk:       %10.0f bytes/sec (%.1f ms, %llu events)\n",
              static_cast<double>(tcp_bytes) / (tcp.wall_ms / 1000.0),
              tcp.wall_ms, static_cast<unsigned long long>(tcp.items));
  const Rate gather =
      best_of([&] { return bench_tcp_bulk(gather_bytes, false, gather_chunk); });
  const double gather_bytes_per_sec =
      static_cast<double>(gather_bytes) / (gather.wall_ms / 1000.0);
  std::printf("gather fast:    %10.0f bytes/sec (%.1f ms, %zuB chunks)\n",
              gather_bytes_per_sec, gather.wall_ms, gather_chunk);

  // Zero-overhead policy check: the same transfer with a runtime-disabled
  // TraceSession attached. Interleaved best-of-5 *pairs* after a shared
  // warm-up pair, so allocator/cache warm-up and CPU-frequency drift hit
  // both sides equally — a one-sided ordering here once produced a
  // nonsensical negative overhead. The transfer is deliberately larger
  // than the throughput bench: sub-millisecond samples put timer
  // resolution in the same order as the effect being measured. The 1%
  // target (docs/OBSERVABILITY.md) is reported, but only a gross
  // regression (>10%) fails the bench — wall-clock noise on shared CI
  // machines exceeds 1% routinely.
  const std::size_t obs_bytes = full ? 8'000'000 : 4'000'000;
  double plain_ms = 1e300, traced_ms = 1e300;
  bench_tcp_bulk(obs_bytes, false);  // warm-up pair, discarded
  bench_tcp_bulk(obs_bytes, true);
  for (int i = 0; i < 5; ++i) {
    plain_ms = std::min(plain_ms, bench_tcp_bulk(obs_bytes, false).wall_ms);
    traced_ms = std::min(traced_ms, bench_tcp_bulk(obs_bytes, true).wall_ms);
  }
  const double overhead_pct = (traced_ms - plain_ms) / plain_ms * 100.0;
  std::printf("obs overhead:   %+10.2f %% (tracing attached but disabled; "
              "target <1%%)\n",
              overhead_pct);
  if (overhead_pct > 1.0) {
    std::fprintf(stderr,
                 "perf_smoke: warning: disabled-tracing overhead %.2f%% "
                 "exceeds the 1%% target\n",
                 overhead_pct);
  }
  if (overhead_pct > 10.0) {
    std::fprintf(stderr,
                 "perf_smoke: disabled-tracing overhead %.2f%% exceeds the "
                 "10%% hard limit\n",
                 overhead_pct);
    return 1;
  }

  // Experiment engine: a fixed-FE campaign sharded one-replica-per-vantage-
  // point over the work-stealing executor; wall time per thread count gives
  // the scaling curve. Runs the streaming (online-analysis) pipeline — the
  // product default; results are byte-identical to capture mode.
  testbed::ScenarioOptions scenario;
  scenario.profile = cdn::google_like_profile();
  scenario.client_count = clients;
  scenario.seed = 4242;
  scenario.stream_analysis = true;
  scenario.enable_tracing = !trace_out.empty();
  testbed::ExperimentOptions eo;
  eo.reps_per_node = reps;
  eo.interval = 900_ms;
  search::KeywordCatalog catalog(5);
  eo.keywords = {catalog.figure3_keywords().front()};

  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  // Quick mode always records {1, 2, 4} so BENCH.json captures the
  // parallel-engine trend across PRs even on small CI boxes (replicas are
  // independent; oversubscribing cores is harmless and still
  // deterministic). Oversubscribed rows (threads > cores) are flagged and
  // excluded from the gated queries_per_sec_best — on a 1-core runner the
  // 2- and 4-thread rows measure context-switch overhead, not the
  // scheduler, and once read as 0.85x "regressions". Full mode
  // additionally climbs to 8 when cores allow.
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (full && hw >= 8) thread_counts.push_back(8);

  std::vector<ScalePoint> scaling;
  std::size_t queries = 0;
  obs::MetricsRegistry campaign_metrics;
  // Quick campaigns finish in tens of milliseconds, so a single pass is
  // at the mercy of whatever the machine was doing a moment ago (the gate
  // once tripped at -17% right after a 500-test ctest sweep). Best-of-3
  // like obs_overhead: the run is deterministic, only the clock varies.
  const int passes = full ? 1 : 3;
  for (const std::size_t threads : thread_counts) {
    testbed::ReplicaPlan plan;  // default: one shard per vantage point
    plan.executor.threads = threads;
    ScalePoint p;
    p.threads = threads;
    p.wall_ms = 0;
    testbed::ExperimentResult result;
    for (int pass = 0; pass < passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      result = testbed::run_fixed_fe_experiment(scenario, 0, eo, plan);
      const double ms = wall_ms_since(start);
      if (pass == 0 || ms < p.wall_ms) p.wall_ms = ms;
    }
    p.oversubscribed = threads > hw;
    queries = result.all().size();
    p.queries_per_sec = static_cast<double>(queries) / (p.wall_ms / 1000.0);
    p.shards = static_cast<std::size_t>(
        std::max<std::int64_t>(1, result.kernel_metrics.gauge("pdes_shards")));
    p.barrier_stalls = result.kernel_metrics.counter("pdes_barrier_stalls");
    p.cross_shard_packets =
        result.kernel_metrics.counter("pdes_cross_shard_packets");
    scaling.push_back(p);
    std::printf("experiment:     %zu threads -> %8.1f ms (%zu queries, "
                "%.0f queries/sec)%s\n",
                threads, p.wall_ms, queries, p.queries_per_sec,
                p.oversubscribed ? " [oversubscribed]" : "");
    if (threads == thread_counts.front()) {
      // Snapshot from the serial run; merged registries are bit-identical
      // at every thread count anyway (tests/parallel_test.cpp proves it).
      campaign_metrics = result.metrics;
      if (!trace_out.empty() && result.trace) {
        obs::write_chrome_trace(*result.trace, trace_out);
        std::printf("[chrome trace written: %s]\n", trace_out.c_str());
      }
    }
  }
  if (!metrics_out.empty()) {
    obs::write_prometheus(campaign_metrics, metrics_out);
    std::printf("[metrics written: %s]\n", metrics_out.c_str());
  }

  // Conservative parallel DES inside ONE scenario: the same fixed-FE
  // campaign with the scenario's vantage points and FE attachments
  // partitioned across shard kernels. Results are byte-identical at every
  // shard count (tests/pdes_test.cpp), so rows differ only in wall time
  // and barrier behaviour. Scenario construction + warm-up is inside the
  // timed region: that is the cost a caller actually pays per shard count.
  std::vector<ShardScalePoint> shard_scaling;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    testbed::ScenarioOptions so = scenario;
    so.sim_shards = shards;
    so.enable_tracing = false;
    ShardScalePoint p;
    p.shards = shards;
    p.oversubscribed = shards > hw;
    std::size_t row_queries = 0;
    for (int pass = 0; pass < passes; ++pass) {
      const auto start = std::chrono::steady_clock::now();
      testbed::Scenario sc(so);
      sc.warm_up();
      const testbed::ExperimentResult result =
          testbed::run_fixed_fe_experiment(sc, 0, eo);
      const double ms = wall_ms_since(start);
      if (pass == 0 || ms < p.wall_ms) p.wall_ms = ms;
      // Barrier stats are deterministic — identical on every pass.
      const parallel::ShardRunnerStats& st = sc.shard_stats();
      p.windows = st.windows;
      p.barrier_stalls = st.barrier_stalls;
      p.cross_shard_packets = st.cross_shard_packets;
      row_queries = result.all().size();
    }
    p.queries_per_sec =
        static_cast<double>(row_queries) / (p.wall_ms / 1000.0);
    shard_scaling.push_back(p);
    std::printf("scenario shard: %zu shards  -> %8.1f ms (%llu windows, "
                "%llu stalls, %llu cross-shard pkts)%s\n",
                shards, p.wall_ms,
                static_cast<unsigned long long>(p.windows),
                static_cast<unsigned long long>(p.barrier_stalls),
                static_cast<unsigned long long>(p.cross_shard_packets),
                p.oversubscribed ? " [oversubscribed]" : "");
  }

  // Time-resolved telemetry cost: the same serial campaign with the 100ms
  // sim-time sampler on versus off, measured with the obs_overhead
  // discipline (interleaved warm-up pair, then interleaved best-of pairs,
  // so allocator warm-up and CPU-frequency drift hit both sides equally).
  // The quick campaign runs in single-digit milliseconds, so the rep count
  // is raised to stretch each timed sample well past timer resolution —
  // the same reasoning as obs_overhead's enlarged transfer. The <1%
  // observability target is reported; as with obs_overhead only a gross
  // regression (>10%) fails — CI wall-clock noise exceeds 1%.
  testbed::ExperimentOptions telem_eo = eo;
  telem_eo.reps_per_node = full ? reps : reps * 20;
  const int telem_pairs = full ? 1 : 5;
  double telem_plain_ms = 1e300, telem_sampled_ms = 1e300;
  bench_campaign_wall_ms(scenario, telem_eo, false);  // warm-up, discarded
  bench_campaign_wall_ms(scenario, telem_eo, true);
  for (int i = 0; i < telem_pairs; ++i) {
    telem_plain_ms = std::min(telem_plain_ms,
                              bench_campaign_wall_ms(scenario, telem_eo, false));
    telem_sampled_ms = std::min(
        telem_sampled_ms, bench_campaign_wall_ms(scenario, telem_eo, true));
  }
  const double telemetry_overhead_pct =
      (telem_sampled_ms - telem_plain_ms) / telem_plain_ms * 100.0;
  std::printf("telemetry:      %+10.2f %% (100ms sim-time sampler; "
              "target <1%%)\n",
              telemetry_overhead_pct);
  if (telemetry_overhead_pct > 1.0) {
    std::fprintf(stderr,
                 "perf_smoke: warning: time-series sampling overhead %.2f%% "
                 "exceeds the 1%% target\n",
                 telemetry_overhead_pct);
  }
  if (telemetry_overhead_pct > 10.0) {
    std::fprintf(stderr,
                 "perf_smoke: time-series sampling overhead %.2f%% exceeds "
                 "the 10%% hard limit\n",
                 telemetry_overhead_pct);
    return 1;
  }

  // Attribution reducer over a traced run of the same campaign: the
  // per-component percentiles land in BENCH.json, and any query that
  // violates the exact telescoping identity (components sum != T_dynamic
  // in integer nanoseconds) fails the bench outright — the values are
  // sim-time derived and deterministic, so a failure is a real bug, not
  // noise.
  testbed::ScenarioOptions attr_so = scenario;
  attr_so.enable_tracing = true;
  attr_so.ts_interval = sim::SimTime::milliseconds(100);
  testbed::Scenario attr_sc(attr_so);
  attr_sc.warm_up();
  const testbed::ExperimentResult attr_result =
      testbed::run_fixed_fe_experiment(attr_sc, 0, eo);
  const obs::QueryAttribution& attr = attr_result.attribution;
  {
    const obs::Histogram* td =
        attr.registry().histogram("attr_t_dynamic_ms");
    std::printf("attribution:    %llu queries (%llu skipped, %zu ts ticks), "
                "t_dynamic p50 %.2f ms p99 %.2f ms\n",
                static_cast<unsigned long long>(attr.queries()),
                static_cast<unsigned long long>(attr.skipped()),
                attr_result.timeseries.sample_count(),
                td != nullptr ? td->quantile(0.50) : 0.0,
                td != nullptr ? td->quantile(0.99) : 0.0);
  }
  if (attr.reconcile_failures() > 0) {
    std::fprintf(stderr,
                 "perf_smoke: %llu queries failed attribution "
                 "reconciliation (component sums != T_dynamic)\n",
                 static_cast<unsigned long long>(attr.reconcile_failures()));
    return 1;
  }
#if DYNCDN_OBS
  // With observability compiled in, the traced campaign must decompose
  // every analyzed query; silently attributing zero queries would make
  // the reconciliation gate vacuous.
  if (attr.queries() == 0) {
    std::fprintf(stderr, "perf_smoke: attribution decomposed 0 queries\n");
    return 1;
  }
#endif

  // queries_per_sec at the best *measured* (non-oversubscribed) thread
  // count — the scalar bench_diff gates. Oversubscribed rows stay in the
  // JSON for the trend but never gate.
  double qps_best = 0;
  std::size_t qps_best_threads = 1;
  for (const ScalePoint& p : scaling) {
    if (!p.oversubscribed && p.queries_per_sec > qps_best) {
      qps_best = p.queries_per_sec;
      qps_best_threads = p.threads;
    }
  }

  // Memory A/B: the same serial quick campaign with streaming analysis
  // versus full capture retention. Streaming runs first so the capture
  // run's larger footprint cannot pre-warm the allocator in its favor.
  const MemoryPhase mem_stream = bench_campaign_memory(scenario, eo, true);
  const MemoryPhase mem_capture = bench_campaign_memory(scenario, eo, false);
  // Gated reduction: deterministic byte accounting of what each pipeline
  // holds at its peak (capture: retained PacketRecords + payloads;
  // streaming: per-flow analyzer state). Allocator/thread-count
  // independent, so it gates cleanly; the tracked allocator delta is
  // reported alongside as the whole-process view.
  const double stream_reduction_pct =
      mem_capture.retained_bytes_peak > 0
          ? (1.0 - static_cast<double>(mem_stream.analyzer_bytes_peak) /
                       static_cast<double>(mem_capture.retained_bytes_peak)) *
                100.0
          : 0.0;
  const double tracked_reduction_pct =
      mem_capture.peak_live_delta_bytes > 0
          ? (1.0 - static_cast<double>(mem_stream.peak_live_delta_bytes) /
                       static_cast<double>(mem_capture.peak_live_delta_bytes)) *
                100.0
          : 0.0;
  // Heap-allocation intensity of the default (streaming) pipeline. The
  // campaign is deterministic, so under DYNCDN_MEM_TRACK=1 this count is
  // exactly reproducible and bench_diff gates it as lower-is-better; with
  // tracking off it reports 0 and never gates.
  const double allocs_per_query =
      queries > 0
          ? static_cast<double>(mem_stream.allocations) /
                static_cast<double>(queries)
          : 0.0;
  std::printf("memory:         capture %.1f KB peak vs stream %.1f KB peak "
              "(%.1f%% lower; tracked delta %.1f%%)\n",
              static_cast<double>(mem_capture.retained_bytes_peak) / 1024.0,
              static_cast<double>(mem_stream.analyzer_bytes_peak) / 1024.0,
              stream_reduction_pct, tracked_reduction_pct);
  if (obs::memory_tracking_enabled()) {
    std::printf("allocations:    %10.1f allocs/query (%llu allocs, "
                "%zu queries, streaming pipeline)\n",
                allocs_per_query,
                static_cast<unsigned long long>(mem_stream.allocations),
                queries);
  }
  if (mem_stream.late_packets != 0) {
    std::fprintf(stderr,
                 "perf_smoke: streaming analyzer saw %llu late packets "
                 "(stream/capture results may diverge)\n",
                 static_cast<unsigned long long>(mem_stream.late_packets));
    return 1;
  }

  // Durable traces: the block-columnar .dtrc encoding versus the text
  // serialization of the same headers-only quick-campaign captures. Both
  // sizes are deterministic, so the >=4x ratio is a hard gate, not a
  // noise-tolerant one; encode throughput is reported best-of like every
  // other timed section.
  const SpillPhase spill = bench_spill_encode(
      scenario, section_passes, full ? 4 : 16);
  std::printf("spill encode:   %10.0f bytes/sec (%.2f ms, %llu records, "
              "%.1f KB text -> %.1f KB dtrc, %.1fx)\n",
              spill.bytes_per_sec, spill.encode_wall_ms,
              static_cast<unsigned long long>(spill.records),
              static_cast<double>(spill.text_bytes) / 1024.0,
              static_cast<double>(spill.dtrc_bytes) / 1024.0,
              spill.compression_x);
  if (spill.compression_x < 4.0) {
    std::fprintf(stderr,
                 "perf_smoke: .dtrc compression %.2fx is below the 4x "
                 "floor (text %llu bytes, dtrc %llu bytes)\n",
                 spill.compression_x,
                 static_cast<unsigned long long>(spill.text_bytes),
                 static_cast<unsigned long long>(spill.dtrc_bytes));
    return 1;
  }

  // Spill overhead: the full-capture campaign with the budget forced low
  // enough that every client spills mid-run, against the identical
  // campaign with spilling off. Measured with the telemetry-gate
  // discipline (interleaved warm-up pair, then interleaved best-of pairs;
  // raised rep count so each sample clears timer resolution). <1% is the
  // target; the hard limit is 20% rather than the in-memory sections'
  // 10% because spilling does real disk I/O — its wall-clock share swings
  // much more under concurrent CI load (typical idle readings are 3-5%).
  const std::size_t spill_budget = 64u << 10;
  double spill_plain_ms = 1e300, spill_budgeted_ms = 1e300;
  bench_spill_campaign(scenario, telem_eo, 0);  // warm-up pair, discarded
  const SpillCampaignRun spill_probe =
      bench_spill_campaign(scenario, telem_eo, spill_budget);
  if (spill_probe.spill_blocks == 0) {
    std::fprintf(stderr,
                 "perf_smoke: %zu-byte budget produced no spills — the "
                 "overhead A/B would be vacuous\n",
                 spill_budget);
    return 1;
  }
  for (int i = 0; i < telem_pairs; ++i) {
    spill_plain_ms = std::min(
        spill_plain_ms, bench_spill_campaign(scenario, telem_eo, 0).wall_ms);
    spill_budgeted_ms = std::min(
        spill_budgeted_ms,
        bench_spill_campaign(scenario, telem_eo, spill_budget).wall_ms);
  }
  const double spill_overhead_pct =
      (spill_budgeted_ms - spill_plain_ms) / spill_plain_ms * 100.0;
  std::printf("spill overhead: %+10.2f %% (%zuK budget, %llu blocks, "
              "%.1f KB spilled; target <1%%)\n",
              spill_overhead_pct, spill_budget >> 10,
              static_cast<unsigned long long>(spill_probe.spill_blocks),
              static_cast<double>(spill_probe.spill_bytes) / 1024.0);
  if (spill_overhead_pct > 1.0) {
    std::fprintf(stderr,
                 "perf_smoke: warning: spill overhead %.2f%% exceeds the "
                 "1%% target\n",
                 spill_overhead_pct);
  }
  if (spill_overhead_pct > 20.0) {
    std::fprintf(stderr,
                 "perf_smoke: spill overhead %.2f%% exceeds the 20%% hard "
                 "limit\n",
                 spill_overhead_pct);
    return 1;
  }

  std::string json;
  char line[512];
  const auto emit = [&json, &line](auto... args) {
    std::snprintf(line, sizeof(line), args...);
    json += line;
  };
  emit("{\n");
  emit("  \"mode\": \"%s\",\n", full ? "full" : "quick");
  emit("  \"threads_available\": %zu,\n", hw);
  emit("  \"event_kernel\": {\"events\": %llu, \"wall_ms\": %.3f, "
       "\"events_per_sec\": %.0f},\n",
       static_cast<unsigned long long>(kernel_events), kernel.wall_ms,
       kernel.per_sec);
  emit("  \"cancel_churn\": {\"rearms\": %llu, \"wall_ms\": %.3f, "
       "\"rearms_per_sec\": %.0f},\n",
       static_cast<unsigned long long>(churn_rearms), churn.wall_ms,
       churn.per_sec);
  emit("  \"timer_churn\": {\"timers\": %zu, \"rearms\": %llu, "
       "\"ops\": %llu, \"wall_ms\": %.3f, \"events_per_sec\": %.0f},\n",
       churn_timers, static_cast<unsigned long long>(timer_churn_rearms),
       static_cast<unsigned long long>(timer_churn.items),
       timer_churn.wall_ms, timer_churn.per_sec);
  emit("  \"link_batch\": {\"packets\": %zu, \"wall_ms\": %.3f, "
       "\"packets_per_sec\": %.0f},\n",
       batch_packets, link_batch.wall_ms, link_batch.per_sec);
  // Gated on payload throughput, not events/sec: link delivery coalescing
  // collapses a windowful of per-packet events into one train drain, so
  // the event count is no longer proportional to work done.
  emit("  \"tcp_bulk\": {\"bytes\": %zu, \"sim_events\": %llu, "
       "\"wall_ms\": %.3f, \"bytes_per_sec\": %.0f},\n",
       tcp_bytes, static_cast<unsigned long long>(tcp.items), tcp.wall_ms,
       static_cast<double>(tcp_bytes) / (tcp.wall_ms / 1000.0));
  emit("  \"gather_fastpath\": {\"bytes\": %zu, \"chunk_bytes\": %zu, "
       "\"sim_events\": %llu, \"wall_ms\": %.3f, \"bytes_per_sec\": "
       "%.0f},\n",
       gather_bytes, gather_chunk,
       static_cast<unsigned long long>(gather.items), gather.wall_ms,
       gather_bytes_per_sec);
  emit("  \"obs_overhead\": {\"bytes\": %zu, \"plain_ms\": %.3f, "
       "\"disabled_trace_ms\": %.3f, \"overhead_pct\": %.3f, "
       "\"target_pct\": 1.0, \"hard_limit_pct\": 10.0},\n",
       obs_bytes, plain_ms, traced_ms, overhead_pct);
  emit("  \"telemetry\": {\"ts_interval_ms\": 100.0, \"ticks\": %zu, "
       "\"plain_ms\": %.3f, \"sampled_ms\": %.3f, "
       "\"telemetry_overhead_pct\": %.3f, \"target_pct\": 1.0, "
       "\"hard_limit_pct\": 10.0,\n",
       attr_result.timeseries.sample_count(), telem_plain_ms,
       telem_sampled_ms, telemetry_overhead_pct);
  // attribution JSON can exceed the snprintf line buffer; append directly.
  json += "    \"attribution\": ";
  json += attr.to_json();
  json += "},\n";
  emit("  \"memory\": {\n");
  emit("    \"tracking\": %s,\n",
       obs::memory_tracking_enabled() ? "true" : "false");
  emit("    \"peak_rss_bytes\": %llu,\n",
       static_cast<unsigned long long>(obs::peak_rss_bytes()));
  emit("    \"capture\": {\"retained_bytes_peak\": %lld, "
       "\"peak_live_delta_bytes\": %llu, \"allocations\": %llu},\n",
       static_cast<long long>(mem_capture.retained_bytes_peak),
       static_cast<unsigned long long>(mem_capture.peak_live_delta_bytes),
       static_cast<unsigned long long>(mem_capture.allocations));
  emit("    \"stream\": {\"analyzer_bytes_peak\": %lld, "
       "\"peak_live_delta_bytes\": %llu, \"allocations\": %llu, "
       "\"timelines_online\": %llu, \"late_packets\": %llu},\n",
       static_cast<long long>(mem_stream.analyzer_bytes_peak),
       static_cast<unsigned long long>(mem_stream.peak_live_delta_bytes),
       static_cast<unsigned long long>(mem_stream.allocations),
       static_cast<unsigned long long>(mem_stream.timelines_online),
       static_cast<unsigned long long>(mem_stream.late_packets));
  emit("    \"allocs_per_query\": %.2f,\n", allocs_per_query);
  emit("    \"stream_reduction_pct\": %.2f,\n", stream_reduction_pct);
  emit("    \"tracked_reduction_pct\": %.2f\n", tracked_reduction_pct);
  emit("  },\n");
  emit("  \"spill\": {\"records\": %llu, \"text_bytes\": %llu, "
       "\"dtrc_bytes\": %llu, \"spill_compression_x\": %.2f, "
       "\"min_compression_x\": 4.0, \"encode_wall_ms\": %.3f, "
       "\"bytes_per_sec\": %.0f,\n",
       static_cast<unsigned long long>(spill.records),
       static_cast<unsigned long long>(spill.text_bytes),
       static_cast<unsigned long long>(spill.dtrc_bytes),
       spill.compression_x, spill.encode_wall_ms, spill.bytes_per_sec);
  emit("    \"budget_bytes\": %zu, \"spill_blocks\": %llu, "
       "\"spill_bytes_written\": %llu, \"plain_ms\": %.3f, "
       "\"budgeted_ms\": %.3f, \"spill_overhead_pct\": %.3f, "
       "\"target_pct\": 1.0, \"hard_limit_pct\": 20.0},\n",
       spill_budget,
       static_cast<unsigned long long>(spill_probe.spill_blocks),
       static_cast<unsigned long long>(spill_probe.spill_bytes),
       spill_plain_ms, spill_budgeted_ms, spill_overhead_pct);
  emit("  \"experiment\": {\n");
  emit("    \"vantage_points\": %zu,\n", clients);
  emit("    \"queries\": %zu,\n", queries);
  emit("    \"serial_wall_ms\": %.3f,\n", scaling.front().wall_ms);
  emit("    \"queries_per_sec_serial\": %.1f,\n",
       static_cast<double>(queries) / (scaling.front().wall_ms / 1000.0));
  emit("    \"queries_per_sec_best\": %.1f,\n", qps_best);
  emit("    \"best_threads\": %zu,\n", qps_best_threads);
  emit("    \"thread_scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    emit("      {\"threads\": %zu, \"threads_available\": %zu, "
         "\"oversubscribed\": %s, \"wall_ms\": %.3f, "
         "\"queries_per_sec\": %.1f, \"speedup_vs_1\": %.3f, "
         "\"shards\": %zu, \"barrier_stalls\": %llu, "
         "\"cross_shard_packets\": %llu}%s\n",
         scaling[i].threads, hw, scaling[i].oversubscribed ? "true" : "false",
         scaling[i].wall_ms, scaling[i].queries_per_sec,
         scaling.front().wall_ms / scaling[i].wall_ms, scaling[i].shards,
         static_cast<unsigned long long>(scaling[i].barrier_stalls),
         static_cast<unsigned long long>(scaling[i].cross_shard_packets),
         i + 1 < scaling.size() ? "," : "");
  }
  emit("    ],\n");
  emit("    \"scenario_scaling\": [\n");
  for (std::size_t i = 0; i < shard_scaling.size(); ++i) {
    const ShardScalePoint& p = shard_scaling[i];
    emit("      {\"shards\": %zu, \"oversubscribed\": %s, "
         "\"wall_ms\": %.3f, \"queries_per_sec\": %.1f, "
         "\"speedup_vs_1\": %.3f, \"windows\": %llu, "
         "\"barrier_stalls\": %llu, \"cross_shard_packets\": %llu}%s\n",
         p.shards, p.oversubscribed ? "true" : "false", p.wall_ms,
         p.queries_per_sec, shard_scaling.front().wall_ms / p.wall_ms,
         static_cast<unsigned long long>(p.windows),
         static_cast<unsigned long long>(p.barrier_stalls),
         static_cast<unsigned long long>(p.cross_shard_packets),
         i + 1 < shard_scaling.size() ? "," : "");
  }
  emit("    ],\n");
  // Metrics snapshot of the serial campaign: counters and gauges verbatim,
  // histograms reduced to count/sum/p50.
  emit("    \"metrics\": {\n");
  {
    std::vector<std::string> entries;
    for (const auto& [name, value] : campaign_metrics.counters()) {
      std::snprintf(line, sizeof(line), "      \"%s\": %llu", name.c_str(),
                    static_cast<unsigned long long>(value));
      entries.push_back(line);
    }
    for (const auto& [name, value] : campaign_metrics.gauges()) {
      std::snprintf(line, sizeof(line), "      \"%s\": %lld", name.c_str(),
                    static_cast<long long>(value));
      entries.push_back(line);
    }
    for (const auto& [name, h] : campaign_metrics.histograms()) {
      std::snprintf(line, sizeof(line),
                    "      \"%s\": {\"count\": %llu, \"sum\": %.6f, "
                    "\"p50\": %.6f}",
                    name.c_str(),
                    static_cast<unsigned long long>(h.count()), h.sum(),
                    h.quantile(0.5));
      entries.push_back(line);
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      json += entries[i];
      json += i + 1 < entries.size() ? ",\n" : "\n";
    }
  }
  emit("    }\n");
  emit("  }\n");
  emit("}\n");

  const auto write_file = [&json](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot open %s\n", path.c_str());
      return false;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
  };
  if (!write_file(out_path)) return 1;
  std::printf("\n[bench json written: %s]\n", out_path.c_str());
  // Convenience copy at the repo root (gitignored via BENCH*.json) so the
  // latest numbers survive `rm -rf build`.
#ifdef DYNCDN_REPO_ROOT
  const std::string latest = std::string(DYNCDN_REPO_ROOT) +
                             "/BENCH_latest.json";
  if (latest != out_path && write_file(latest)) {
    std::printf("[bench json copied: %s]\n", latest.c_str());
  }
#endif
  return 0;
}
