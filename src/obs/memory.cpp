#include "obs/memory.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <malloc.h>
#include <sys/resource.h>
#include <unistd.h>
#endif

#ifndef DYNCDN_MEM_TRACK
#define DYNCDN_MEM_TRACK 1
#endif

namespace dyncdn::obs {

namespace {

std::atomic<std::uint64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

#if DYNCDN_MEM_TRACK

inline std::size_t usable_size(void* p) {
#if defined(__linux__)
  return malloc_usable_size(p);
#else
  (void)p;
  return 0;
#endif
}

inline void note_alloc(std::size_t bytes) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t live =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak && !g_peak.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

inline void note_free(std::size_t bytes) {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

void* tracked_alloc(std::size_t size) {
  void* p = std::malloc(size);
  if (p != nullptr) note_alloc(usable_size(p));
  return p;
}

void* tracked_aligned_alloc(std::size_t size, std::size_t alignment) {
  void* p = nullptr;
#if defined(__linux__)
  if (posix_memalign(&p, alignment, size) != 0) p = nullptr;
#else
  p = std::aligned_alloc(alignment, size);
#endif
  if (p != nullptr) note_alloc(usable_size(p));
  return p;
}

void tracked_free(void* p) {
  if (p == nullptr) return;
  note_free(usable_size(p));
  std::free(p);
}

#endif  // DYNCDN_MEM_TRACK

}  // namespace

MemorySnapshot memory_snapshot() {
  MemorySnapshot s;
  s.live_bytes = g_live.load(std::memory_order_relaxed);
  s.peak_live_bytes = g_peak.load(std::memory_order_relaxed);
  s.allocations = g_allocs.load(std::memory_order_relaxed);
  s.frees = g_frees.load(std::memory_order_relaxed);
  return s;
}

void reset_peak_live_bytes() {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

bool memory_tracking_enabled() {
#if DYNCDN_MEM_TRACK
  return true;
#else
  return false;
#endif
}

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::uint64_t>(resident) *
         static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

}  // namespace dyncdn::obs

#if DYNCDN_MEM_TRACK

// Global allocation hooks. Each form funnels into the tracker above; sizes
// are measured via malloc_usable_size at both ends, so new/delete pairs
// balance exactly even when the sized-delete hint differs from the usable
// size.
void* operator new(std::size_t size) {
  void* p = dyncdn::obs::tracked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = dyncdn::obs::tracked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return dyncdn::obs::tracked_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return dyncdn::obs::tracked_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = dyncdn::obs::tracked_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = dyncdn::obs::tracked_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { dyncdn::obs::tracked_free(p); }
void operator delete[](void* p) noexcept { dyncdn::obs::tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  dyncdn::obs::tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  dyncdn::obs::tracked_free(p);
}

#endif  // DYNCDN_MEM_TRACK
