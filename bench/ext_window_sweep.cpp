// Extension: validating Eq. 2's constant C against the TCP window.
//
// The paper models the fetch time as T_fetch = T_proc + C * RTT_be where
// "C is constant, which depends on the TCP window size on the BE data
// center". We can test that claim directly: sweep the internal (FE<->BE)
// receive window, rerun the Fig. 9 distance regression for each setting,
// and compare the fitted C (slope / per-mile RTT) with the prediction
//
//     C ≈ 1 (request trip) + ceil(dynamic_body / window)   window rounds.
//
// Quick: 8 distances x 12 reps per window. DYNCDN_FULL=1: 12 x 40.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/inference.hpp"
#include "search/keywords.hpp"
#include "testbed/experiment.hpp"
#include "testbed/scenario.hpp"

using namespace dyncdn;

int main() {
  const std::size_t points = bench::full_scale() ? 12 : 8;
  const std::size_t reps = bench::full_scale() ? 40 : 12;
  bench::banner("Extension — Eq. 2's C vs the internal TCP window",
                "fetch-factoring regression per window size; " +
                    std::to_string(points) + " distances x " +
                    std::to_string(reps) + " reps");

  const search::Keyword keyword{"window sweep probe keyword",
                                search::KeywordClass::kGranular, 5000};

  std::printf("%12s %12s %12s %12s %14s\n", "window(MSS)", "fitted C",
              "predicted C", "slope", "intercept(ms)");

  bool all_close = true;
  for (const std::size_t window_mss : {2u, 3u, 4u, 6u, 10u}) {
    testbed::ScenarioOptions opt;
    opt.profile = cdn::google_like_profile();
    opt.profile.internal_tcp.receive_buffer =
        window_mss * opt.profile.internal_tcp.mss;
    opt.profile.processing.load.sigma = 0.02;
    opt.profile.processing.load.load_amplitude = 0.0;
    opt.profile.fe_service.sigma = 0.02;
    opt.profile.fe_service.load_amplitude = 0.0;
    opt.seed = 909;
    std::vector<double> distances;
    for (std::size_t i = 0; i < points; ++i) {
      distances.push_back(60.0 + 440.0 * static_cast<double>(i) /
                                     static_cast<double>(points - 1));
    }
    opt.fe_distance_sweep_miles = distances;
    testbed::Scenario scenario(opt);
    scenario.warm_up();

    const auto r =
        testbed::run_fetch_factoring_experiment(scenario, keyword, reps);

    // Prediction: dynamic body for this keyword (deterministic expected
    // size) over the configured window, plus the request's trip.
    const double body = static_cast<double>(
        scenario.content().profile().dynamic_base_bytes +
        scenario.content().profile().dynamic_per_word_bytes *
            keyword.word_count());
    const double window_bytes =
        static_cast<double>(window_mss * opt.profile.internal_tcp.mss);
    const double predicted = 1.0 + std::ceil(body / window_bytes);
    const double fitted = r.factoring.implied_round_trips();

    std::printf("%12zu %12.2f %12.1f %12.4f %14.1f\n",
                static_cast<std::size_t>(window_mss), fitted, predicted,
                r.factoring.slope_ms_per_mile(), r.factoring.t_proc_ms());
    if (std::fabs(fitted - predicted) > 0.45 * predicted + 0.8) {
      all_close = false;
    }
  }

  bench::section("verdict");
  std::printf("Eq. 2 validated: fitted C tracks 1 + ceil(body/window) "
              "across window sizes — %s\n",
              all_close ? "HOLDS" : "VIOLATED");
  std::printf("(C shrinks as the BE window grows: a wide-open internal "
              "window makes the fetch distance-insensitive, one more knob "
              "in the placement trade-off.)\n");
  return 0;
}
