// Simulated packets.
//
// Packets carry a TCP/IP-like header and a zero-copy view into an immutable
// payload buffer. TCP segmentation slices one application buffer into many
// segments without copying; capture taps can retain payload bytes for the
// content analysis the paper performs on full tcpdump payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace dyncdn::net {

/// Immutable shared byte buffer.
using Buffer = std::shared_ptr<const std::vector<std::uint8_t>>;

inline Buffer make_buffer(std::vector<std::uint8_t> bytes) {
  return std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
}
Buffer make_buffer(std::string_view text);

/// One contiguous (buffer, offset, length) piece of a payload.
struct PayloadSlice {
  Buffer buffer;
  std::size_t offset = 0;
  std::size_t length = 0;

  std::span<const std::uint8_t> bytes() const {
    if (!buffer || length == 0) return {};
    return std::span<const std::uint8_t>(buffer->data() + offset, length);
  }
};

/// A payload view: one primary slice plus an optional chain of
/// continuation slices. A TCP segment gathered across application writes
/// keeps one slice per source buffer instead of copying into a fresh
/// allocation, so cross-chunk segments stay zero-copy through net,
/// capture, and reassembly. `length` is the TOTAL across all slices; the
/// chain is empty in the overwhelmingly common single-buffer case, where
/// this degrades to the plain (buffer, offset, length) view it used to be.
struct PayloadRef {
  Buffer buffer;
  std::size_t offset = 0;
  std::size_t length = 0;
  std::vector<PayloadSlice> chain;  // continuation slices, in stream order

  PayloadRef() = default;
  PayloadRef(Buffer buf, std::size_t off, std::size_t len)
      : buffer(std::move(buf)), offset(off), length(len) {}

  bool chained() const { return !chain.empty(); }
  std::size_t first_length() const {
    std::size_t rest = 0;
    for (const PayloadSlice& s : chain) rest += s.length;
    return length - rest;
  }

  /// Contiguous byte view of the FIRST slice (the whole payload when not
  /// chained). Chained payloads must be walked with for_each_slice.
  std::span<const std::uint8_t> bytes() const {
    if (!buffer || length == 0) return {};
    return std::span<const std::uint8_t>(buffer->data() + offset,
                                         first_length());
  }
  bool empty() const { return length == 0; }

  /// Visit every slice in stream order as a span.
  template <class F>
  void for_each_slice(F&& f) const {
    if (length == 0) return;
    if (buffer) {
      f(std::span<const std::uint8_t>(buffer->data() + offset,
                                      first_length()));
    }
    for (const PayloadSlice& s : chain) f(s.bytes());
  }

  /// Sub-view; clamps to the parent extent. Chain-aware.
  PayloadRef slice(std::size_t off, std::size_t len) const;
  /// Concatenate `tail` after this payload (builds/extends the chain;
  /// physically adjacent views of the same buffer are merged).
  void append(PayloadRef tail);
  std::string to_text() const;
};

/// TCP header flags.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  std::string to_string() const;
};

/// TCP-like segment header. Sequence/ack numbers are 64-bit byte offsets —
/// the simulator does not model 32-bit wraparound, which never occurs at
/// the transfer sizes of a search response.
struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  std::uint32_t window = 0;  // receiver advertised window, bytes
  TcpFlags flags;
};

/// Number of header overhead bytes charged per segment on the wire
/// (IP 20 + TCP 20, options ignored).
inline constexpr std::size_t kHeaderOverheadBytes = 40;

struct Packet {
  NodeId src;
  NodeId dst;
  TcpHeader tcp;
  PayloadRef payload;
  std::uint64_t id = 0;  // globally unique, assigned by the Network

  std::size_t payload_size() const { return payload.length; }
  std::size_t wire_size() const { return payload.length + kHeaderOverheadBytes; }

  FlowId flow_from_sender() const {
    return FlowId{Endpoint{src, tcp.src_port}, Endpoint{dst, tcp.dst_port}};
  }

  /// "5:80 -> 2:40001 seq=1448 ack=89 [ACK] 1448B"
  std::string to_string() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/// Allocate a zeroed Packet from a thread-local pool. The shared_ptr control
/// block and the Packet come from one recycled allocation, so the per-segment
/// cost on the TCP hot path is a free-list pop instead of two heap
/// allocations. Returned packets are ordinary PacketPtrs: capture taps may
/// retain them arbitrarily long; the storage goes back to the pool of the
/// releasing thread when the last reference drops.
PacketPtr acquire_packet();

/// Pool introspection (tests): blocks currently cached on this thread.
std::size_t packet_pool_free_count();

}  // namespace dyncdn::net
