#include "testbed/planetlab.hpp"

#include <cmath>

namespace dyncdn::testbed {

const std::vector<Metro>& world_metros() {
  // Weighted toward North American and European campuses, where most
  // PlanetLab nodes lived (the paper's §6 notes this bias explicitly).
  static const std::vector<Metro> metros = {
      // North America
      {"minneapolis", {44.98, -93.27}, 2.0},
      {"chicago", {41.88, -87.63}, 2.0},
      {"new-york", {40.71, -74.01}, 2.5},
      {"boston", {42.36, -71.06}, 2.5},
      {"washington-dc", {38.91, -77.04}, 2.0},
      {"atlanta", {33.75, -84.39}, 1.5},
      {"miami", {25.76, -80.19}, 1.0},
      {"dallas", {32.78, -96.80}, 1.5},
      {"denver", {39.74, -104.99}, 1.0},
      {"seattle", {47.61, -122.33}, 2.0},
      {"san-francisco", {37.77, -122.42}, 2.5},
      {"los-angeles", {34.05, -118.24}, 2.0},
      {"san-diego", {32.72, -117.16}, 1.0},
      {"salt-lake", {40.76, -111.89}, 0.8},
      {"houston", {29.76, -95.37}, 1.0},
      {"pittsburgh", {40.44, -79.99}, 1.5},
      {"toronto", {43.65, -79.38}, 1.5},
      {"vancouver", {49.28, -123.12}, 1.0},
      {"montreal", {45.50, -73.57}, 1.0},
      // Europe
      {"london", {51.51, -0.13}, 2.5},
      {"paris", {48.86, 2.35}, 2.0},
      {"berlin", {52.52, 13.40}, 2.0},
      {"amsterdam", {52.37, 4.90}, 1.5},
      {"zurich", {47.38, 8.54}, 1.5},
      {"madrid", {40.42, -3.70}, 1.0},
      {"rome", {41.90, 12.50}, 1.0},
      {"stockholm", {59.33, 18.07}, 1.0},
      {"helsinki", {60.17, 24.94}, 0.8},
      {"warsaw", {52.23, 21.01}, 0.8},
      {"athens", {37.98, 23.73}, 0.6},
      {"dublin", {53.35, -6.26}, 0.8},
      // Asia / Oceania / South America (sparser, like PlanetLab)
      {"tokyo", {35.68, 139.69}, 1.5},
      {"seoul", {37.57, 126.98}, 1.0},
      {"beijing", {39.90, 116.41}, 1.0},
      {"singapore", {1.35, 103.82}, 0.8},
      {"hong-kong", {22.32, 114.17}, 0.8},
      {"sydney", {-33.87, 151.21}, 0.8},
      {"auckland", {-36.85, 174.76}, 0.4},
      {"sao-paulo", {-23.55, -46.63}, 0.6},
      {"buenos-aires", {-34.60, -58.38}, 0.4},
      {"bangalore", {12.97, 77.59}, 0.5},
  };
  return metros;
}

const char* to_string(AccessType a) {
  switch (a) {
    case AccessType::kCampus: return "campus";
    case AccessType::kResidential: return "residential";
    case AccessType::kWireless: return "wireless";
  }
  return "?";
}

std::vector<VantagePoint> make_vantage_points(
    const VantagePointOptions& options) {
  const std::vector<Metro>& metros = world_metros();
  sim::RngStream rng =
      sim::RngFactory(options.seed).stream("testbed/vantage-points");

  // Build the weighted-metro CDF once.
  std::vector<double> cdf;
  cdf.reserve(metros.size());
  double total = 0.0;
  for (const Metro& m : metros) {
    total += m.weight;
    cdf.push_back(total);
  }

  std::vector<VantagePoint> out;
  out.reserve(options.count);
  for (std::size_t i = 0; i < options.count; ++i) {
    const double u = rng.uniform01() * total;
    std::size_t metro = 0;
    while (metro + 1 < cdf.size() && cdf[metro] < u) ++metro;

    VantagePoint vp;
    vp.metro_index = metro;
    // Campus-level jitter: up to ~0.15 degrees (~10 miles).
    vp.location = {metros[metro].location.lat_deg + rng.uniform(-0.15, 0.15),
                   metros[metro].location.lon_deg + rng.uniform(-0.15, 0.15)};
    double one_way_ms =
        rng.uniform(options.last_mile_min_ms, options.last_mile_max_ms);

    const double kind = rng.uniform01();
    if (kind < options.residential_fraction) {
      vp.access = AccessType::kResidential;
      one_way_ms += rng.uniform(options.dsl_extra_min_ms,
                                options.dsl_extra_max_ms);
    } else if (kind < options.residential_fraction +
                          options.wireless_fraction) {
      vp.access = AccessType::kWireless;
      one_way_ms += rng.uniform(options.wireless_extra_min_ms,
                                options.wireless_extra_max_ms);
      vp.access_loss =
          rng.uniform(options.wireless_loss_min, options.wireless_loss_max);
    }
    vp.name = std::string(to_string(vp.access)).substr(0, 2) + "-" +
              std::to_string(i) + "." + metros[metro].name;
    if (vp.access == AccessType::kCampus) {
      vp.name = "pl-" + std::to_string(i) + "." + metros[metro].name;
    }
    vp.last_mile_one_way = sim::SimTime::from_milliseconds(one_way_ms);
    out.push_back(std::move(vp));
  }
  return out;
}

std::vector<VantagePoint> make_vantage_points(std::size_t count,
                                              std::uint64_t seed,
                                              double last_mile_min_ms,
                                              double last_mile_max_ms) {
  VantagePointOptions options;
  options.count = count;
  options.seed = seed;
  options.last_mile_min_ms = last_mile_min_ms;
  options.last_mile_max_ms = last_mile_max_ms;
  return make_vantage_points(options);
}

}  // namespace dyncdn::testbed
