# Empty compiler generated dependencies file for ext_window_sweep.
# This may be replaced when dependencies are built.
