
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcp_property_test.cpp" "tests/CMakeFiles/test_tcp_property.dir/tcp_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_tcp_property.dir/tcp_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/dyncdn_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/dyncdn_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dyncdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dyncdn_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/dyncdn_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/dyncdn_search.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/dyncdn_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dyncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/dyncdn_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dyncdn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dyncdn_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dyncdn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
