// Simulation facade: clock + event queue + run loop.
//
// All simulated components hold a Simulator& and schedule work through it.
// The Simulator owns nothing else; topology, protocol and application state
// live in their own modules so the kernel stays tiny and easily testable.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace dyncdn::obs {
class TraceSession;  // src/obs/trace.hpp; sim never dereferences it
}  // namespace dyncdn::obs

namespace dyncdn::sim {

class Simulator {
 public:
  /// `seed` drives every RNG stream created through rng().
  explicit Simulator(std::uint64_t seed = 1)
      : rng_factory_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `cb` to fire `delay` after the current time.
  EventId schedule_in(SimTime delay, EventQueue::Callback cb) {
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventQueue::Callback cb) {
    return queue_.schedule(at, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Time of the earliest pending event; SimTime::infinity() when idle.
  /// (May advance the timing wheel's cursor internally.)
  SimTime next_event_time() { return queue_.next_time(); }

  /// True while any event is pending. Convenience for host-side loops
  /// (e.g. the time-series sampling loop) that advance tick by tick.
  bool has_pending() { return next_event_time() != SimTime::infinity(); }

  /// Advance the clock to `t` without running an event. `t` must not
  /// precede now() nor overtake the earliest pending event. Link delivery
  /// coalescing uses this to stamp each packet of a drained train with its
  /// true arrival time, so handlers observe exactly the clock they would
  /// have seen with one delivery event per packet.
  void advance_to(SimTime t);

  /// Run until the event queue drains. Returns the final simulated time.
  SimTime run();

  /// Run until the queue drains or simulated time exceeds `deadline`.
  /// Events scheduled after the deadline remain pending.
  SimTime run_until(SimTime deadline);

  /// Conservative-window execution (parallel sharding): run every pending
  /// event with time strictly below `end`, leaving the clock at the last
  /// executed event (never force-advanced — the shard runner aligns all
  /// shard clocks after the barrier). While the window is open, horizon()
  /// returns `end` so time-advancing components (link delivery trains)
  /// know not to deliver work at or beyond the barrier. Returns the number
  /// of events executed in the window.
  std::uint64_t run_window(SimTime end);

  /// Upper bound (exclusive) on event times the current run_window() may
  /// execute; SimTime::infinity() outside a window (serial execution).
  SimTime horizon() const { return horizon_; }

  /// Force the clock to `t` (>= now) after a parallel run has drained this
  /// shard's queue: all shard clocks must agree with the serial kernel's
  /// final time before the next host-side schedule_in(). Same overtaking
  /// rules as advance_to.
  void align_clock(SimTime t) { advance_to(t); }

  /// Execute at most `n` events (testing hook).
  std::size_t run_steps(std::size_t n);

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.pending_count(); }
  std::uint64_t events_executed() const { return events_executed_; }

  const RngFactory& rng() const { return rng_factory_; }

  /// Event-kernel introspection for the metrics layer.
  std::uint64_t events_scheduled() const {
    return queue_.scheduled_count();
  }
  std::uint64_t events_cancelled() const {
    return queue_.cancelled_count();
  }
  std::size_t max_heaped_entries() const { return queue_.max_heaped(); }

  /// Observability hook: a non-owning pointer to the trace session for
  /// this simulation, set by whoever owns both (testbed::Scenario). The
  /// kernel itself never touches it — components reach it through
  /// obs::active_trace(sim) so a null/disabled session costs one branch.
  obs::TraceSession* trace() const { return trace_; }
  void set_trace(obs::TraceSession* session) { trace_ = session; }

 private:
  EventQueue queue_;
  RngFactory rng_factory_;
  SimTime now_ = SimTime::zero();
  SimTime horizon_ = SimTime::infinity();
  std::uint64_t events_executed_ = 0;
  obs::TraceSession* trace_ = nullptr;
};

}  // namespace dyncdn::sim
