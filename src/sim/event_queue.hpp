// Priority-queue based event scheduler for the discrete-event kernel.
//
// Events are (time, sequence, callback) triples. The sequence number breaks
// ties deterministically: two events scheduled for the same instant fire in
// scheduling order, which makes whole-simulation runs bit-for-bit
// reproducible regardless of heap internals.
//
// Hot-path design: callbacks live in a slot table indexed by small integers;
// the heap holds only POD (time, seq, slot, generation) entries. An EventId
// encodes (slot, generation), so cancel is an O(1) generation bump — no
// hash-set insert/erase — and a stale heap entry is recognized on pop by
// its generation mismatching the slot's. Cancelled entries are skimmed as
// they surface and the heap is compacted whenever dead entries outnumber
// live ones, so churny cancel/re-arm workloads (TCP re-arms its RTO on
// every ACK) cannot grow the queue without bound.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace dyncdn::sim {

/// Opaque handle identifying a scheduled event; usable for cancellation.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(std::uint64_t v) : value_(v) {}
  constexpr std::uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }
  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  std::uint64_t value_ = 0;  // 0 = invalid / never scheduled
};

/// Min-heap of timed callbacks with O(1) generation-counter cancellation.
class EventQueue {
 public:
  using Callback = sim::Callback;

  /// Schedule `cb` to fire at absolute time `at`. `at` must not precede the
  /// last popped event time (no scheduling into the past).
  EventId schedule(SimTime at, Callback cb);

  /// Cancel a previously scheduled event. Safe to call with an already-fired
  /// or already-cancelled id (no-op). Returns true if the event was pending.
  bool cancel(EventId id);

  bool empty() const;

  /// Time of the earliest pending event; SimTime::infinity() when empty.
  SimTime next_time() const;

  /// Pop and run the earliest event; returns its scheduled time.
  /// Precondition: !empty().
  SimTime pop_and_run();

  std::size_t pending_count() const;

  /// Introspection for stress tests: total heap entries including
  /// cancelled-but-not-yet-skimmed ones, and the slot-table size. Both are
  /// bounded by O(live events) regardless of cancel churn.
  std::size_t heaped_entries() const { return heap_.size(); }
  std::size_t slot_count() const { return slots_.size(); }

  /// Lifetime counters for the metrics layer (maintained unconditionally:
  /// one increment / one comparison per schedule or cancel, noise next to
  /// the heap push itself).
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }
  std::uint64_t cancelled_count() const { return cancelled_; }
  std::size_t max_heaped() const { return max_heaped_; }

 private:
  struct HeapEntry {
    SimTime at;
    std::uint64_t seq;     // global schedule order, breaks time ties
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;  // bumped when the slot's event fires/cancels
  };

  static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  bool entry_dead(const HeapEntry& e) const {
    return slots_[e.slot].gen != e.gen;
  }

  /// Drop cancelled entries from the top of the heap.
  void skim();
  /// Remove all dead entries when they dominate the heap.
  void maybe_compact();
  /// Retire a slot whose event fired or was cancelled.
  void retire_slot(std::uint32_t slot);

  std::vector<HeapEntry> heap_;       // binary min-heap via std::*_heap
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;              // scheduled and not fired/cancelled
  std::size_t dead_in_heap_ = 0;      // cancelled entries still heaped
  std::uint64_t next_seq_ = 1;
  std::uint64_t cancelled_ = 0;
  std::size_t max_heaped_ = 0;
  SimTime last_popped_ = SimTime::zero();
};

}  // namespace dyncdn::sim
