#include "obs/export_chrome.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/trace.hpp"

namespace dyncdn::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_micros(std::string& out, std::int64_t ns) {
  // Chrome `ts` is microseconds; three decimals preserve the nanosecond.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buf;
}

void append_arg_value(std::string& out, const ArgValue& v) {
  switch (v.type) {
    case ArgValue::Type::kInt:
      append_i64(out, v.i);
      break;
    case ArgValue::Type::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.d);
      out += buf;
      break;
    }
    case ArgValue::Type::kString:
      append_escaped(out, v.s);
      break;
  }
}

void append_args(std::string& out, const std::vector<Arg>& args) {
  for (const auto& arg : args) {
    out.push_back(',');
    append_escaped(out, arg.key);
    out.push_back(':');
    append_arg_value(out, arg.value);
  }
}

void append_span(std::string& out, const SpanRecord& span, bool& first) {
  const std::int64_t tid = static_cast<std::int64_t>(span.replica) + 1;
  if (!first) out += ",\n";
  first = false;
  out += R"({"ph":"X","name":)";
  append_escaped(out, span.name);
  out += R"(,"cat":)";
  append_escaped(out, span.category);
  out += R"(,"ts":)";
  append_micros(out, span.start.ns());
  out += R"(,"dur":)";
  append_micros(out, span.end.ns() - span.start.ns());
  out += R"(,"pid":1,"tid":)";
  append_i64(out, tid);
  out += R"(,"args":{"span_id":)";
  append_i64(out, static_cast<std::int64_t>(span.id));
  out += R"(,"parent":)";
  append_i64(out, static_cast<std::int64_t>(span.parent));
  out += R"(,"start_ns":)";
  append_i64(out, span.start.ns());
  out += R"(,"end_ns":)";
  append_i64(out, span.end.ns());
  if (span.open) out += R"(,"open":1)";
  append_args(out, span.args);
  out += "}}";
  for (const auto& event : span.events) {
    out += ",\n";
    out += R"({"ph":"i","s":"t","name":)";
    append_escaped(out, event.name);
    out += R"(,"cat":)";
    append_escaped(out, span.category);
    out += R"(,"ts":)";
    append_micros(out, event.at.ns());
    out += R"(,"pid":1,"tid":)";
    append_i64(out, tid);
    out += R"(,"args":{"span_id":)";
    append_i64(out, static_cast<std::int64_t>(span.id));
    out += R"(,"at_ns":)";
    append_i64(out, event.at.ns());
    append_args(out, event.args);
    out += "}}";
  }
}

}  // namespace

std::string export_chrome_trace(const TraceSession& session) {
  std::string out;
  out.reserve(256 + session.spans().size() * 256);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& span : session.spans()) {
    append_span(out, span, first);
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const TraceSession& session,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = export_chrome_trace(session);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                  body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dyncdn::obs
