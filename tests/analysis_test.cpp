// Trace-analysis tests: stream reassembly (including loss/reordering),
// boundary discovery and timeline extraction against a hand-built FE-like
// server whose ground-truth timing we control.
#include <gtest/gtest.h>

#include <string>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/timeline.hpp"
#include "capture/recorder.hpp"
#include "harness.hpp"
#include "tcp/stack.hpp"

namespace dyncdn::analysis {
namespace {

using dyncdn::testing::pattern_text;
using dyncdn::testing::TwoNodeHarness;
using dyncdn::testing::TwoNodeOptions;
using sim::SimTime;
using namespace dyncdn::sim::literals;

constexpr net::Port kPort = 80;

/// Serves a fixed "static" burst immediately and a "dynamic" burst after a
/// configurable delay — the minimal FE behaviour the analyzer must decode.
struct MiniFrontEnd {
  std::string static_part;
  std::string dynamic_part;
  SimTime fetch_delay = 120_ms;
  sim::Simulator* simulator = nullptr;

  void install(tcp::TcpStack& stack) {
    simulator = &stack.simulator();
    stack.listen(kPort, [this](tcp::TcpSocket& s) {
      tcp::TcpSocket::Callbacks cb;
      cb.on_data = [this, &s](net::PayloadRef) {
        s.send_text(static_part);
        simulator->schedule_in(fetch_delay, [this, &s]() {
          s.send_text(dynamic_part);
          s.close();
        });
      };
      s.set_callbacks(std::move(cb));
    });
  }
};

struct AnalysisFixture {
  explicit AnalysisFixture(TwoNodeOptions opt = {}) : h(opt) {
    capture::RecorderOptions ro;
    ro.capture_payloads = true;
    recorder = std::make_unique<capture::TraceRecorder>(*h.client_node,
                                                        h.simulator, ro);
  }

  /// Run one request; returns the client-side flow id.
  net::FlowId run_query(MiniFrontEnd& fe) {
    fe.install(*h.server);
    tcp::TcpSocket& s = h.client->connect({h.server_node->id(), kPort}, {});
    const net::FlowId flow = s.flow();
    s.send_text("GET /q HTTP/1.1\r\n\r\n");
    h.simulator.run();
    return flow;
  }

  TwoNodeHarness h;
  std::unique_ptr<capture::TraceRecorder> recorder;
};

TEST(Reassembly, ReconstructsCleanStream) {
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(5000);
  fe.dynamic_part = "DYNAMIC" + pattern_text(3000);
  const net::FlowId flow = f.run_query(fe);

  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kReceived);
  EXPECT_EQ(stream.bytes(), fe.static_part + fe.dynamic_part);
  EXPECT_EQ(stream.length(), 8007u);
}

TEST(Reassembly, SentDirectionReconstructsRequest) {
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = "s";
  fe.dynamic_part = "d";
  const net::FlowId flow = f.run_query(fe);
  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kSent);
  EXPECT_EQ(stream.bytes(), "GET /q HTTP/1.1\r\n\r\n");
}

TEST(Reassembly, HandlesRetransmittedSegments) {
  TwoNodeOptions opt;
  // Drop one server->client data packet; TCP retransmits it.
  opt.drop_indices_s2c = {3};
  AnalysisFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(8 * 1448);
  fe.dynamic_part = "DYN" + pattern_text(2000);
  const net::FlowId flow = f.run_query(fe);

  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kReceived);
  EXPECT_EQ(stream.bytes(), fe.static_part + fe.dynamic_part);

  // The dropped byte range must carry the retransmission's (later) time,
  // strictly after the in-order packet before it.
  const auto t_front = stream.byte_time(0);
  const auto t_gap = stream.byte_time(3 * 1448 + 10);
  ASSERT_TRUE(t_front && t_gap);
  EXPECT_GT(*t_gap, *t_front);
}

TEST(Reassembly, ByteTimeUsesEarliestArrival) {
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(2000);
  fe.dynamic_part = "tail";
  const net::FlowId flow = f.run_query(fe);
  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kReceived);
  // First byte time == t3 == first segment arrival == first_packet_reaching.
  EXPECT_EQ(stream.byte_time(0), stream.first_packet_reaching(0));
  // Later bytes cannot precede earlier ones on a clean in-order path.
  EXPECT_LE(*stream.byte_time(0), *stream.byte_time(1999));
}

TEST(Reassembly, PrefixCompleteAfterOutOfOrderFill) {
  TwoNodeOptions opt;
  opt.drop_indices_s2c = {2};  // drop the first data packet (index 2)
  AnalysisFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(6 * 1448);
  fe.dynamic_part = "DYN";
  const net::FlowId flow = f.run_query(fe);

  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kReceived);
  ASSERT_EQ(stream.bytes(), fe.static_part + fe.dynamic_part);
  // The prefix completes only when the retransmitted head arrives, which
  // is later than the first arrival of the final prefix byte.
  const auto complete = stream.prefix_complete_time(6 * 1448 - 1);
  const auto last_byte_first_arrival = stream.byte_time(6 * 1448 - 1);
  ASSERT_TRUE(complete && last_byte_first_arrival);
  EXPECT_GT(*complete, *last_byte_first_arrival);
}

TEST(Reassembly, EmptyForUnknownFlow) {
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = "s";
  fe.dynamic_part = "d";
  f.run_query(fe);
  const net::FlowId bogus{net::Endpoint{net::NodeId{1}, 1},
                          net::Endpoint{net::NodeId{2}, 2}};
  EXPECT_TRUE(
      reassemble(f.recorder->trace(), bogus, capture::Direction::kReceived)
          .empty());
}

TEST(Boundary, CommonPrefixOfStrings) {
  const std::vector<std::string> responses{
      "STATIC-PART|dynamic-one", "STATIC-PART|dynamic-two",
      "STATIC-PART|other"};
  EXPECT_EQ(common_prefix_boundary(responses), 12u);
}

TEST(Boundary, IdenticalStringsShareFullLength) {
  const std::vector<std::string> responses{"same", "same"};
  EXPECT_EQ(common_prefix_boundary(responses), 4u);
}

TEST(Boundary, FewerThanTwoStreamsIsZero) {
  EXPECT_EQ(common_prefix_boundary(std::vector<std::string>{"only"}), 0u);
  EXPECT_EQ(common_prefix_boundary(std::vector<std::string>{}), 0u);
}

TEST(Boundary, NoCommonPrefixIsZero) {
  const std::vector<std::string> responses{"abc", "xyz"};
  EXPECT_EQ(common_prefix_boundary(responses), 0u);
}

TEST(Boundary, TemporalClustersSeparateStaticAndDynamic) {
  TwoNodeOptions opt;
  opt.one_way_delay = 5_ms;  // low RTT: clusters clearly separated
  AnalysisFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(3000);
  fe.dynamic_part = pattern_text(4000);
  fe.fetch_delay = 150_ms;
  const net::FlowId flow = f.run_query(fe);

  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kReceived);
  const auto clusters = temporal_clusters(stream, 50_ms);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].first_offset, 0u);
  EXPECT_EQ(clusters[1].first_offset, 3000u);
  EXPECT_EQ(clusters[0].bytes, 3000u);
  EXPECT_EQ(clusters[1].bytes, 4000u);

  EXPECT_EQ(temporal_boundary_estimate(stream, 50_ms), 3000u);
}

TEST(Boundary, ClustersMergeAtHighRtt) {
  TwoNodeOptions opt;
  opt.one_way_delay = 150_ms;  // RTT 300ms >> fetch delay
  AnalysisFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(20 * 1448);  // multiple windows of static
  fe.dynamic_part = pattern_text(4000);
  fe.fetch_delay = 100_ms;
  const net::FlowId flow = f.run_query(fe);

  const ReassembledStream stream =
      reassemble(f.recorder->trace(), flow, capture::Direction::kReceived);
  // Temporal clustering is only meaningful when the gap threshold exceeds
  // the path RTT (window stalls also pause arrivals for one RTT) — the
  // paper applies it at low RTT for the same reason. With a threshold
  // above the 300ms RTT, static and dynamic lump into one cluster: the
  // paper's "lumped together" regime.
  EXPECT_EQ(temporal_boundary_estimate(stream, 400_ms), 0u);
  // Below the RTT, clustering merely finds congestion-window bursts, not
  // the content boundary.
  const auto clusters = temporal_clusters(stream, 50_ms);
  EXPECT_GT(clusters.size(), 2u);
}

TEST(Timeline, ExtractsModelEventsInOrder) {
  TwoNodeOptions opt;
  opt.one_way_delay = 10_ms;
  AnalysisFixture f(opt);
  MiniFrontEnd fe;
  fe.static_part = pattern_text(4000);
  fe.dynamic_part = pattern_text(6000);
  fe.fetch_delay = 200_ms;
  const net::FlowId flow = f.run_query(fe);

  const QueryTimeline tl =
      extract_timeline(f.recorder->trace(), flow, fe.static_part.size());
  ASSERT_TRUE(tl.valid) << tl.invalid_reason;
  EXPECT_LT(tl.tb, tl.t_synack);
  EXPECT_LE(tl.t_synack, tl.t1);
  EXPECT_LT(tl.t1, tl.t2);
  EXPECT_LE(tl.t2, tl.t3);
  EXPECT_LE(tl.t3, tl.t4);
  EXPECT_LE(tl.t4, tl.t5);
  EXPECT_LE(tl.t5, tl.te);
  EXPECT_NEAR(tl.rtt().to_milliseconds(), 20.0, 1.0);
  // The GET is acked one RTT after t1.
  EXPECT_NEAR((tl.t2 - tl.t1).to_milliseconds(), 20.0, 1.0);
  // The dynamic portion appears ~fetch_delay after the static burst began.
  EXPECT_NEAR((tl.t5 - tl.t3).to_milliseconds(), 200.0, 25.0);
  EXPECT_EQ(tl.response_bytes, 10000u);
}

TEST(Timeline, InvalidWithoutBoundary) {
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = "st";
  fe.dynamic_part = "dy";
  const net::FlowId flow = f.run_query(fe);
  EXPECT_FALSE(extract_timeline(f.recorder->trace(), flow, 0).valid);
  EXPECT_FALSE(extract_timeline(f.recorder->trace(), flow, 9999).valid);
}

TEST(Timeline, InvalidForMissingFlow) {
  AnalysisFixture f;
  const net::FlowId bogus{net::Endpoint{net::NodeId{1}, 1},
                          net::Endpoint{net::NodeId{2}, 2}};
  const QueryTimeline tl = extract_timeline(f.recorder->trace(), bogus, 1);
  EXPECT_FALSE(tl.valid);
  EXPECT_EQ(tl.invalid_reason, "no packets for flow");
}

TEST(Timeline, ExtractAllFindsEveryConnection) {
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(2000);
  fe.dynamic_part = pattern_text(2000);
  fe.install(*f.h.server);
  for (int i = 0; i < 3; ++i) {
    tcp::TcpSocket& s =
        f.h.client->connect({f.h.server_node->id(), kPort}, {});
    s.send_text("GET /q HTTP/1.1\r\n\r\n");
    f.h.simulator.run();
  }
  const auto timelines =
      extract_all_timelines(f.recorder->trace(), kPort, 2000);
  ASSERT_EQ(timelines.size(), 3u);
  for (const auto& tl : timelines) EXPECT_TRUE(tl.valid);
}

TEST(Timeline, CoalescedBoundaryGivesZeroDelta) {
  // Static and dynamic sent back-to-back (fetch finished first): t5 should
  // coincide with (or precede) t4 within one packet.
  AnalysisFixture f;
  MiniFrontEnd fe;
  fe.static_part = pattern_text(1000);
  fe.dynamic_part = pattern_text(1000);
  fe.fetch_delay = SimTime::zero();
  const net::FlowId flow = f.run_query(fe);
  const QueryTimeline tl =
      extract_timeline(f.recorder->trace(), flow, 1000);
  ASSERT_TRUE(tl.valid) << tl.invalid_reason;
  EXPECT_LE((tl.t5 - tl.t4).to_milliseconds(), 0.5);
}

}  // namespace
}  // namespace dyncdn::analysis
