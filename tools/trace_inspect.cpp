// trace_inspect — offline analyzer for saved dyncdn traces.
//
// Packet mode (default):
//   trace_inspect <trace-file> [boundary]
//
// Prints the connections found in a packet capture, reassembles each
// response stream, discovers the static/dynamic boundary by cross-query
// content analysis (when payloads were retained and at least two responses
// exist; otherwise pass the boundary explicitly) and prints the paper's
// timing parameters for every query.
//
// Span mode:
//   trace_inspect spans <trace.json> [--diff=<capture.trace>]
//       [--boundary=N] [--node=NAME] [--tree]
//
// Reads a Chrome trace_event file written by --trace-out, prints the span
// tree (per-query Fig. 2 timelines), and — with --diff — reconstructs each
// query's tb/t_synack/t1..te from the tcp.flow span events and compares
// them against the packet-capture analysis pipeline at tolerance 0: the
// two observation paths (in-process spans vs. offline tcpdump-style
// analysis) must agree on every timestamp, bit for bit.
//
// Attribution mode:
//   trace_inspect attribution <trace.json> [--diff=<capture.trace>]
//       [--boundary=N]
//
// Runs the per-query latency attribution reducer over the span forest and
// prints per-component percentiles (dns/connect/uplink/fe wait/fetch/
// delivery). With --diff, every attributed query's anchors and component
// sum are checked against the packet-capture analysis at tolerance 0.
//
// Time-series mode:
//   trace_inspect timeseries <series.csv|series.json>
//
// Summarizes a --ts-out export: per-channel min/mean/max over the tick
// range.
//
// Slow-query mode:
//   trace_inspect slow <slow.json> [--tree]
//
// Pretty-prints a --slow-log flight-recorder dump; --tree includes each
// promoted query's retained span subtree.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/boundary.hpp"
#include "analysis/reassembly.hpp"
#include "analysis/span_attribution.hpp"
#include "analysis/timeline.hpp"
#include "capture/serialize.hpp"
#include "capture/spill.hpp"
#include "core/inference.hpp"
#include "core/timings.hpp"
#include "obs/attribution.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

using namespace dyncdn;

namespace {

// ---------------------------------------------------------------------------
// Span mode
// ---------------------------------------------------------------------------

struct SpanNode {
  std::int64_t id = 0;
  std::int64_t parent = 0;
  std::string name;
  std::string cat;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  /// Pretty-printable args (export order), minus the structural ones.
  std::vector<std::pair<std::string, std::string>> args;

  struct Event {
    std::string name;
    std::int64_t at_ns = 0;
    std::int64_t off = -1;  // rx events: stream offset
    std::int64_t len = -1;  // rx events: payload length
  };
  std::vector<Event> events;
  std::vector<std::size_t> children;
};

std::string arg_to_string(const obs::json::Value& v) {
  using Type = obs::json::Value::Type;
  switch (v.type) {
    case Type::kString:
      return "\"" + v.string + "\"";
    case Type::kNumber: {
      if (v.is_integer) return std::to_string(v.integer);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v.number);
      return buf;
    }
    case Type::kBool:
      return v.boolean ? "true" : "false";
    default:
      return "?";
  }
}

/// Parse the traceEvents array into a span forest. Returns false on
/// malformed input.
bool load_spans(const std::string& path, std::vector<SpanNode>& nodes,
                std::vector<std::size_t>& roots) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json::parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return false;
  }
  const obs::json::Value* events = doc->get("traceEvents");
  if (!events || !events->is_array()) {
    std::fprintf(stderr, "error: no traceEvents array in %s\n", path.c_str());
    return false;
  }

  std::map<std::int64_t, std::size_t> by_id;
  for (const obs::json::Value& ev : events->array) {
    const obs::json::Value* ph = ev.get("ph");
    const obs::json::Value* jargs = ev.get("args");
    if (!ph || !jargs) continue;
    if (ph->as_string() == "X") {
      SpanNode n;
      if (const auto* v = ev.get("name")) n.name = v->as_string();
      if (const auto* v = ev.get("cat")) n.cat = v->as_string();
      if (const auto* v = jargs->get("span_id")) n.id = v->as_int();
      if (const auto* v = jargs->get("parent")) n.parent = v->as_int();
      if (const auto* v = jargs->get("start_ns")) n.start_ns = v->as_int();
      if (const auto* v = jargs->get("end_ns")) n.end_ns = v->as_int();
      for (const auto& [key, val] : jargs->object) {
        if (key == "span_id" || key == "parent" || key == "start_ns" ||
            key == "end_ns" || key == "open") {
          continue;
        }
        n.args.emplace_back(key, arg_to_string(val));
      }
      by_id[n.id] = nodes.size();
      nodes.push_back(std::move(n));
    } else if (ph->as_string() == "i") {
      SpanNode::Event e;
      if (const auto* v = ev.get("name")) e.name = v->as_string();
      if (const auto* v = jargs->get("at_ns")) e.at_ns = v->as_int();
      if (const auto* v = jargs->get("off")) e.off = v->as_int();
      if (const auto* v = jargs->get("len")) e.len = v->as_int();
      const obs::json::Value* sid = jargs->get("span_id");
      if (!sid) continue;
      const auto it = by_id.find(sid->as_int());
      if (it != by_id.end()) nodes[it->second].events.push_back(std::move(e));
    }
  }

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto it = by_id.find(nodes[i].parent);
    if (nodes[i].parent != 0 && it != by_id.end()) {
      nodes[it->second].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  return true;
}

void print_span(const std::vector<SpanNode>& nodes, std::size_t idx,
                int depth) {
  const SpanNode& n = nodes[idx];
  std::printf("%*s[%s] %s  %.6f ms  +%.6f ms", depth * 2, "", n.cat.c_str(),
              n.name.c_str(), static_cast<double>(n.start_ns) / 1e6,
              static_cast<double>(n.end_ns - n.start_ns) / 1e6);
  for (const auto& [key, val] : n.args) {
    std::printf("  %s=%s", key.c_str(), val.c_str());
  }
  std::printf("\n");
  for (const SpanNode::Event& e : n.events) {
    std::printf("%*s. %s @%.6f ms", depth * 2 + 2, "", e.name.c_str(),
                static_cast<double>(e.at_ns) / 1e6);
    if (e.off >= 0) {
      std::printf(" off=%" PRId64 " len=%" PRId64, e.off, e.len);
    }
    std::printf("\n");
  }
  for (const std::size_t c : n.children) print_span(nodes, c, depth + 1);
}

/// Timeline reconstructed from one tcp.flow span, for the --diff check.
struct SpanTimeline {
  std::string node_name;  // from the parent query span
  std::uint64_t local_port = 0;
  analysis::QueryTimeline tl;
};

std::vector<SpanTimeline> reconstruct_timelines(
    const std::vector<SpanNode>& nodes, std::size_t boundary) {
  std::map<std::int64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < nodes.size(); ++i) by_id[nodes[i].id] = i;

  std::vector<SpanTimeline> out;
  for (const SpanNode& n : nodes) {
    if (n.name != "tcp.flow") continue;
    SpanTimeline st;
    for (const auto& [key, val] : n.args) {
      if (key == "local_port") {
        st.local_port = std::strtoull(val.c_str(), nullptr, 10);
      }
    }
    const auto pit = by_id.find(n.parent);
    if (pit != by_id.end()) {
      for (const auto& [key, val] : nodes[pit->second].args) {
        // Strip the quotes arg_to_string added around the string value.
        if (key == "node" && val.size() >= 2) {
          st.node_name = val.substr(1, val.size() - 2);
        }
      }
    }

    bool saw_syn = false, saw_synack = false, saw_t1 = false, saw_t2 = false;
    std::vector<analysis::ReassembledStream::Segment> segments;
    for (const SpanNode::Event& e : n.events) {
      const sim::SimTime at = sim::SimTime::nanoseconds(e.at_ns);
      if (e.name == "syn" && !saw_syn) {
        st.tl.tb = at;
        saw_syn = true;
      } else if (e.name == "synack" && !saw_synack) {
        st.tl.t_synack = at;
        saw_synack = true;
      } else if (e.name == "tx_data" && !saw_t1) {
        st.tl.t1 = at;
        saw_t1 = true;
      } else if (e.name == "ack_data" && !saw_t2) {
        st.tl.t2 = at;
        saw_t2 = true;
      } else if (e.name == "rx" && e.off >= 0 && e.len > 0) {
        segments.push_back(analysis::ReassembledStream::Segment{
            static_cast<std::size_t>(e.off), static_cast<std::size_t>(e.len),
            at});
      }
    }
    if (!saw_syn || !saw_synack || !saw_t1 || !saw_t2) {
      st.tl.invalid_reason = "incomplete handshake/request events";
      out.push_back(std::move(st));
      continue;
    }
    // The exact same data-plane analysis the packet pipeline runs.
    const auto stream =
        analysis::ReassembledStream::from_segments(std::move(segments));
    analysis::finish_timeline_from_stream(st.tl, stream, boundary);
    out.push_back(std::move(st));
  }
  return out;
}

int diff_against_capture(const std::vector<SpanNode>& nodes,
                         const std::string& capture_path,
                         std::size_t boundary, const std::string& node_name) {
  capture::PacketTrace trace;
  try {
    trace = capture::load_trace(capture_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const capture::PacketTrace web = trace.filter_remote_port(80);

  if (boundary == 0) {
    std::vector<std::string> responses;
    for (const auto& flow : web.flows()) {
      auto stream =
          analysis::reassemble(web, flow, capture::Direction::kReceived);
      if (!stream.bytes().empty()) responses.push_back(stream.bytes());
    }
    if (responses.size() >= 2) {
      boundary = analysis::common_prefix_boundary(responses);
    }
  }
  if (boundary == 0) {
    std::fprintf(stderr,
                 "diff: no boundary available (trace lacks payloads); pass "
                 "--boundary=N\n");
    return 1;
  }

  std::vector<SpanTimeline> span_tls = reconstruct_timelines(nodes, boundary);
  const auto capture_tls = analysis::extract_all_timelines(web, 80, boundary);

  std::size_t compared = 0, mismatches = 0, unmatched = 0;
  for (const auto& ct : capture_tls) {
    if (!ct.valid) continue;
    const SpanTimeline* match = nullptr;
    bool ambiguous = false;
    for (const SpanTimeline& st : span_tls) {
      if (st.local_port != ct.flow.local.port) continue;
      if (!node_name.empty() && st.node_name != node_name) continue;
      if (st.tl.tb != ct.tb) continue;  // same port on another vantage point
      if (match) ambiguous = true;
      match = &st;
    }
    if (!match || ambiguous) {
      std::printf("port %u: %s\n", ct.flow.local.port,
                  ambiguous ? "AMBIGUOUS (pass --node=NAME)" : "NO SPAN");
      ++unmatched;
      continue;
    }
    ++compared;
    const analysis::QueryTimeline& st = match->tl;
    const struct {
      const char* name;
      sim::SimTime span, capture;
    } checks[] = {
        {"tb", st.tb, ct.tb},       {"t_synack", st.t_synack, ct.t_synack},
        {"t1", st.t1, ct.t1},       {"t2", st.t2, ct.t2},
        {"t3", st.t3, ct.t3},       {"t4", st.t4, ct.t4},
        {"t5", st.t5, ct.t5},       {"te", st.te, ct.te},
    };
    bool ok = st.valid == ct.valid;
    for (const auto& c : checks) ok = ok && c.span == c.capture;
    if (ok) {
      std::printf("port %u: OK  %s\n", ct.flow.local.port,
                  ct.to_string().c_str());
      continue;
    }
    ++mismatches;
    std::printf("port %u: MISMATCH\n", ct.flow.local.port);
    for (const auto& c : checks) {
      if (c.span != c.capture) {
        std::printf("  %-9s span=%" PRId64 "ns capture=%" PRId64 "ns\n",
                    c.name, c.span.ns(), c.capture.ns());
      }
    }
  }
  std::printf("diff: %zu compared, %zu mismatched, %zu unmatched "
              "(boundary=%zu, tolerance=0)\n",
              compared, mismatches, unmatched, boundary);
  if (compared == 0) {
    std::fprintf(stderr, "diff: nothing compared\n");
    return 1;
  }
  return (mismatches == 0 && unmatched == 0) ? 0 : 1;
}

int inspect_spans(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_inspect spans <trace.json> "
                 "[--diff=<capture.trace>] [--boundary=N] [--node=NAME] "
                 "[--tree]\n");
    return 2;
  }
  const std::string json_path = argv[2];
  std::string diff_path, node_name;
  std::size_t boundary = 0;
  bool tree = false;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--diff=")) {
      diff_path = arg.substr(7);
    } else if (arg.starts_with("--boundary=")) {
      boundary = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (arg.starts_with("--node=")) {
      node_name = arg.substr(7);
    } else if (arg == "--tree") {
      tree = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<SpanNode> nodes;
  std::vector<std::size_t> roots;
  if (!load_spans(json_path, nodes, roots)) return 1;
  std::printf("spans: %zu total, %zu roots\n", nodes.size(), roots.size());

  if (tree || diff_path.empty()) {
    for (const std::size_t r : roots) print_span(nodes, r, 0);
  }
  if (!diff_path.empty()) {
    return diff_against_capture(nodes, diff_path, boundary, node_name);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Attribution mode
// ---------------------------------------------------------------------------

obs::ArgValue typed_arg(const obs::json::Value& v) {
  using Type = obs::json::Value::Type;
  switch (v.type) {
    case Type::kString:
      return obs::ArgValue::of(v.string);
    case Type::kNumber:
      if (v.is_integer) return obs::ArgValue::of(v.integer);
      return obs::ArgValue::of(v.number);
    case Type::kBool:
      return obs::ArgValue::of(static_cast<std::int64_t>(v.boolean));
    default:
      return obs::ArgValue::of(std::int64_t{0});
  }
}

bool structural_span_key(const std::string& key) {
  return key == "span_id" || key == "parent" || key == "start_ns" ||
         key == "end_ns" || key == "open" || key == "at_ns";
}

/// Parse a Chrome trace_event file back into the SpanRecord shape the
/// in-process reducers consume, typed args included.
bool load_span_records(const std::string& path,
                       std::vector<obs::SpanRecord>& records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json::parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return false;
  }
  const obs::json::Value* events = doc->get("traceEvents");
  if (!events || !events->is_array()) {
    std::fprintf(stderr, "error: no traceEvents array in %s\n", path.c_str());
    return false;
  }

  std::map<std::int64_t, std::size_t> by_id;
  for (const obs::json::Value& ev : events->array) {
    const obs::json::Value* ph = ev.get("ph");
    const obs::json::Value* jargs = ev.get("args");
    if (!ph || !jargs) continue;
    if (ph->as_string() == "X") {
      obs::SpanRecord r;
      if (const auto* v = ev.get("name")) r.name = v->as_string();
      if (const auto* v = ev.get("cat")) r.category = v->as_string();
      if (const auto* v = jargs->get("span_id")) {
        r.id = static_cast<obs::SpanId>(v->as_int());
      }
      if (const auto* v = jargs->get("parent")) {
        r.parent = static_cast<obs::SpanId>(v->as_int());
      }
      if (const auto* v = jargs->get("start_ns")) {
        r.start = sim::SimTime::nanoseconds(v->as_int());
      }
      if (const auto* v = jargs->get("end_ns")) {
        r.end = sim::SimTime::nanoseconds(v->as_int());
      }
      r.open = jargs->get("open") != nullptr;
      for (const auto& [key, val] : jargs->object) {
        if (structural_span_key(key)) continue;
        r.args.push_back(obs::Arg{key, typed_arg(val)});
      }
      by_id[static_cast<std::int64_t>(r.id)] = records.size();
      records.push_back(std::move(r));
    } else if (ph->as_string() == "i") {
      const obs::json::Value* sid = jargs->get("span_id");
      if (!sid) continue;
      const auto it = by_id.find(sid->as_int());
      if (it == by_id.end()) continue;
      obs::SpanEvent e;
      if (const auto* v = ev.get("name")) e.name = v->as_string();
      if (const auto* v = jargs->get("at_ns")) {
        e.at = sim::SimTime::nanoseconds(v->as_int());
      }
      for (const auto& [key, val] : jargs->object) {
        if (structural_span_key(key)) continue;
        e.args.push_back(obs::Arg{key, typed_arg(val)});
      }
      records[it->second].events.push_back(std::move(e));
    }
  }
  return true;
}

/// Content-analysis boundary from a capture file (0 when unavailable).
std::size_t boundary_from_capture(const capture::PacketTrace& web) {
  std::vector<std::string> responses;
  for (const auto& flow : web.flows()) {
    auto stream =
        analysis::reassemble(web, flow, capture::Direction::kReceived);
    if (!stream.bytes().empty()) responses.push_back(stream.bytes());
  }
  return responses.size() >= 2 ? analysis::common_prefix_boundary(responses)
                               : 0;
}

void print_attribution_table(const obs::QueryAttribution& attribution) {
  std::printf("queries=%" PRIu64 " reconcile_failures=%" PRIu64
              " skipped=%" PRIu64 "\n",
              attribution.queries(), attribution.reconcile_failures(),
              attribution.skipped());
  std::printf("%-20s%8s%12s%12s%12s%12s\n", "component", "count", "mean_ms",
              "p50_ms", "p99_ms", "p999_ms");
  for (const std::string& name : obs::QueryAttribution::component_names()) {
    const obs::Histogram* h = attribution.registry().histogram(name);
    // Zero-count components still get a row (count 0) so the table layout
    // matches the BENCH.json schema: every component, every run.
    const std::uint64_t count = h != nullptr ? h->count() : 0;
    if (count == 0) {
      std::printf("%-20s%8" PRIu64 "%12s%12s%12s%12s\n", name.c_str(), count,
                  "-", "-", "-", "-");
      continue;
    }
    std::printf("%-20s%8" PRIu64 "%12.3f%12.3f%12.3f%12.3f\n", name.c_str(),
                count, h->sum() / static_cast<double>(h->count()),
                h->quantile(0.50), h->quantile(0.99), h->quantile(0.999));
  }
}

/// Check every attributed query against the packet-capture pipeline:
/// anchors t2/t5 must match some capture timeline exactly, and the
/// component sum must telescope to t5 - t2 in integer nanoseconds.
int diff_attribution(const analysis::SpanAttributionResult& result,
                     const std::string& capture_path, std::size_t boundary) {
  capture::PacketTrace trace;
  try {
    trace = capture::load_trace(capture_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const capture::PacketTrace web = trace.filter_remote_port(80);
  const auto capture_tls = analysis::extract_all_timelines(web, 80, boundary);

  std::size_t compared = 0, mismatches = 0;
  for (const analysis::AttributedQuery& q : result.queries) {
    const obs::QueryAttribution::Sample& s = q.sample;
    const analysis::QueryTimeline* match = nullptr;
    for (const auto& ct : capture_tls) {
      if (ct.valid && ct.t1.ns() == s.t1 && ct.tb.ns() == s.tb) {
        match = &ct;
        break;
      }
    }
    if (match == nullptr) continue;  // capture covers one vantage point
    ++compared;
    // Anchor collapse mirrors QueryAttribution::observe.
    const std::int64_t a0 = s.t1;
    const std::int64_t a1 = s.fe_recv >= 0 ? s.fe_recv : a0;
    const std::int64_t a2 = s.fetch_start >= 0 ? s.fetch_start : a1;
    const std::int64_t a3 = s.fetch_first_byte >= 0 ? s.fetch_first_byte : a2;
    const std::int64_t sum = (a1 - a0) + (a2 - a1) + (a3 - a2) +
                             (s.t5 - a3) - (s.t2 - s.t1);
    const std::int64_t capture_t_dynamic = match->t5.ns() - match->t2.ns();
    if (s.t2 != match->t2.ns() || s.t5 != match->t5.ns() ||
        sum != capture_t_dynamic) {
      ++mismatches;
      std::printf("node %s: MISMATCH span(t2=%" PRId64 " t5=%" PRId64
                  " sum=%" PRId64 ") capture(t2=%" PRId64 " t5=%" PRId64
                  " t_dynamic=%" PRId64 ")\n",
                  q.node.c_str(), s.t2, s.t5, sum, match->t2.ns(),
                  match->t5.ns(), capture_t_dynamic);
    }
  }
  std::printf("attribution diff: %zu compared, %zu mismatched "
              "(boundary=%zu, tolerance=0)\n",
              compared, mismatches, boundary);
  if (compared == 0) {
    std::fprintf(stderr, "attribution diff: nothing compared\n");
    return 1;
  }
  return mismatches == 0 ? 0 : 1;
}

int inspect_attribution(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_inspect attribution <trace.json> "
                 "[--diff=<capture.trace>] [--boundary=N]\n");
    return 2;
  }
  const std::string json_path = argv[2];
  std::string diff_path;
  std::size_t boundary = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--diff=")) {
      diff_path = arg.substr(7);
    } else if (arg.starts_with("--boundary=")) {
      boundary = std::strtoull(argv[i] + 11, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::vector<obs::SpanRecord> records;
  if (!load_span_records(json_path, records)) return 1;

  if (boundary == 0 && !diff_path.empty()) {
    try {
      const capture::PacketTrace trace = capture::load_trace(diff_path);
      boundary = boundary_from_capture(trace.filter_remote_port(80));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (boundary == 0) {
    // Span-only invocation: recover the static/dynamic split from the
    // FE's static_flush byte stamp instead of requiring a capture.
    boundary = analysis::boundary_from_spans(records);
    if (boundary != 0) {
      std::printf("boundary %zu (from static_flush spans)\n", boundary);
    } else {
      std::fprintf(stderr,
                   "warning: no boundary (no --boundary=, no --diff "
                   "capture, no static_flush byte stamps); every query "
                   "will be skipped\n");
    }
  }

  const analysis::SpanAttributionResult result =
      analysis::extract_attribution(records, boundary);
  obs::QueryAttribution attribution;
  for (const double ms : result.dns_ms) attribution.observe_dns_ms(ms);
  for (std::size_t i = 0; i < result.skipped; ++i) attribution.skip();
  for (const analysis::AttributedQuery& q : result.queries) {
    attribution.observe(q.sample);
  }
  print_attribution_table(attribution);

  if (!diff_path.empty()) {
    return diff_attribution(result, diff_path, boundary);
  }
  return attribution.reconcile_failures() == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Time-series mode
// ---------------------------------------------------------------------------

struct SeriesColumn {
  std::string name;
  std::vector<double> values;
};

void print_series_summary(const std::vector<std::uint64_t>& ticks,
                          const std::vector<SeriesColumn>& columns) {
  std::printf("ticks: %zu", ticks.size());
  if (!ticks.empty()) {
    std::printf(" (%" PRIu64 "..%" PRIu64 ")", ticks.front(), ticks.back());
  }
  std::printf("\n%-28s%12s%12s%12s\n", "channel", "min", "mean", "max");
  for (const SeriesColumn& c : columns) {
    if (c.values.empty()) continue;
    double lo = c.values.front(), hi = c.values.front(), sum = 0.0;
    for (const double v : c.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    std::printf("%-28s%12.3f%12.3f%12.3f\n", c.name.c_str(), lo,
                sum / static_cast<double>(c.values.size()), hi);
  }
}

int inspect_timeseries(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_inspect timeseries <series.csv|series.json>\n");
    return 2;
  }
  const std::string path = argv[2];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::vector<std::uint64_t> ticks;
  std::vector<SeriesColumn> columns;

  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    std::stringstream lines(text);
    std::string line;
    bool header = true;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::stringstream cells(line);
      std::string cell;
      std::size_t col = 0;
      while (std::getline(cells, cell, ',')) {
        if (header) {
          // Columns 0/1 are tick,time_ms; the rest are channels.
          if (col >= 2) columns.push_back(SeriesColumn{cell, {}});
        } else if (col == 0) {
          ticks.push_back(std::strtoull(cell.c_str(), nullptr, 10));
        } else if (col >= 2 && col - 2 < columns.size()) {
          columns[col - 2].values.push_back(
              std::strtod(cell.c_str(), nullptr));
        }
        ++col;
      }
      header = false;
    }
  } else {
    const auto doc = obs::json::parse(text);
    if (!doc) {
      std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
      return 1;
    }
    if (const auto* jticks = doc->get("ticks"); jticks && jticks->is_array()) {
      for (const auto& t : jticks->array) {
        ticks.push_back(static_cast<std::uint64_t>(t.as_int()));
      }
    }
    if (const auto* chans = doc->get("channels");
        chans && chans->is_object()) {
      for (const auto& [name, vals] : chans->object) {
        SeriesColumn c{name, {}};
        for (const auto& v : vals.array) c.values.push_back(v.as_double());
        columns.push_back(std::move(c));
      }
    }
    if (const auto* v = doc->get("interval_ns")) {
      std::printf("interval: %.3f ms\n",
                  static_cast<double>(v->as_int()) / 1e6);
    }
  }
  print_series_summary(ticks, columns);
  return 0;
}

// ---------------------------------------------------------------------------
// Slow-query mode
// ---------------------------------------------------------------------------

/// Rebuild the span-tree view from a flight-recorder dump entry (the
/// entry's spans use the same field names as the Chrome exporter's args).
void collect_slow_spans(const obs::json::Value& jspans,
                        std::vector<SpanNode>& nodes,
                        std::vector<std::size_t>& roots) {
  std::map<std::int64_t, std::size_t> by_id;
  for (const obs::json::Value& js : jspans.array) {
    SpanNode n;
    if (const auto* v = js.get("id")) n.id = v->as_int();
    if (const auto* v = js.get("parent")) n.parent = v->as_int();
    if (const auto* v = js.get("name")) n.name = v->as_string();
    if (const auto* v = js.get("cat")) n.cat = v->as_string();
    if (const auto* v = js.get("start_ns")) n.start_ns = v->as_int();
    if (const auto* v = js.get("end_ns")) n.end_ns = v->as_int();
    if (const auto* jargs = js.get("args"); jargs && jargs->is_object()) {
      for (const auto& [key, val] : jargs->object) {
        n.args.emplace_back(key, arg_to_string(val));
      }
    }
    if (const auto* jevents = js.get("events");
        jevents && jevents->is_array()) {
      for (const auto& je : jevents->array) {
        SpanNode::Event e;
        if (const auto* v = je.get("name")) e.name = v->as_string();
        if (const auto* v = je.get("at_ns")) e.at_ns = v->as_int();
        if (const auto* ja = je.get("args"); ja && ja->is_object()) {
          if (const auto* v = ja->get("off")) e.off = v->as_int();
          if (const auto* v = ja->get("len")) e.len = v->as_int();
        }
        n.events.push_back(std::move(e));
      }
    }
    by_id[n.id] = nodes.size();
    nodes.push_back(std::move(n));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto it = by_id.find(nodes[i].parent);
    if (nodes[i].parent != 0 && it != by_id.end()) {
      nodes[it->second].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
}

int inspect_slow(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_inspect slow <slow.json> [--tree]\n");
    return 2;
  }
  const std::string path = argv[2];
  bool tree = false;
  for (int i = 3; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--tree") {
      tree = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const auto doc = obs::json::parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "error: %s is not valid JSON\n", path.c_str());
    return 1;
  }
  std::printf("observed: %" PRId64 " queries, trigger threshold %.3f ms\n",
              doc->get("observed") ? doc->get("observed")->as_int() : 0,
              doc->get("threshold_ms") ? doc->get("threshold_ms")->as_double()
                                       : 0.0);
  const obs::json::Value* slow = doc->get("slow");
  if (!slow || !slow->is_array()) {
    std::fprintf(stderr, "error: no slow array in %s\n", path.c_str());
    return 1;
  }
  std::printf("slow queries: %zu\n", slow->array.size());
  for (const obs::json::Value& e : slow->array) {
    const auto* node = e.get("node");
    const auto* keyword = e.get("keyword");
    std::printf("- %s \"%s\"  t_dynamic=%.3f ms  threshold=%.3f ms  "
                "end=%.3f ms\n",
                node ? node->as_string().c_str() : "?",
                keyword ? keyword->as_string().c_str() : "?",
                e.get("t_dynamic_ms") ? e.get("t_dynamic_ms")->as_double()
                                      : 0.0,
                e.get("threshold_ms") ? e.get("threshold_ms")->as_double()
                                      : 0.0,
                e.get("end_ns")
                    ? static_cast<double>(e.get("end_ns")->as_int()) / 1e6
                    : 0.0);
    if (tree) {
      if (const auto* jspans = e.get("spans");
          jspans && jspans->is_array()) {
        std::vector<SpanNode> nodes;
        std::vector<std::size_t> roots;
        collect_slow_spans(*jspans, nodes, roots);
        for (const std::size_t r : roots) print_span(nodes, r, 1);
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Packet mode (the original tool)
// ---------------------------------------------------------------------------

int inspect_packets(int argc, char** argv) {
  capture::PacketTrace trace;
  try {
    trace = capture::load_trace(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("trace: %zu packets captured at node %u\n", trace.size(),
              trace.node().value());

  const capture::PacketTrace web = trace.filter_remote_port(80);
  const auto flows = web.flows();
  std::printf("web connections: %zu\n", flows.size());

  // Boundary: explicit argument, or content analysis over the responses.
  std::size_t boundary =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;
  if (boundary == 0) {
    std::vector<std::string> responses;
    for (const auto& flow : flows) {
      auto stream =
          analysis::reassemble(web, flow, capture::Direction::kReceived);
      if (!stream.bytes().empty()) responses.push_back(stream.bytes());
    }
    if (responses.size() >= 2) {
      boundary = analysis::common_prefix_boundary(responses);
      std::printf("content analysis: static portion = %zu bytes "
                  "(from %zu responses)\n",
                  boundary, responses.size());
    }
  }
  if (boundary == 0) {
    std::fprintf(stderr,
                 "no boundary available: trace lacks payloads or enough "
                 "responses; pass one explicitly.\n");
    return 1;
  }

  std::printf("\nquery\trtt_ms\tt_static_ms\tt_dynamic_ms\tt_delta_ms\t"
              "overall_ms\tfetch_lower\tfetch_upper\n");
  const auto timelines = analysis::extract_all_timelines(web, 80, boundary);
  std::size_t idx = 0;
  for (const auto& tl : timelines) {
    ++idx;
    const auto q = core::timings_from_timeline(tl);
    if (!q) {
      std::printf("%zu\tinvalid: %s\n", idx, tl.invalid_reason.c_str());
      continue;
    }
    const auto bounds = core::fetch_bounds(*q);
    std::printf("%zu\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", idx,
                q->rtt_ms, q->t_static_ms, q->t_dynamic_ms, q->t_delta_ms,
                q->overall_ms, bounds.lower_ms, bounds.upper_ms);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Convert mode: text <-> binary .dtrc
// ---------------------------------------------------------------------------

int convert_trace(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: trace_inspect convert <in> <out>\n"
                         "  input format is sniffed (.dtrc magic vs text);\n"
                         "  output format follows the output extension\n"
                         "  (.dtrc = binary, anything else = text)\n");
    return 2;
  }
  const std::string in = argv[2];
  const std::string out = argv[3];
  try {
    const capture::PacketTrace trace = capture::load_trace(in);
    const std::string_view out_view = out;
    if (out_view.ends_with(".dtrc")) {
      capture::save_trace_dtrc(trace, out);
    } else {
      capture::save_trace(trace, out);
    }
    std::fprintf(stderr, "converted %s -> %s (%zu records)\n", in.c_str(),
                 out.c_str(), trace.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_inspect <trace-file> [boundary]\n"
                 "         packet capture analysis; reads the text format "
                 "or binary .dtrc\n"
                 "       trace_inspect convert <in> <out>\n"
                 "         translate a capture between text and binary "
                 ".dtrc (by output extension)\n"
                 "       trace_inspect spans <trace.json> "
                 "[--diff=<capture.trace>] [--boundary=N] [--node=NAME] "
                 "[--tree]\n"
                 "       trace_inspect attribution <trace.json> "
                 "[--diff=<capture.trace>] [--boundary=N]\n"
                 "       trace_inspect timeseries <series.csv|series.json>\n"
                 "       trace_inspect slow <slow.json> [--tree]\n");
    return 2;
  }
  if (std::strcmp(argv[1], "convert") == 0) return convert_trace(argc, argv);
  if (std::strcmp(argv[1], "spans") == 0) return inspect_spans(argc, argv);
  if (std::strcmp(argv[1], "attribution") == 0) {
    return inspect_attribution(argc, argv);
  }
  if (std::strcmp(argv[1], "timeseries") == 0) {
    return inspect_timeseries(argc, argv);
  }
  if (std::strcmp(argv[1], "slow") == 0) return inspect_slow(argc, argv);
  return inspect_packets(argc, argv);
}
