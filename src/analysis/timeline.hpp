// Per-query packet-event timeline extraction (the paper's Fig. 2 model).
//
// From a client-side capture of one query connection, recover:
//   tb       first SYN sent (session start)
//   t_synack SYN-ACK received (tb + RTT)
//   t1       HTTP GET sent
//   t2       server's ACK of the GET received (t1 + RTT)
//   t3       first response-data packet received
//   t4       delivery of the static portion complete (needs the boundary)
//   t5       first packet carrying dynamic content received
//   te       last response-data packet received
#pragma once

#include <optional>
#include <string>

#include "analysis/reassembly.hpp"
#include "capture/trace.hpp"
#include "net/address.hpp"
#include "sim/time.hpp"

namespace dyncdn::analysis {

struct QueryTimeline {
  net::FlowId flow;
  bool valid = false;          // all required events observed
  std::string invalid_reason;

  sim::SimTime tb;       // SYN sent
  sim::SimTime t_synack; // SYN-ACK received
  sim::SimTime t1;       // GET sent
  sim::SimTime t2;       // ACK of GET received
  sim::SimTime t3;       // first data packet
  sim::SimTime t4;       // static portion fully delivered
  sim::SimTime t5;       // first dynamic-content packet
  sim::SimTime te;       // last data packet

  std::size_t response_bytes = 0;  // total response stream length
  std::size_t boundary = 0;        // static/dynamic split used

  /// Handshake RTT estimate (t_synack - tb), the x-axis of Figs. 5-7.
  sim::SimTime rtt() const { return t_synack - tb; }

  std::string to_string() const;
};

/// Extract the timeline for `flow` from a client-side trace, splitting the
/// response at `boundary` stream bytes (from common_prefix_boundary()).
/// The trace must contain the connection's handshake and data packets.
QueryTimeline extract_timeline(const capture::PacketTrace& trace,
                               const net::FlowId& flow, std::size_t boundary);

/// Fill the response-data events (t3, t4, t5, te) of `tl` from an
/// already-reassembled receive stream, including the packet-granularity
/// boundary snap, and set `tl.valid`. The control events (tb, t_synack,
/// t1, t2) must already be set by the caller. Shared by extract_timeline
/// and the span-based reconstruction in the observability tooling, so both
/// paths agree bit-for-bit.
void finish_timeline_from_stream(QueryTimeline& tl,
                                 const ReassembledStream& stream,
                                 std::size_t boundary);

/// Extract timelines for every flow in the trace towards `server_port`
/// (one per query connection), e.g. all port-80 connections of a node.
std::vector<QueryTimeline> extract_all_timelines(
    const capture::PacketTrace& trace, net::Port server_port,
    std::size_t boundary);

}  // namespace dyncdn::analysis
