# Empty dependencies file for dyncdn_search.
# This may be replaced when dependencies are built.
