file(REMOVE_RECURSE
  "CMakeFiles/dyncdn_capture.dir/recorder.cpp.o"
  "CMakeFiles/dyncdn_capture.dir/recorder.cpp.o.d"
  "CMakeFiles/dyncdn_capture.dir/serialize.cpp.o"
  "CMakeFiles/dyncdn_capture.dir/serialize.cpp.o.d"
  "CMakeFiles/dyncdn_capture.dir/trace.cpp.o"
  "CMakeFiles/dyncdn_capture.dir/trace.cpp.o.d"
  "libdyncdn_capture.a"
  "libdyncdn_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyncdn_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
