#include "net/address.hpp"

#include <cstdio>

namespace dyncdn::net {

std::string Endpoint::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u:%u", node.value(),
                static_cast<unsigned>(port));
  return buf;
}

std::string FlowId::to_string() const {
  return local.to_string() + "->" + remote.to_string();
}

}  // namespace dyncdn::net
