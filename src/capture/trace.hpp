// tcpdump-like packet traces.
//
// The paper collects "detailed TCPdump with full application-layer
// payloads" at each measurement node and performs all analysis offline on
// those traces. We mirror that: a TraceRecorder taps a node, producing a
// PacketTrace of timestamped records (optionally retaining payload bytes);
// the analysis module consumes *only* these traces — never simulator
// internals — so the inference pipeline has no oracle access.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace dyncdn::capture {

enum class Direction : std::uint8_t { kSent, kReceived };

inline const char* to_string(Direction d) {
  return d == Direction::kSent ? "snd" : "rcv";
}

/// One captured packet event at a node.
struct PacketRecord {
  sim::SimTime timestamp;
  Direction direction = Direction::kSent;
  net::NodeId src;
  net::NodeId dst;
  net::TcpHeader tcp;
  std::size_t payload_size = 0;
  /// Retained payload bytes (empty when the recorder captures headers only).
  net::PayloadRef payload;

  /// The flow as seen by the capturing node (local endpoint first).
  net::FlowId flow_at_capture_node() const;

  /// tcpdump-ish one-liner: "12.345ms rcv 5:80 -> 2:40001 seq=.. ..."
  std::string to_string() const;
};

/// An ordered sequence of packet records captured at one node.
class PacketTrace {
 public:
  explicit PacketTrace(net::NodeId node = {}) : node_(node) {}

  void add(PacketRecord record) {
    retained_bytes_ += record_bytes(record);
    records_.push_back(std::move(record));
  }

  net::NodeId node() const { return node_; }
  const std::vector<PacketRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() {
    records_.clear();
    retained_bytes_ = 0;
  }

  /// Deterministic accounting of what this trace holds: per-record
  /// bookkeeping plus retained payload bytes. Independent of allocator or
  /// thread count, unlike the obs/memory.hpp tracker, so it is safe to
  /// surface through merged experiment metrics.
  std::size_t retained_bytes() const { return retained_bytes_; }

  static std::size_t record_bytes(const PacketRecord& r) {
    return sizeof(PacketRecord) + r.payload.length;
  }

  /// Records matching a predicate, preserving order.
  PacketTrace filter(
      const std::function<bool(const PacketRecord&)>& pred) const;

  /// Records belonging to one TCP connection (either direction).
  PacketTrace filter_flow(const net::FlowId& flow) const;

  /// Records whose remote endpoint uses the given port (e.g. 80 selects
  /// all web traffic regardless of ephemeral client port).
  PacketTrace filter_remote_port(net::Port port) const;

  /// All records grouped by connection (flow keyed from the capture node's
  /// perspective), in order of first appearance, built in one pass.
  /// Optionally keeps only flows whose remote endpoint uses `remote_port`.
  /// Per-connection analysis over a long trace should prefer this to
  /// filter_flow() per flow, which rescans the whole trace each time.
  std::vector<std::pair<net::FlowId, PacketTrace>> split_by_flow(
      std::optional<net::Port> remote_port = std::nullopt) const;

  /// Distinct flows present, keyed from the capture node's perspective,
  /// in order of first appearance.
  std::vector<net::FlowId> flows() const;

  /// Multi-line human-readable dump.
  std::string to_text() const;

 private:
  net::NodeId node_;
  std::vector<PacketRecord> records_;
  std::size_t retained_bytes_ = 0;
};

}  // namespace dyncdn::capture
